//! A compromised flight-control node sends wrong actuator commands; BTR
//! detects it by re-execution, floods the proof, and reconfigures — all
//! while the airframe's inertia (the plant envelope) absorbs the bounded
//! window of bad output.
//!
//! ```text
//! cargo run --example avionics_attack
//! ```

use btr::core::{BtrSystem, FaultScenario, Plant, PlantConfig};
use btr::model::{ATask, Duration, FaultKind, Time, Topology};
use btr::planner::PlannerConfig;

fn main() {
    let topo = Topology::bus(9, 100_000, Duration(5));
    let workload = btr::workload::generators::avionics(9);
    let mut cfg = PlannerConfig::new(1, Duration::from_millis(150));
    cfg.admit_best_effort = true;
    let system = BtrSystem::plan(workload, topo, cfg).expect("plannable");

    // Compromise the node hosting the primary flight-control replica.
    let ctl = system
        .workload()
        .tasks()
        .iter()
        .find(|t| t.name == "flight-control")
        .unwrap()
        .id;
    let victim = system
        .strategy()
        .initial_plan()
        .node_of(ATask::Work {
            task: ctl,
            replica: 0,
        })
        .unwrap();
    println!("adversary compromises {victim} (hosts flight-control lane 0)");

    let scenario = FaultScenario::single(victim, FaultKind::Commission, Time::from_millis(52));
    let report = system.run(&scenario, Duration::from_millis(400), 11);

    // Correctness timeline, one row per period.
    println!("\nperiod | acceptable outputs");
    for (p, frac) in report.timeline() {
        let bar: String = std::iter::repeat_n('#', (frac * 30.0) as usize).collect();
        println!("{p:>6} | {bar:<30} {:.0}%", frac * 100.0);
    }

    println!(
        "\nbad-output window: {} (R = {})",
        report.recovery.bad_window(),
        system.strategy().r_bound
    );

    // The plant: damage only if bad output persists past D = 2R.
    let plant = Plant::drive(
        system.workload(),
        PlantConfig::with_deadline(Duration::from_millis(300)),
        &report.verdicts,
    );
    println!(
        "plant peak stress: {:.0}% of envelope, damaged: {}",
        plant.peak_stress() * 100.0,
        plant.damaged()
    );
    assert!(!plant.damaged(), "inertia must absorb a bounded window");
}
