//! Mixed-criticality degradation: as nodes fail, BTR sheds the in-flight
//! entertainment before it ever touches flight control — the paper's
//! fine-grained alternative to all-or-nothing fault tolerance.
//!
//! ```text
//! cargo run --example mixed_criticality
//! ```

use btr::model::{Criticality, Duration, FaultSet, NodeId, Topology};
use btr::planner::{build_strategy, plan_utility, strategy_quality, PlannerConfig};

fn main() {
    // A tight platform: six nodes, limited bus, so capacity actually runs
    // out when nodes fail.
    let workload = btr::workload::generators::avionics(6);
    let topo = Topology::bus(6, 60_000, Duration(5));
    let mut cfg = PlannerConfig::new(2, Duration::from_millis(300));
    cfg.admit_best_effort = true;
    let (strategy, stats) = build_strategy(&workload, &topo, &cfg).expect("plannable");

    println!(
        "strategy: {} plans, {} degraded, worst shed set {}",
        stats.plans, stats.degraded_plans, stats.max_shed
    );

    println!("\nfailed | surviving sinks by criticality          | utility");
    for k in 0..=2u32 {
        let fs: FaultSet = (0..k).map(NodeId).collect();
        let plan = strategy.plan(strategy.best_plan_for(&fs));
        let mut cells = Vec::new();
        for c in Criticality::ALL.iter().rev() {
            let total = workload.sinks().filter(|s| s.criticality == *c).count();
            let alive = workload
                .sinks()
                .filter(|s| s.criticality == *c && !plan.is_shed(s.id))
                .count();
            cells.push(format!("{}:{alive}/{total}", c.label()));
        }
        println!(
            "{k:>6} | {:<40} | {:.2}",
            cells.join(" "),
            plan_utility(plan, &workload)
        );
    }

    // The adversary's best sequence of compromises, from the game tree.
    let q = strategy_quality(&strategy, &workload);
    println!(
        "\nadversary's best sequence: {:?} (cumulative damage {:.2})",
        q.worst_sequence
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>(),
        q.worst_damage
    );
    println!(
        "minimum utility by fault level: {:?}",
        q.min_utility_by_level
            .iter()
            .map(|u| format!("{u:.2}"))
            .collect::<Vec<_>>()
    );
}
