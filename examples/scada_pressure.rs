//! The paper's Section 2 motivating scenario: "when a sensor indicates a
//! pressure increase in some part of the system, the system may need to
//! respond within seconds — e.g., by opening a safety valve — to prevent
//! an explosion."
//!
//! A SCADA plant loses its PLC-hosting node to a Byzantine compromise;
//! BTR must restore correct valve commands before the vessel's thermal
//! capacity (deadline D) runs out.
//!
//! ```text
//! cargo run --example scada_pressure
//! ```

use btr::core::{BtrSystem, FaultScenario, Plant, PlantConfig};
use btr::model::{ATask, Duration, FaultKind, Time, Topology};
use btr::planner::PlannerConfig;

fn main() {
    // Six controllers on a plant bus; 20 ms control period.
    let workload = btr::workload::generators::scada(6);
    let topo = Topology::bus(6, 100_000, Duration(10));

    // The vessel tolerates D = 800 ms without correct valve commands;
    // with f = 1 the paper's rule says provision R = D/f... but be
    // prudent and halve it again.
    let d = Duration::from_millis(800);
    let r = Duration(d.as_micros() / 2);
    let mut cfg = PlannerConfig::new(1, r);
    cfg.admit_best_effort = true;
    let system = BtrSystem::plan(workload, topo, cfg).expect("plannable");
    println!(
        "plant deadline D = {d}, provisioned R = {r}, strategy has {} plans",
        system.strategy().plan_count()
    );

    // Compromise the node computing the PLC logic.
    let plc = system
        .workload()
        .tasks()
        .iter()
        .find(|t| t.name == "plc-logic")
        .unwrap()
        .id;
    let victim = system
        .strategy()
        .initial_plan()
        .node_of(ATask::Work {
            task: plc,
            replica: 0,
        })
        .unwrap();
    println!("adversary compromises {victim} (hosts plc-logic lane 0)");

    let scenario = FaultScenario::single(victim, FaultKind::Commission, Time::from_millis(104));
    let report = system.run(&scenario, Duration::from_millis(1_200), 23);

    println!(
        "bad-output window: {} (R = {r})",
        report.recovery.bad_window()
    );
    let plant = Plant::drive(
        system.workload(),
        PlantConfig::with_deadline(d),
        &report.verdicts,
    );
    println!(
        "vessel stress peaked at {:.0}% of envelope; damaged: {}",
        plant.peak_stress() * 100.0,
        plant.damaged()
    );
    println!(
        "safety-valve outputs acceptable: {:.1}%",
        report.survival[&btr::model::Criticality::Safety] * 100.0
    );
    assert!(!plant.damaged(), "the valve must reopen in time");
    println!("=> the safety valve recovered before the vessel left its envelope.");
}
