//! Quickstart: plan a BTR strategy for an avionics workload, crash a
//! node mid-flight, and watch the system recover within its bound R.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use btr::core::{BtrSystem, FaultScenario};
use btr::model::{Duration, FaultKind, NodeId, Time, Topology};
use btr::planner::PlannerConfig;

fn main() {
    // 1. The platform: nine ECUs on a shared avionics bus.
    let topo = Topology::bus(9, 100_000, Duration(5));

    // 2. The workload: flight control (Safety) sharing the platform with
    //    navigation, telemetry, and in-flight entertainment.
    let workload = btr::workload::generators::avionics(9);
    println!(
        "workload: {} tasks, {} sinks, utilisation {:.2}",
        workload.len(),
        workload.sinks().count(),
        workload.utilization()
    );

    // 3. Plan offline: tolerate any f = 1 Byzantine node, recover within
    //    R = 150 ms.
    let mut cfg = PlannerConfig::new(1, Duration::from_millis(150));
    cfg.admit_best_effort = true;
    let system = BtrSystem::plan(workload, topo, cfg).expect("plannable");
    println!(
        "strategy: {} plans, worst transition bound {}",
        system.strategy().plan_count(),
        system.strategy().worst_transition_bound()
    );

    // 4. Crash node 6 at t = 42 ms and run for half a second.
    let scenario = FaultScenario::single(NodeId(6), FaultKind::Crash, Time::from_millis(42));
    let report = system.run(&scenario, Duration::from_millis(500), 7);

    // 5. The verdict.
    println!(
        "outputs acceptable: {:.1}% ({} slots judged)",
        report.acceptable_fraction() * 100.0,
        report.recovery.total_outputs
    );
    println!(
        "bad-output window: {} (R = {})",
        report.recovery.bad_window(),
        system.strategy().r_bound
    );
    println!("all correct nodes converged: {}", report.converged);
    assert!(report.recovery.bad_window() <= system.strategy().r_bound);
    println!("=> recovered within the bound. The five-second rule holds.");
}
