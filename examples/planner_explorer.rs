//! Explore the offline planner: strategy sizes, transition costs, and a
//! JSON export of the full strategy (what a deployment would install on
//! every node).
//!
//! ```text
//! cargo run --example planner_explorer [nodes] [f]
//! ```

use btr::model::{Duration, Topology};
use btr::planner::{build_strategy, PlannerConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(9)
        .clamp(4, 24);
    let f: u8 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1).min(3);

    let workload = btr::workload::generators::avionics(n);
    let topo = Topology::bus(n, 150_000, Duration(5));
    let mut cfg = PlannerConfig::new(f, Duration::from_millis(300));
    cfg.admit_best_effort = true;
    cfg.threads = 4;

    let t0 = std::time::Instant::now();
    let (strategy, stats) = build_strategy(&workload, &topo, &cfg).expect("plannable");
    let dt = t0.elapsed();

    println!("platform: {n} nodes, fault budget f = {f}");
    println!("built in {dt:?}");
    println!("plans:               {}", stats.plans);
    println!("transitions:         {}", stats.transitions);
    println!("worst transition:    {}", stats.worst_transition);
    println!("worst plan distance: {}", stats.worst_distance);
    println!("degraded plans:      {}", stats.degraded_plans);

    // Per-level shedding summary.
    for k in 0..=f as usize {
        let (count, degraded): (usize, usize) = strategy
            .plans
            .iter()
            .filter(|p| p.fault_set.len() == k)
            .fold((0, 0), |(c, d), p| {
                (c + 1, d + usize::from(!p.shed.is_empty()))
            });
        println!("level {k}: {count} plans, {degraded} degraded");
    }

    // Export summary: the artifact a deployment installs on every node is
    // the strategy value; report its footprint. (JSON export is stubbed
    // offline — see vendor/README.md.)
    let placements: usize = strategy.plans.iter().map(|p| p.placement.len()).sum();
    let sched_slots: usize = strategy
        .plans
        .iter()
        .flat_map(|p| p.schedules.values())
        .map(|s| s.entries.len())
        .sum();
    println!(
        "\nstrategy artifact: {} plans, {placements} placements, {sched_slots} schedule slots",
        strategy.plan_count()
    );
}
