//! The offline BTR planner (Section 4.1 of the paper).
//!
//! "Before the system can run a given workload, it must first find a
//! strategy that can ensure BTR. ... The planner first augments the
//! dataflow graph with additional tasks. It adds 1) replicas; 2) checking
//! tasks, which compare the outputs of the replicas to detect faults and
//! generate evidence; and 3) verification tasks, which distribute and
//! verify incoming evidence from other nodes. ... Next, the planner
//! computes a plan for each mode."
//!
//! The pipeline:
//!
//! 1. [`augment`] decides replica lane counts per task (f+1 for
//!    detection; 2f+1 when configured for masking-cost comparisons).
//! 2. [`placement`] maps augmented tasks to nodes for one fault pattern,
//!    honouring hard constraints (replica anti-affinity, sensor/actuator
//!    pinning) and heuristics (bandwidth locality, load balance, checker
//!    co-location, minimal distance from the parent plan).
//! 3. `btr-sched` synthesises per-node schedules and link budgets; on
//!    failure the planner sheds the least-critical tasks and retries
//!    ("the planner removes some of the less critical tasks and
//!    retries").
//! 4. [`strategy`] walks fault patterns breadth-first up to the fault
//!    budget `f`, derives transition metadata (migrations, state bytes,
//!    time bounds), and admits the strategy against the recovery bound R.
//! 5. [`gametree`] scores strategies adversarially — "computing a
//!    strategy is a bit like building a game tree for a game like chess".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod augment;
pub mod gametree;
pub mod placement;
pub mod strategy;

pub use augment::{lane_counts, ReplicationMode};
pub use gametree::{plan_utility, strategy_quality, worst_case_sequence, QualityReport};
pub use placement::{place, PlacementError};
pub use strategy::{build_strategy, PlanOutcome, StrategyError, StrategyStats};

use btr_model::Duration;
use btr_sched::SchedParams;

/// How aggressively the planner sheds tasks when a mode is infeasible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Shed lowest criticality first; Safety tasks only as a last resort.
    ByCriticality,
    /// Never shed; infeasible modes make the whole strategy fail.
    Never,
}

/// Planner configuration.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Fault budget: the strategy covers every fault set with at most
    /// this many nodes.
    pub f: u8,
    /// The recovery bound R to admit the strategy against.
    pub r_bound: Duration,
    /// Replication mode (detection vs masking lane counts).
    pub replication: ReplicationMode,
    /// Scheduling parameters (period, speed, reserves).
    pub sched: SchedParams,
    /// Shedding policy for infeasible modes.
    pub shed: ShedPolicy,
    /// Keep each child plan as close as possible to its parent plan
    /// ("it should otherwise change as little as possible"). Turning
    /// this off is the A1 ablation.
    pub minimize_delta: bool,
    /// Place checkers near the replicas they check ("putting checking
    /// tasks close to replicas"). Turning this off is the A2 ablation.
    pub checker_colocate: bool,
    /// Detection-latency component assumed by the R admission check
    /// (one period for the checker to see a bad output, plus slack).
    pub detect_margin: Duration,
    /// If true, a strategy whose worst transition violates R is still
    /// returned (with the violation recorded) instead of failing.
    pub admit_best_effort: bool,
    /// Number of worker threads for plan enumeration (1 = sequential).
    pub threads: usize,
}

impl PlannerConfig {
    /// A reasonable default configuration for a fault budget.
    pub fn new(f: u8, r_bound: Duration) -> PlannerConfig {
        PlannerConfig {
            f,
            r_bound,
            replication: ReplicationMode::Detection,
            sched: SchedParams::default(),
            shed: ShedPolicy::ByCriticality,
            minimize_delta: true,
            checker_colocate: true,
            detect_margin: Duration::from_millis(12),
            admit_best_effort: false,
            threads: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = PlannerConfig::new(2, Duration::from_millis(100));
        assert_eq!(c.f, 2);
        assert_eq!(c.replication, ReplicationMode::Detection);
        assert!(c.minimize_delta);
        assert!(c.checker_colocate);
        assert_eq!(c.threads, 1);
    }
}
