//! Task placement for one fault pattern.
//!
//! Section 4.1: "Each task is mapped to a node; this involves some 'hard'
//! constraints — for instance, no two replicas of the same task can run
//! on the same node — but also some heuristics: for instance, putting
//! replicas close to each other may save bandwidth, and putting checking
//! tasks close to replicas can make it easier to detect omission faults."
//!
//! The placer is greedy and deterministic: tasks are visited in dataflow
//! order; each lane picks the feasible node minimising a cost blending
//! (a) current CPU load, (b) communication distance to its input
//! producers, and (c) a reassignment penalty against the parent plan when
//! delta minimisation is on.

use btr_model::{ATask, Duration, NodeId, TaskId, Topology};
use btr_net::RoutingTable;
use btr_sched::comm_bound;
use btr_workload::{TaskKind, Workload};
use std::collections::{BTreeMap, BTreeSet};

/// Why placement failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// Not enough healthy nodes to separate a task's replicas.
    InsufficientNodes {
        /// The task needing separation.
        task: TaskId,
        /// Lanes required.
        need: u8,
        /// Healthy candidates available.
        have: usize,
    },
    /// A pinned sink's actuator node is faulty (task must be shed).
    ActuatorLost(TaskId),
    /// No sensing-capable healthy node remains for a source lane.
    NoSensorNode(TaskId),
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::InsufficientNodes { task, need, have } => {
                write!(f, "{task}: need {need} distinct nodes, have {have}")
            }
            PlacementError::ActuatorLost(t) => write!(f, "{t}: actuator node is faulty"),
            PlacementError::NoSensorNode(t) => write!(f, "{t}: no sensing node available"),
        }
    }
}

impl std::error::Error for PlacementError {}

/// Knobs for the placement heuristics.
#[derive(Debug, Clone)]
pub struct PlaceOpts {
    /// Prefer nodes close (in comm-bound terms) to input producers.
    pub bandwidth_weight: f64,
    /// Prefer lightly loaded nodes.
    pub load_weight: f64,
    /// Penalty (µs-equivalent) for moving a task off its parent-plan node.
    pub delta_penalty: f64,
    /// Place checkers near their replicas (A2 ablation toggles this).
    pub checker_colocate: bool,
    /// Keep assignments from the parent plan when possible (A1 ablation).
    pub minimize_delta: bool,
}

impl Default for PlaceOpts {
    fn default() -> Self {
        PlaceOpts {
            bandwidth_weight: 1.0,
            load_weight: 1.0,
            delta_penalty: 5_000.0,
            checker_colocate: true,
            minimize_delta: true,
        }
    }
}

/// Place all augmented tasks for one fault pattern.
///
/// `lanes` comes from [`crate::augment::lane_counts`]; `parent` is the
/// plan the system would be leaving (for delta minimisation); `faulty`
/// is the fault pattern this plan must survive.
pub fn place(
    workload: &Workload,
    topo: &Topology,
    routing: &RoutingTable,
    lanes: &BTreeMap<TaskId, u8>,
    faulty: &BTreeSet<NodeId>,
    parent: Option<&BTreeMap<ATask, NodeId>>,
    opts: &PlaceOpts,
) -> Result<BTreeMap<ATask, NodeId>, PlacementError> {
    let healthy: Vec<NodeId> = topo
        .nodes()
        .iter()
        .map(|n| n.id)
        .filter(|n| !faulty.contains(n))
        .collect();
    let mut placement: BTreeMap<ATask, NodeId> = BTreeMap::new();
    let mut load: BTreeMap<NodeId, u64> = healthy.iter().map(|&n| (n, 0u64)).collect();

    let parent_node = |atask: ATask| -> Option<NodeId> {
        if !opts.minimize_delta {
            return None;
        }
        parent.and_then(|p| p.get(&atask).copied())
    };

    for &tid in workload.topo_order() {
        let Some(&n_lanes) = lanes.get(&tid) else {
            continue;
        };
        let spec = workload.task(tid);
        let mut used: BTreeSet<NodeId> = BTreeSet::new();

        for r in 0..n_lanes {
            let atask = ATask::Work {
                task: tid,
                replica: r,
            };
            // Hard constraints first.
            let candidates: Vec<NodeId> = match spec.kind {
                TaskKind::Sink { pinned } => {
                    if faulty.contains(&pinned) {
                        return Err(PlacementError::ActuatorLost(tid));
                    }
                    vec![pinned]
                }
                TaskKind::Source { pinned } => {
                    // Lane 0 prefers the spec's own sensor; all lanes need
                    // sensing-capable healthy nodes, pairwise distinct.
                    let mut c: Vec<NodeId> = healthy
                        .iter()
                        .copied()
                        .filter(|&n| topo.node(n).can_sense && !used.contains(&n))
                        .collect();
                    if c.is_empty() {
                        if r == 0 {
                            return Err(PlacementError::NoSensorNode(tid));
                        }
                        // Fewer sensors than lanes: stop adding lanes.
                        break;
                    }
                    if r == 0 && !faulty.contains(&pinned) && c.contains(&pinned) {
                        c = vec![pinned];
                    }
                    c
                }
                TaskKind::Compute => {
                    let c: Vec<NodeId> = healthy
                        .iter()
                        .copied()
                        .filter(|n| !used.contains(n))
                        .collect();
                    if c.is_empty() {
                        return Err(PlacementError::InsufficientNodes {
                            task: tid,
                            need: n_lanes,
                            have: healthy.len(),
                        });
                    }
                    c
                }
            };

            // Score candidates.
            let mut best: Option<(f64, NodeId)> = None;
            for &cand in &candidates {
                let mut cost = opts.load_weight * load.get(&cand).copied().unwrap_or(0) as f64;
                for &input in &spec.inputs {
                    let Some(&in_lanes) = lanes.get(&input) else {
                        continue;
                    };
                    let lane = btr_sched::input_lane(r, in_lanes);
                    if let Some(&in_node) = placement.get(&ATask::Work {
                        task: input,
                        replica: lane,
                    }) {
                        let d = comm_bound(topo, routing, in_node, cand, 150)
                            .map(|d| d.as_micros())
                            .unwrap_or(1_000_000);
                        cost += opts.bandwidth_weight * d as f64;
                    }
                }
                if let Some(pn) = parent_node(atask) {
                    if pn != cand {
                        cost += opts.delta_penalty;
                    }
                }
                let better = match best {
                    None => true,
                    Some((bc, bn)) => cost < bc || (cost == bc && cand < bn),
                };
                if better {
                    best = Some((cost, cand));
                }
            }
            let node = best.expect("candidates nonempty").1;
            used.insert(node);
            load.entry(node)
                .and_modify(|l| *l += spec.wcet.0)
                .or_insert(spec.wcet.0);
            placement.insert(atask, node);
        }

        // Checker for replicated tasks.
        let placed_lanes: Vec<NodeId> = (0..n_lanes)
            .filter_map(|r| {
                placement
                    .get(&ATask::Work {
                        task: tid,
                        replica: r,
                    })
                    .copied()
            })
            .collect();
        if placed_lanes.len() >= 2 {
            let chk = ATask::Check { task: tid };
            let mut best: Option<(f64, NodeId)> = None;
            for &cand in &healthy {
                let mut cost = opts.load_weight * load.get(&cand).copied().unwrap_or(0) as f64;
                let dist_sum: f64 = placed_lanes
                    .iter()
                    .map(|&rn| {
                        comm_bound(topo, routing, rn, cand, 150)
                            .map(|d| d.as_micros() as f64)
                            .unwrap_or(1e6)
                    })
                    .sum();
                if opts.checker_colocate {
                    cost += opts.bandwidth_weight * dist_sum;
                } else {
                    // Ablation: actively prefer distant checkers.
                    cost -= opts.bandwidth_weight * dist_sum;
                }
                if let Some(pn) = parent_node(chk) {
                    if pn != cand {
                        cost += opts.delta_penalty;
                    }
                }
                let better = match best {
                    None => true,
                    Some((bc, bn)) => cost < bc || (cost == bc && cand < bn),
                };
                if better {
                    best = Some((cost, cand));
                }
            }
            let node = best.expect("healthy nonempty").1;
            load.entry(node).and_modify(|l| *l += 50).or_insert(50);
            placement.insert(chk, node);
        }
    }

    // Verification reserve on every healthy node.
    for &n in &healthy {
        placement.insert(ATask::Verify { node: n }, n);
    }
    Ok(placement)
}

/// Count how many augmented tasks moved between two placements
/// (the plan-distance metric of Section 4.1).
pub fn placement_distance(a: &BTreeMap<ATask, NodeId>, b: &BTreeMap<ATask, NodeId>) -> usize {
    let mut moved = 0;
    for (atask, node) in b {
        if matches!(atask, ATask::Verify { .. }) {
            continue; // Verify slots are per-node fixtures, not tasks.
        }
        match a.get(atask) {
            Some(old) if old == node => {}
            _ => moved += 1,
        }
    }
    moved
}

/// Communication bound helper re-exported for strategy building.
pub fn worst_comm(topo: &Topology, routing: &RoutingTable, bytes: u32) -> Duration {
    let mut worst = Duration::ZERO;
    let n = topo.node_count();
    for a in 0..n {
        for b in 0..n {
            if let Some(d) = comm_bound(topo, routing, NodeId(a as u32), NodeId(b as u32), bytes) {
                worst = worst.max(d);
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augment::{lane_counts, ReplicationMode};
    use btr_model::{Criticality, Duration};
    use btr_workload::WorkloadBuilder;

    fn ms(x: u64) -> Duration {
        Duration::from_millis(x)
    }

    fn wl() -> Workload {
        let mut b = WorkloadBuilder::new(ms(10), 0);
        let s = b.source("s", NodeId(0), Duration(100), Criticality::Safety, ms(10));
        let c = b.compute("c", &[s], Duration(300), Criticality::Safety, ms(10), 256);
        b.sink(
            "k",
            NodeId(1),
            &[c],
            Duration(50),
            Criticality::Safety,
            ms(10),
        );
        b.build().unwrap()
    }

    #[test]
    fn replicas_on_distinct_nodes() {
        let w = wl();
        let topo = Topology::bus(5, 10_000, Duration(5));
        let routing = RoutingTable::new(&topo);
        let lanes = lane_counts(&w, ReplicationMode::Detection, 2, &BTreeSet::new(), 8);
        let p = place(
            &w,
            &topo,
            &routing,
            &lanes,
            &BTreeSet::new(),
            None,
            &PlaceOpts::default(),
        )
        .unwrap();
        // Three lanes of the compute task on three distinct nodes.
        let nodes: BTreeSet<NodeId> = (0..3)
            .map(|r| {
                p[&ATask::Work {
                    task: TaskId(1),
                    replica: r,
                }]
            })
            .collect();
        assert_eq!(nodes.len(), 3);
        // Checker placed.
        assert!(p.contains_key(&ATask::Check { task: TaskId(1) }));
        // Sink pinned.
        assert_eq!(
            p[&ATask::Work {
                task: TaskId(2),
                replica: 0
            }],
            NodeId(1)
        );
    }

    #[test]
    fn faulty_nodes_never_host() {
        let w = wl();
        let topo = Topology::bus(5, 10_000, Duration(5));
        let routing = RoutingTable::new(&topo);
        let lanes = lane_counts(&w, ReplicationMode::Detection, 1, &BTreeSet::new(), 8);
        let faulty = BTreeSet::from([NodeId(2), NodeId(3)]);
        let p = place(
            &w,
            &topo,
            &routing,
            &lanes,
            &faulty,
            None,
            &PlaceOpts::default(),
        )
        .unwrap();
        for node in p.values() {
            assert!(!faulty.contains(node));
        }
    }

    #[test]
    fn actuator_loss_reported() {
        let w = wl();
        let topo = Topology::bus(5, 10_000, Duration(5));
        let routing = RoutingTable::new(&topo);
        let lanes = lane_counts(&w, ReplicationMode::Detection, 1, &BTreeSet::new(), 8);
        let faulty = BTreeSet::from([NodeId(1)]); // The sink's actuator.
        let err = place(
            &w,
            &topo,
            &routing,
            &lanes,
            &faulty,
            None,
            &PlaceOpts::default(),
        )
        .unwrap_err();
        assert_eq!(err, PlacementError::ActuatorLost(TaskId(2)));
    }

    #[test]
    fn insufficient_nodes_for_lanes() {
        let w = wl();
        let topo = Topology::bus(2, 10_000, Duration(5));
        let routing = RoutingTable::new(&topo);
        // f = 2 -> 3 lanes of the compute task, but only 2 nodes.
        let lanes = lane_counts(&w, ReplicationMode::Detection, 2, &BTreeSet::new(), 8);
        let err = place(
            &w,
            &topo,
            &routing,
            &lanes,
            &BTreeSet::new(),
            None,
            &PlaceOpts::default(),
        )
        .unwrap_err();
        assert!(matches!(err, PlacementError::InsufficientNodes { .. }));
    }

    #[test]
    fn delta_minimisation_keeps_assignments() {
        let w = wl();
        let topo = Topology::bus(6, 10_000, Duration(5));
        let routing = RoutingTable::new(&topo);
        let lanes = lane_counts(&w, ReplicationMode::Detection, 1, &BTreeSet::new(), 8);
        let base = place(
            &w,
            &topo,
            &routing,
            &lanes,
            &BTreeSet::new(),
            None,
            &PlaceOpts::default(),
        )
        .unwrap();
        // Fail a node hosting nothing: the child plan should be identical
        // on all work/check tasks.
        let hosting: BTreeSet<NodeId> = base.values().copied().collect();
        let idle = (0..6).map(NodeId).find(|n| !hosting.contains(n));
        if let Some(idle) = idle {
            let faulty = BTreeSet::from([idle]);
            let routing2 = RoutingTable::avoiding(&topo, &faulty);
            let child = place(
                &w,
                &topo,
                &routing2,
                &lanes,
                &faulty,
                Some(&base),
                &PlaceOpts::default(),
            )
            .unwrap();
            assert_eq!(placement_distance(&base, &child), 0);
        }
        // Fail a hosting node: only tasks on it should move.
        let victim = base[&ATask::Work {
            task: TaskId(1),
            replica: 0,
        }];
        let faulty = BTreeSet::from([victim]);
        let routing2 = RoutingTable::avoiding(&topo, &faulty);
        let child = place(
            &w,
            &topo,
            &routing2,
            &lanes,
            &faulty,
            Some(&base),
            &PlaceOpts::default(),
        )
        .unwrap();
        let moved = placement_distance(&base, &child);
        let on_victim = base
            .iter()
            .filter(|(a, n)| !matches!(a, ATask::Verify { .. }) && **n == victim)
            .count();
        // Everything on the victim must move; anti-affinity may force at
        // most one sibling replica to shuffle as well.
        assert!(moved >= on_victim, "victim tasks must move");
        assert!(
            moved <= on_victim + 1,
            "delta minimisation moved {moved} tasks for {on_victim} lost"
        );
    }

    #[test]
    fn without_delta_minimisation_more_moves() {
        let w = wl();
        let topo = Topology::bus(6, 10_000, Duration(5));
        let routing = RoutingTable::new(&topo);
        let lanes = lane_counts(&w, ReplicationMode::Detection, 2, &BTreeSet::new(), 8);
        let base = place(
            &w,
            &topo,
            &routing,
            &lanes,
            &BTreeSet::new(),
            None,
            &PlaceOpts::default(),
        )
        .unwrap();
        let victim = base[&ATask::Work {
            task: TaskId(1),
            replica: 0,
        }];
        let faulty = BTreeSet::from([victim]);
        let routing2 = RoutingTable::avoiding(&topo, &faulty);
        let with = place(
            &w,
            &topo,
            &routing2,
            &lanes,
            &faulty,
            Some(&base),
            &PlaceOpts::default(),
        )
        .unwrap();
        let without_opts = PlaceOpts {
            minimize_delta: false,
            ..PlaceOpts::default()
        };
        let without = place(
            &w,
            &topo,
            &routing2,
            &lanes,
            &faulty,
            Some(&base),
            &without_opts,
        )
        .unwrap();
        assert!(
            placement_distance(&base, &with) <= placement_distance(&base, &without),
            "delta minimisation should not increase distance"
        );
    }

    #[test]
    fn worst_comm_positive() {
        let topo = Topology::ring(5, 2_000, Duration(5));
        let routing = RoutingTable::new(&topo);
        assert!(worst_comm(&topo, &routing, 100) > Duration::ZERO);
    }
}
