//! Strategy construction: a plan for every fault pattern up to `f`.
//!
//! Section 4.1: the planner must anticipate fault patterns — "Suppose ...
//! the planner has already chosen a plan Π{X} for the case where node X
//! has failed, and is now looking for a plan Π{X,Y} that can handle an
//! extra fault on node Y" — and keep transitions cheap ("Any extra
//! reassignments will consume resources ... and can thus prolong
//! recovery"). Plans are derived breadth-first over fault-set sizes, each
//! child seeded by a parent plan for delta minimisation; transition
//! metadata (migrations, state bytes, time bounds) is recorded for every
//! single-fault edge, and the whole strategy is admitted against the
//! recovery bound R.

use crate::augment::lane_counts;
use crate::placement::{place, placement_distance, worst_comm, PlaceOpts, PlacementError};
use crate::{PlannerConfig, ShedPolicy};
use btr_model::{
    ATask, Criticality, Duration, FaultSet, Migration, NodeId, Plan, PlanId, Strategy, TaskId,
    Transition,
};
use btr_net::RoutingTable;
use btr_sched::synthesize;
use btr_workload::Workload;
use std::collections::{BTreeMap, BTreeSet};

/// Approximate wire size of an evidence record for bounds.
pub const EVIDENCE_WIRE_BYTES: u32 = 420;
/// Fixed slack for per-hop evidence validation in the distribution bound.
const VALIDATION_SLACK: Duration = Duration(500);

/// Why strategy construction failed.
#[derive(Debug, Clone, PartialEq)]
pub enum StrategyError {
    /// A mode could not be scheduled even after shedding (policy Never),
    /// or the platform cannot host the workload at all.
    Infeasible {
        /// The offending fault pattern.
        fault_set: FaultSet,
        /// Human-readable cause.
        reason: String,
    },
    /// A transition's recovery bound exceeds R (strict admission).
    RBoundViolated {
        /// Fault set being left.
        from: FaultSet,
        /// Fault set being entered.
        to: FaultSet,
        /// The computed worst-case recovery time for this transition.
        bound: Duration,
        /// The requested R.
        r: Duration,
    },
}

impl std::fmt::Display for StrategyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrategyError::Infeasible { fault_set, reason } => {
                write!(f, "no feasible plan for {fault_set}: {reason}")
            }
            StrategyError::RBoundViolated { from, to, bound, r } => {
                write!(f, "transition {from} -> {to} bound {bound} exceeds R = {r}")
            }
        }
    }
}

impl std::error::Error for StrategyError {}

/// The result of planning one mode.
#[derive(Debug, Clone)]
pub struct PlanOutcome {
    /// The plan (id assigned by the strategy builder).
    pub plan: Plan,
    /// Tasks shed to make the mode feasible (duplicated in `plan.shed`).
    pub shed: BTreeSet<TaskId>,
}

/// Aggregate statistics about a built strategy.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StrategyStats {
    /// Number of plans (fault patterns covered).
    pub plans: usize,
    /// Number of precomputed transitions.
    pub transitions: usize,
    /// Worst per-transition recovery bound (excl. detection margin).
    pub worst_transition: Duration,
    /// Worst plan distance (task reassignments) across transitions.
    pub worst_distance: usize,
    /// Total task reassignments across all transitions.
    pub total_distance: usize,
    /// Largest shed-set size in any plan.
    pub max_shed: usize,
    /// Plans that had to shed at least one task.
    pub degraded_plans: usize,
}

fn shed_order_key(workload: &Workload, t: TaskId) -> (u8, std::cmp::Reverse<u64>, u32) {
    let spec = workload.task(t);
    (spec.criticality.rank(), std::cmp::Reverse(spec.wcet.0), t.0)
}

/// What planning one mode produces: the placement, the synthesized
/// schedules, and the tasks shed to make the mode feasible.
type ModePlan = (
    BTreeMap<ATask, NodeId>,
    btr_sched::Synthesis,
    BTreeSet<TaskId>,
);

/// Plan a single mode: place, schedule, shed-and-retry.
fn plan_mode(
    workload: &Workload,
    topo: &btr_model::Topology,
    cfg: &PlannerConfig,
    fs: &FaultSet,
    parent: Option<&BTreeMap<ATask, NodeId>>,
) -> Result<ModePlan, StrategyError> {
    let routing = RoutingTable::avoiding(topo, fs.as_set());
    let healthy_sensors = topo
        .nodes()
        .iter()
        .filter(|n| n.can_sense && !fs.contains(n.id))
        .count()
        .max(1) as u8;
    let opts = PlaceOpts {
        checker_colocate: cfg.checker_colocate,
        minimize_delta: cfg.minimize_delta,
        ..PlaceOpts::default()
    };
    let mut shed: BTreeSet<TaskId> = BTreeSet::new();
    loop {
        let lanes = lane_counts(workload, cfg.replication, cfg.f, &shed, healthy_sensors);
        if lanes.is_empty() {
            // Everything shed: the empty plan (always feasible).
            let synth = synthesize(
                workload,
                topo,
                &routing,
                &BTreeMap::new(),
                &lanes,
                &cfg.sched,
            )
            .map_err(|e| StrategyError::Infeasible {
                fault_set: fs.clone(),
                reason: format!("even the empty plan failed: {e}"),
            })?;
            return Ok((BTreeMap::new(), synth, shed));
        }
        let placement = match place(workload, topo, &routing, &lanes, fs.as_set(), parent, &opts) {
            Ok(p) => p,
            Err(e) => {
                let victim = match e {
                    PlacementError::ActuatorLost(t)
                    | PlacementError::NoSensorNode(t)
                    | PlacementError::InsufficientNodes { task: t, .. } => t,
                };
                if cfg.shed == ShedPolicy::Never {
                    return Err(StrategyError::Infeasible {
                        fault_set: fs.clone(),
                        reason: e.to_string(),
                    });
                }
                shed.insert(victim);
                continue;
            }
        };
        match synthesize(workload, topo, &routing, &placement, &lanes, &cfg.sched) {
            Ok(synth) => {
                // Effective shed set: anything without lanes.
                let mut effective = shed.clone();
                for t in workload.tasks() {
                    if !lanes.contains_key(&t.id) {
                        effective.insert(t.id);
                    }
                }
                return Ok((placement, synth, effective));
            }
            Err(e) => {
                if cfg.shed == ShedPolicy::Never {
                    return Err(StrategyError::Infeasible {
                        fault_set: fs.clone(),
                        reason: e.to_string(),
                    });
                }
                // Pick the shedding victim: lowest criticality alive task;
                // within a level, largest WCET first.
                let victim = workload
                    .tasks()
                    .iter()
                    .filter(|t| lanes.contains_key(&t.id))
                    .min_by_key(|t| shed_order_key(workload, t.id))
                    .map(|t| t.id);
                match victim {
                    Some(v) => {
                        shed.insert(v);
                    }
                    None => {
                        return Err(StrategyError::Infeasible {
                            fault_set: fs.clone(),
                            reason: format!("unschedulable with empty workload: {e}"),
                        });
                    }
                }
                let _ = e; // Reason folded into retry.
            }
        }
    }
}

fn enumerate_fault_sets(n: usize, k: usize) -> Vec<FaultSet> {
    // All k-subsets of 0..n in lexicographic order.
    let mut out = Vec::new();
    let mut idx: Vec<usize> = (0..k).collect();
    if k == 0 {
        return vec![FaultSet::empty()];
    }
    if k > n {
        return out;
    }
    loop {
        out.push(idx.iter().map(|&i| NodeId(i as u32)).collect::<FaultSet>());
        // Advance combination.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + n - k {
                idx[i] += 1;
                for j in i + 1..k {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// Build the full strategy for a workload on a platform.
pub fn build_strategy(
    workload: &Workload,
    topo: &btr_model::Topology,
    cfg: &PlannerConfig,
) -> Result<(Strategy, StrategyStats), StrategyError> {
    let n = topo.node_count();
    let mut plans: Vec<Plan> = Vec::new();
    let mut index: BTreeMap<FaultSet, PlanId> = BTreeMap::new();
    let mut stats = StrategyStats::default();

    // Level-by-level BFS over fault-set sizes.
    let mut prev_level: BTreeMap<FaultSet, usize> = BTreeMap::new(); // -> plan idx.
    for k in 0..=cfg.f as usize {
        let sets = enumerate_fault_sets(n, k);
        let compute = |fs: &FaultSet| -> Result<(FaultSet, _), StrategyError> {
            let parent_placement = if k == 0 {
                None
            } else {
                // Parent: remove the largest faulty node.
                let mut ids: Vec<NodeId> = fs.iter().collect();
                let last = ids.pop().expect("nonempty");
                let parent_fs: FaultSet = ids.into_iter().collect();
                let _ = last;
                prev_level
                    .get(&parent_fs)
                    .map(|&i| plans[i].placement.clone())
            };
            let out = plan_mode(workload, topo, cfg, fs, parent_placement.as_ref())?;
            Ok((fs.clone(), out))
        };

        let results: Vec<(FaultSet, _)> = if cfg.threads > 1 && sets.len() > 8 {
            let chunks: Vec<&[FaultSet]> = sets.chunks(sets.len().div_ceil(cfg.threads)).collect();
            let mut collected: Vec<Result<Vec<(FaultSet, _)>, StrategyError>> = Vec::new();
            std::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .map(|chunk| {
                        scope.spawn(move || {
                            chunk
                                .iter()
                                .map(&compute)
                                .collect::<Result<Vec<_>, StrategyError>>()
                        })
                    })
                    .collect();
                for h in handles {
                    collected.push(h.join().expect("planner worker panicked"));
                }
            });
            let mut flat = Vec::new();
            for c in collected {
                flat.extend(c?);
            }
            flat
        } else {
            let mut flat = Vec::new();
            for fs in &sets {
                flat.push(compute(fs)?);
            }
            flat
        };

        let mut this_level: BTreeMap<FaultSet, usize> = BTreeMap::new();
        for (fs, (placement, synth, shed)) in results {
            let id = PlanId(plans.len() as u32);
            stats.max_shed = stats.max_shed.max(shed.len());
            if !shed.is_empty() {
                stats.degraded_plans += 1;
            }
            plans.push(Plan {
                id,
                fault_set: fs.clone(),
                placement,
                schedules: synth.schedules,
                shed,
                link_alloc: synth.link_alloc,
            });
            index.insert(fs.clone(), id);
            this_level.insert(fs, plans.len() - 1);
        }
        prev_level = this_level;
    }

    stats.plans = plans.len();

    // Transition metadata for every single-fault edge F -> F ∪ {x}.
    let mut transitions: BTreeMap<(PlanId, PlanId), Transition> = BTreeMap::new();
    let all_sets: Vec<FaultSet> = index.keys().cloned().collect();
    for from_fs in &all_sets {
        if from_fs.len() >= cfg.f as usize {
            continue;
        }
        let from_id = index[from_fs];
        for x in 0..n as u32 {
            let xid = NodeId(x);
            if from_fs.contains(xid) {
                continue;
            }
            let mut to_fs = from_fs.clone();
            to_fs.insert(xid);
            let Some(&to_id) = index.get(&to_fs) else {
                continue;
            };
            let from_plan = &plans[from_id.index()];
            let to_plan = &plans[to_id.index()];
            let routing_to = RoutingTable::avoiding(topo, to_fs.as_set());

            // Migrations: every work/check task whose host changed.
            let mut migrations = Vec::new();
            let mut sender_bytes: BTreeMap<NodeId, u64> = BTreeMap::new();
            for (&atask, &new_node) in &to_plan.placement {
                if matches!(atask, ATask::Verify { .. }) {
                    continue;
                }
                let old = from_plan.placement.get(&atask).copied();
                if old == Some(new_node) {
                    continue;
                }
                let state_bytes = match atask {
                    ATask::Work { task, .. } => workload.task(task).state_bytes,
                    _ => 0,
                };
                if let Some(o) = old {
                    *sender_bytes.entry(o).or_insert(0) += state_bytes as u64;
                }
                migrations.push(Migration {
                    atask,
                    from: old,
                    to: new_node,
                    state_bytes,
                });
            }

            // Bound: evidence distribution + state transfer + alignment.
            let dist_bound = Duration(
                2 * worst_comm(topo, &routing_to, EVIDENCE_WIRE_BYTES).as_micros()
                    + VALIDATION_SLACK.as_micros(),
            );
            let transfer_bound = sender_bytes
                .iter()
                .map(|(_, &bytes)| worst_comm(topo, &routing_to, bytes.min(u32::MAX as u64) as u32))
                .max()
                .unwrap_or(Duration::ZERO);
            let bound = dist_bound + transfer_bound + cfg.sched.period;

            let total = cfg.detect_margin + bound;
            if total > cfg.r_bound && !cfg.admit_best_effort {
                return Err(StrategyError::RBoundViolated {
                    from: from_fs.clone(),
                    to: to_fs.clone(),
                    bound: total,
                    r: cfg.r_bound,
                });
            }

            stats.worst_transition = stats.worst_transition.max(bound);
            let dist = placement_distance(&from_plan.placement, &to_plan.placement);
            stats.worst_distance = stats.worst_distance.max(dist);
            stats.total_distance += dist;
            transitions.insert(
                (from_id, to_id),
                Transition {
                    from: from_id,
                    to: to_id,
                    trigger: xid,
                    migrations,
                    bound,
                },
            );
        }
    }
    stats.transitions = transitions.len();

    Ok((
        Strategy {
            f: cfg.f,
            r_bound: cfg.r_bound,
            period: cfg.sched.period,
            plans,
            index,
            transitions,
        },
        stats,
    ))
}

/// Count of sink outputs per criticality level that survive in a plan.
pub fn surviving_sinks(plan: &Plan, workload: &Workload) -> BTreeMap<Criticality, usize> {
    let mut out: BTreeMap<Criticality, usize> = BTreeMap::new();
    for sink in workload.sinks() {
        if !plan.is_shed(sink.id) {
            *out.entry(sink.criticality).or_insert(0) += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use btr_model::Topology;

    fn ms(x: u64) -> Duration {
        Duration::from_millis(x)
    }

    fn setup() -> (Workload, Topology) {
        let w = btr_workload::generators::avionics(9);
        let topo = Topology::bus(9, 100_000, Duration(5));
        (w, topo)
    }

    #[test]
    fn enumerates_fault_sets_correctly() {
        assert_eq!(enumerate_fault_sets(4, 0).len(), 1);
        assert_eq!(enumerate_fault_sets(4, 1).len(), 4);
        assert_eq!(enumerate_fault_sets(4, 2).len(), 6);
        assert_eq!(enumerate_fault_sets(4, 5).len(), 0);
        // All distinct.
        let sets = enumerate_fault_sets(6, 3);
        let uniq: BTreeSet<_> = sets.iter().cloned().collect();
        assert_eq!(uniq.len(), sets.len());
        assert_eq!(sets.len(), 20);
    }

    #[test]
    fn f1_strategy_covers_all_single_faults() {
        let (w, topo) = setup();
        let cfg = PlannerConfig::new(1, ms(100));
        let (strategy, stats) = build_strategy(&w, &topo, &cfg).expect("plannable");
        assert_eq!(stats.plans, 1 + 9);
        assert_eq!(strategy.plan_count(), 10);
        // Every single-fault set indexed; every plan validates.
        for i in 0..9u32 {
            let fs = FaultSet::from_nodes(&[NodeId(i)]);
            let pid = strategy.plan_for(&fs).expect("indexed");
            let plan = strategy.plan(pid);
            plan.validate(&topo, strategy.period).expect("valid plan");
            assert!(!plan.placement.values().any(|&n| n == NodeId(i)));
        }
        // Transitions exist from the initial plan to each single fault.
        assert_eq!(stats.transitions, 9);
    }

    #[test]
    fn f2_strategy_size() {
        let (w, topo) = setup();
        let mut cfg = PlannerConfig::new(2, ms(200));
        cfg.admit_best_effort = true;
        let (strategy, stats) = build_strategy(&w, &topo, &cfg).expect("plannable");
        assert_eq!(stats.plans, 1 + 9 + 36);
        // Transitions: 9 from empty + 36 pairs * 2 orders = 81.
        assert_eq!(stats.transitions, 9 + 36 * 2);
        assert!(strategy.worst_transition_bound() > Duration::ZERO);
    }

    #[test]
    fn strict_admission_rejects_tiny_r() {
        let (w, topo) = setup();
        let cfg = PlannerConfig::new(1, Duration(10)); // R = 10 µs: impossible.
        let err = build_strategy(&w, &topo, &cfg).unwrap_err();
        assert!(matches!(err, StrategyError::RBoundViolated { .. }));
    }

    #[test]
    fn parallel_matches_sequential() {
        let (w, topo) = setup();
        let mut cfg = PlannerConfig::new(2, ms(200));
        cfg.admit_best_effort = true;
        let (s1, _) = build_strategy(&w, &topo, &cfg).unwrap();
        cfg.threads = 4;
        let (s2, _) = build_strategy(&w, &topo, &cfg).unwrap();
        assert_eq!(s1, s2, "parallel planning must be deterministic");
    }

    #[test]
    fn actuator_fault_sheds_its_sink() {
        let (w, topo) = setup();
        let cfg = PlannerConfig::new(1, ms(100));
        let (strategy, _) = build_strategy(&w, &topo, &cfg).unwrap();
        // The elevator sink is pinned to node 3 (avionics pinning).
        let elevator = w.tasks().iter().find(|t| t.name == "elevator").unwrap();
        let pinned = elevator.kind.pinned_node().unwrap();
        let fs = FaultSet::from_nodes(&[pinned]);
        let plan = strategy.plan(strategy.plan_for(&fs).unwrap());
        assert!(plan.is_shed(elevator.id), "lost actuator must be shed");
        // But the aileron still runs.
        let aileron = w.tasks().iter().find(|t| t.name == "aileron").unwrap();
        assert!(!plan.is_shed(aileron.id));
    }

    #[test]
    fn shedding_prefers_low_criticality() {
        // Overload a tiny platform so the planner must shed.
        let w = btr_workload::generators::avionics(4);
        let topo = Topology::bus(4, 30_000, Duration(5));
        let mut cfg = PlannerConfig::new(1, ms(100));
        cfg.admit_best_effort = true;
        let (strategy, stats) = build_strategy(&w, &topo, &cfg).expect("plannable with shedding");
        if stats.max_shed > 0 {
            // In any degraded plan, if a Safety task was shed for capacity
            // reasons, all Low tasks must be gone too (shed order).
            for plan in &strategy.plans {
                let shed_caps: BTreeSet<_> =
                    plan.shed.iter().map(|t| w.task(*t).criticality).collect();
                if shed_caps.contains(&Criticality::Safety) {
                    let low_alive = w.tasks_at(Criticality::Low).any(|t| {
                        !plan.is_shed(t.id)
                            && !matches!(t.kind, btr_workload::TaskKind::Sink { .. })
                    });
                    // Safety shed only after Low exhausted, except pinned
                    // actuator losses which shed regardless of level.
                    let actuator_losses: BTreeSet<_> = w
                        .sinks()
                        .filter(|s| {
                            s.kind
                                .pinned_node()
                                .is_some_and(|n| plan.fault_set.contains(n))
                        })
                        .map(|s| s.id)
                        .collect();
                    let capacity_safety_shed = plan.shed.iter().any(|t| {
                        w.task(*t).criticality == Criticality::Safety
                            && !actuator_losses.contains(t)
                    });
                    if capacity_safety_shed {
                        assert!(!low_alive, "Low tasks alive while Safety shed");
                    }
                }
            }
        }
    }

    #[test]
    fn surviving_sinks_counts() {
        let (w, topo) = setup();
        let cfg = PlannerConfig::new(1, ms(100));
        let (strategy, _) = build_strategy(&w, &topo, &cfg).unwrap();
        let s = surviving_sinks(strategy.initial_plan(), &w);
        let total: usize = s.values().sum();
        assert_eq!(total, w.sinks().count());
    }
}
