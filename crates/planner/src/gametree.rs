//! Adversarial strategy evaluation.
//!
//! Section 4.1: "computing a strategy is a bit like building a game tree
//! for a game like chess", citing empirical game-theoretic analysis
//! [68, 69]. The planner's strategy fixes the system's move for every
//! fault pattern, so evaluating it amounts to searching the adversary's
//! side of the tree: which sequence of up to `f` node compromises does
//! the most cumulative damage?

use btr_model::{Criticality, FaultSet, NodeId, Plan, Strategy};
use btr_workload::Workload;
use std::collections::BTreeMap;

/// Utility of a plan: criticality-weighted fraction of surviving sink
/// outputs. Weights double per level (Low=1 ... Safety=8), so keeping
/// flight control alive dominates keeping the cabin screens on.
pub fn plan_utility(plan: &Plan, workload: &Workload) -> f64 {
    let weight = |c: Criticality| -> f64 { (1u32 << c.rank()) as f64 };
    let mut total = 0.0;
    let mut alive = 0.0;
    for sink in workload.sinks() {
        let w = weight(sink.criticality);
        total += w;
        if !plan.is_shed(sink.id) {
            alive += w;
        }
    }
    if total == 0.0 {
        1.0
    } else {
        alive / total
    }
}

/// Quality report for a strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// For each fault-set size `k` (index), the minimum plan utility.
    pub min_utility_by_level: Vec<f64>,
    /// The adversary's best cumulative damage (sum over the sequence of
    /// `1 - utility` after each fault).
    pub worst_damage: f64,
    /// The fault sequence achieving it.
    pub worst_sequence: Vec<NodeId>,
}

/// Minimum plan utility at each fault level.
pub fn strategy_quality(strategy: &Strategy, workload: &Workload) -> QualityReport {
    let f = strategy.f as usize;
    let mut min_by_level = vec![f64::INFINITY; f + 1];
    for plan in &strategy.plans {
        let k = plan.fault_set.len();
        let u = plan_utility(plan, workload);
        if u < min_by_level[k] {
            min_by_level[k] = u;
        }
    }
    for v in &mut min_by_level {
        if !v.is_finite() {
            *v = 1.0;
        }
    }
    let (worst_damage, worst_sequence) = worst_case_sequence(strategy, workload);
    QualityReport {
        min_utility_by_level: min_by_level,
        worst_damage,
        worst_sequence,
    }
}

/// Exhaustive adversary search with memoisation: the damage-maximising
/// sequence of node compromises up to the strategy's fault budget.
///
/// Damage after each step is `1 - utility(plan(F))`; the adversary's
/// score is the sum over steps (earlier damage also counts, modelling
/// the paper's observation that an adversary "can trigger a new fault
/// every R seconds").
pub fn worst_case_sequence(strategy: &Strategy, workload: &Workload) -> (f64, Vec<NodeId>) {
    let n = strategy
        .plans
        .iter()
        .flat_map(|p| p.placement.values().map(|v| v.0 + 1))
        .max()
        .unwrap_or(1) as usize;
    let mut memo: BTreeMap<FaultSet, (f64, Vec<NodeId>)> = BTreeMap::new();
    fn damage_of(strategy: &Strategy, workload: &Workload, fs: &FaultSet) -> f64 {
        let pid = strategy.best_plan_for(fs);
        1.0 - plan_utility(strategy.plan(pid), workload)
    }
    fn recurse(
        strategy: &Strategy,
        workload: &Workload,
        fs: &FaultSet,
        n: usize,
        memo: &mut BTreeMap<FaultSet, (f64, Vec<NodeId>)>,
    ) -> (f64, Vec<NodeId>) {
        if fs.len() >= strategy.f as usize {
            return (0.0, vec![]);
        }
        if let Some(hit) = memo.get(fs) {
            return hit.clone();
        }
        let mut best = (0.0, vec![]);
        for x in 0..n as u32 {
            let xid = NodeId(x);
            if fs.contains(xid) {
                continue;
            }
            let mut next = fs.clone();
            next.insert(xid);
            let step = damage_of(strategy, workload, &next);
            let (rest, mut seq) = recurse(strategy, workload, &next, n, memo);
            let total = step + rest;
            if total > best.0 || (total == best.0 && best.1.is_empty() && !seq.is_empty()) {
                let mut s = vec![xid];
                s.append(&mut seq);
                best = (total, s);
            }
        }
        memo.insert(fs.clone(), best.clone());
        best
    }
    recurse(strategy, workload, &FaultSet::empty(), n, &mut memo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_strategy, PlannerConfig};
    use btr_model::{Duration, Topology};

    fn ms(x: u64) -> Duration {
        Duration::from_millis(x)
    }

    fn strategy_f1() -> (Strategy, Workload) {
        let w = btr_workload::generators::avionics(9);
        let topo = Topology::bus(9, 100_000, Duration(5));
        let cfg = PlannerConfig::new(1, ms(100));
        let (s, _) = build_strategy(&w, &topo, &cfg).unwrap();
        (s, w)
    }

    #[test]
    fn initial_plan_has_full_utility() {
        let (s, w) = strategy_f1();
        assert_eq!(plan_utility(s.initial_plan(), &w), 1.0);
    }

    #[test]
    fn utility_drops_when_sinks_shed() {
        let (s, w) = strategy_f1();
        // Failing an actuator node sheds its sink -> utility < 1.
        let elevator = w.tasks().iter().find(|t| t.name == "elevator").unwrap();
        let pinned = elevator.kind.pinned_node().unwrap();
        let fs = FaultSet::from_nodes(&[pinned]);
        let plan = s.plan(s.plan_for(&fs).unwrap());
        let u = plan_utility(plan, &w);
        assert!(u < 1.0, "utility {u}");
        assert!(u > 0.0);
    }

    #[test]
    fn quality_report_levels() {
        let (s, w) = strategy_f1();
        let q = strategy_quality(&s, &w);
        assert_eq!(q.min_utility_by_level.len(), 2);
        assert_eq!(q.min_utility_by_level[0], 1.0);
        assert!(q.min_utility_by_level[1] <= 1.0);
        assert_eq!(q.worst_sequence.len(), 1);
        assert!(q.worst_damage >= 0.0);
    }

    #[test]
    fn adversary_picks_most_damaging_node() {
        let (s, w) = strategy_f1();
        let (damage, seq) = worst_case_sequence(&s, &w);
        // The adversary's one move must achieve the max single-fault damage.
        let mut best = 0.0f64;
        for i in 0..9u32 {
            let fs = FaultSet::from_nodes(&[NodeId(i)]);
            let plan = s.plan(s.best_plan_for(&fs));
            let d = 1.0 - plan_utility(plan, &w);
            if d > best {
                best = d;
            }
        }
        assert!((damage - best).abs() < 1e-12);
        assert_eq!(seq.len(), 1);
    }
}
