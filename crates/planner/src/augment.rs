//! Graph augmentation: deciding replica lane counts.
//!
//! "BTR can be more efficient than, say, BFT because it provides weaker
//! guarantees; for instance, detection requires fewer replicas than
//! masking" (Section 1, citing the Fault Detection Problem \[36\]).
//! Detection needs f+1 replicas (any two disagreeing outputs reveal a
//! fault); masking needs 2f+1 (majority voting). The planner supports
//! both so the experiments can price the difference.

use btr_model::TaskId;
use btr_workload::{TaskKind, Workload};
use std::collections::BTreeMap;

/// How many copies of each task to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationMode {
    /// f+1 lanes: enough for *detecting* up to f faults (BTR's choice).
    Detection,
    /// 2f+1 lanes: enough for *masking* up to f faults by majority
    /// (the BFT-style cost point, used for comparisons).
    Masking,
    /// Exactly one lane (unprotected baseline).
    None,
}

impl ReplicationMode {
    /// Lanes for a fault budget `f`.
    pub fn lanes(self, f: u8) -> u8 {
        match self {
            ReplicationMode::Detection => f + 1,
            ReplicationMode::Masking => 2 * f + 1,
            ReplicationMode::None => 1,
        }
    }
}

/// Compute per-task lane counts for the unshed portion of a workload.
///
/// * Compute tasks get `mode.lanes(f)` copies.
/// * Sources get the same (redundant sensors on distinct sensing nodes),
///   capped by the number of sensing-capable nodes available.
/// * Sinks always get exactly one copy — there is one physical actuator.
///
/// Shed tasks are excluded entirely; a task whose inputs are all shed is
/// shed as well (cascading), since it would compute from nothing.
pub fn lane_counts(
    workload: &Workload,
    mode: ReplicationMode,
    f: u8,
    shed: &std::collections::BTreeSet<TaskId>,
    max_source_lanes: u8,
) -> BTreeMap<TaskId, u8> {
    let mut lanes = BTreeMap::new();
    for &tid in workload.topo_order() {
        if shed.contains(&tid) {
            continue;
        }
        let spec = workload.task(tid);
        // Cascade: non-source with every input shed cannot run.
        if !spec.inputs.is_empty() {
            let alive = spec.inputs.iter().any(|i| lanes.contains_key(i));
            if !alive {
                continue;
            }
        }
        let n = match spec.kind {
            TaskKind::Sink { .. } => 1,
            TaskKind::Source { .. } => mode.lanes(f).min(max_source_lanes.max(1)),
            TaskKind::Compute => mode.lanes(f),
        };
        lanes.insert(tid, n);
    }
    lanes
}

#[cfg(test)]
mod tests {
    use super::*;
    use btr_model::{Criticality, Duration, NodeId};
    use btr_workload::WorkloadBuilder;
    use std::collections::BTreeSet;

    fn ms(x: u64) -> Duration {
        Duration::from_millis(x)
    }

    fn chain() -> Workload {
        let mut b = WorkloadBuilder::new(ms(10), 0);
        let s = b.source("s", NodeId(0), Duration(100), Criticality::High, ms(10));
        let c = b.compute("c", &[s], Duration(100), Criticality::High, ms(10), 0);
        b.sink(
            "k",
            NodeId(1),
            &[c],
            Duration(50),
            Criticality::High,
            ms(10),
        );
        b.build().unwrap()
    }

    #[test]
    fn detection_vs_masking_lane_math() {
        assert_eq!(ReplicationMode::Detection.lanes(1), 2);
        assert_eq!(ReplicationMode::Detection.lanes(2), 3);
        assert_eq!(ReplicationMode::Masking.lanes(1), 3);
        assert_eq!(ReplicationMode::Masking.lanes(2), 5);
        assert_eq!(ReplicationMode::None.lanes(3), 1);
    }

    #[test]
    fn sinks_single_sources_capped() {
        let w = chain();
        let lanes = lane_counts(&w, ReplicationMode::Masking, 2, &BTreeSet::new(), 3);
        assert_eq!(lanes[&TaskId(0)], 3); // Capped at 3 sensing nodes.
        assert_eq!(lanes[&TaskId(1)], 5); // 2f+1.
        assert_eq!(lanes[&TaskId(2)], 1); // Sink.
    }

    #[test]
    fn shed_cascades_through_dependents() {
        let w = chain();
        let shed = BTreeSet::from([TaskId(0)]);
        let lanes = lane_counts(&w, ReplicationMode::Detection, 1, &shed, 8);
        // Source shed -> compute has no live inputs -> sink has none.
        assert!(lanes.is_empty());
    }

    #[test]
    fn partial_inputs_keep_task_alive() {
        let mut b = WorkloadBuilder::new(ms(10), 0);
        let s1 = b.source("s1", NodeId(0), Duration(100), Criticality::High, ms(10));
        let s2 = b.source("s2", NodeId(1), Duration(100), Criticality::Low, ms(10));
        let c = b.compute("c", &[s1, s2], Duration(100), Criticality::High, ms(10), 0);
        b.sink(
            "k",
            NodeId(2),
            &[c],
            Duration(50),
            Criticality::High,
            ms(10),
        );
        let w = b.build().unwrap();
        let shed = BTreeSet::from([s2]);
        let lanes = lane_counts(&w, ReplicationMode::Detection, 1, &shed, 8);
        assert!(lanes.contains_key(&c), "c still has s1");
        assert!(!lanes.contains_key(&s2));
    }
}
