//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! The implementation is a straightforward, well-tested translation of the
//! specification: 512-bit blocks, 64-round compression, Merkle–Damgård
//! padding with a 64-bit length field. It is not constant-time (the
//! simulation does not need side-channel resistance), but it is exact:
//! the test suite checks the official NIST vectors and a differential
//! property against incremental hashing.

use serde::{Deserialize, Serialize};

/// A 256-bit digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The all-zero digest, used as a chain genesis value.
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Render the digest as lowercase hex.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
            s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
        }
        s
    }

    /// Parse a 64-character hex string into a digest.
    ///
    /// Returns `None` if the string is not exactly 64 ASCII hex
    /// characters. Non-ASCII input is rejected up front: a multi-byte
    /// character can make the *byte* length 64 without the string being
    /// 64 hex digits, and the nibble loop should never see such bytes.
    pub fn from_hex(s: &str) -> Option<Digest> {
        if s.len() != 64 || !s.is_ascii() {
            return None;
        }
        let mut out = [0u8; 32];
        let bytes = s.as_bytes();
        for (i, chunk) in bytes.chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Digest(out))
    }

    /// A short 8-hex-character prefix, for human-readable logs.
    pub fn short(&self) -> String {
        self.to_hex()[..8].to_string()
    }

    /// Write the short 8-hex-character prefix straight into a formatter.
    ///
    /// Equivalent to `f.write_str(&self.short())` without the `String`:
    /// `Debug` on digests and signatures runs once per message in
    /// trace-enabled simulations, so it must not heap-allocate.
    pub fn fmt_short(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in &self.0[..4] {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }

    /// Constant-time equality.
    ///
    /// The derived `==` short-circuits at the first differing byte, which
    /// leaks how much of a forged tag prefix was correct — the classic
    /// byte-at-a-time MAC-forgery side channel. All tag comparisons (both
    /// authenticator suites, single and batched verification) go through
    /// this one accumulate-then-test loop instead.
    #[inline]
    pub fn ct_eq(&self, other: &Digest) -> bool {
        let mut acc = 0u8;
        for (a, b) in self.0.iter().zip(other.0.iter()) {
            acc |= a ^ b;
        }
        acc == 0
    }
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Digest(")?;
        self.fmt_short(f)?;
        f.write_str(")")
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Round constants: first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash values: first 32 bits of the fractional parts of the
/// square roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes buffered until a full 64-byte block is available.
    buf: [u8; 64],
    buf_len: usize,
    /// Total message length in bytes.
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Create a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb more message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        // Fill the partial block first.
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        // Whole blocks straight from the input.
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        // Stash the tail.
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finish and produce the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Manually place the length to avoid updating total_len again.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of a byte slice.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// NIST / well-known vectors.
    #[test]
    fn nist_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (
                b"",
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
            ),
            (
                b"abc",
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
            ),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
            (
                b"The quick brown fox jumps over the lazy dog",
                "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592",
            ),
        ];
        for (msg, hex) in cases {
            assert_eq!(sha256(msg).to_hex(), *hex, "msg = {msg:?}");
        }
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn exact_block_boundaries() {
        // 55, 56, 63, 64, 65 bytes hit all padding branch cases.
        for n in [0usize, 1, 55, 56, 57, 63, 64, 65, 127, 128, 129] {
            let data = vec![0xabu8; n];
            let one_shot = sha256(&data);
            let mut inc = Sha256::new();
            for b in &data {
                inc.update(std::slice::from_ref(b));
            }
            assert_eq!(one_shot, inc.finalize(), "length {n}");
        }
    }

    #[test]
    fn hex_round_trip() {
        let d = sha256(b"round trip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::from_hex("zz"), None);
        assert_eq!(Digest::from_hex(&"g".repeat(64)), None);
    }

    #[test]
    fn hex_round_trips_arbitrary_digests() {
        for i in 0..32u8 {
            let mut raw = [0u8; 32];
            raw[i as usize] = 0x80 | i;
            raw[31 - i as usize] ^= i.wrapping_mul(37);
            let d = Digest(raw);
            let hex = d.to_hex();
            assert_eq!(hex.len(), 64);
            assert_eq!(Digest::from_hex(&hex), Some(d));
            assert_eq!(d.short(), hex[..8].to_string());
        }
        assert_eq!(Digest::ZERO.to_hex(), "0".repeat(64));
        assert_eq!(Digest::from_hex(&"0".repeat(64)), Some(Digest::ZERO));
    }

    #[test]
    fn from_hex_rejects_non_ascii() {
        // 32 two-byte UTF-8 characters: byte length 64, but not 64 hex
        // digits. Must be rejected before the nibble loop.
        let tricky = "é".repeat(32);
        assert_eq!(tricky.len(), 64);
        assert_eq!(Digest::from_hex(&tricky), None);
        // Mixed: 62 valid hex digits plus one two-byte char.
        let mixed = format!("{}é", "a".repeat(62));
        assert_eq!(mixed.len(), 64);
        assert_eq!(Digest::from_hex(&mixed), None);
        // Wrong lengths.
        assert_eq!(Digest::from_hex(&"a".repeat(63)), None);
        assert_eq!(Digest::from_hex(&"a".repeat(65)), None);
    }

    #[test]
    fn display_and_debug() {
        let d = sha256(b"x");
        assert_eq!(format!("{d}").len(), 64);
        assert!(format!("{d:?}").starts_with("Digest("));
        // The allocation-free short form matches the allocating one.
        assert_eq!(format!("{d:?}"), format!("Digest({})", d.short()));
    }

    #[test]
    fn ct_eq_matches_derived_eq() {
        let a = sha256(b"a");
        let b = sha256(b"b");
        assert!(a.ct_eq(&a));
        assert!(!a.ct_eq(&b));
        // Differences only in the last byte must still be caught.
        let mut c = a;
        c.0[31] ^= 1;
        assert!(!a.ct_eq(&c));
        assert_eq!(a.ct_eq(&b), a == b);
    }

    proptest! {
        /// Incremental hashing with arbitrary split points matches one-shot.
        #[test]
        fn prop_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512),
                                           split in 0usize..512) {
            let split = split.min(data.len());
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            prop_assert_eq!(h.finalize(), sha256(&data));
        }

        /// Distinct short messages essentially never collide.
        #[test]
        fn prop_no_trivial_collisions(a in proptest::collection::vec(any::<u8>(), 0..64),
                                      b in proptest::collection::vec(any::<u8>(), 0..64)) {
            prop_assume!(a != b);
            prop_assert_ne!(sha256(&a), sha256(&b));
        }
    }
}
