//! Tamper-evident hash chains, in the style of PeerReview logs.
//!
//! The paper builds on the authors' accountability line of work
//! (PeerReview \[37\], TDR \[21\]): each node keeps an append-only log of the
//! messages it sends and receives, bound together by a hash chain, so that
//! a log excerpt plus the latest authenticator commits the node to its
//! entire history. The BTR detector uses chains to make timing and
//! omission *declarations* attributable: a node that issues inconsistent
//! declarations signs conflicting chain heads, which is itself evidence.

use crate::sha256::{Digest, Sha256};
use serde::{Deserialize, Serialize};

/// One entry in a hash chain: the running head after appending a payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainEntry {
    /// Sequence number of this entry (0-based).
    pub seq: u64,
    /// Chain head after this entry.
    pub head: Digest,
}

/// An append-only hash chain.
///
/// `head_{k} = H(head_{k-1} || seq_k || payload_k)`, with `head_{-1} = H(genesis)`.
#[derive(Debug, Clone)]
pub struct HashChain {
    head: Digest,
    next_seq: u64,
}

impl HashChain {
    /// Start a chain from a genesis label (e.g. the node id).
    pub fn new(genesis: &[u8]) -> Self {
        let mut h = Sha256::new();
        h.update(b"btr-chain-genesis");
        h.update(genesis);
        HashChain {
            head: h.finalize(),
            next_seq: 0,
        }
    }

    /// Append a payload; returns the new entry.
    pub fn append(&mut self, payload: &[u8]) -> ChainEntry {
        let mut h = Sha256::new();
        h.update(&self.head.0);
        h.update(&self.next_seq.to_be_bytes());
        h.update(payload);
        self.head = h.finalize();
        let entry = ChainEntry {
            seq: self.next_seq,
            head: self.head,
        };
        self.next_seq += 1;
        entry
    }

    /// Current chain head.
    pub fn head(&self) -> Digest {
        self.head
    }

    /// Number of entries appended so far.
    pub fn len(&self) -> u64 {
        self.next_seq
    }

    /// True if nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.next_seq == 0
    }

    /// Recompute the head a verifier would reach replaying `payloads` from
    /// the same genesis. Used to check log excerpts.
    pub fn replay(genesis: &[u8], payloads: &[&[u8]]) -> Digest {
        let mut c = HashChain::new(genesis);
        for p in payloads {
            c.append(p);
        }
        c.head()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic_replay() {
        let mut c = HashChain::new(b"node-3");
        c.append(b"send m1");
        c.append(b"recv m2");
        let head = c.head();
        assert_eq!(
            HashChain::replay(b"node-3", &[b"send m1", b"recv m2"]),
            head
        );
    }

    #[test]
    fn order_matters() {
        let a = HashChain::replay(b"n", &[b"x", b"y"]);
        let b = HashChain::replay(b"n", &[b"y", b"x"]);
        assert_ne!(a, b);
    }

    #[test]
    fn genesis_matters() {
        let a = HashChain::replay(b"n1", &[b"x"]);
        let b = HashChain::replay(b"n2", &[b"x"]);
        assert_ne!(a, b);
    }

    #[test]
    fn sequence_numbers_advance() {
        let mut c = HashChain::new(b"g");
        assert!(c.is_empty());
        let e0 = c.append(b"a");
        let e1 = c.append(b"b");
        assert_eq!((e0.seq, e1.seq), (0, 1));
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    proptest! {
        /// Any single-bit change in any payload changes the final head.
        #[test]
        fn prop_tamper_evident(payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 1..16), 1..8),
                which in 0usize..8, bit in 0usize..8) {
            let which = which % payloads.len();
            let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
            let original = HashChain::replay(b"g", &refs);

            let mut tampered = payloads.clone();
            let byte = bit % tampered[which].len();
            tampered[which][byte] ^= 1 << (bit % 8);
            let refs2: Vec<&[u8]> = tampered.iter().map(|p| p.as_slice()).collect();
            prop_assert_ne!(HashChain::replay(b"g", &refs2), original);
        }
    }
}
