//! SipHash-2-4 with 128-bit output, implemented from scratch.
//!
//! SipHash (Aumasson & Bernstein, "SipHash: a fast short-input PRF") is a
//! keyed pseudo-random function designed for exactly the role the
//! simulator's authenticators play: short messages, a secret 128-bit key,
//! and an adversary who never sees the key. It is *not* a collision-
//! resistant hash and carries no public-verifiability story — which is
//! fine here, because the keystore substitution already reduces
//! verification to a shared-key MAC check (see DESIGN.md
//! "Substitutions"). Against the simulated adversary a 128-bit SipHash
//! tag gives the same can't-forge-other-nodes property as HMAC-SHA-256
//! at a small fraction of the per-message cost: two rounds per 8-byte
//! word plus four finalization rounds, versus at least two full SHA-256
//! compressions.
//!
//! The streaming interface mirrors [`crate::hmac::HmacState`] so the
//! signing layer can absorb multi-part canonical encodings without
//! concatenating them first.

const C_ROUNDS: usize = 2;
const D_ROUNDS: usize = 4;

#[inline(always)]
fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

#[inline(always)]
fn rounds(v: &mut [u64; 4], n: usize) {
    for _ in 0..n {
        sipround(v);
    }
}

/// A secret 128-bit SipHash key.
///
/// Holds the four initialization words precomputed for the 128-bit
/// output variant, so starting a MAC is four register copies — the
/// key-schedule analogue of the HMAC midstate cache.
#[derive(Clone, Copy)]
pub struct SipKey {
    /// Initial state (key XOR constants, 128-bit variant's `v1 ^= 0xee`
    /// already applied).
    v0: [u64; 4],
}

impl std::fmt::Debug for SipKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.write_str("SipKey(..)")
    }
}

impl SipKey {
    /// Derive a SipHash key from 16 key bytes.
    pub fn new(key: &[u8; 16]) -> SipKey {
        let k0 = u64::from_le_bytes(key[0..8].try_into().expect("8 bytes"));
        let k1 = u64::from_le_bytes(key[8..16].try_into().expect("8 bytes"));
        let mut v = [
            k0 ^ 0x736f_6d65_7073_6575,
            k1 ^ 0x646f_7261_6e64_6f6d,
            k0 ^ 0x6c79_6765_6e65_7261,
            k1 ^ 0x7465_6462_7974_6573,
        ];
        // 128-bit output variant.
        v[1] ^= 0xee;
        SipKey { v0: v }
    }

    /// Begin a streaming MAC over message parts fed via
    /// [`SipState::update`].
    #[inline]
    pub fn begin(&self) -> SipState {
        SipState {
            v: self.v0,
            buf: [0u8; 8],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Compute the 128-bit tag over a list of message parts (equivalent
    /// to the tag over their concatenation).
    pub fn mac_parts(&self, parts: &[&[u8]]) -> [u8; 16] {
        let mut st = self.begin();
        for p in parts {
            st.update(p);
        }
        st.finalize()
    }

    /// Compute the 128-bit tag over a single message slice.
    pub fn mac(&self, msg: &[u8]) -> [u8; 16] {
        self.mac_parts(&[msg])
    }
}

/// An in-progress streaming SipHash-2-4-128 computation.
#[derive(Clone)]
pub struct SipState {
    v: [u64; 4],
    /// Bytes buffered until a full 8-byte word is available.
    buf: [u8; 8],
    buf_len: usize,
    /// Total message length in bytes (the low byte is folded into the
    /// final word, per the spec).
    total_len: u64,
}

impl std::fmt::Debug for SipState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SipState(..)")
    }
}

impl SipState {
    #[inline(always)]
    fn compress_word(&mut self, m: u64) {
        self.v[3] ^= m;
        rounds(&mut self.v, C_ROUNDS);
        self.v[0] ^= m;
    }

    /// Absorb more message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        // Fill the partial word first.
        if self.buf_len > 0 {
            let need = 8 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 8 {
                let m = u64::from_le_bytes(self.buf);
                self.compress_word(m);
                self.buf_len = 0;
            }
        }
        // Whole words straight from the input.
        while data.len() >= 8 {
            let (word, rest) = data.split_at(8);
            let m = u64::from_le_bytes(word.try_into().expect("8 bytes"));
            self.compress_word(m);
            data = rest;
        }
        // Stash the tail.
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finish and produce the 128-bit tag.
    pub fn finalize(mut self) -> [u8; 16] {
        // Final word: message length (mod 256) in the top byte, the
        // remaining 0..=7 tail bytes little-endian below it.
        let mut last = [0u8; 8];
        last[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        last[7] = self.total_len as u8;
        // A 7-byte tail would collide with the length byte; the spec's
        // layout guarantees it cannot: buf_len < 8 and byte 7 is always
        // the length.
        debug_assert!(self.buf_len < 8);
        let m = u64::from_le_bytes(last);
        self.compress_word(m);

        self.v[2] ^= 0xee;
        rounds(&mut self.v, D_ROUNDS);
        let lo = self.v[0] ^ self.v[1] ^ self.v[2] ^ self.v[3];
        self.v[1] ^= 0xdd;
        rounds(&mut self.v, D_ROUNDS);
        let hi = self.v[0] ^ self.v[1] ^ self.v[2] ^ self.v[3];

        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&lo.to_le_bytes());
        out[8..].copy_from_slice(&hi.to_le_bytes());
        out
    }
}

/// One-shot SipHash-2-4 with the classic 64-bit output.
///
/// Kept alongside the 128-bit variant because the two share every moving
/// part except initialization and finalization constants: the reference
/// 64-bit test vectors therefore cross-check the word-absorption path
/// that the 128-bit vectors alone would leave uncovered.
pub fn siphash24_64(key: &[u8; 16], msg: &[u8]) -> u64 {
    let k0 = u64::from_le_bytes(key[0..8].try_into().expect("8 bytes"));
    let k1 = u64::from_le_bytes(key[8..16].try_into().expect("8 bytes"));
    let mut v = [
        k0 ^ 0x736f_6d65_7073_6575,
        k1 ^ 0x646f_7261_6e64_6f6d,
        k0 ^ 0x6c79_6765_6e65_7261,
        k1 ^ 0x7465_6462_7974_6573,
    ];
    let mut chunks = msg.chunks_exact(8);
    for word in &mut chunks {
        let m = u64::from_le_bytes(word.try_into().expect("8 bytes"));
        v[3] ^= m;
        rounds(&mut v, C_ROUNDS);
        v[0] ^= m;
    }
    let tail = chunks.remainder();
    let mut last = [0u8; 8];
    last[..tail.len()].copy_from_slice(tail);
    last[7] = msg.len() as u8;
    let m = u64::from_le_bytes(last);
    v[3] ^= m;
    rounds(&mut v, C_ROUNDS);
    v[0] ^= m;

    v[2] ^= 0xff;
    rounds(&mut v, D_ROUNDS);
    v[0] ^ v[1] ^ v[2] ^ v[3]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The reference key 000102…0f and messages 00, 0001, 000102, …
    fn ref_key() -> [u8; 16] {
        let mut k = [0u8; 16];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        k
    }

    fn ref_msg(len: usize) -> Vec<u8> {
        (0..len as u8).collect()
    }

    fn hex(tag: &[u8]) -> String {
        tag.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Official `vectors_sip128` entries from the SipHash reference
    /// implementation (key 000102…0f, message 00 01 02 …).
    #[test]
    fn reference_vectors_128() {
        let key = SipKey::new(&ref_key());
        let cases: &[(usize, &str)] = &[
            (0, "a3817f04ba25a8e66df67214c7550293"),
            (1, "da87c1d86b99af44347659119b22fc45"),
            (2, "8177228da4a45dc7fca38bdef60affe4"),
        ];
        for (len, expect) in cases {
            let tag = key.mac(&ref_msg(*len));
            assert_eq!(hex(&tag), *expect, "length {len}");
        }
    }

    /// Official `vectors_sip64` entries: these exercise the whole-word
    /// absorption path (len 8, 9) the short 128-bit vectors above skip.
    #[test]
    fn reference_vectors_64() {
        let cases: &[(usize, u64)] = &[
            (0, 0x726f_db47_dd0e_0e31),
            (1, 0x74f8_39c5_93dc_67fd),
            (8, 0x93f5_f579_9a93_2462),
        ];
        for (len, expect) in cases {
            let got = siphash24_64(&ref_key(), &ref_msg(*len));
            assert_eq!(got, *expect, "length {len}");
        }
    }

    #[test]
    fn mac_parts_equals_concat() {
        let k = SipKey::new(&ref_key());
        assert_eq!(
            k.mac_parts(&[b"ab", b"cdefghij", b""]),
            k.mac(b"abcdefghij")
        );
    }

    #[test]
    fn debug_hides_key() {
        let k = SipKey::new(&ref_key());
        assert_eq!(format!("{k:?}"), "SipKey(..)");
        assert_eq!(format!("{:?}", k.begin()), "SipState(..)");
    }

    proptest! {
        /// Streaming with arbitrary split points matches one-shot.
        #[test]
        fn prop_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..128),
                                           split in 0usize..128) {
            let split = split.min(data.len());
            let k = SipKey::new(&ref_key());
            let mut st = k.begin();
            st.update(&data[..split]);
            st.update(&data[split..]);
            prop_assert_eq!(st.finalize(), k.mac(&data));
        }

        /// Different keys give different tags for the same message.
        #[test]
        fn prop_key_separation(k1 in proptest::collection::vec(any::<u8>(), 16..=16),
                               k2 in proptest::collection::vec(any::<u8>(), 16..=16),
                               msg in proptest::collection::vec(any::<u8>(), 0..64)) {
            prop_assume!(k1 != k2);
            let k1: [u8; 16] = k1.try_into().expect("16 bytes");
            let k2: [u8; 16] = k2.try_into().expect("16 bytes");
            prop_assert_ne!(SipKey::new(&k1).mac(&msg), SipKey::new(&k2).mac(&msg));
        }

        /// Distinct short messages essentially never collide.
        #[test]
        fn prop_no_trivial_collisions(a in proptest::collection::vec(any::<u8>(), 0..32),
                                      b in proptest::collection::vec(any::<u8>(), 0..32)) {
            prop_assume!(a != b);
            let k = SipKey::new(&ref_key());
            prop_assert_ne!(k.mac(&a), k.mac(&b));
        }
    }
}
