//! Per-node authenticators ("signatures") and the verification keystore.
//!
//! The paper's evidence mechanism needs messages whose origin any correct
//! node can verify, so a compromised node cannot forge statements by other
//! nodes (Section 4.2: compromised nodes "can try to confuse the detector
//! ... by making false statements about the actions of other nodes").
//!
//! We substitute HMAC authenticators for asymmetric signatures: every node
//! `i` holds a secret key `k_i`, and every node holds a [`KeyStore`] with
//! the *verification* material for all nodes. Inside the simulation this
//! gives exactly the unforgeability property the protocol needs, because
//! the simulator never leaks `k_i` to any behaviour other than node `i`'s.
//! See DESIGN.md ("Substitutions") for the full argument.

use crate::hmac::HmacKey;
use crate::sha256::Digest;
use serde::{Deserialize, Serialize};

/// Identifier of a signing principal (one per node).
///
/// This deliberately mirrors `btr_model::NodeId` but is kept separate so the
/// crypto crate stays at the bottom of the dependency graph.
pub type KeyId = u32;

/// A message authenticator produced by [`Signer::sign`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signature {
    /// Which key produced this signature.
    pub key: KeyId,
    /// The HMAC tag.
    pub tag: Digest,
}

impl std::fmt::Debug for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sig(k{},{})", self.key, self.tag.short())
    }
}

/// Errors from signature verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SigError {
    /// The signer id is not present in the keystore.
    UnknownKey(KeyId),
    /// The tag does not verify for the claimed signer and message.
    BadTag(KeyId),
}

impl std::fmt::Display for SigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SigError::UnknownKey(k) => write!(f, "unknown key id {k}"),
            SigError::BadTag(k) => write!(f, "bad signature tag for key {k}"),
        }
    }
}

impl std::error::Error for SigError {}

/// A node's secret key material.
#[derive(Clone)]
pub struct NodeKey {
    id: KeyId,
    key: HmacKey,
}

impl NodeKey {
    /// Deterministically derive a node key from a system-wide seed.
    ///
    /// Deterministic derivation keeps simulations reproducible; the seed
    /// plays the role of the out-of-band key-provisioning step that a real
    /// CPS deployment performs before the system goes live.
    pub fn derive(system_seed: u64, id: KeyId) -> Self {
        let material = crate::sha256_concat(&[
            b"btr-node-key",
            &system_seed.to_be_bytes(),
            &id.to_be_bytes(),
        ]);
        NodeKey {
            id,
            key: HmacKey::new(&material.0),
        }
    }

    /// The key's principal id.
    pub fn id(&self) -> KeyId {
        self.id
    }
}

/// Signing handle held by a single node.
#[derive(Clone)]
pub struct Signer {
    key: NodeKey,
}

impl Signer {
    /// Create a signer from a node key.
    pub fn new(key: NodeKey) -> Self {
        Signer { key }
    }

    /// Sign a message (as a list of parts, MAC'd in order).
    pub fn sign_parts(&self, parts: &[&[u8]]) -> Signature {
        Signature {
            key: self.key.id,
            tag: self.key.key.mac_parts(parts),
        }
    }

    /// Sign a single message slice.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        self.sign_parts(&[msg])
    }

    /// The signer's principal id.
    pub fn id(&self) -> KeyId {
        self.key.id
    }
}

/// Verification keystore installed on every node.
///
/// Holds verification material for all `n` principals. With the HMAC
/// substitution the verification material *is* the key, but the API only
/// exposes `verify`, mirroring what an asymmetric scheme would offer.
#[derive(Clone)]
pub struct KeyStore {
    keys: Vec<HmacKey>,
}

impl KeyStore {
    /// Build a keystore for principals `0..n`, all derived from `seed`.
    pub fn derive(system_seed: u64, n: usize) -> Self {
        let keys = (0..n as KeyId)
            .map(|id| {
                let material = crate::sha256_concat(&[
                    b"btr-node-key",
                    &system_seed.to_be_bytes(),
                    &id.to_be_bytes(),
                ]);
                HmacKey::new(&material.0)
            })
            .collect();
        KeyStore { keys }
    }

    /// Number of principals known to this store.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if the store knows no principals.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Verify `sig` over `parts`.
    pub fn verify_parts(&self, sig: &Signature, parts: &[&[u8]]) -> Result<(), SigError> {
        let key = self
            .keys
            .get(sig.key as usize)
            .ok_or(SigError::UnknownKey(sig.key))?;
        if key.mac_parts(parts) == sig.tag {
            Ok(())
        } else {
            Err(SigError::BadTag(sig.key))
        }
    }

    /// Verify `sig` over a single message slice.
    pub fn verify(&self, sig: &Signature, msg: &[u8]) -> Result<(), SigError> {
        self.verify_parts(sig, &[msg])
    }
}

impl std::fmt::Debug for KeyStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "KeyStore({} keys)", self.keys.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(n: usize) -> (Vec<Signer>, KeyStore) {
        let signers = (0..n as KeyId)
            .map(|i| Signer::new(NodeKey::derive(42, i)))
            .collect();
        (signers, KeyStore::derive(42, n))
    }

    #[test]
    fn sign_verify_round_trip() {
        let (signers, store) = setup(4);
        for s in &signers {
            let sig = s.sign(b"measurement 17");
            assert_eq!(store.verify(&sig, b"measurement 17"), Ok(()));
        }
    }

    #[test]
    fn tampered_message_rejected() {
        let (signers, store) = setup(2);
        let sig = signers[0].sign(b"open valve");
        assert_eq!(store.verify(&sig, b"close valve"), Err(SigError::BadTag(0)));
    }

    #[test]
    fn wrong_claimed_signer_rejected() {
        let (signers, store) = setup(3);
        let mut sig = signers[1].sign(b"hello");
        // A Byzantine node relabels the signature as coming from node 2.
        sig.key = 2;
        assert_eq!(store.verify(&sig, b"hello"), Err(SigError::BadTag(2)));
    }

    #[test]
    fn unknown_key_rejected() {
        let (signers, store) = setup(2);
        let mut sig = signers[0].sign(b"hello");
        sig.key = 99;
        assert_eq!(store.verify(&sig, b"hello"), Err(SigError::UnknownKey(99)));
    }

    #[test]
    fn different_seeds_do_not_cross_verify() {
        let signer = Signer::new(NodeKey::derive(1, 0));
        let store = KeyStore::derive(2, 1);
        let sig = signer.sign(b"msg");
        assert!(store.verify(&sig, b"msg").is_err());
    }

    #[test]
    fn parts_equivalent_to_concat() {
        let (signers, store) = setup(1);
        let sig = signers[0].sign_parts(&[b"ab", b"cd"]);
        assert_eq!(store.verify(&sig, b"abcd"), Ok(()));
    }

    #[test]
    fn keystore_len() {
        let store = KeyStore::derive(7, 5);
        assert_eq!(store.len(), 5);
        assert!(!store.is_empty());
        assert!(KeyStore::derive(7, 0).is_empty());
    }
}
