//! Per-node authenticators ("signatures") and the verification keystore.
//!
//! The paper's evidence mechanism needs messages whose origin any correct
//! node can verify, so a compromised node cannot forge statements by other
//! nodes (Section 4.2: compromised nodes "can try to confuse the detector
//! ... by making false statements about the actions of other nodes").
//!
//! We substitute keyed MACs for asymmetric signatures: every node `i`
//! holds a secret key `k_i`, and every node holds a [`KeyStore`] with the
//! *verification* material for all nodes. Inside the simulation this
//! gives exactly the unforgeability property the protocol needs, because
//! the simulator never leaks `k_i` to any behaviour other than node `i`'s.
//! See DESIGN.md ("Substitutions") for the full argument.
//!
//! Two [`AuthSuite`]s implement the MAC behind the same `Signer`/
//! `KeyStore` API:
//!
//! * [`AuthSuite::HmacSha256`] — the default: HMAC-SHA-256 with cached
//!   midstates. This is the suite whose behaviour every pre-existing
//!   golden pins; it plays the same A/B-oracle role for the signed path
//!   that `SimConfig::legacy_hot_path` plays for the event queue.
//! * [`AuthSuite::SipHash24`] — SipHash-2-4 with a 128-bit tag: the same
//!   can't-forge-other-nodes property against the simulated adversary at
//!   a small fraction of the cost, for statistical experiments that do
//!   not need the cryptographic-strength argument (see DESIGN.md).
//!
//! Tags of both suites travel in the fixed 32-byte [`Signature::tag`]
//! field (SipHash tags are zero-padded), so the two suites are
//! wire-compatible: message sizes, and therefore link timings, are
//! bit-identical across suites and only the CPU cost differs. Tag
//! equality goes through [`Digest::ct_eq`] — one constant-time comparison
//! shared by both suites and by single and batched verification.

use crate::hmac::HmacKey;
use crate::sha256::Digest;
use crate::siphash::SipKey;
use serde::{Deserialize, Serialize};

/// Identifier of a signing principal (one per node).
///
/// This deliberately mirrors `btr_model::NodeId` but is kept separate so the
/// crypto crate stays at the bottom of the dependency graph.
pub type KeyId = u32;

/// Which MAC construction backs the `Signer`/`KeyStore` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AuthSuite {
    /// HMAC-SHA-256 (RFC 2104) with cached midstates. The default and
    /// the pinned baseline.
    #[default]
    HmacSha256,
    /// SipHash-2-4 with a 128-bit tag and per-node 128-bit keys.
    SipHash24,
}

impl AuthSuite {
    /// Every suite, in a stable order (sweeps iterate this).
    pub const ALL: [AuthSuite; 2] = [AuthSuite::HmacSha256, AuthSuite::SipHash24];

    /// Canonical long name (used in benchmark reports).
    pub fn name(self) -> &'static str {
        match self {
            AuthSuite::HmacSha256 => "hmac-sha256",
            AuthSuite::SipHash24 => "siphash24",
        }
    }

    /// Short spelling for replay tokens and CLI flags.
    pub fn token(self) -> &'static str {
        match self {
            AuthSuite::HmacSha256 => "hmac",
            AuthSuite::SipHash24 => "sip",
        }
    }

    /// Parse either spelling.
    pub fn parse(s: &str) -> Option<AuthSuite> {
        match s {
            "hmac" | "hmac-sha256" => Some(AuthSuite::HmacSha256),
            "sip" | "siphash24" => Some(AuthSuite::SipHash24),
            _ => None,
        }
    }
}

impl std::fmt::Display for AuthSuite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A message authenticator produced by [`Signer::sign`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signature {
    /// Which key produced this signature.
    pub key: KeyId,
    /// The MAC tag. HMAC fills all 32 bytes; SipHash fills the first 16
    /// and zero-pads (the padding is covered by verification, so a
    /// non-canonical tag never verifies).
    pub tag: Digest,
}

impl std::fmt::Debug for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Allocation-free: trace-enabled runs format one of these per
        // message, which must not cost a heap round trip (Digest::short
        // builds two Strings).
        write!(f, "Sig(k{},", self.key)?;
        self.tag.fmt_short(f)?;
        f.write_str(")")
    }
}

/// Errors from signature verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SigError {
    /// The signer id is not present in the keystore.
    UnknownKey(KeyId),
    /// The tag does not verify for the claimed signer and message.
    BadTag(KeyId),
}

impl std::fmt::Display for SigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SigError::UnknownKey(k) => write!(f, "unknown key id {k}"),
            SigError::BadTag(k) => write!(f, "bad signature tag for key {k}"),
        }
    }
}

impl std::error::Error for SigError {}

/// Suite-specific key material (secret and verification material are the
/// same bytes under the MAC substitution; only `verify` is exposed on the
/// store side).
#[derive(Clone)]
enum Material {
    Hmac(HmacKey),
    Sip(SipKey),
}

impl Material {
    fn derive(system_seed: u64, id: KeyId, suite: AuthSuite) -> Material {
        match suite {
            AuthSuite::HmacSha256 => {
                // Unchanged from the original derivation so every pinned
                // HMAC tag stays bit-identical.
                let material = crate::sha256_concat(&[
                    b"btr-node-key",
                    &system_seed.to_be_bytes(),
                    &id.to_be_bytes(),
                ]);
                Material::Hmac(HmacKey::new(&material.0))
            }
            AuthSuite::SipHash24 => {
                // Distinct domain tag: the two suites never share key
                // bytes even for the same (seed, id).
                let material = crate::sha256_concat(&[
                    b"btr-node-key-sip",
                    &system_seed.to_be_bytes(),
                    &id.to_be_bytes(),
                ]);
                let mut key = [0u8; 16];
                key.copy_from_slice(&material.0[..16]);
                Material::Sip(SipKey::new(&key))
            }
        }
    }

    fn suite(&self) -> AuthSuite {
        match self {
            Material::Hmac(_) => AuthSuite::HmacSha256,
            Material::Sip(_) => AuthSuite::SipHash24,
        }
    }

    /// Compute the 32-byte tag field for a message given as parts.
    fn tag_parts(&self, parts: &[&[u8]]) -> Digest {
        match self {
            Material::Hmac(k) => k.mac_parts(parts),
            Material::Sip(k) => {
                let tag = k.mac_parts(parts);
                let mut out = [0u8; 32];
                out[..16].copy_from_slice(&tag);
                Digest(out)
            }
        }
    }

    /// Compute the tag over one contiguous slice (the batched path).
    fn tag_slice(&self, msg: &[u8]) -> Digest {
        self.tag_parts(&[msg])
    }
}

/// A node's secret key material.
#[derive(Clone)]
pub struct NodeKey {
    id: KeyId,
    material: Material,
}

impl NodeKey {
    /// Deterministically derive a node key from a system-wide seed, for
    /// the default (HMAC-SHA-256) suite.
    ///
    /// Deterministic derivation keeps simulations reproducible; the seed
    /// plays the role of the out-of-band key-provisioning step that a real
    /// CPS deployment performs before the system goes live.
    pub fn derive(system_seed: u64, id: KeyId) -> Self {
        Self::derive_suite(system_seed, id, AuthSuite::default())
    }

    /// Derive a node key for a specific authenticator suite.
    pub fn derive_suite(system_seed: u64, id: KeyId, suite: AuthSuite) -> Self {
        NodeKey {
            id,
            material: Material::derive(system_seed, id, suite),
        }
    }

    /// The key's principal id.
    pub fn id(&self) -> KeyId {
        self.id
    }

    /// The suite this key belongs to.
    pub fn suite(&self) -> AuthSuite {
        self.material.suite()
    }
}

/// Signing handle held by a single node.
#[derive(Clone)]
pub struct Signer {
    key: NodeKey,
}

impl Signer {
    /// Create a signer from a node key.
    pub fn new(key: NodeKey) -> Self {
        Signer { key }
    }

    /// Sign a message (as a list of parts, MAC'd in order).
    pub fn sign_parts(&self, parts: &[&[u8]]) -> Signature {
        Signature {
            key: self.key.id,
            tag: self.key.material.tag_parts(parts),
        }
    }

    /// Sign a single message slice.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        self.sign_parts(&[msg])
    }

    /// The signer's principal id.
    pub fn id(&self) -> KeyId {
        self.key.id
    }

    /// The signer's authenticator suite.
    pub fn suite(&self) -> AuthSuite {
        self.key.suite()
    }
}

/// One staged entry of a [`SigBatch`].
#[derive(Clone, Copy)]
struct BatchItem {
    key: KeyId,
    start: usize,
    end: usize,
    tag: Digest,
    /// The caller already knows this item cannot verify (e.g. the
    /// claimed key id contradicts the record's producer field); it is
    /// carried so per-item results stay index-aligned, but no MAC is
    /// computed for it.
    prefailed: bool,
}

/// A batch of (message, signature) pairs staged for one verification
/// pass.
///
/// All messages share one contiguous scratch buffer: callers append each
/// message's canonical bytes via [`SigBatch::push_with`], then hand the
/// whole batch to [`KeyStore::verify_batch`], which MACs every staged
/// range in a single keyed pass. Compared to per-item
/// `KeyStore::verify`, this amortises the per-message setup — no
/// per-item buffer allocation or clearing, and one cache-friendly sweep
/// over contiguous bytes. The simulator uses it wherever a message
/// carries an evidence *set* (a task output plus its witnesses).
#[derive(Default)]
pub struct SigBatch {
    buf: Vec<u8>,
    items: Vec<BatchItem>,
}

impl SigBatch {
    /// An empty batch. Reuse one batch across messages: `clear` keeps
    /// the buffer capacity, so steady-state staging is allocation-free.
    pub fn new() -> SigBatch {
        SigBatch::default()
    }

    /// Drop all staged items, keeping capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.items.clear();
    }

    /// Stage one pair: `write` appends the message's canonical bytes to
    /// the shared buffer, and `sig` is the tag to verify over them.
    pub fn push_with(&mut self, sig: &Signature, write: impl FnOnce(&mut Vec<u8>)) {
        let start = self.buf.len();
        write(&mut self.buf);
        self.items.push(BatchItem {
            key: sig.key,
            start,
            end: self.buf.len(),
            tag: sig.tag,
            prefailed: false,
        });
    }

    /// Stage an item the caller has already rejected (keeps per-item
    /// results index-aligned with the inputs).
    pub fn push_prefailed(&mut self) {
        self.items.push(BatchItem {
            key: 0,
            start: 0,
            end: 0,
            tag: Digest::ZERO,
            prefailed: true,
        });
    }

    /// Staged item count.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl std::fmt::Debug for SigBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SigBatch({} items, {} bytes)",
            self.items.len(),
            self.buf.len()
        )
    }
}

/// Verification keystore installed on every node.
///
/// Holds verification material for all `n` principals. With the MAC
/// substitution the verification material *is* the key, but the API only
/// exposes `verify`, mirroring what an asymmetric scheme would offer.
#[derive(Clone)]
pub struct KeyStore {
    suite: AuthSuite,
    keys: Vec<Material>,
}

impl KeyStore {
    /// Build a keystore for principals `0..n`, all derived from `seed`,
    /// for the default (HMAC-SHA-256) suite.
    pub fn derive(system_seed: u64, n: usize) -> Self {
        Self::derive_suite(system_seed, n, AuthSuite::default())
    }

    /// Build a keystore for a specific authenticator suite.
    pub fn derive_suite(system_seed: u64, n: usize, suite: AuthSuite) -> Self {
        let keys = (0..n as KeyId)
            .map(|id| Material::derive(system_seed, id, suite))
            .collect();
        KeyStore { suite, keys }
    }

    /// Number of principals known to this store.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if the store knows no principals.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The store's authenticator suite.
    pub fn suite(&self) -> AuthSuite {
        self.suite
    }

    /// Verify `sig` over `parts`.
    pub fn verify_parts(&self, sig: &Signature, parts: &[&[u8]]) -> Result<(), SigError> {
        let key = self
            .keys
            .get(sig.key as usize)
            .ok_or(SigError::UnknownKey(sig.key))?;
        if key.tag_parts(parts).ct_eq(&sig.tag) {
            Ok(())
        } else {
            Err(SigError::BadTag(sig.key))
        }
    }

    /// Verify `sig` over a single message slice.
    pub fn verify(&self, sig: &Signature, msg: &[u8]) -> Result<(), SigError> {
        self.verify_parts(sig, &[msg])
    }

    /// Verify every staged pair of `batch` in one pass over its shared
    /// buffer, appending one `bool` per item to `ok` (index-aligned with
    /// the staging order). Returns the number of items that verified.
    pub fn verify_batch(&self, batch: &SigBatch, ok: &mut Vec<bool>) -> usize {
        let mut valid = 0;
        for item in &batch.items {
            let good = !item.prefailed
                && match self.keys.get(item.key as usize) {
                    None => false,
                    Some(key) => {
                        let msg = &batch.buf[item.start..item.end];
                        key.tag_slice(msg).ct_eq(&item.tag)
                    }
                };
            ok.push(good);
            valid += usize::from(good);
        }
        valid
    }

    /// Like [`KeyStore::verify_batch`], but failing fast: `Ok` only when
    /// every staged pair verifies.
    pub fn verify_batch_all(&self, batch: &SigBatch) -> Result<(), SigError> {
        for item in &batch.items {
            if item.prefailed {
                return Err(SigError::BadTag(item.key));
            }
            let key = self
                .keys
                .get(item.key as usize)
                .ok_or(SigError::UnknownKey(item.key))?;
            let msg = &batch.buf[item.start..item.end];
            if !key.tag_slice(msg).ct_eq(&item.tag) {
                return Err(SigError::BadTag(item.key));
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for KeyStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "KeyStore({} keys, {})", self.keys.len(), self.suite)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(n: usize) -> (Vec<Signer>, KeyStore) {
        setup_suite(n, AuthSuite::HmacSha256)
    }

    fn setup_suite(n: usize, suite: AuthSuite) -> (Vec<Signer>, KeyStore) {
        let signers = (0..n as KeyId)
            .map(|i| Signer::new(NodeKey::derive_suite(42, i, suite)))
            .collect();
        (signers, KeyStore::derive_suite(42, n, suite))
    }

    #[test]
    fn sign_verify_round_trip() {
        for suite in AuthSuite::ALL {
            let (signers, store) = setup_suite(4, suite);
            for s in &signers {
                let sig = s.sign(b"measurement 17");
                assert_eq!(store.verify(&sig, b"measurement 17"), Ok(()), "{suite}");
            }
        }
    }

    #[test]
    fn tampered_message_rejected() {
        for suite in AuthSuite::ALL {
            let (signers, store) = setup_suite(2, suite);
            let sig = signers[0].sign(b"open valve");
            assert_eq!(store.verify(&sig, b"close valve"), Err(SigError::BadTag(0)));
        }
    }

    #[test]
    fn wrong_claimed_signer_rejected() {
        for suite in AuthSuite::ALL {
            let (signers, store) = setup_suite(3, suite);
            let mut sig = signers[1].sign(b"hello");
            // A Byzantine node relabels the signature as coming from node 2.
            sig.key = 2;
            assert_eq!(store.verify(&sig, b"hello"), Err(SigError::BadTag(2)));
        }
    }

    #[test]
    fn unknown_key_rejected() {
        let (signers, store) = setup(2);
        let mut sig = signers[0].sign(b"hello");
        sig.key = 99;
        assert_eq!(store.verify(&sig, b"hello"), Err(SigError::UnknownKey(99)));
    }

    #[test]
    fn different_seeds_do_not_cross_verify() {
        for suite in AuthSuite::ALL {
            let signer = Signer::new(NodeKey::derive_suite(1, 0, suite));
            let store = KeyStore::derive_suite(2, 1, suite);
            let sig = signer.sign(b"msg");
            assert!(store.verify(&sig, b"msg").is_err());
        }
    }

    #[test]
    fn parts_equivalent_to_concat() {
        for suite in AuthSuite::ALL {
            let (signers, store) = setup_suite(1, suite);
            let sig = signers[0].sign_parts(&[b"ab", b"cd"]);
            assert_eq!(store.verify(&sig, b"abcd"), Ok(()));
        }
    }

    #[test]
    fn keystore_len() {
        let store = KeyStore::derive(7, 5);
        assert_eq!(store.len(), 5);
        assert!(!store.is_empty());
        assert!(KeyStore::derive(7, 0).is_empty());
    }

    #[test]
    fn hmac_tags_are_bit_stable() {
        // The default suite's derivation and tag layout are pinned: this
        // exact tag predates the AuthSuite refactor, so any change to
        // the HMAC derivation chain breaks the golden.
        let s = Signer::new(NodeKey::derive(42, 0));
        let sig = s.sign(b"measurement 17");
        assert_eq!(
            sig.tag.to_hex(),
            "3c827d397eb7b445afb231e415fec1839db0c40f898733b7702d57668c1848fc"
        );
    }

    #[test]
    fn suites_are_selected_and_disjoint() {
        let hmac = Signer::new(NodeKey::derive_suite(42, 0, AuthSuite::HmacSha256));
        let sip = Signer::new(NodeKey::derive_suite(42, 0, AuthSuite::SipHash24));
        assert_eq!(hmac.suite(), AuthSuite::HmacSha256);
        assert_eq!(sip.suite(), AuthSuite::SipHash24);
        let a = hmac.sign(b"msg");
        let b = sip.sign(b"msg");
        assert_ne!(a.tag, b.tag);
        // SipHash tags are 16 bytes, zero-padded into the 32-byte field.
        assert_eq!(&b.tag.0[16..], &[0u8; 16]);
        assert_ne!(&b.tag.0[..16], &[0u8; 16]);
        // A suite's store rejects the other suite's tags.
        let hmac_ks = KeyStore::derive_suite(42, 1, AuthSuite::HmacSha256);
        let sip_ks = KeyStore::derive_suite(42, 1, AuthSuite::SipHash24);
        assert!(hmac_ks.verify(&b, b"msg").is_err());
        assert!(sip_ks.verify(&a, b"msg").is_err());
        assert_eq!(sip_ks.suite(), AuthSuite::SipHash24);
    }

    #[test]
    fn sip_padding_is_canonical() {
        // A tag whose zero padding was tampered with must not verify,
        // even though the 16 tag bytes are right.
        let (signers, store) = setup_suite(1, AuthSuite::SipHash24);
        let mut sig = signers[0].sign(b"msg");
        sig.tag.0[31] = 1;
        assert_eq!(store.verify(&sig, b"msg"), Err(SigError::BadTag(0)));
    }

    #[test]
    fn suite_names_round_trip() {
        for suite in AuthSuite::ALL {
            assert_eq!(AuthSuite::parse(suite.name()), Some(suite));
            assert_eq!(AuthSuite::parse(suite.token()), Some(suite));
        }
        assert_eq!(AuthSuite::parse("rot13"), None);
        assert_eq!(AuthSuite::default(), AuthSuite::HmacSha256);
        assert_eq!(format!("{}", AuthSuite::SipHash24), "siphash24");
    }

    #[test]
    fn batch_matches_single_verification() {
        for suite in AuthSuite::ALL {
            let (signers, store) = setup_suite(4, suite);
            let msgs: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 16 + i as usize]).collect();
            let sigs: Vec<Signature> = msgs.iter().zip(&signers).map(|(m, s)| s.sign(m)).collect();

            let mut batch = SigBatch::new();
            for (m, sig) in msgs.iter().zip(&sigs) {
                batch.push_with(sig, |buf| buf.extend_from_slice(m));
            }
            assert_eq!(batch.len(), 4);
            let mut ok = Vec::new();
            assert_eq!(store.verify_batch(&batch, &mut ok), 4, "{suite}");
            assert!(ok.iter().all(|&b| b));
            assert_eq!(store.verify_batch_all(&batch), Ok(()));

            // Corrupt one message: exactly that item fails, positions
            // stay aligned.
            batch.clear();
            assert!(batch.is_empty());
            for (i, (m, sig)) in msgs.iter().zip(&sigs).enumerate() {
                batch.push_with(sig, |buf| {
                    buf.extend_from_slice(m);
                    if i == 2 {
                        buf.push(0xff);
                    }
                });
            }
            ok.clear();
            assert_eq!(store.verify_batch(&batch, &mut ok), 3);
            assert_eq!(ok, vec![true, true, false, true]);
            assert!(store.verify_batch_all(&batch).is_err());
        }
    }

    #[test]
    fn batch_prefailed_items_stay_aligned() {
        let (signers, store) = setup(2);
        let sig = signers[1].sign(b"fine");
        let mut batch = SigBatch::new();
        batch.push_prefailed();
        batch.push_with(&sig, |buf| buf.extend_from_slice(b"fine"));
        let mut ok = Vec::new();
        assert_eq!(store.verify_batch(&batch, &mut ok), 1);
        assert_eq!(ok, vec![false, true]);
        assert!(store.verify_batch_all(&batch).is_err());
        assert_eq!(format!("{batch:?}"), "SigBatch(2 items, 4 bytes)");
    }

    #[test]
    fn batch_rejects_unknown_keys() {
        let (signers, store) = setup(1);
        let mut sig = signers[0].sign(b"x");
        sig.key = 9;
        let mut batch = SigBatch::new();
        batch.push_with(&sig, |buf| buf.extend_from_slice(b"x"));
        let mut ok = Vec::new();
        assert_eq!(store.verify_batch(&batch, &mut ok), 0);
        assert_eq!(store.verify_batch_all(&batch), Err(SigError::UnknownKey(9)));
    }

    #[test]
    fn signature_debug_is_stable() {
        let s = Signer::new(NodeKey::derive(5, 3));
        let sig = s.sign(b"dbg");
        let rendered = format!("{sig:?}");
        assert_eq!(rendered, format!("Sig(k3,{})", sig.tag.short()));
    }
}
