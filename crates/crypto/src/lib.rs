//! Cryptographic substrate for BTR evidence.
//!
//! The paper requires that fault evidence be *independently verifiable*:
//! "it is necessary to generate evidence of detected faults that other
//! nodes can verify independently" (Section 4.2). That, in turn, requires
//! message authentication. This crate provides everything the rest of the
//! system needs, implemented from scratch:
//!
//! * [`mod@sha256`] — a FIPS 180-4 SHA-256 implementation.
//! * [`mod@hmac`] — HMAC-SHA-256 (RFC 2104).
//! * [`mod@siphash`] — SipHash-2-4 with 128-bit tags, the cheap
//!   authenticator suite for statistical experiments.
//! * [`Signer`] / [`KeyStore`] — per-node authenticators behind a
//!   pluggable [`AuthSuite`] (HMAC-SHA-256 default, SipHash-2-4-128
//!   alternative). Real deployments would use asymmetric signatures; we
//!   substitute keyed MACs with a pre-installed verification keystore
//!   (see DESIGN.md). Within the simulation the substitution is sound
//!   because only the owner of a key can produce a valid tag, and every
//!   correct node can verify every other node's tags. [`SigBatch`]
//!   stages a message's whole evidence set for one verification pass.
//! * [`chain`] — PeerReview-style tamper-evident hash chains for logs.
//!
//! No `unsafe` code is used anywhere in this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod hmac;
pub mod rng;
pub mod sha256;
pub mod sign;
pub mod siphash;

pub use chain::{ChainEntry, HashChain};
pub use hmac::{hmac_sha256, HmacKey, HmacState};
pub use rng::{SplitMix64, Xoshiro256StarStar};
pub use sha256::{sha256, Digest, Sha256};
pub use sign::{AuthSuite, KeyStore, NodeKey, SigBatch, SigError, Signature, Signer};
pub use siphash::{SipKey, SipState};

/// Convenience: hash a sequence of byte slices as one message.
///
/// Equivalent to concatenating the slices and hashing, but without the
/// intermediate allocation. Used pervasively for evidence digests.
pub fn sha256_concat(parts: &[&[u8]]) -> Digest {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

/// A deterministic 64-bit digest derived from a full SHA-256 digest.
///
/// Task outputs in the simulated workload are 64-bit values; deriving them
/// from SHA-256 keeps re-execution checks honest while staying cheap to
/// store and compare.
pub fn digest64(parts: &[&[u8]]) -> u64 {
    let d = sha256_concat(parts);
    u64::from_be_bytes([
        d.0[0], d.0[1], d.0[2], d.0[3], d.0[4], d.0[5], d.0[6], d.0[7],
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest64_is_prefix_of_sha256() {
        let d = sha256(b"hello");
        let x = digest64(&[b"hello"]);
        assert_eq!(x.to_be_bytes(), d.0[..8]);
    }

    #[test]
    fn sha256_concat_matches_single_shot() {
        let a = sha256(b"hello world");
        let b = sha256_concat(&[b"hello", b" ", b"world"]);
        assert_eq!(a, b);
    }
}
