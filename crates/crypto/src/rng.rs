//! Fast deterministic PRNGs for the simulation hot path.
//!
//! The simulator originally derived every pseudo-random decision (loss
//! rolls, per-node random streams) from a fresh SHA-256 compression via
//! [`crate::digest64`]. That is cryptographically gold-plated for what is
//! purely a *statistical* need, and it dominated the per-message cost of
//! the simulator. These generators keep the property that actually
//! matters — bit-exact determinism per seed — at a few arithmetic
//! instructions per draw instead of a hash compression.
//!
//! Seeding still goes through SHA-256 ([`Xoshiro256StarStar::from_digest`]
//! / [`SplitMix64::from_parts`]): one hash at construction buys
//! domain-separated, well-mixed initial states, so independent streams
//! (loss sampling, each node's local stream) never correlate even for
//! adjacent integer seeds.

use crate::sha256::Digest;

/// SplitMix64 (Steele, Lea, Flood 2014): the standard 64-bit state mixer.
///
/// Used directly for per-node streams (one `u64` of state per node) and
/// as the state expander for [`Xoshiro256StarStar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator starting from a raw 64-bit state.
    pub fn new(state: u64) -> SplitMix64 {
        SplitMix64 { state }
    }

    /// A generator seeded by hashing the given parts (domain separation
    /// included by the caller's leading tag part).
    pub fn from_parts(parts: &[&[u8]]) -> SplitMix64 {
        SplitMix64::new(crate::digest64(parts))
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** 1.0 (Blackman, Vigna 2018): the all-purpose fast PRNG.
///
/// 256 bits of state, period 2^256 − 1, ~1 ns per draw. Used for the
/// world's transmission-loss stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seed from a full SHA-256 digest: the 32 digest bytes become the
    /// 256-bit state directly (big-endian words).
    pub fn from_digest(d: &Digest) -> Xoshiro256StarStar {
        let w = |i: usize| {
            u64::from_be_bytes([
                d.0[i],
                d.0[i + 1],
                d.0[i + 2],
                d.0[i + 3],
                d.0[i + 4],
                d.0[i + 5],
                d.0[i + 6],
                d.0[i + 7],
            ])
        };
        let mut s = [w(0), w(8), w(16), w(24)];
        if s == [0, 0, 0, 0] {
            // The all-zero state is the one invalid xoshiro state; a
            // SHA-256 output of all zeroes will not happen, but guard it.
            let mut sm = SplitMix64::new(0x5851_F42D_4C95_7F2D);
            s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        }
        Xoshiro256StarStar { s }
    }

    /// Seed by hashing the given parts (one SHA-256 at construction).
    pub fn from_parts(parts: &[&[u8]]) -> Xoshiro256StarStar {
        Self::from_digest(&crate::sha256_concat(parts))
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform draw in `0..bound` (`bound > 0`); the modulo bias is
    /// below 2^-44 for the bounds the simulator uses (≤ 10^6).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference sequence for seed 1234567 (from the published
        // SplitMix64 algorithm).
        let mut r = SplitMix64::new(1234567);
        let got: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                6_457_827_717_110_365_317,
                3_203_168_211_198_807_973,
                9_817_491_932_198_370_423
            ]
        );
    }

    #[test]
    fn xoshiro_reference_vector() {
        // Reference: state {1,2,3,4} per the published xoshiro256**.
        let mut r = Xoshiro256StarStar { s: [1, 2, 3, 4] };
        let got: Vec<u64> = (0..5).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                11520,
                0,
                1_509_978_240,
                1_215_971_899_390_074_240,
                1_216_172_134_540_287_360
            ]
        );
    }

    #[test]
    fn seeding_is_deterministic_and_domain_separated() {
        let a1 = Xoshiro256StarStar::from_parts(&[b"loss", &7u64.to_be_bytes()]);
        let a2 = Xoshiro256StarStar::from_parts(&[b"loss", &7u64.to_be_bytes()]);
        assert_eq!(a1, a2);
        let b = Xoshiro256StarStar::from_parts(&[b"loss", &8u64.to_be_bytes()]);
        assert_ne!(a1, b);
        let c = Xoshiro256StarStar::from_parts(&[b"node", &7u64.to_be_bytes()]);
        assert_ne!(a1, c);

        let s1 = SplitMix64::from_parts(&[b"x", &1u32.to_be_bytes()]);
        let s2 = SplitMix64::from_parts(&[b"x", &1u32.to_be_bytes()]);
        assert_eq!(s1, s2);
    }

    #[test]
    fn next_below_is_in_range() {
        let mut r = Xoshiro256StarStar::from_parts(&[b"range-test"]);
        for _ in 0..10_000 {
            assert!(r.next_below(1_000_000) < 1_000_000);
        }
    }

    #[test]
    fn streams_look_uniform_enough() {
        // Coarse sanity: over 100k draws of 0..1_000_000, the low decile
        // should hold roughly 10% of the mass.
        let mut r = Xoshiro256StarStar::from_parts(&[b"uniformity"]);
        let n = 100_000;
        let low = (0..n).filter(|_| r.next_below(1_000_000) < 100_000).count();
        let frac = low as f64 / n as f64;
        assert!((0.09..0.11).contains(&frac), "low-decile fraction {frac}");
    }
}
