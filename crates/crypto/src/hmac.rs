//! HMAC-SHA-256 (RFC 2104).
//!
//! Used as the authenticator primitive behind [`crate::sign`]. Keys longer
//! than the block size are hashed first, per the RFC.

use crate::sha256::{Digest, Sha256};

const BLOCK: usize = 64;
const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

/// A secret HMAC key.
///
/// Holds the *midstates* of SHA-256 after absorbing the inner and outer
/// padded key blocks, so every MAC computation (the simulator signs and
/// verifies one per message) skips the two key-block compressions and the
/// pad XORs that a from-scratch HMAC pays.
#[derive(Clone)]
pub struct HmacKey {
    /// SHA-256 state after absorbing `key ⊕ ipad`.
    inner0: Sha256,
    /// SHA-256 state after absorbing `key ⊕ opad`.
    outer0: Sha256,
}

impl std::fmt::Debug for HmacKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.write_str("HmacKey(..)")
    }
}

impl HmacKey {
    /// Derive an HMAC key from arbitrary key bytes.
    pub fn new(key: &[u8]) -> Self {
        let mut padded = [0u8; BLOCK];
        if key.len() > BLOCK {
            let d = crate::sha256(key);
            padded[..32].copy_from_slice(&d.0);
        } else {
            padded[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK];
        let mut opad = [0u8; BLOCK];
        for (i, b) in padded.iter().enumerate() {
            ipad[i] = b ^ IPAD;
            opad[i] = b ^ OPAD;
        }
        let mut inner0 = Sha256::new();
        inner0.update(&ipad);
        let mut outer0 = Sha256::new();
        outer0.update(&opad);
        HmacKey { inner0, outer0 }
    }

    /// Begin a streaming MAC computation over message parts fed via
    /// [`HmacState::update`]. Equivalent to [`HmacKey::mac`] over the
    /// concatenation, with no intermediate buffer.
    pub fn begin(&self) -> HmacState {
        HmacState {
            inner: self.inner0.clone(),
            outer: self.outer0.clone(),
        }
    }

    /// Compute `HMAC(key, msg)` over a list of message parts.
    pub fn mac_parts(&self, parts: &[&[u8]]) -> Digest {
        let mut st = self.begin();
        for p in parts {
            st.update(p);
        }
        st.finalize()
    }

    /// Compute `HMAC(key, msg)` over a single message slice.
    pub fn mac(&self, msg: &[u8]) -> Digest {
        self.mac_parts(&[msg])
    }
}

/// An in-progress streaming HMAC computation (see [`HmacKey::begin`]).
#[derive(Clone)]
pub struct HmacState {
    inner: Sha256,
    outer: Sha256,
}

impl std::fmt::Debug for HmacState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("HmacState(..)")
    }
}

impl HmacState {
    /// Absorb more message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finish and produce the MAC.
    pub fn finalize(self) -> Digest {
        let inner_digest = self.inner.finalize();
        let mut outer = self.outer;
        outer.update(&inner_digest.0);
        outer.finalize()
    }
}

/// One-shot HMAC-SHA-256.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> Digest {
    HmacKey::new(key).mac(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// RFC 4231 test vectors for HMAC-SHA-256.
    #[test]
    fn rfc4231_vectors() {
        // Test case 1.
        let d = hmac_sha256(&[0x0b; 20], b"Hi There");
        assert_eq!(
            d.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        // Test case 2.
        let d = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            d.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        // Test case 3: 20-byte 0xaa key, 50 bytes of 0xdd.
        let d = hmac_sha256(&[0xaa; 20], &[0xdd; 50]);
        assert_eq!(
            d.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
        // Test case 6: key larger than block size.
        let d = hmac_sha256(
            &[0xaa; 131],
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            d.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn mac_parts_equals_concat() {
        let k = HmacKey::new(b"key");
        assert_eq!(k.mac_parts(&[b"ab", b"cd"]), k.mac(b"abcd"));
    }

    #[test]
    fn streaming_equals_one_shot() {
        let k = HmacKey::new(b"stream-key");
        let mut st = k.begin();
        st.update(b"what do ya want ");
        st.update(b"");
        st.update(b"for nothing?");
        assert_eq!(st.finalize(), k.mac(b"what do ya want for nothing?"));
    }

    #[test]
    fn debug_hides_key() {
        assert_eq!(format!("{:?}", HmacKey::new(b"secret")), "HmacKey(..)");
    }

    proptest! {
        /// Different keys give different MACs for the same message.
        #[test]
        fn prop_key_separation(k1 in proptest::collection::vec(any::<u8>(), 1..48),
                               k2 in proptest::collection::vec(any::<u8>(), 1..48),
                               msg in proptest::collection::vec(any::<u8>(), 0..64)) {
            prop_assume!(k1 != k2);
            prop_assert_ne!(hmac_sha256(&k1, &msg), hmac_sha256(&k2, &msg));
        }

        /// MAC is deterministic.
        #[test]
        fn prop_deterministic(key in proptest::collection::vec(any::<u8>(), 0..80),
                              msg in proptest::collection::vec(any::<u8>(), 0..128)) {
            prop_assert_eq!(hmac_sha256(&key, &msg), hmac_sha256(&key, &msg));
        }
    }
}
