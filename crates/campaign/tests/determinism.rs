//! Campaign determinism: the contract that makes `CAMPAIGN_btr.json`
//! comparable across machines, runs, and thread counts.
//!
//! * The same campaign seed must produce a byte-identical deterministic
//!   report region at 1 vs N threads (the `"timing"` object is the only
//!   part allowed to differ).
//! * The schedule generator must be a pure function of its seed
//!   (property-tested over random seeds).
//! * The fuzzer's mutation operators must be pure in their seed, never
//!   leave the admissible fault space, and the corpus must be a fixed
//!   point under re-insertion of its own canonical forms.

use btr_campaign::corpus::{canonical_key, Corpus};
use btr_campaign::schedule::{generate, mutate, FaultVariant, ScheduleParams};
use btr_campaign::{report, run_campaign, CampaignConfig, CellSpec, TopoSpec};
use btr_crypto::AuthSuite;
use btr_model::{Duration, Time};
use proptest::prelude::*;

/// A small single-cell campaign that still exercises schedules of every
/// variant class plus multi-fault combos.
fn small_config(threads: usize) -> CampaignConfig {
    let mut cfg = CampaignConfig::new(1234, 12, threads);
    cfg.sim_seeds = 1;
    cfg.combos = true;
    cfg.cells = vec![CellSpec {
        workload: "avionics".into(),
        topo: TopoSpec::Bus {
            n: 9,
            bytes_per_ms: 100_000,
            latency_us: 5,
        },
        f: 2,
        r_bound: Duration::from_millis(150),
        auth: AuthSuite::HmacSha256,
        variants: vec![
            FaultVariant::CRASH,
            FaultVariant::COMMISSION,
            FaultVariant::OMISSION_STEALTH,
        ],
    }];
    cfg
}

#[test]
fn campaign_report_is_byte_identical_across_thread_counts() {
    let seq = run_campaign(&small_config(1)).expect("sequential campaign");
    let par = run_campaign(&small_config(3)).expect("parallel campaign");

    assert_eq!(seq.records, par.records, "records must match exactly");
    assert_eq!(
        report::render_deterministic(&seq),
        report::render_deterministic(&par),
        "deterministic report regions must be byte-identical"
    );
    assert_eq!(
        report::runs_digest(&seq.records),
        report::runs_digest(&par.records)
    );

    // The full JSON differs only in the timing region.
    let full_seq = seq.to_json();
    let full_par = par.to_json();
    let key = "\n  \"timing\": {";
    let det = |s: &str| s.split(key).next().unwrap().to_string();
    assert!(full_seq.contains(key) && full_par.contains(key));
    assert_eq!(det(&full_seq), det(&full_par));

    // Scaling carries one entry per executed pass: [1] and [1, 3].
    assert_eq!(seq.scaling.len(), 1);
    assert_eq!(par.scaling.len(), 2);
    assert_eq!(par.scaling[1].threads, 3);
}

#[test]
fn same_seed_same_report_across_invocations() {
    let a = run_campaign(&small_config(1)).expect("campaign");
    let b = run_campaign(&small_config(1)).expect("campaign");
    assert_eq!(
        report::render_deterministic(&a),
        report::render_deterministic(&b)
    );
}

fn gen_params(n_nodes: u32, f: u8) -> ScheduleParams {
    ScheduleParams {
        n_nodes,
        f,
        period: Duration::from_millis(10),
        deadline: Duration::from_millis(8),
        first_at: Time::from_millis(40),
        last_at: Time::from_millis(240),
        gap: (Duration::from_millis(150), Duration::from_millis(250)),
        variants: FaultVariant::ALL.to_vec(),
        combos: true,
        over_budget: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The generator is a pure function of `(params, seed, count)`.
    #[test]
    fn prop_schedule_generation_is_pure_in_its_seed(
        seed in any::<u64>(),
        n_nodes in 2u32..16,
        f in 1u8..3,
        count in 1usize..96,
    ) {
        let params = gen_params(n_nodes, f);
        let a = generate(&params, seed, count);
        let b = generate(&params, seed, count);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), count);
        // Well-formedness invariants hold for every generated schedule.
        for s in &a {
            prop_assert!(s.scenario.faults.len() <= params.max_faults() as usize);
            prop_assert!(s.budget() == s.scenario.faults.len());
            for fault in &s.scenario.faults {
                prop_assert!(fault.node.0 < n_nodes);
                prop_assert!(fault.at >= params.first_at);
            }
        }
        // A different seed changes the sampled phase (the boundary
        // prefix is deliberately seed-independent).
        let c = generate(&params, seed ^ 0xDEAD_BEEF, count);
        let boundary = a.iter().zip(&c).take_while(|(x, y)| x == y).count();
        prop_assert!(boundary <= count.div_ceil(2));
    }

    /// Mutation is a pure function of `(params, schedule, seed)`, and
    /// mutants never leave the admissible space: budget ≤ f, activations
    /// ordered, victims in range, nothing before `first_at`. This is the
    /// fuzzer's safety net — a mutant that exceeded f would turn the
    /// "zero admissible violations" gate into noise.
    #[test]
    fn prop_mutation_is_pure_and_admissibility_preserving(
        gen_seed in any::<u64>(),
        mut_seed in any::<u64>(),
        n_nodes in 2u32..16,
        f in 1u8..4,
        rounds in 1usize..6,
    ) {
        let params = gen_params(n_nodes, f);
        let mut s = generate(&params, gen_seed, 4).remove(0);
        for r in 0..rounds {
            let seed = mut_seed.wrapping_add(r as u64);
            let a = mutate(&params, &s, seed);
            let b = mutate(&params, &s, seed);
            prop_assert_eq!(&a, &b);
            prop_assert!(a.budget() <= f as usize, "mutant exceeded f");
            for w in a.scenario.faults.windows(2) {
                prop_assert!(w[0].at <= w[1].at, "activation order");
            }
            for fault in &a.scenario.faults {
                prop_assert!(fault.node.0 < n_nodes);
                prop_assert!(fault.at >= params.first_at);
            }
            s = a;
        }
    }

    /// Corpus dedup idempotence: re-offering a resident's canonical
    /// schedule at the same score never changes the corpus (the
    /// insert-after-shrink fixed point), and keys are invariant under
    /// fault reordering.
    #[test]
    fn prop_corpus_insertion_is_idempotent(
        gen_seed in any::<u64>(),
        scores in proptest::collection::vec(0u64..5_000, 1..12),
        cap in 1usize..8,
    ) {
        let params = gen_params(9, 3);
        let schedules = generate(&params, gen_seed, scores.len());
        let mut corpus = Corpus::new(cap);
        for (s, &score) in schedules.iter().zip(&scores) {
            corpus.offer(0, "cell", s, score, 0);
        }
        let digest = corpus.digest();
        let residents: Vec<_> = corpus.entries().cloned().collect();
        for e in &residents {
            // Re-offering the canonical resident is a no-op…
            prop_assert!(!corpus.offer(e.cell_idx, "cell", &e.schedule, e.score, 0));
            // …and its key round-trips through canonicalization.
            prop_assert_eq!(
                canonical_key("cell", &e.schedule),
                {
                    let mut shuffled = e.schedule.clone();
                    shuffled.scenario.faults.reverse();
                    canonical_key("cell", &shuffled)
                }
            );
        }
        prop_assert_eq!(corpus.digest(), digest);
        prop_assert!(corpus.len() <= cap);
    }
}
