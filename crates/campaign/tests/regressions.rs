//! Replay-token regression suite: every R-bound gap the PR 2 campaign
//! sweep found, frozen as the exact reproducer token it was found (or
//! minimised) as. Each token pins workload, platform, f, R, horizon,
//! event cap, simulator seed, and the fault schedule, so these runs are
//! bit-for-bit reproducible on any machine — if a detector regression
//! reopens a gap, the corresponding test fires with the original
//! evidence attached.
//!
//! The four findings (see EXPERIMENTS.md "campaign findings — resolved"):
//!
//! 1. **Equivocation on the avionics bus** — a single-consumer victim
//!    never produced conflicting-signature evidence; fixed by consumers
//!    echoing accepted outputs to the task's checker.
//! 2. **Plain omission / timing on SCADA** — sparse consumer fan-in kept
//!    attribution below threshold; fixed by fan-in-aware per-suspect
//!    thresholds plus timing declarations feeding the tracker.
//! 3. **Sequential-fault false-attribution cascade** — honest declarers
//!    implicated themselves into conviction and the cluster converged on
//!    a 9-node fault set; fixed by splitting direct accusations from
//!    self-implication in the omission tracker (plus upstream-starvation
//!    gating of declarations).
//! 4. **Crash on the fusion-chain ring** — multi-hop routes through a
//!    crashed relay were never healed; fixed by the simulator's link
//!    layer rerouting around crashed relays.

use btr_campaign::replay::{self, ReplayReport};

/// The frozen reproducer tokens, verbatim from EXPERIMENTS.md.
const FINDINGS: [(&str, &str); 4] = [
    (
        "equivocation-single-consumer-avionics",
        "w=avionics;t=bus9x100000x5;f=1;r=150000;h=500000;me=20000000;s=7;\
         fl=equivocation@52000@n0",
    ),
    (
        "scada-omission-sparse-fan-in",
        "w=scada;t=bus6x100000x10;f=1;r=400000;h=1080000;me=20000000;s=7;\
         fl=omission@100000@n2",
    ),
    (
        "sequential-false-attribution-cascade",
        "w=avionics;t=bus9x100000x5;f=2;r=150000;h=740000;me=20000000;\
         s=13679457532755275413;fl=crash@428844@n2+omission@570000@n4",
    ),
    (
        "ring-crashed-relay-rerouting",
        "w=fusion-chain;t=ring9x100000x5;f=1;r=150000;h=490000;me=20000000;s=7;\
         fl=crash@100000@n3",
    ),
];

/// Additional victims of the same findings, exercised more cheaply (one
/// replay each, no determinism double-run): the SCADA gap hit two
/// victims per variant, and the ring gap hit five of nine positions.
const SIBLING_REPRODUCERS: [&str; 3] = [
    "w=scada;t=bus6x100000x10;f=1;r=400000;h=1080000;me=20000000;s=7;\
     fl=timing@100000@n4",
    "w=fusion-chain;t=ring9x100000x5;f=1;r=150000;h=490000;me=20000000;s=7;\
     fl=crash@100000@n8",
    "w=avionics;t=bus9x100000x5;f=2;r=150000;h=740000;me=20000000;\
     s=13679457532755275413;fl=omission@377579@n5+commission@570000@n4",
];

fn replay_token(tok: &str) -> ReplayReport {
    let spec = replay::parse(tok).unwrap_or_else(|e| panic!("{tok}: {e}"));
    replay::run(&spec).unwrap_or_else(|e| panic!("{tok}: {e}"))
}

fn assert_recovers(name: &str, tok: &str, report: &ReplayReport) {
    assert!(
        report.violations.is_empty(),
        "{name}: regression reopened — token '{tok}' violates again: {:?} \
         (bad window {} us over {}/{} outputs)",
        report.violations,
        report.recovery_us,
        report.bad_outputs,
        report.total_outputs,
    );
    assert!(report.converged, "{name}: correct nodes diverged");
}

/// Every finding's primary reproducer recovers within R, and replaying
/// it twice is bit-for-bit identical (same windows, same verdicts).
#[test]
fn campaign_findings_stay_fixed_and_deterministic() {
    for (name, tok) in FINDINGS {
        let a = replay_token(tok);
        assert_recovers(name, tok, &a);
        let b = replay_token(tok);
        assert_eq!(a.recovery_us, b.recovery_us, "{name}: window differs");
        assert_eq!(a.bad_outputs, b.bad_outputs, "{name}: bad outputs differ");
        assert_eq!(a.total_outputs, b.total_outputs, "{name}: slots differ");
        assert_eq!(a.violations, b.violations, "{name}: verdicts differ");
    }
}

/// Sibling victims of the same gaps also stay fixed.
#[test]
fn sibling_reproducers_stay_fixed() {
    for tok in SIBLING_REPRODUCERS {
        let report = replay_token(tok);
        assert_recovers("sibling", tok, &report);
    }
}

/// The primary reproducers replayed from N concurrent threads agree
/// bit-for-bit with the sequential replays: the fixes hold under the
/// same parallelism the campaign runner uses, with no hidden shared
/// state between runs.
#[test]
fn findings_replay_identically_across_threads() {
    let sequential: Vec<(u64, u32)> = FINDINGS
        .iter()
        .map(|(_, tok)| {
            let r = replay_token(tok);
            (r.recovery_us, r.bad_outputs as u32)
        })
        .collect();
    let parallel: Vec<(u64, u32)> = std::thread::scope(|scope| {
        let handles: Vec<_> = FINDINGS
            .iter()
            .map(|(_, tok)| {
                scope.spawn(move || {
                    let r = replay_token(tok);
                    (r.recovery_us, r.bad_outputs as u32)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("replay thread"))
            .collect()
    });
    assert_eq!(sequential, parallel, "parallel replays diverged");
}
