//! The campaign-level cross-suite differential oracle.
//!
//! Authenticator tags travel in a fixed-size wire field and nothing
//! downstream of verification reads tag bytes, so a campaign cell run
//! under the HMAC and SipHash suites must produce byte-identical
//! verdicts: same records, same `runs_digest`, same replay behaviour.
//! These tests pin that contract end to end (schedule generation →
//! parallel runner → oracle scoring → report digest), which is what lets
//! `harness campaign --auth sip` stand in for the default suite in
//! perf-sensitive sweeps.

use btr_campaign::report::runs_digest;
use btr_campaign::runner::{execute, plan_cells};
use btr_campaign::schedule::FaultVariant;
use btr_campaign::{replay, CampaignConfig, CellSpec, TopoSpec};
use btr_crypto::AuthSuite;
use btr_model::Duration;

/// A single-cell campaign over the avionics bus, parameterised by suite.
fn config(suite: AuthSuite) -> CampaignConfig {
    let mut cfg = CampaignConfig::new(77, 10, 2);
    cfg.sim_seeds = 1;
    cfg.combos = true;
    cfg.cells = vec![CellSpec {
        workload: "avionics".into(),
        topo: TopoSpec::Bus {
            n: 9,
            bytes_per_ms: 100_000,
            latency_us: 5,
        },
        f: 2,
        r_bound: Duration::from_millis(150),
        auth: suite,
        variants: vec![
            FaultVariant::CRASH,
            FaultVariant::COMMISSION,
            FaultVariant::EQUIVOCATION,
            FaultVariant::OMISSION_STEALTH,
        ],
    }];
    cfg
}

#[test]
fn cross_suite_campaign_records_are_byte_identical() {
    let run = |suite: AuthSuite| {
        let cfg = config(suite);
        let cells = plan_cells(&cfg).expect("plans");
        execute(&cfg, &cells).0
    };
    let hmac = run(AuthSuite::HmacSha256);
    let sip = run(AuthSuite::SipHash24);
    assert_eq!(hmac.len(), sip.len());
    assert!(!hmac.is_empty());
    // Full record equality (labels, verdicts, recovery windows,
    // violations) and the digest CI compares across suites.
    assert_eq!(hmac, sip, "campaign records diverged across suites");
    assert_eq!(runs_digest(&hmac), runs_digest(&sip));
    // The scenario space actually exercised evidence-bearing faults.
    assert!(hmac
        .iter()
        .any(|r| r.label.contains("commission") || r.label.contains("equivocation")));
}

#[test]
fn sip_replay_token_reproduces_hmac_verdicts() {
    // The same violating schedule replayed under both suites: tokens
    // differ only in the trailing `a=sip`, verdicts not at all. (An
    // inadmissible double crash at f=1 keeps the violation path live.)
    let faults = "fl=crash@52000@n0+crash@252000@n1";
    let base = format!("w=avionics;t=bus9x100000x5;f=1;r=150000;h=500000;me=20000000;s=7;{faults}");
    let hmac = replay::run(&replay::parse(&base).expect("parses")).expect("replays");
    let sip_tok = format!("{base};a=sip");
    let sip = replay::run(&replay::parse(&sip_tok).expect("parses")).expect("replays");
    assert!(
        !hmac.violations.is_empty(),
        "double crash at f=1 must violate"
    );
    assert_eq!(hmac.violations, sip.violations);
    assert_eq!(hmac.recovery_us, sip.recovery_us);
    assert_eq!(hmac.bad_outputs, sip.bad_outputs);
    assert_eq!(hmac.total_outputs, sip.total_outputs);
    assert_eq!(hmac.converged, sip.converged);
}
