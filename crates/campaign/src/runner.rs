//! The parallel campaign runner.
//!
//! Work-stealing over the run grid (cell × schedule × sim seed) on
//! `std::thread::scope`: workers claim run indices from a shared atomic
//! counter, execute independently (each run builds its own simulator
//! world from shared, immutable planned systems), and the main thread
//! merges per-worker results back into run-index order. Because every
//! run is a pure function of its spec, the merged record vector is
//! **bit-identical at any thread count** — the determinism tests and the
//! report digest both pin this.

use crate::grid::{CellError, CellSpec};
use crate::schedule::{self, FaultSchedule, ScheduleParams};
use crate::verdict::{score, Violation};
use btr_core::BtrSystem;
use btr_model::Duration;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Campaign-wide configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed: fixes schedules and per-run simulator seeds.
    pub seed: u64,
    /// Target total number of runs (split evenly across cells).
    pub runs: usize,
    /// Worker threads.
    pub threads: usize,
    /// Simulator seeds per (cell, schedule).
    pub sim_seeds: u32,
    /// Sample sequential multi-fault schedules up to budget f (hunting
    /// mode; the sequential space has known findings).
    pub combos: bool,
    /// Include f+1-fault (inadmissible) schedules.
    pub over_budget: bool,
    /// Per-run simulator event cap (0 = unlimited).
    pub max_events: u64,
    /// Extra tolerance on the R-bound check.
    pub slack: Duration,
    /// The grid.
    pub cells: Vec<CellSpec>,
}

impl CampaignConfig {
    /// A campaign over the default grid.
    pub fn new(seed: u64, runs: usize, threads: usize) -> CampaignConfig {
        CampaignConfig {
            seed,
            runs,
            threads,
            sim_seeds: 2,
            combos: false,
            over_budget: false,
            max_events: 20_000_000,
            slack: Duration::ZERO,
            cells: crate::grid::default_grid(),
        }
    }
}

/// One scored run (everything in here is deterministic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunRecord {
    /// Dense run index (the merge order).
    pub run_idx: u32,
    /// Cell index into the campaign's grid.
    pub cell_idx: u16,
    /// Schedule id within the cell.
    pub schedule_id: u32,
    /// Simulator seed used.
    pub sim_seed: u64,
    /// Kind signature of the schedule, e.g. `crash+omission`.
    pub label: String,
    /// Number of injected faults.
    pub n_faults: u8,
    /// True when the schedule stays within the cell's fault budget f.
    pub admissible: bool,
    /// Measured bad-output window in µs (0 = masked or fault-free).
    pub recovery_us: u64,
    /// Schedule slack to the R bound in µs: the recovery budget the
    /// schedule had — `(last_at − first_at) + R` for faulted runs, `R`
    /// for fault-free — minus the measured window. Negative when the
    /// bound was blown; campaigns score schedules by minimum slack.
    pub slack_us: i64,
    /// Unacceptable output slots.
    pub bad_outputs: u32,
    /// Judged output slots.
    pub total_outputs: u32,
    /// All correct nodes ended on identical fault sets and plans.
    pub converged: bool,
    /// Evidence-pool near misses summed over correct nodes: suspects
    /// left one accuser short of conviction when the run ended. A fuzzer
    /// score signal; **excluded from `runs_digest`** so pre-existing
    /// replay tokens and report digests are unperturbed.
    pub near_misses: u64,
    /// Path declarations withheld by the cascade gates, summed over
    /// correct nodes. Also excluded from `runs_digest`.
    pub suppressed: u64,
    /// Largest fault set any correct node ended on (convictions). Also
    /// excluded from `runs_digest`.
    pub convictions: u32,
    /// Broken claims (empty = clean run).
    pub violations: Vec<Violation>,
}

/// A planned cell with its generated schedule set.
pub struct PlannedCell {
    /// The cell's spec.
    pub spec: CellSpec,
    /// The planned system (shared, immutable, run from many threads).
    pub system: BtrSystem,
    /// The cell's schedules.
    pub schedules: Vec<FaultSchedule>,
    /// The judging horizon for this cell's runs.
    pub horizon: Duration,
    /// The event cap the cell's system runs under (pinned into replay
    /// tokens so truncated runs reproduce).
    pub max_events: u64,
    /// The schedule-generation parameters the cell's schedules were
    /// drawn under (the fuzzer mutates within the same bounds).
    pub params: ScheduleParams,
}

/// Plan every cell and generate its schedules. Deterministic; the
/// expensive planner work is shared by all runs of a cell.
pub fn plan_cells(cfg: &CampaignConfig) -> Result<Vec<PlannedCell>, CellError> {
    let per_cell = cfg
        .runs
        .div_ceil(cfg.cells.len().max(1) * cfg.sim_seeds.max(1) as usize)
        .max(1);
    cfg.cells
        .iter()
        .map(|spec| {
            let system = spec.plan()?.with_max_events(cfg.max_events);
            let period = system.workload().period;
            let deadline = system
                .workload()
                .sinks()
                .map(|s| s.deadline)
                .min()
                .unwrap_or(period);
            let params = spec.schedule_params(period, deadline, cfg.combos, cfg.over_budget);
            let schedules = schedule::generate(&params, cfg.seed, per_cell);
            let horizon = spec.horizon(period, cfg.combos, cfg.over_budget);
            Ok(PlannedCell {
                spec: spec.clone(),
                system,
                schedules,
                horizon,
                max_events: cfg.max_events,
                params,
            })
        })
        .collect()
}

/// The simulator seed for seed-slot `k` of a campaign.
pub fn sim_seed(campaign_seed: u64, k: u32) -> u64 {
    // SplitMix64 finalizer over (seed, k): decorrelates neighbouring
    // campaign seeds without any per-run state.
    let mut z = campaign_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(k as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Execute one run and score it.
pub fn execute_run(
    cfg: &CampaignConfig,
    cells: &[PlannedCell],
    run_idx: u32,
    cell_idx: u16,
    schedule_id: u32,
    seed_slot: u32,
) -> RunRecord {
    let cell = &cells[cell_idx as usize];
    let sched = &cell.schedules[schedule_id as usize];
    let seed = sim_seed(cfg.seed, seed_slot);
    let report = cell.system.run(&sched.scenario, cell.horizon, seed);
    let violations = score(&cell.system, sched, &report, cfg.slack);
    let recovery_us = report.recovery.bad_window().as_micros();
    // The budget mirrors the verdict's deadline: a sequential schedule
    // may legitimately stay degraded until R past its *last* fault.
    let faults = &sched.scenario.faults;
    let budget_us = match (
        faults.iter().map(|f| f.at).min(),
        faults.iter().map(|f| f.at).max(),
    ) {
        (Some(first), Some(last)) => (last - first).as_micros() + cell.spec.r_bound.as_micros(),
        _ => cell.spec.r_bound.as_micros(),
    };
    let near_misses = report
        .node_stats
        .iter()
        .map(|(_, s, _, _)| s.near_miss_accusations)
        .sum();
    let suppressed = report
        .node_stats
        .iter()
        .map(|(_, s, _, _)| s.suppressed_declarations)
        .sum();
    let convictions = report
        .node_stats
        .iter()
        .map(|(_, _, _, fs)| *fs as u32)
        .max()
        .unwrap_or(0);
    RunRecord {
        run_idx,
        cell_idx,
        schedule_id,
        sim_seed: seed,
        label: sched.label(),
        n_faults: sched.scenario.faults.len() as u8,
        admissible: sched.budget() <= cell.spec.f as usize,
        recovery_us,
        slack_us: budget_us as i64 - recovery_us as i64,
        bad_outputs: report.recovery.bad_outputs as u32,
        total_outputs: report.recovery.total_outputs as u32,
        converged: report.converged,
        near_misses,
        suppressed,
        convictions,
        violations,
    }
}

/// The work-stealing primitive every fleet in this workspace runs on:
/// execute `f(0..n)` on `threads` scoped workers claiming indices from a
/// shared atomic counter, and merge the results back into index order.
/// Because each item is a pure function of its index, the merged vector
/// is **bit-identical at any thread count** — the campaign runner, the
/// fuzzer's batch executor, and the e1–e10 experiment fleet all inherit
/// the determinism contract from this one function.
pub fn run_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    let next = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, T)>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            buckets.push(h.join().expect("work-stealing worker panicked"));
        }
    });
    // Per-worker vectors are already sorted by index (the counter is
    // monotone), so a flatten + sort is cheap.
    let mut items: Vec<(usize, T)> = buckets.into_iter().flatten().collect();
    items.sort_by_key(|(i, _)| *i);
    items.into_iter().map(|(_, t)| t).collect()
}

/// Run the whole grid at `cfg.threads`, returning records in run order
/// plus the wall time of the execution phase.
pub fn execute(cfg: &CampaignConfig, cells: &[PlannedCell]) -> (Vec<RunRecord>, u64) {
    // Lay the grid out cell-major so the report reads naturally.
    let mut specs: Vec<(u16, u32, u32)> = Vec::new();
    for (c, cell) in cells.iter().enumerate() {
        for s in 0..cell.schedules.len() as u32 {
            for k in 0..cfg.sim_seeds.max(1) {
                specs.push((c as u16, s, k));
            }
        }
    }
    let started = std::time::Instant::now();
    let records = run_indexed(specs.len(), cfg.threads, |i| {
        let (c, s, k) = specs[i];
        execute_run(cfg, cells, i as u32, c, s, k)
    });
    let wall_ns = started.elapsed().as_nanos() as u64;
    (records, wall_ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::TopoSpec;
    use crate::schedule::FaultVariant;
    use btr_crypto::AuthSuite;

    /// A one-cell config small enough for unit tests.
    pub(crate) fn tiny_config(threads: usize) -> CampaignConfig {
        CampaignConfig {
            seed: 9,
            runs: 8,
            threads,
            sim_seeds: 1,
            combos: false,
            over_budget: false,
            max_events: 20_000_000,
            slack: Duration::ZERO,
            cells: vec![CellSpec {
                workload: "avionics".into(),
                topo: TopoSpec::Bus {
                    n: 9,
                    bytes_per_ms: 100_000,
                    latency_us: 5,
                },
                f: 1,
                r_bound: Duration::from_millis(150),
                auth: AuthSuite::HmacSha256,
                variants: vec![FaultVariant::CRASH, FaultVariant::COMMISSION],
            }],
        }
    }

    #[test]
    fn run_indexed_merges_in_index_order_at_any_thread_count() {
        let f = |i: usize| (i * i) as u64;
        let seq = run_indexed(37, 1, f);
        assert_eq!(seq.len(), 37);
        for (i, v) in seq.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
        assert_eq!(seq, run_indexed(37, 4, f));
        assert!(run_indexed(0, 3, f).is_empty());
    }

    #[test]
    fn sim_seed_is_stable_and_spread() {
        assert_eq!(sim_seed(7, 0), sim_seed(7, 0));
        assert_ne!(sim_seed(7, 0), sim_seed(7, 1));
        assert_ne!(sim_seed(7, 0), sim_seed(8, 0));
    }

    #[test]
    fn records_are_merged_in_run_order_and_thread_invariant() {
        let cfg1 = tiny_config(1);
        let cells = plan_cells(&cfg1).expect("plans");
        let (seq, _) = execute(&cfg1, &cells);
        assert_eq!(seq.len(), 8);
        for (i, r) in seq.iter().enumerate() {
            assert_eq!(r.run_idx, i as u32);
        }
        let cfg3 = tiny_config(3);
        let (par, _) = execute(&cfg3, &cells);
        assert_eq!(seq, par, "records must not depend on thread count");
    }

    #[test]
    fn default_tiny_campaign_is_clean() {
        let cfg = tiny_config(2);
        let cells = plan_cells(&cfg).expect("plans");
        let (records, _) = execute(&cfg, &cells);
        for r in &records {
            assert!(r.admissible);
            assert!(
                r.violations.is_empty(),
                "run {}: {:?}",
                r.run_idx,
                r.violations
            );
        }
    }
}
