//! Aggregation and the `CAMPAIGN_btr.json` writer.
//!
//! The JSON has two top-level regions: everything before the `"timing"`
//! key is **deterministic** — a pure function of the campaign config and
//! seed, byte-identical at any thread count (pinned by the determinism
//! tests and summarized by `runs_digest`) — while `"timing"` carries
//! wall-clock measurements, including the 1-thread vs N-thread scaling
//! trajectory future PRs track.
//!
//! Serialization crates are stubbed offline (see vendor/README.md), so
//! the writer is hand-rolled; the format is flat and fully controlled.

use crate::runner::RunRecord;
use crate::CampaignOutcome;
use btr_crypto::digest64;
use std::collections::BTreeMap;

/// Recovery-time percentiles over a set of runs (µs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Percentiles {
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Maximum.
    pub max: u64,
}

/// Nearest-rank percentiles of a sample (empty sample = all zeros).
pub fn percentiles(values: &mut [u64]) -> Percentiles {
    if values.is_empty() {
        return Percentiles {
            p50: 0,
            p90: 0,
            p99: 0,
            max: 0,
        };
    }
    values.sort_unstable();
    let at = |pct: u64| -> u64 {
        let idx = (pct * (values.len() as u64 - 1) + 50) / 100;
        values[idx as usize]
    };
    Percentiles {
        p50: at(50),
        p90: at(90),
        p99: at(99),
        max: *values.last().expect("non-empty"),
    }
}

/// Per-group aggregate (fault-kind signature or cell).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupAgg {
    /// Runs in the group.
    pub runs: usize,
    /// Runs with at least one violation.
    pub violations: usize,
    /// Recovery-time percentiles (µs).
    pub recovery: Percentiles,
}

fn aggregate_by<K: Ord, F: Fn(&RunRecord) -> K>(
    records: &[RunRecord],
    key: F,
) -> BTreeMap<K, GroupAgg> {
    let mut samples: BTreeMap<K, (usize, usize, Vec<u64>)> = BTreeMap::new();
    for r in records {
        let e = samples.entry(key(r)).or_insert((0, 0, Vec::new()));
        e.0 += 1;
        e.1 += usize::from(!r.violations.is_empty());
        e.2.push(r.recovery_us);
    }
    samples
        .into_iter()
        .map(|(k, (runs, violations, mut recs))| {
            (
                k,
                GroupAgg {
                    runs,
                    violations,
                    recovery: percentiles(&mut recs),
                },
            )
        })
        .collect()
}

/// Chained digest over every record's deterministic content: a compact
/// fingerprint of the whole run set, so two reports can be compared at a
/// glance (and the determinism tests have one number to pin).
pub fn runs_digest(records: &[RunRecord]) -> u64 {
    let mut h: u64 = 0x5eed_ca3b_a16e_0001;
    let mut buf = Vec::with_capacity(96);
    for r in records {
        buf.clear();
        buf.extend_from_slice(&r.run_idx.to_be_bytes());
        buf.extend_from_slice(&(r.cell_idx as u32).to_be_bytes());
        buf.extend_from_slice(&r.schedule_id.to_be_bytes());
        buf.extend_from_slice(&r.sim_seed.to_be_bytes());
        buf.extend_from_slice(r.label.as_bytes());
        buf.push(r.n_faults);
        buf.push(r.admissible as u8);
        buf.extend_from_slice(&r.recovery_us.to_be_bytes());
        buf.extend_from_slice(&r.slack_us.to_be_bytes());
        buf.extend_from_slice(&r.bad_outputs.to_be_bytes());
        buf.extend_from_slice(&r.total_outputs.to_be_bytes());
        buf.push(r.converged as u8);
        for v in &r.violations {
            buf.extend_from_slice(format!("{v}").as_bytes());
        }
        h = digest64(&[&h.to_be_bytes(), &buf]);
    }
    h
}

/// Fold every admissible run's slack into one mergeable histogram
/// (negative slack — a blown bound — clamps into the zero bucket; the
/// signed minimum is reported alongside).
pub fn slack_histogram(records: &[RunRecord]) -> btr_obs::Histogram {
    let mut h = btr_obs::Histogram::new();
    for r in records.iter().filter(|r| r.admissible) {
        h.record(r.slack_us.max(0) as u64);
    }
    h
}

/// The smallest slack over admissible runs (`None` when there are
/// none): the campaign's scariest schedule.
pub fn min_slack_us(records: &[RunRecord]) -> Option<i64> {
    records
        .iter()
        .filter(|r| r.admissible)
        .map(|r| r.slack_us)
        .min()
}

fn json_str(s: &str) -> String {
    // Labels and tokens are ASCII identifiers/punctuation by
    // construction; escape the two JSON-special characters anyway.
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

fn fault_json(f: &btr_core::InjectedFault) -> String {
    format!(
        "{{\"node\": {}, \"variant\": {}, \"at_us\": {}}}",
        f.node.0,
        json_str(crate::schedule::FaultVariant::of(f).label()),
        f.at.as_micros()
    )
}

fn group_json(indent: &str, agg: &GroupAgg) -> String {
    format!(
        "{{\n{indent}  \"runs\": {}, \"violations\": {},\n\
         {indent}  \"recovery_us\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}\n\
         {indent}}}",
        agg.runs,
        agg.violations,
        agg.recovery.p50,
        agg.recovery.p90,
        agg.recovery.p99,
        agg.recovery.max
    )
}

/// Render the deterministic region of the report (everything except the
/// closing brace and the `"timing"` object). Byte-identical at any
/// thread count for the same campaign config and seed.
pub fn render_deterministic(out: &CampaignOutcome) -> String {
    let cfg = &out.config;
    let mut s = String::new();
    s.push_str("{\n  \"campaign\": \"btr-fault-injection\",\n");

    // Config.
    s.push_str(&format!(
        "  \"config\": {{\n    \"seed\": {},\n    \"requested_runs\": {},\n    \
         \"sim_seeds_per_schedule\": {},\n    \"combos\": {},\n    \"over_budget\": {},\n    \
         \"max_events\": {},\n    \"slack_us\": {},\n    \"cells\": [\n",
        cfg.seed,
        cfg.runs,
        cfg.sim_seeds,
        cfg.combos,
        cfg.over_budget,
        cfg.max_events,
        cfg.slack.as_micros(),
    ));
    for (i, c) in out.cells.iter().enumerate() {
        let variants: Vec<String> = c.variants.iter().map(|v| json_str(v)).collect();
        // The reference-run count profile is deterministic (sequential,
        // seed-pinned, counts not wall), so it renders here rather than
        // in the timing region.
        let profile: Vec<String> = c
            .profile
            .iter()
            .map(|(label, n)| format!("{}: {}", json_str(label), n))
            .collect();
        s.push_str(&format!(
            "      {{\"name\": {}, \"workload\": {}, \"topology\": {}, \"nodes\": {}, \
             \"f\": {}, \"r_bound_us\": {}, \"horizon_us\": {}, \"schedules\": {}, \
             \"variants\": [{}],\n       \"delivered\": {}, \"profile\": {{{}}}}}{}\n",
            json_str(&c.name),
            json_str(&c.workload),
            json_str(&c.topology),
            c.nodes,
            c.f,
            c.r_bound_us,
            c.horizon_us,
            c.schedules,
            variants.join(", "),
            c.delivered,
            profile.join(", "),
            if i + 1 < out.cells.len() { "," } else { "" },
        ));
    }
    s.push_str("    ]\n  },\n");

    // Results.
    let records = &out.records;
    let admissible = records.iter().filter(|r| r.admissible).count();
    let viol_admissible = records
        .iter()
        .filter(|r| r.admissible && !r.violations.is_empty())
        .count();
    let viol_over = records
        .iter()
        .filter(|r| !r.admissible && !r.violations.is_empty())
        .count();
    let truncated = records
        .iter()
        .filter(|r| r.violations.iter().any(|v| v.kind() == "truncated"))
        .count();
    let diverged = records.iter().filter(|r| !r.converged).count();
    s.push_str(&format!(
        "  \"results\": {{\n    \"total_runs\": {},\n    \"admissible_runs\": {},\n    \
         \"violations_admissible\": {},\n    \"violations_over_budget\": {},\n    \
         \"truncated_runs\": {},\n    \"diverged_runs\": {},\n    \"runs_digest\": {},\n",
        records.len(),
        admissible,
        viol_admissible,
        viol_over,
        truncated,
        diverged,
        json_str(&format!("{:016x}", runs_digest(records))),
    ));

    // Slack to R over admissible runs: the minimum scores the
    // campaign's scariest schedule; the log-bucketed histogram gives
    // the distribution without storing per-run samples.
    let slack = slack_histogram(records);
    let q = |p: f64| slack.quantile(p).map_or("null".into(), |v| v.to_string());
    let buckets: Vec<String> = slack
        .nonzero()
        .iter()
        .map(|(ceil, n)| format!("[{ceil}, {n}]"))
        .collect();
    s.push_str(&format!(
        "    \"min_slack_us\": {},\n    \"slack_us\": {{\"p50\": {}, \"p90\": {}, \
         \"p99\": {}, \"max\": {}, \"buckets\": [{}]}},\n",
        min_slack_us(records).map_or("null".to_string(), |v| v.to_string()),
        q(0.5),
        q(0.9),
        q(0.99),
        slack.max().map_or("null".to_string(), |v| v.to_string()),
        buckets.join(", "),
    ));

    let by_variant = aggregate_by(records, |r| r.label.clone());
    s.push_str("    \"by_variant\": {\n");
    let n = by_variant.len();
    for (i, (label, agg)) in by_variant.iter().enumerate() {
        s.push_str(&format!(
            "      {}: {}{}\n",
            json_str(label),
            group_json("      ", agg),
            if i + 1 < n { "," } else { "" }
        ));
    }
    s.push_str("    },\n");

    let by_cell = aggregate_by(records, |r| r.cell_idx);
    s.push_str("    \"by_cell\": {\n");
    let n = by_cell.len();
    for (i, (cell_idx, agg)) in by_cell.iter().enumerate() {
        let name = &out.cells[*cell_idx as usize].name;
        s.push_str(&format!(
            "      {}: {}{}\n",
            json_str(name),
            group_json("      ", agg),
            if i + 1 < n { "," } else { "" }
        ));
    }
    s.push_str("    },\n");

    // Violating runs, in run order.
    s.push_str("    \"violations\": [\n");
    let violating: Vec<&RunRecord> = records
        .iter()
        .filter(|r| !r.violations.is_empty())
        .collect();
    for (i, r) in violating.iter().enumerate() {
        let kinds: Vec<String> = r.violations.iter().map(|v| json_str(v.kind())).collect();
        let details: Vec<String> = r
            .violations
            .iter()
            .map(|v| json_str(&format!("{v}")))
            .collect();
        s.push_str(&format!(
            "      {{\"run\": {}, \"cell\": {}, \"schedule\": {}, \"sim_seed\": {}, \
             \"label\": {}, \"admissible\": {}, \"window_us\": {}, \"kinds\": [{}], \
             \"details\": [{}]}}{}\n",
            r.run_idx,
            json_str(&out.cells[r.cell_idx as usize].name),
            r.schedule_id,
            r.sim_seed,
            json_str(&r.label),
            r.admissible,
            r.recovery_us,
            kinds.join(", "),
            details.join(", "),
            if i + 1 < violating.len() { "," } else { "" },
        ));
    }
    s.push_str("    ],\n");

    // Shrunk reproducers.
    s.push_str("    \"reproducers\": [\n");
    for (i, sh) in out.shrunk.iter().enumerate() {
        let faults: Vec<String> = sh.minimal.faults.iter().map(fault_json).collect();
        s.push_str(&format!(
            "      {{\"run\": {}, \"faults_before\": {}, \"faults_after\": {}, \
             \"probes\": {}, \"minimal\": [{}],\n       \"replay\": {}}}{}\n",
            sh.run_idx,
            sh.faults_before,
            sh.faults_after,
            sh.probes,
            faults.join(", "),
            json_str(&sh.replay),
            if i + 1 < out.shrunk.len() { "," } else { "" },
        ));
    }
    s.push_str("    ]\n  },\n");
    s
}

/// Render the full report: the deterministic region plus `"timing"`.
pub fn render(out: &CampaignOutcome) -> String {
    let mut s = render_deterministic(out);
    s.push_str("  \"timing\": {\n    \"scaling\": [\n");
    for (i, t) in out.scaling.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"threads\": {}, \"wall_ns\": {}, \"runs_per_sec\": {:.1}}}{}\n",
            t.threads,
            t.wall_ns,
            t.runs_per_sec(),
            if i + 1 < out.scaling.len() { "," } else { "" },
        ));
    }
    let speedup = match (out.scaling.first(), out.scaling.last()) {
        (Some(a), Some(b)) if a.threads != b.threads && b.wall_ns > 0 => {
            format!("{:.2}", a.wall_ns as f64 / b.wall_ns as f64)
        }
        _ => "null".to_string(),
    };
    s.push_str(&format!(
        "    ],\n    \"parallel_speedup\": {speedup}\n  }}\n}}\n"
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let mut v: Vec<u64> = (1..=100).collect();
        let p = percentiles(&mut v);
        // Nearest rank over indices 0..=99: p50 -> index 50 -> value 51.
        assert_eq!(p.p50, 51);
        assert_eq!(p.p90, 90);
        assert_eq!(p.p99, 99);
        assert_eq!(p.max, 100);
        let mut single = vec![7];
        let p = percentiles(&mut single);
        assert_eq!((p.p50, p.max), (7, 7));
        let p = percentiles(&mut []);
        assert_eq!(p.max, 0);
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let mk = |idx: u32, recovery: u64| RunRecord {
            run_idx: idx,
            cell_idx: 0,
            schedule_id: idx,
            sim_seed: 1,
            label: "crash".into(),
            n_faults: 1,
            admissible: true,
            recovery_us: recovery,
            slack_us: 150_000 - recovery as i64,
            bad_outputs: 0,
            total_outputs: 10,
            converged: true,
            near_misses: 0,
            suppressed: 0,
            convictions: 1,
            violations: Vec::new(),
        };
        let a = vec![mk(0, 100), mk(1, 200)];
        let b = vec![mk(1, 200), mk(0, 100)];
        let c = vec![mk(0, 100), mk(1, 201)];
        assert_eq!(runs_digest(&a), runs_digest(&a));
        assert_ne!(runs_digest(&a), runs_digest(&b));
        assert_ne!(runs_digest(&a), runs_digest(&c));
        // The fuzzer-score counters are deliberately *outside* the
        // digest: pre-existing tokens and pinned digests must not move.
        let mut d = vec![mk(0, 100), mk(1, 200)];
        d[1].near_misses = 7;
        d[1].suppressed = 3;
        d[1].convictions = 9;
        assert_eq!(runs_digest(&a), runs_digest(&d));
    }

    #[test]
    fn slack_aggregation_scores_the_scariest_schedule() {
        let mk = |idx: u32, recovery: u64, admissible: bool| RunRecord {
            run_idx: idx,
            cell_idx: 0,
            schedule_id: idx,
            sim_seed: 1,
            label: "crash".into(),
            n_faults: 1,
            admissible,
            recovery_us: recovery,
            slack_us: 150_000 - recovery as i64,
            bad_outputs: 0,
            total_outputs: 10,
            converged: true,
            near_misses: 0,
            suppressed: 0,
            convictions: 1,
            violations: Vec::new(),
        };
        let records = vec![
            mk(0, 100_000, true),
            mk(1, 20_000, true),
            mk(2, 160_000, true),
        ];
        assert_eq!(min_slack_us(&records), Some(-10_000));
        let h = slack_histogram(&records);
        assert_eq!(h.count(), 3);
        // A blown bound clamps into the zero bucket but keeps its sign
        // in the minimum.
        assert_eq!(h.min(), Some(0));
        // Inadmissible runs never score: over-budget schedules have no
        // slack claim to make.
        let records = vec![mk(0, 100_000, true), mk(2, 160_000, false)];
        assert_eq!(min_slack_us(&records), Some(50_000));
        assert_eq!(slack_histogram(&records).count(), 1);
        assert_eq!(min_slack_us(&[]), None);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("q\"q"), "\"q\\\"q\"");
    }
}
