//! # btr-campaign — parallel fault-injection campaigns
//!
//! The paper's whole claim is a *bound*: under any admissible fault
//! pattern, recovery completes within R (Definition 3.1). The experiment
//! suite checks a handful of hand-written scenarios; this crate turns
//! the `Attack`/`FaultScenario` machinery into an adversarial *campaign*
//! engine that sweeps the fault space systematically and triages what it
//! finds:
//!
//! * [`schedule`] — deterministic schedule generation: boundary
//!   enumeration straddling period/deadline instants plus seeded
//!   sampling of sequential multi-fault scripts up to (and, on request,
//!   beyond) the budget f. A pure function of the seed.
//! * [`grid`] — the campaign grid: planned (workload × platform × f)
//!   cells, each pinned to the fault-variant space it is known to cover.
//! * [`runner`] — a work-stealing parallel runner on
//!   `std::thread::scope`; results merge in run order, so reports are
//!   bit-identical at any thread count.
//! * [`verdict`] — the oracle: R-bound, pre-fault correctness, and
//!   criticality-ordered shedding.
//! * [`shrink`] — delta-debugs violating schedules to minimal
//!   reproducers (fewest faults, latest activation).
//! * [`replay`] — one-string replay tokens for shrunk reproducers.
//! * [`report`] — aggregation and the `CAMPAIGN_btr.json` writer, with
//!   a deterministic region and a separate timing region that records
//!   the 1-thread vs N-thread scaling trajectory.
//! * [`score`] — fuzzer run scoring (slack-to-R, evidence-pool near
//!   misses, excess convictions) and the phase-timeline coverage
//!   signature.
//! * [`corpus`] — the fuzzer's bounded corpus, deduped by
//!   shrinker-canonical replay keys.
//! * [`fuzz`] — coverage-guided schedule search over the mutation
//!   operators, generational and byte-identical at any thread count;
//!   writes `FUZZ_btr.json`.
//!
//! Entry points: [`run_campaign`], [`fuzz::run_fuzz`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod fuzz;
pub mod grid;
pub mod replay;
pub mod report;
pub mod runner;
pub mod schedule;
pub mod score;
pub mod shrink;
pub mod verdict;

pub use corpus::Corpus;
pub use fuzz::{run_fuzz, FuzzConfig, FuzzOutcome};
pub use grid::{
    all_variant_grid, auth_sweep, default_grid, fuzz_grid, with_auth, CellError, CellSpec, TopoSpec,
};
pub use runner::{CampaignConfig, RunRecord};
pub use schedule::{FaultSchedule, FaultVariant, ScheduleParams};
pub use shrink::ShrinkOutcome;
pub use verdict::Violation;

/// Wall-clock measurement of one execution pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timing {
    /// Worker threads used.
    pub threads: usize,
    /// Wall time of the execution phase (ns).
    pub wall_ns: u64,
    /// Runs executed.
    pub runs: usize,
}

impl Timing {
    /// Campaign throughput in runs per wall-clock second.
    pub fn runs_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return f64::NAN;
        }
        self.runs as f64 / (self.wall_ns as f64 / 1e9)
    }
}

/// Static summary of one planned cell (for the report header).
#[derive(Debug, Clone)]
pub struct CellSummary {
    /// Display name.
    pub name: String,
    /// Workload family.
    pub workload: String,
    /// Topology token.
    pub topology: String,
    /// Node count.
    pub nodes: usize,
    /// Fault budget.
    pub f: u8,
    /// Recovery bound (µs).
    pub r_bound_us: u64,
    /// Judging horizon (µs).
    pub horizon_us: u64,
    /// Schedules generated for the cell.
    pub schedules: usize,
    /// Variant labels scheduled on the cell.
    pub variants: Vec<&'static str>,
    /// Digest-stable per-subsystem event counts from one observed
    /// fault-free reference run of the cell (zero subsystems omitted).
    /// A pure function of the cell and campaign seed, so it lives in
    /// the report's deterministic region.
    pub profile: Vec<(&'static str, u64)>,
    /// Messages delivered in the reference run.
    pub delivered: u64,
}

/// Everything a finished campaign produced.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// The configuration the campaign ran with.
    pub config: CampaignConfig,
    /// Per-cell summaries, in grid order.
    pub cells: Vec<CellSummary>,
    /// Every scored run, in run order (deterministic).
    pub records: Vec<RunRecord>,
    /// Minimal reproducers for violating runs (capped).
    pub shrunk: Vec<ShrinkOutcome>,
    /// Execution timings: always the 1-thread pass, plus the N-thread
    /// pass when more than one thread was requested.
    pub scaling: Vec<Timing>,
}

impl CampaignOutcome {
    /// Violating runs that were within the admitted fault budget — the
    /// count CI gates on (zero on the default grid).
    pub fn admissible_violations(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.admissible && !r.violations.is_empty())
            .count()
    }

    /// Render the full `CAMPAIGN_btr.json` contents.
    pub fn to_json(&self) -> String {
        report::render(self)
    }
}

/// Campaign-level failures.
#[derive(Debug)]
pub enum CampaignError {
    /// A grid cell failed to plan.
    Cell(CellError),
    /// The parallel pass disagreed with the sequential pass — a
    /// determinism bug in the stack, reported rather than papered over.
    Nondeterministic {
        /// Index of the first diverging run.
        first_divergence: u32,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Cell(e) => write!(f, "{e}"),
            CampaignError::Nondeterministic { first_divergence } => write!(
                f,
                "parallel execution diverged from sequential at run {first_divergence}"
            ),
        }
    }
}

impl std::error::Error for CampaignError {}

/// One observed fault-free reference run of a planned cell: the
/// digest-stable subsystem count profile and delivered-message total
/// for the report header. Event counts are a pure function of the
/// logical schedule — thread- and suite-invariant — so they belong in
/// the deterministic region alongside the cell's static summary.
fn cell_profile(
    cell: &runner::PlannedCell,
    cfg: &CampaignConfig,
) -> (Vec<(&'static str, u64)>, u64) {
    use btr_obs::{ObsRecorder, Subsystem};
    let scenario = btr_core::FaultScenario::none();
    let mut w = cell
        .system
        .build_world(&scenario, runner::sim_seed(cfg.seed, 0));
    w.set_recorder(Box::new(ObsRecorder::new()));
    w.start();
    w.run_until(btr_model::Time::ZERO + cell.horizon + cell.system.grace());
    let delivered = w.metrics().msgs_delivered;
    let rec = w
        .take_recorder()
        .and_then(|r| {
            r.as_any()
                .and_then(|a| a.downcast_ref::<ObsRecorder>().cloned())
        })
        .unwrap_or_default();
    let prof = rec.subsystem_profile();
    let counts = Subsystem::all()
        .iter()
        .filter_map(|&s| {
            let n = prof.count(s);
            (n > 0).then_some((s.label(), n))
        })
        .collect();
    (counts, delivered)
}

/// How many violating runs get shrunk per campaign (shrinking costs
/// dozens of probe simulations each; the first few reproducers are the
/// actionable ones).
pub const MAX_SHRINKS: usize = 4;

/// Simulation-probe budget per shrink.
pub const SHRINK_PROBES: u32 = 96;

/// Plan, execute, verify determinism, shrink, and summarize a campaign.
///
/// The grid always runs once at 1 thread, and again at `cfg.threads`
/// when more are requested. The two record sets must be identical — the
/// second pass doubles as a standing determinism check on the whole
/// stack — and both wall times are reported as the scaling trajectory.
pub fn run_campaign(cfg: &CampaignConfig) -> Result<CampaignOutcome, CampaignError> {
    let cells = runner::plan_cells(cfg).map_err(CampaignError::Cell)?;

    let mut seq_cfg = cfg.clone();
    seq_cfg.threads = 1;
    let (records, seq_wall) = runner::execute(&seq_cfg, &cells);
    let mut scaling = vec![Timing {
        threads: 1,
        wall_ns: seq_wall,
        runs: records.len(),
    }];

    if cfg.threads > 1 {
        let (par_records, par_wall) = runner::execute(cfg, &cells);
        if let Some(first) = records
            .iter()
            .zip(&par_records)
            .position(|(a, b)| a != b)
            .or((records.len() != par_records.len())
                .then_some(records.len().min(par_records.len())))
        {
            return Err(CampaignError::Nondeterministic {
                first_divergence: first as u32,
            });
        }
        scaling.push(Timing {
            threads: cfg.threads,
            wall_ns: par_wall,
            runs: par_records.len(),
        });
    }

    // Shrink the first few violating runs to minimal reproducers.
    let mut shrunk = Vec::new();
    for r in records.iter().filter(|r| !r.violations.is_empty()) {
        if shrunk.len() >= MAX_SHRINKS {
            break;
        }
        let cell = &cells[r.cell_idx as usize];
        let schedule = &cell.schedules[r.schedule_id as usize];
        shrunk.push(shrink::shrink_violation(
            cell,
            schedule,
            r.sim_seed,
            r.run_idx,
            cfg.slack,
            SHRINK_PROBES,
        ));
    }

    let cells_summary = cells
        .iter()
        .map(|c| {
            let (profile, delivered) = cell_profile(c, cfg);
            CellSummary {
                name: c.spec.name(),
                workload: c.spec.workload.clone(),
                topology: c.spec.topo.token(),
                nodes: c.spec.topo.n_nodes(),
                f: c.spec.f,
                r_bound_us: c.spec.r_bound.as_micros(),
                horizon_us: c.horizon.as_micros(),
                schedules: c.schedules.len(),
                variants: c.spec.variants.iter().map(|v| v.label()).collect(),
                profile,
                delivered,
            }
        })
        .collect();

    Ok(CampaignOutcome {
        config: cfg.clone(),
        cells: cells_summary,
        records,
        shrunk,
        scaling,
    })
}
