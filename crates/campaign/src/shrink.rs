//! Delta-debugging shrinker for violating schedules.
//!
//! Given a run whose oracle verdict is non-empty, reduce the schedule to
//! a minimal reproducer along two axes, re-running the (deterministic)
//! simulation as the predicate:
//!
//! 1. **Fewest faults** — greedily drop any fault whose removal keeps
//!    the violation alive, to a local fixed point (classic ddmin with
//!    single-element granularity; schedules are ≤ f+1 faults, so the
//!    quadratic loop is cheap).
//! 2. **Latest activation** — for each surviving fault, push its
//!    activation as late as possible (1 ms granularity, bisection) while
//!    the violation persists. Late activations make reproducers fast to
//!    eyeball: everything before the activation is known-good.
//!
//! The outcome carries a replay token; `harness campaign --replay`
//! re-executes it bit-for-bit.

use crate::runner::PlannedCell;
use crate::schedule::FaultSchedule;
use crate::verdict::score;
use btr_core::FaultScenario;
use btr_model::{Duration, Time};

/// The result of shrinking one violating run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShrinkOutcome {
    /// The run that was shrunk.
    pub run_idx: u32,
    /// Faults before shrinking.
    pub faults_before: usize,
    /// Faults in the minimal reproducer.
    pub faults_after: usize,
    /// Simulation probes spent.
    pub probes: u32,
    /// The minimal violating scenario.
    pub minimal: FaultScenario,
    /// Replay token for `harness campaign --replay`.
    pub replay: String,
}

/// Shrink a violating schedule to a minimal reproducer.
///
/// `max_probes` bounds the simulation budget; when exhausted the current
/// (still-violating) scenario is returned as-is.
pub fn shrink_violation(
    cell: &PlannedCell,
    schedule: &FaultSchedule,
    sim_seed: u64,
    run_idx: u32,
    slack: Duration,
    max_probes: u32,
) -> ShrinkOutcome {
    let probes = std::cell::Cell::new(0u32);
    let violates = |scenario: &FaultScenario| -> bool {
        probes.set(probes.get() + 1);
        let probe = FaultSchedule {
            id: schedule.id,
            scenario: scenario.clone(),
        };
        let report = cell.system.run(scenario, cell.horizon, sim_seed);
        !score(&cell.system, &probe, &report, slack).is_empty()
    };

    // The initial probe always runs (and counts), so `probes` — which is
    // part of the deterministic report — is identical in debug and
    // release builds.
    let mut current = schedule.scenario.clone();
    assert!(violates(&current), "shrinker fed a non-violating run");

    // Phase 1: fewest faults (greedy single-removal fixed point).
    loop {
        let mut reduced = false;
        let mut i = current.faults.len();
        while i > 0 && current.faults.len() > 1 && probes.get() < max_probes {
            i -= 1;
            let mut candidate = current.clone();
            candidate.faults.remove(i);
            if violates(&candidate) {
                current = candidate;
                reduced = true;
            }
        }
        if !reduced || current.faults.len() == 1 || probes.get() >= max_probes {
            break;
        }
    }

    // Phase 2: latest activation per surviving fault. The violation
    // predicate is monotone enough in practice (later activation leaves
    // less horizon for recovery to be judged); bisection maintains the
    // invariant that `lo` violates, so the result is always a valid
    // reproducer even where monotonicity fails. The fault under
    // bisection is tracked by its node (unique within a scenario —
    // re-sorting candidates by activation time moves indices around),
    // and every probed candidate is kept time-sorted so the scenario
    // that was last verified is exactly the scenario returned.
    let horizon_us = cell.horizon.as_micros();
    let r_us = cell.spec.r_bound.as_micros();
    let latest_probe = horizon_us.saturating_sub(r_us + 20_000);
    let victims: Vec<_> = current.faults.iter().map(|f| f.node).collect();
    let with_at = |base: &FaultScenario, node: btr_model::NodeId, at: u64| -> FaultScenario {
        let mut c = base.clone();
        let i = c
            .faults
            .iter()
            .position(|f| f.node == node)
            .expect("victims never change in phase 2");
        c.faults[i].at = Time(at);
        c.faults.sort_by_key(|f| f.at);
        c
    };
    for node in victims {
        let at_of = |sc: &FaultScenario| {
            sc.faults
                .iter()
                .find(|f| f.node == node)
                .expect("victims never change in phase 2")
                .at
                .as_micros()
        };
        let mut lo = at_of(&current);
        if lo >= latest_probe || probes.get() >= max_probes {
            continue;
        }
        let mut hi = latest_probe;
        {
            // Try the far end first: if it violates, skip the bisection.
            let candidate = with_at(&current, node, hi);
            if violates(&candidate) {
                current = candidate;
                continue;
            }
        }
        while hi - lo > 1_000 && probes.get() < max_probes {
            let mid = lo + (hi - lo) / 2;
            let candidate = with_at(&current, node, mid);
            if violates(&candidate) {
                lo = mid;
                current = candidate;
            } else {
                hi = mid;
            }
        }
    }

    let replay = crate::replay::token(
        &cell.spec,
        sim_seed,
        cell.horizon,
        cell.max_events,
        &current,
    );
    ShrinkOutcome {
        run_idx,
        faults_before: schedule.scenario.faults.len(),
        faults_after: current.faults.len(),
        probes: probes.get(),
        minimal: current,
        replay,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{CellSpec, TopoSpec};
    use crate::runner::{plan_cells, CampaignConfig};
    use crate::schedule::FaultVariant;
    use btr_crypto::AuthSuite;
    use btr_model::NodeId;

    /// A cell whose R is deliberately unachievable (1 ms), so any crash
    /// violates the bound — the equivocation gap the original shrink
    /// test leaned on is fixed, and a violating run now has to be
    /// constructed, not found.
    pub(crate) fn tight_r_cell() -> PlannedCell {
        let cfg = CampaignConfig {
            seed: 1,
            runs: 1,
            threads: 1,
            sim_seeds: 1,
            combos: false,
            over_budget: false,
            max_events: 20_000_000,
            slack: Duration::ZERO,
            cells: vec![CellSpec {
                workload: "avionics".into(),
                topo: TopoSpec::Bus {
                    n: 9,
                    bytes_per_ms: 100_000,
                    latency_us: 5,
                },
                f: 1,
                r_bound: Duration::from_millis(1),
                auth: AuthSuite::HmacSha256,
                variants: vec![FaultVariant::CRASH],
            }],
        };
        plan_cells(&cfg).expect("plans").remove(0)
    }

    #[test]
    fn shrinks_to_single_fault_and_later_activation() {
        let cell = tight_r_cell();
        // Two faults; the node-6 crash alone already violates the 1 ms
        // bound, so the commission rider must be shed by phase 1 and the
        // crash activation pushed later by phase 2.
        let schedule = FaultSchedule {
            id: 0,
            scenario: FaultScenario {
                faults: vec![
                    FaultVariant::CRASH.inject(NodeId(6), Time::from_millis(52)),
                    FaultVariant::COMMISSION.inject(NodeId(5), Time::from_millis(250)),
                ],
            },
        };
        let seed = 7;
        let out = shrink_violation(&cell, &schedule, seed, 0, Duration::ZERO, 64);
        assert_eq!(out.faults_before, 2);
        assert_eq!(out.faults_after, 1, "minimal: {:?}", out.minimal);
        assert_eq!(out.minimal.faults[0].node, NodeId(6));
        assert!(
            out.minimal.faults[0].at > Time::from_millis(52),
            "activation should move later, got {}",
            out.minimal.faults[0].at
        );
        // The minimal reproducer still violates, deterministically.
        let report = cell.system.run(&out.minimal, cell.horizon, seed);
        let probe = FaultSchedule {
            id: 0,
            scenario: out.minimal.clone(),
        };
        assert!(!score(&cell.system, &probe, &report, Duration::ZERO).is_empty());
        assert!(out.replay.contains("crash"));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::schedule::FaultVariant;
    use crate::verdict::Violation;
    use btr_model::NodeId;
    use proptest::prelude::*;

    fn kinds(cell: &PlannedCell, scenario: &FaultScenario, seed: u64) -> Vec<&'static str> {
        let probe = FaultSchedule {
            id: 0,
            scenario: scenario.clone(),
        };
        let report = cell.system.run(scenario, cell.horizon, seed);
        let mut k: Vec<&'static str> = score(&cell.system, &probe, &report, Duration::ZERO)
            .iter()
            .map(Violation::kind)
            .collect();
        k.sort_unstable();
        k.dedup();
        k
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// The shrinker's contract, over random violating crash schedules
        /// on a deliberately unmeetable R: the minimal reproducer (1)
        /// still violates, (2) breaks the same claim kinds as the
        /// original, (3) is no larger, with activations moved only
        /// later, and (4) shrinking the minimal reproducer again is a
        /// fixed point — the reproducers frozen into replay tokens are
        /// stable under re-triage.
        #[test]
        fn prop_shrink_invariants(
            victims in proptest::collection::btree_set(0u32..9, 1..3),
            at_ms in 40u64..180,
            seed in 1u64..5,
        ) {
            let cell = super::tests::tight_r_cell();
            let faults: Vec<_> = victims
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    FaultVariant::CRASH
                        .inject(NodeId(v), btr_model::Time::from_millis(at_ms + 20 * i as u64))
                })
                .collect();
            let scenario = FaultScenario { faults };
            let original_kinds = kinds(&cell, &scenario, seed);
            prop_assume!(!original_kinds.is_empty());

            let schedule = FaultSchedule { id: 0, scenario: scenario.clone() };
            let out = shrink_violation(&cell, &schedule, seed, 0, Duration::ZERO, 48);

            // (1) + (2): still violating, same claim kinds.
            let shrunk_kinds = kinds(&cell, &out.minimal, seed);
            prop_assert!(!shrunk_kinds.is_empty(), "shrunk reproducer stopped violating");
            prop_assert_eq!(&shrunk_kinds, &original_kinds);

            // (3): no larger; every surviving fault only moved later.
            prop_assert!(out.faults_after <= out.faults_before);
            prop_assert_eq!(out.faults_after, out.minimal.faults.len());
            for f in &out.minimal.faults {
                let orig = scenario
                    .faults
                    .iter()
                    .find(|o| o.node == f.node)
                    .expect("shrinker never invents victims");
                prop_assert!(f.at >= orig.at, "activation moved earlier");
                prop_assert_eq!(f.kind, orig.kind);
            }

            // (4): fixed point under re-shrinking.
            let again = shrink_violation(
                &cell,
                &FaultSchedule { id: 0, scenario: out.minimal.clone() },
                seed,
                0,
                Duration::ZERO,
                48,
            );
            prop_assert_eq!(&again.minimal, &out.minimal);
            prop_assert_eq!(again.replay, out.replay);
        }
    }
}
