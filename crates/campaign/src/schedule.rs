//! Deterministic fault-schedule generation.
//!
//! A *schedule* is a concrete adversarial script — which nodes are
//! compromised, when, and with which manifestation — drawn from the full
//! [`Attack`](btr_runtime::Attack) space the fault injector can express.
//! The generator is a **pure function of its parameters and seed**: the
//! same `(params, seed, count)` always yields the same schedule set, on
//! any machine, at any thread count. Campaign reports and replay tokens
//! rely on this.
//!
//! Two phases:
//!
//! 1. **Boundary enumeration** (seed-independent): every fault variant is
//!    activated at instants straddling a period boundary and a sink
//!    deadline (`kP-1, kP, kP+1` and `kP+D-1, kP+D, kP+D+1`), because
//!    off-by-one windows in the detector or the oracle live exactly
//!    there.
//! 2. **Seeded sampling**: random schedules of 1..=f faults (optionally
//!    f+1 when `over_budget` is set) on distinct victims, with
//!    activation gaps in `[gap_min, gap_max]` — the paper's "trigger a
//!    new fault every R" sequential-adversary model.

use btr_core::{FaultMods, FaultScenario, InjectedFault};
use btr_model::{Duration, FaultKind, NodeId, Time};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// One concrete attack variant: a fault kind plus its sub-strategy.
///
/// This is the campaign's unit of fault-space coverage. `Babble` is
/// deliberately absent: the paper's claim for babbling is *containment*
/// by link guardians (a bandwidth argument), not bounded-time recovery,
/// so it is not judged against R.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultVariant {
    /// The fault family.
    pub kind: FaultKind,
    /// Refinements within the family.
    pub mods: FaultMods,
}

const NO_MODS: FaultMods = FaultMods {
    garble_commitment: false,
    drop_heartbeats: false,
};

impl FaultVariant {
    /// Crash (fail-stop).
    pub const CRASH: FaultVariant = FaultVariant {
        kind: FaultKind::Crash,
        mods: NO_MODS,
    };
    /// Output omission, heartbeats kept (distinguishable from a crash).
    pub const OMISSION: FaultVariant = FaultVariant {
        kind: FaultKind::Omission,
        mods: NO_MODS,
    };
    /// Omission of outputs *and* heartbeats (masquerades as a crash).
    pub const OMISSION_STEALTH: FaultVariant = FaultVariant {
        kind: FaultKind::Omission,
        mods: FaultMods {
            garble_commitment: false,
            drop_heartbeats: true,
        },
    };
    /// Wrong values with honest commitments (caught by re-execution).
    pub const COMMISSION: FaultVariant = FaultVariant {
        kind: FaultKind::Commission,
        mods: NO_MODS,
    };
    /// Wrong values with garbled commitments (caught via `BadWitness`).
    pub const COMMISSION_GARBLED: FaultVariant = FaultVariant {
        kind: FaultKind::Commission,
        mods: FaultMods {
            garble_commitment: true,
            drop_heartbeats: false,
        },
    };
    /// Right values at the wrong time.
    pub const TIMING: FaultVariant = FaultVariant {
        kind: FaultKind::Timing,
        mods: NO_MODS,
    };
    /// Conflicting signed outputs to different consumers.
    pub const EQUIVOCATION: FaultVariant = FaultVariant {
        kind: FaultKind::Equivocation,
        mods: NO_MODS,
    };
    /// Bogus-evidence flooding of the verifiers.
    pub const EVIDENCE_SPAM: FaultVariant = FaultVariant {
        kind: FaultKind::EvidenceSpam,
        mods: NO_MODS,
    };

    /// Every variant the campaign can schedule, in stable order.
    pub const ALL: [FaultVariant; 8] = [
        FaultVariant::CRASH,
        FaultVariant::OMISSION,
        FaultVariant::OMISSION_STEALTH,
        FaultVariant::COMMISSION,
        FaultVariant::COMMISSION_GARBLED,
        FaultVariant::TIMING,
        FaultVariant::EQUIVOCATION,
        FaultVariant::EVIDENCE_SPAM,
    ];

    /// Stable label, also the replay-token spelling.
    pub fn label(&self) -> &'static str {
        match (
            self.kind,
            self.mods.garble_commitment,
            self.mods.drop_heartbeats,
        ) {
            (FaultKind::Crash, ..) => "crash",
            (FaultKind::Omission, _, true) => "omission-stealth",
            (FaultKind::Omission, ..) => "omission",
            (FaultKind::Commission, true, _) => "commission-garbled",
            (FaultKind::Commission, ..) => "commission",
            (FaultKind::Timing, ..) => "timing",
            (FaultKind::Equivocation, ..) => "equivocation",
            (FaultKind::EvidenceSpam, ..) => "evidence-spam",
            (FaultKind::Babble, ..) => "babble",
        }
    }

    /// Parse a replay-token spelling back into a variant.
    pub fn parse(s: &str) -> Option<FaultVariant> {
        FaultVariant::ALL.into_iter().find(|v| v.label() == s)
    }

    /// The injected fault this variant produces on `node` at `at`.
    pub fn inject(&self, node: NodeId, at: Time) -> InjectedFault {
        InjectedFault::new(node, self.kind, at).with_mods(self.mods)
    }

    /// The variant of an injected fault (labels round-trip through this).
    pub fn of(fault: &InjectedFault) -> FaultVariant {
        // Normalize mods to the ones the kind actually consumes, so label
        // and equality are canonical.
        let mods = match fault.kind {
            FaultKind::Omission => FaultMods {
                garble_commitment: false,
                drop_heartbeats: fault.mods.drop_heartbeats,
            },
            FaultKind::Commission => FaultMods {
                garble_commitment: fault.mods.garble_commitment,
                drop_heartbeats: false,
            },
            _ => NO_MODS,
        };
        FaultVariant {
            kind: fault.kind,
            mods,
        }
    }
}

impl std::fmt::Display for FaultVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Generator parameters (fixed per campaign cell).
#[derive(Debug, Clone)]
pub struct ScheduleParams {
    /// Number of platform nodes (victims are drawn from 0..n).
    pub n_nodes: u32,
    /// Fault budget f of the cell's strategy.
    pub f: u8,
    /// The system period P.
    pub period: Duration,
    /// A representative sink deadline (boundary enumeration straddles it).
    pub deadline: Duration,
    /// Earliest activation (leave startup transients alone).
    pub first_at: Time,
    /// Latest activation of a schedule's *first* fault.
    pub last_at: Time,
    /// Activation gap range for sequential multi-fault schedules.
    pub gap: (Duration, Duration),
    /// The fault variants this cell schedules.
    pub variants: Vec<FaultVariant>,
    /// Sample sequential multi-fault schedules up to budget f. Off by
    /// default: the sequential space is a hunting ground (the campaign
    /// found false-attribution cascades there — see EXPERIMENTS.md
    /// campaign findings), so CI's zero-violation gate covers singles.
    pub combos: bool,
    /// Also emit schedules with f+1 distinct victims (inadmissible by
    /// construction — they exceed what the strategy covers and are
    /// expected to violate the bound; the shrinker triages them).
    pub over_budget: bool,
}

impl ScheduleParams {
    /// The maximum number of faults a generated schedule can contain.
    pub fn max_faults(&self) -> u32 {
        if self.over_budget {
            self.f as u32 + 1
        } else if self.combos {
            self.f as u32
        } else {
            1
        }
    }
}

/// One generated schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSchedule {
    /// Dense id within the cell's schedule set (stable across runs).
    pub id: u32,
    /// The adversarial script, faults ordered by activation time.
    pub scenario: FaultScenario,
}

impl FaultSchedule {
    /// Kind signature in activation order, e.g. `crash+omission`.
    pub fn label(&self) -> String {
        let mut s = String::new();
        for (i, f) in self.scenario.faults.iter().enumerate() {
            if i > 0 {
                s.push('+');
            }
            s.push_str(FaultVariant::of(f).label());
        }
        if s.is_empty() {
            s.push_str("fault-free");
        }
        s
    }

    /// Number of distinct compromised nodes.
    pub fn budget(&self) -> usize {
        self.scenario.compromised().len()
    }
}

/// Generate `count` schedules. Pure function of `(params, seed, count)`.
pub fn generate(params: &ScheduleParams, seed: u64, count: usize) -> Vec<FaultSchedule> {
    assert!(params.n_nodes > 0, "need at least one node");
    assert!(!params.variants.is_empty(), "need at least one variant");
    let mut out = Vec::with_capacity(count);

    // Phase 1: boundary enumeration, up to half the requested schedules.
    let boundary = boundary_schedules(params);
    let quota = boundary.len().min(count.div_ceil(2));
    for i in 0..quota {
        // Spread evenly over the full boundary set when truncating, so a
        // small campaign still touches every variant.
        let pick = i * boundary.len() / quota.max(1);
        out.push(boundary[pick].clone());
    }

    // Phase 2: seeded sampling for the remainder.
    let mut rng = SmallRng::seed_from_u64(seed);
    while out.len() < count {
        out.push(sample_schedule(params, &mut rng));
    }

    for (i, s) in out.iter_mut().enumerate() {
        s.id = i as u32;
    }
    out
}

/// The full boundary-enumeration set: every variant activated at instants
/// straddling a period boundary and a sink deadline.
fn boundary_schedules(params: &ScheduleParams) -> Vec<FaultSchedule> {
    let p = params.period.as_micros();
    let d = params.deadline.as_micros().min(p.saturating_sub(1));
    // First whole period at or after `first_at`, plus one for margin.
    let k = params.first_at.as_micros().div_ceil(p) + 1;
    let base = k * p;
    let instants = [
        base - 1,
        base,
        base + 1,
        base + d - 1,
        base + d,
        base + d + 1,
    ];
    let mut out = Vec::new();
    for (iv, v) in params.variants.iter().enumerate() {
        for (it, &t) in instants.iter().enumerate() {
            // Rotate victims so one node is not the only one probed.
            let victim = NodeId(((iv + it) % params.n_nodes as usize) as u32);
            out.push(FaultSchedule {
                id: 0, // renumbered by `generate`
                scenario: FaultScenario {
                    faults: vec![v.inject(victim, Time(t))],
                },
            });
        }
    }
    out
}

/// Draw one random schedule: single faults by default, 1..=f sequential
/// faults with `combos`, and f+1 faults on a fixed cadence when
/// over-budget is enabled. Victims are distinct.
fn sample_schedule(params: &ScheduleParams, rng: &mut SmallRng) -> FaultSchedule {
    let budget_cap = (params.f as u32).min(params.n_nodes).max(1);
    let max_admissible = if params.combos { budget_cap } else { 1 };
    let over = params.over_budget && params.n_nodes > budget_cap && rng.gen_range(0u32..4) == 0;
    let n_faults = if over {
        budget_cap + 1
    } else if max_admissible == 1 {
        1
    } else {
        rng.gen_range(1..=max_admissible)
    };

    // Distinct victims via partial Fisher-Yates over the node ids.
    let mut pool: Vec<u32> = (0..params.n_nodes).collect();
    let mut victims = Vec::with_capacity(n_faults as usize);
    for _ in 0..n_faults {
        let j = rng.gen_range(0..pool.len());
        victims.push(pool.swap_remove(j));
    }

    let first_span = params
        .last_at
        .as_micros()
        .saturating_sub(params.first_at.as_micros())
        .max(1);
    let mut at = params.first_at.as_micros() + rng.gen_range(0..first_span);
    let mut faults = Vec::with_capacity(n_faults as usize);
    for (i, &victim) in victims.iter().enumerate() {
        if i > 0 {
            let (lo, hi) = (params.gap.0.as_micros(), params.gap.1.as_micros());
            at += if hi > lo { rng.gen_range(lo..=hi) } else { lo };
        }
        let v = params.variants[rng.gen_range(0..params.variants.len())];
        faults.push(v.inject(NodeId(victim), Time(at)));
    }
    FaultSchedule {
        id: 0,
        scenario: FaultScenario { faults },
    }
}

/// Number of seeded mutation operators `mutate` dispatches over.
pub const MUTATION_OPS: u32 = 4;

/// Mutate a schedule with one seeded operator. Pure function of
/// `(params, sched, seed)` — the fuzzer's byte-identical-at-any-thread-
/// count contract rests on this purity.
///
/// Operators (dispatched by the seed, with deterministic fallback to the
/// next one when the drawn operator is inapplicable):
///
/// 1. **Shift** one activation onto a nearby period/deadline boundary
///    instant (`kP±1`, `kP+D±1`) — off-by-one windows live there.
/// 2. **Swap** one victim for a node the schedule does not already use.
/// 3. **Toggle** the variant: flip `FaultMods` counterparts
///    (omission↔stealth, commission↔garbled) or rotate within the
///    cell's variant list.
/// 4. **Extend** the chain with one sequential fault after the last
///    (gap drawn from `params.gap`, distinct victim). The new round's
///    behaviour is enumerated round-robin as the mutation seed advances
///    — tofn's per-round malicious-behaviour enumeration style — so
///    successive extensions of one corpus entry sweep every variant.
///    Capped at the admissible budget `f`: mutants never leave the
///    gated space.
///
/// Faults stay sorted by activation instant; the returned schedule has
/// `id == 0` (the corpus renumbers).
pub fn mutate(params: &ScheduleParams, sched: &FaultSchedule, seed: u64) -> FaultSchedule {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut faults = sched.scenario.faults.clone();
    let n = faults.len();
    let used: BTreeSet<u32> = faults.iter().map(|f| f.node.0).collect();
    let chain_cap = (params.f as u32).min(params.n_nodes).max(1) as usize;
    let mut op = rng.gen_range(0..MUTATION_OPS);
    for _ in 0..MUTATION_OPS {
        match op {
            0 if n > 0 => {
                let i = rng.gen_range(0..n);
                let instants = boundary_instants(params, faults[i].at);
                faults[i].at = Time(instants[rng.gen_range(0..instants.len())]);
                break;
            }
            1 if n > 0 && (params.n_nodes as usize) > used.len() => {
                let i = rng.gen_range(0..n);
                let free: Vec<u32> = (0..params.n_nodes).filter(|v| !used.contains(v)).collect();
                faults[i].node = NodeId(free[rng.gen_range(0..free.len())]);
                break;
            }
            2 if n > 0 => {
                let i = rng.gen_range(0..n);
                let next = toggle_variant(FaultVariant::of(&faults[i]), &params.variants);
                faults[i] = next.inject(faults[i].node, faults[i].at);
                break;
            }
            3 if used.len() < chain_cap && (params.n_nodes as usize) > used.len() => {
                let at = match faults.last() {
                    Some(last) => {
                        let (lo, hi) = (params.gap.0.as_micros(), params.gap.1.as_micros());
                        last.at.as_micros() + if hi > lo { rng.gen_range(lo..=hi) } else { lo }
                    }
                    None => {
                        let span = params
                            .last_at
                            .as_micros()
                            .saturating_sub(params.first_at.as_micros())
                            .max(1);
                        params.first_at.as_micros() + rng.gen_range(0..span)
                    }
                };
                let free: Vec<u32> = (0..params.n_nodes).filter(|v| !used.contains(v)).collect();
                let victim = free[rng.gen_range(0..free.len())];
                let vi = (seed as usize).wrapping_add(faults.len()) % params.variants.len();
                faults.push(params.variants[vi].inject(NodeId(victim), Time(at)));
                break;
            }
            _ => op = (op + 1) % MUTATION_OPS,
        }
    }
    faults.sort_by_key(|f| (f.at, f.node.0));
    FaultSchedule {
        id: 0,
        scenario: FaultScenario { faults },
    }
}

/// Period/deadline boundary instants near `at` (the enclosing and next
/// period), clipped to the cell's earliest admissible activation.
fn boundary_instants(params: &ScheduleParams, at: Time) -> Vec<u64> {
    let p = params.period.as_micros();
    let d = params.deadline.as_micros().min(p.saturating_sub(1));
    let k = (at.as_micros() / p).max(1);
    let mut out = Vec::with_capacity(12);
    for base in [k * p, (k + 1) * p] {
        for t in [
            base - 1,
            base,
            base + 1,
            base + d - 1,
            base + d,
            base + d + 1,
        ] {
            if t >= params.first_at.as_micros() {
                out.push(t);
            }
        }
    }
    if out.is_empty() {
        out.push(at.as_micros().max(params.first_at.as_micros()));
    }
    out
}

/// The toggled counterpart of a variant: its `FaultMods` flip when the
/// kind has one and the cell schedules it, else the next variant in the
/// cell's list.
fn toggle_variant(v: FaultVariant, variants: &[FaultVariant]) -> FaultVariant {
    let flipped = if v == FaultVariant::OMISSION {
        FaultVariant::OMISSION_STEALTH
    } else if v == FaultVariant::OMISSION_STEALTH {
        FaultVariant::OMISSION
    } else if v == FaultVariant::COMMISSION {
        FaultVariant::COMMISSION_GARBLED
    } else if v == FaultVariant::COMMISSION_GARBLED {
        FaultVariant::COMMISSION
    } else {
        v
    };
    if flipped != v && variants.contains(&flipped) {
        return flipped;
    }
    let i = variants.iter().position(|&x| x == v).unwrap_or(0);
    variants[(i + 1) % variants.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ScheduleParams {
        ScheduleParams {
            n_nodes: 9,
            f: 2,
            period: Duration::from_millis(10),
            deadline: Duration::from_millis(8),
            first_at: Time::from_millis(40),
            last_at: Time::from_millis(240),
            gap: (Duration::from_millis(150), Duration::from_millis(250)),
            variants: FaultVariant::ALL.to_vec(),
            combos: true,
            over_budget: false,
        }
    }

    #[test]
    fn variant_labels_round_trip() {
        for v in FaultVariant::ALL {
            assert_eq!(FaultVariant::parse(v.label()), Some(v), "{v}");
            let f = v.inject(NodeId(3), Time(100));
            assert_eq!(FaultVariant::of(&f), v, "{v}");
        }
        assert!(FaultVariant::parse("no-such-variant").is_none());
    }

    #[test]
    fn boundary_straddles_period_and_deadline() {
        let p = params();
        let set = boundary_schedules(&p);
        assert_eq!(set.len(), 6 * FaultVariant::ALL.len());
        let period_us = p.period.as_micros();
        // Every variant probes one microsecond on each side of a period
        // boundary and of a deadline.
        for v in FaultVariant::ALL {
            let times: Vec<u64> = set
                .iter()
                .filter(|s| FaultVariant::of(&s.scenario.faults[0]) == v)
                .map(|s| s.scenario.faults[0].at.as_micros())
                .collect();
            assert_eq!(times.len(), 6, "{v}");
            assert!(
                times.iter().any(|t| (t + 1) % period_us == 0),
                "{v} pre-boundary"
            );
            assert!(times.iter().any(|t| t % period_us == 0), "{v} on-boundary");
            assert!(
                times.iter().all(|&t| t >= p.first_at.as_micros()),
                "{v} too early"
            );
        }
    }

    #[test]
    fn generate_is_deterministic_and_renumbered() {
        let p = params();
        let a = generate(&p, 42, 64);
        let b = generate(&p, 42, 64);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        for (i, s) in a.iter().enumerate() {
            assert_eq!(s.id, i as u32);
        }
        let c = generate(&p, 43, 64);
        assert_ne!(a, c, "different seed must change the sampled phase");
        // The boundary phase is seed-independent.
        assert_eq!(a[..24], c[..24]);
    }

    #[test]
    fn sampled_schedules_respect_budget_and_ordering() {
        let p = params();
        for s in generate(&p, 7, 200) {
            assert!((1..=2).contains(&s.scenario.faults.len()), "budget");
            assert_eq!(s.budget(), s.scenario.faults.len(), "distinct victims");
            for w in s.scenario.faults.windows(2) {
                assert!(w[0].at <= w[1].at, "activation order");
                let gap = w[1].at.as_micros() - w[0].at.as_micros();
                assert!(gap >= p.gap.0.as_micros(), "gap too small: {gap}");
            }
            for f in &s.scenario.faults {
                assert!(f.node.0 < p.n_nodes);
                assert!(f.at >= p.first_at);
            }
        }
    }

    #[test]
    fn over_budget_emits_f_plus_one() {
        let mut p = params();
        p.over_budget = true;
        let set = generate(&p, 11, 200);
        let max = set.iter().map(|s| s.scenario.faults.len()).max().unwrap();
        assert_eq!(max, 3, "over-budget schedules carry f+1 faults");
        assert_eq!(set.iter().map(FaultSchedule::budget).max().unwrap(), 3);
        // Over-budget sampling does not require combos.
        p.combos = false;
        let set = generate(&p, 11, 200);
        let counts: std::collections::BTreeSet<usize> =
            set.iter().map(|s| s.scenario.faults.len()).collect();
        assert!(counts.contains(&1) && counts.contains(&3), "{counts:?}");
        assert!(!counts.contains(&2), "combos off: no admissible pairs");
    }

    #[test]
    fn combos_off_caps_schedules_at_one_fault() {
        let mut p = params();
        p.combos = false;
        assert_eq!(p.max_faults(), 1);
        for s in generate(&p, 5, 100) {
            assert_eq!(s.scenario.faults.len(), 1);
        }
    }

    #[test]
    fn restricted_variant_set_is_honored() {
        let mut p = params();
        p.variants = vec![FaultVariant::CRASH, FaultVariant::TIMING];
        for s in generate(&p, 3, 100) {
            for f in &s.scenario.faults {
                let v = FaultVariant::of(f);
                assert!(p.variants.contains(&v), "unexpected variant {v}");
            }
        }
    }

    #[test]
    fn mutation_is_deterministic_and_stays_admissible() {
        let p = params();
        let seeds = generate(&p, 21, 16);
        for (i, s) in seeds.iter().enumerate() {
            for k in 0..12u64 {
                let seed = (i as u64) << 8 | k;
                let a = mutate(&p, s, seed);
                let b = mutate(&p, s, seed);
                assert_eq!(a, b, "same seed must yield the same mutant");
                assert!(a.budget() <= p.f as usize, "mutant exceeded f");
                for w in a.scenario.faults.windows(2) {
                    assert!(w[0].at <= w[1].at, "activation order");
                }
                for f in &a.scenario.faults {
                    assert!(f.node.0 < p.n_nodes);
                    assert!(f.at >= p.first_at, "{:?}", f.at);
                }
            }
        }
    }

    #[test]
    fn chain_extension_reaches_f3_from_a_single_fault() {
        // The acceptance pin: a 1-fault seed schedule evolves into an
        // f=3 sequential chain through repeated extend mutations alone.
        let mut p = params();
        p.f = 3;
        let mut s = FaultSchedule {
            id: 0,
            scenario: FaultScenario {
                faults: vec![FaultVariant::CRASH.inject(NodeId(2), Time::from_millis(50))],
            },
        };
        let mut tried = 0u64;
        while s.budget() < 3 && tried < 512 {
            let next = mutate(&p, &s, tried);
            if next.budget() > s.budget() {
                s = next;
            }
            tried += 1;
        }
        assert_eq!(s.budget(), 3, "f=3 chain unreachable by mutation");
        assert_eq!(s.scenario.faults.len(), 3);
        for w in s.scenario.faults.windows(2) {
            assert!(w[1].at > w[0].at, "sequential chain must be ordered");
        }
        // The chain never grows past the budget, however long we mutate.
        for k in 0..64 {
            assert!(mutate(&p, &s, k).budget() <= 3);
        }
    }

    #[test]
    fn extension_rounds_enumerate_the_variant_space() {
        // tofn-style per-round enumeration: extending the same schedule
        // under successive seeds must sweep every variant for the new
        // round, not just resample one.
        let mut p = params();
        p.f = 3;
        let s = FaultSchedule {
            id: 0,
            scenario: FaultScenario {
                faults: vec![FaultVariant::CRASH.inject(NodeId(0), Time::from_millis(50))],
            },
        };
        let mut seen = BTreeSet::new();
        for seed in 0..256u64 {
            let m = mutate(&p, &s, seed);
            if m.scenario.faults.len() == 2 {
                seen.insert(FaultVariant::of(&m.scenario.faults[1]).label());
            }
        }
        assert_eq!(
            seen.len(),
            FaultVariant::ALL.len(),
            "extension rounds missed variants: {seen:?}"
        );
    }

    #[test]
    fn label_signature() {
        let s = FaultSchedule {
            id: 0,
            scenario: FaultScenario {
                faults: vec![
                    FaultVariant::CRASH.inject(NodeId(1), Time(1000)),
                    FaultVariant::OMISSION_STEALTH.inject(NodeId(2), Time(2000)),
                ],
            },
        };
        assert_eq!(s.label(), "crash+omission-stealth");
        assert_eq!(
            FaultSchedule {
                id: 0,
                scenario: FaultScenario::none()
            }
            .label(),
            "fault-free"
        );
    }
}
