//! The fuzzer's bounded schedule corpus.
//!
//! Entries are keyed by the *shrinker-canonical* form of the schedule —
//! faults sorted by `(activation, node)` and rendered in the replay
//! token's `fl=` grammar, prefixed by the cell name — so two mutation
//! paths reaching the same adversarial script collapse to one entry, and
//! a schedule that round-trips through a replay token or the shrinker's
//! re-sort lands on the key it started from. Insertion canonicalizes
//! first, which makes insert-after-canonicalize a fixed point (pinned by
//! a proptest in `tests/determinism.rs`).
//!
//! The corpus is bounded: when full, a candidate must out-score the
//! worst resident to enter, and the worst resident (lowest
//! `(score, key)`) is evicted. All ordering is over `BTreeMap` keys and
//! integer scores — no hashing, no iteration-order dependence — so the
//! corpus evolves identically at any thread count.

use crate::schedule::{FaultSchedule, FaultVariant};
use btr_core::FaultScenario;
use btr_crypto::digest64;
use std::collections::BTreeMap;

/// One resident schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusEntry {
    /// Cell index the schedule runs on.
    pub cell_idx: u16,
    /// The canonical schedule.
    pub schedule: FaultSchedule,
    /// Interest score at admission (base + coverage bonus).
    pub score: u64,
    /// Signature elements this entry was first to produce.
    pub new_signatures: usize,
}

/// The canonical corpus key of a schedule on a cell: faults re-sorted by
/// `(at, node)` and rendered `variant@at@n<node>` joined with `+`, as the
/// replay token spells them.
pub fn canonical_key(cell_name: &str, schedule: &FaultSchedule) -> String {
    let mut faults = schedule.scenario.faults.clone();
    faults.sort_by_key(|f| (f.at, f.node.0));
    let fl: Vec<String> = faults
        .iter()
        .map(|f| {
            format!(
                "{}@{}@n{}",
                FaultVariant::of(f).label(),
                f.at.as_micros(),
                f.node.0
            )
        })
        .collect();
    format!("{cell_name}:{}", fl.join("+"))
}

/// Canonicalize a schedule to the form its key describes.
fn canonicalize(schedule: &FaultSchedule) -> FaultSchedule {
    let mut faults = schedule.scenario.faults.clone();
    faults.sort_by_key(|f| (f.at, f.node.0));
    FaultSchedule {
        id: 0,
        scenario: FaultScenario { faults },
    }
}

/// A bounded, deterministic corpus of interesting schedules.
#[derive(Debug, Clone)]
pub struct Corpus {
    max: usize,
    entries: BTreeMap<String, CorpusEntry>,
}

impl Corpus {
    /// An empty corpus holding at most `max` entries.
    pub fn new(max: usize) -> Corpus {
        Corpus {
            max: max.max(1),
            entries: BTreeMap::new(),
        }
    }

    /// Resident count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no schedule has been admitted yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Residents in key order (the deterministic parent-selection order).
    pub fn entries(&self) -> impl Iterator<Item = &CorpusEntry> {
        self.entries.values()
    }

    /// The `i`-th resident in key order (parent selection wraps).
    pub fn nth(&self, i: usize) -> Option<&CorpusEntry> {
        self.entries.values().nth(i % self.entries.len().max(1))
    }

    /// The lowest admitted score (0 when empty or not yet full).
    pub fn admission_floor(&self) -> u64 {
        if self.entries.len() < self.max {
            return 0;
        }
        self.entries.values().map(|e| e.score).min().unwrap_or(0)
    }

    /// Offer a schedule. Returns `true` when it was admitted (or
    /// refreshed an existing entry with a higher score).
    ///
    /// The schedule is canonicalized before keying, so offering a mutant
    /// and offering its canonical form are the same operation.
    pub fn offer(
        &mut self,
        cell_idx: u16,
        cell_name: &str,
        schedule: &FaultSchedule,
        score: u64,
        new_signatures: usize,
    ) -> bool {
        let key = canonical_key(cell_name, schedule);
        if let Some(existing) = self.entries.get_mut(&key) {
            if score > existing.score {
                existing.score = score;
                existing.new_signatures = existing.new_signatures.max(new_signatures);
                return true;
            }
            return false;
        }
        if self.entries.len() >= self.max {
            // Must beat the worst resident; ties lose (stability).
            let (worst_key, worst_score) = self
                .entries
                .iter()
                .min_by_key(|(k, e)| (e.score, (*k).clone()))
                .map(|(k, e)| (k.clone(), e.score))
                .expect("non-empty at capacity");
            if score <= worst_score {
                return false;
            }
            self.entries.remove(&worst_key);
        }
        self.entries.insert(
            key,
            CorpusEntry {
                cell_idx,
                schedule: canonicalize(schedule),
                score,
                new_signatures,
            },
        );
        true
    }

    /// Chained digest over the corpus keys and scores in key order — the
    /// report's one-number fingerprint of the final corpus.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xf022_5eed_0c0e_0001;
        for (k, e) in &self.entries {
            h = digest64(&[&h.to_be_bytes(), k.as_bytes(), &e.score.to_be_bytes()]);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btr_model::{NodeId, Time};

    fn sched(faults: Vec<btr_core::InjectedFault>) -> FaultSchedule {
        FaultSchedule {
            id: 7, // ids are noise; the corpus canonicalizes them away
            scenario: FaultScenario { faults },
        }
    }

    #[test]
    fn keys_are_order_insensitive_and_insertion_is_idempotent() {
        let a = sched(vec![
            FaultVariant::CRASH.inject(NodeId(2), Time(52_000)),
            FaultVariant::OMISSION.inject(NodeId(5), Time(260_000)),
        ]);
        let b = sched(vec![
            FaultVariant::OMISSION.inject(NodeId(5), Time(260_000)),
            FaultVariant::CRASH.inject(NodeId(2), Time(52_000)),
        ]);
        assert_eq!(canonical_key("cell", &a), canonical_key("cell", &b));

        let mut c = Corpus::new(8);
        assert!(c.offer(0, "cell", &a, 100, 1));
        assert!(!c.offer(0, "cell", &b, 100, 1), "same script, same score");
        assert_eq!(c.len(), 1);
        let d1 = c.digest();
        assert!(!c.offer(0, "cell", &a, 50, 0), "lower score never replaces");
        assert_eq!(c.digest(), d1);
        assert!(c.offer(0, "cell", &a, 120, 1), "higher score refreshes");
        assert_ne!(c.digest(), d1);
    }

    #[test]
    fn bounded_eviction_drops_the_worst() {
        let mut c = Corpus::new(2);
        let s1 = sched(vec![FaultVariant::CRASH.inject(NodeId(1), Time(50_000))]);
        let s2 = sched(vec![FaultVariant::CRASH.inject(NodeId(2), Time(50_000))]);
        let s3 = sched(vec![FaultVariant::CRASH.inject(NodeId(3), Time(50_000))]);
        assert!(c.offer(0, "cell", &s1, 10, 0));
        assert!(c.offer(0, "cell", &s2, 30, 0));
        assert_eq!(c.admission_floor(), 10);
        assert!(!c.offer(0, "cell", &s3, 10, 0), "ties lose at capacity");
        assert!(c.offer(0, "cell", &s3, 20, 0));
        assert_eq!(c.len(), 2);
        let scores: Vec<u64> = c.entries().map(|e| e.score).collect();
        assert!(scores.contains(&30) && scores.contains(&20), "{scores:?}");
    }

    #[test]
    fn nth_wraps_in_key_order() {
        let mut c = Corpus::new(8);
        let s1 = sched(vec![FaultVariant::CRASH.inject(NodeId(1), Time(50_000))]);
        let s2 = sched(vec![FaultVariant::CRASH.inject(NodeId(2), Time(60_000))]);
        c.offer(0, "cell", &s1, 10, 0);
        c.offer(0, "cell", &s2, 10, 0);
        assert_eq!(c.nth(0), c.nth(2));
        assert_ne!(c.nth(0), c.nth(1));
    }
}
