//! Replay tokens: a violating run, serialized into one shell-safe string.
//!
//! A token pins everything a run depends on — workload, platform, fault
//! budget, R, horizon, simulator seed, and the exact fault schedule — so
//! `harness campaign --replay <token>` reproduces the run bit-for-bit on
//! any machine. Format (order fixed, `;`-separated):
//!
//! ```text
//! w=avionics;t=bus9x100000x5;f=1;r=150000;h=700000;me=20000000;s=12345;fl=crash@52000@n3+omission@310000@n5
//! ```
//!
//! `r`, `h`, and fault activations are µs; `me` is the simulator event
//! cap the campaign ran with (0 or absent = unlimited — pinned so a
//! `Truncated` verdict reproduces); `fl` faults are
//! `variant@at_us@n<node>` joined with `+` (empty `fl` = fault-free). An
//! optional trailing `a=sip` selects the SipHash authenticator suite
//! (absent = the default HMAC suite, so pre-suite tokens parse and
//! re-render unchanged).

use crate::grid::{CellError, CellSpec, TopoSpec};
use crate::schedule::{FaultSchedule, FaultVariant};
use crate::verdict::{score, Violation};
use btr_core::FaultScenario;
use btr_crypto::AuthSuite;
use btr_model::{Duration, NodeId, Time};

/// Render the canonical token for a run.
pub fn token(
    spec: &CellSpec,
    sim_seed: u64,
    horizon: Duration,
    max_events: u64,
    scenario: &FaultScenario,
) -> String {
    let faults: Vec<String> = scenario
        .faults
        .iter()
        .map(|f| {
            format!(
                "{}@{}@n{}",
                FaultVariant::of(f).label(),
                f.at.as_micros(),
                f.node.0
            )
        })
        .collect();
    format!(
        "w={};t={};f={};r={};h={};me={};s={};fl={}{}",
        spec.workload,
        spec.topo.token(),
        spec.f,
        spec.r_bound.as_micros(),
        horizon.as_micros(),
        max_events,
        sim_seed,
        faults.join("+"),
        // The authenticator suite rides at the end, and only when it is
        // not the default: every token minted before suites existed
        // stays byte-identical, and hmac cells keep minting the same
        // tokens they always did.
        match spec.auth {
            AuthSuite::HmacSha256 => "",
            AuthSuite::SipHash24 => ";a=sip",
        }
    )
}

/// A parsed token, ready to execute.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplaySpec {
    /// The cell to plan (variants derived from the scheduled faults).
    pub cell: CellSpec,
    /// Simulator seed.
    pub sim_seed: u64,
    /// Judging horizon.
    pub horizon: Duration,
    /// Simulator event cap the original run executed under (0 = none).
    pub max_events: u64,
    /// The fault schedule.
    pub scenario: FaultScenario,
}

/// Token parse errors, with enough context to fix the token by hand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayError(String);

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad replay token: {}", self.0)
    }
}

impl std::error::Error for ReplayError {}

fn field<'a>(fields: &[(&'a str, &'a str)], key: &str) -> Result<&'a str, ReplayError> {
    fields
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| *v)
        .ok_or_else(|| ReplayError(format!("missing field '{key}'")))
}

fn num(fields: &[(&str, &str)], key: &str) -> Result<u64, ReplayError> {
    field(fields, key)?
        .parse()
        .map_err(|_| ReplayError(format!("field '{key}' is not a number")))
}

/// Parse a token back into a runnable spec.
pub fn parse(tok: &str) -> Result<ReplaySpec, ReplayError> {
    let fields: Vec<(&str, &str)> = tok
        .trim()
        .split(';')
        .filter(|s| !s.is_empty())
        .map(|pair| {
            pair.split_once('=')
                .ok_or_else(|| ReplayError(format!("'{pair}' is not key=value")))
        })
        .collect::<Result<_, _>>()?;

    let topo_tok = field(&fields, "t")?;
    let topo = TopoSpec::parse(topo_tok)
        .ok_or_else(|| ReplayError(format!("unparseable topology '{topo_tok}'")))?;
    // Range checks up front: a malformed token must fail with a parse
    // error here, not panic inside a workload generator or silently
    // truncate a field on its way into the planner.
    if topo.n_nodes() < 2 {
        return Err(ReplayError(format!(
            "topology '{topo_tok}' has {} node(s); workloads need at least 2",
            topo.n_nodes()
        )));
    }
    // Campaign cells top out at tens of nodes; a crafted token must not
    // be able to ask the workload generator / planner for a
    // multi-billion-node platform (allocation panic at best).
    const MAX_REPLAY_NODES: usize = 4096;
    if topo.n_nodes() > MAX_REPLAY_NODES {
        return Err(ReplayError(format!(
            "topology '{topo_tok}' has {} nodes; replay caps at {MAX_REPLAY_NODES}",
            topo.n_nodes()
        )));
    }
    let n_nodes = topo.n_nodes() as u32;
    let f = num(&fields, "f")?;
    if f == 0 || f > u8::MAX as u64 {
        return Err(ReplayError(format!(
            "fault budget f={f} out of range (1..={})",
            u8::MAX
        )));
    }
    let r = num(&fields, "r")?;
    if r == 0 {
        return Err(ReplayError("recovery bound r must be positive".into()));
    }
    let h = num(&fields, "h")?;
    if h == 0 {
        return Err(ReplayError("horizon h must be positive".into()));
    }

    let mut faults = Vec::new();
    let fl = field(&fields, "fl")?;
    if !fl.is_empty() {
        for part in fl.split('+') {
            let bits: Vec<&str> = part.split('@').collect();
            let [variant, at, node] = bits.as_slice() else {
                return Err(ReplayError(format!(
                    "fault '{part}' is not variant@at@node"
                )));
            };
            let variant = FaultVariant::parse(variant)
                .ok_or_else(|| ReplayError(format!("unknown variant '{variant}'")))?;
            let at: u64 = at
                .parse()
                .map_err(|_| ReplayError(format!("bad activation '{at}'")))?;
            let node: u32 = node
                .strip_prefix('n')
                .and_then(|n| n.parse().ok())
                .ok_or_else(|| ReplayError(format!("bad node '{node}'")))?;
            if node >= n_nodes {
                return Err(ReplayError(format!(
                    "node n{node} out of range for {} nodes",
                    n_nodes
                )));
            }
            faults.push(variant.inject(NodeId(node), Time(at)));
        }
        // Sequential-chain grammar checks (the f=3 hunting space): the
        // token models the paper's sequential adversary, so activations
        // must be non-decreasing, and the chain length is capped so a
        // crafted token cannot smuggle an unbounded fault list past the
        // budget math into the scenario machinery.
        const MAX_REPLAY_FAULTS: usize = 8;
        if faults.len() > MAX_REPLAY_FAULTS {
            return Err(ReplayError(format!(
                "{} faults in chain; replay caps at {MAX_REPLAY_FAULTS}",
                faults.len()
            )));
        }
        for w in faults.windows(2) {
            if w[1].at < w[0].at {
                return Err(ReplayError(format!(
                    "chain activations out of order: {} after {}",
                    w[1].at.as_micros(),
                    w[0].at.as_micros()
                )));
            }
        }
    }

    let mut variants: Vec<FaultVariant> = Vec::new();
    for f in &faults {
        let v = FaultVariant::of(f);
        if !variants.contains(&v) {
            variants.push(v);
        }
    }
    if variants.is_empty() {
        variants = FaultVariant::ALL.to_vec();
    }

    // Authenticator suite: optional trailing field; tokens minted before
    // suites existed (no `a=`) mean the default HMAC suite.
    let auth = match field(&fields, "a") {
        Err(_) => AuthSuite::default(),
        Ok(v) => {
            AuthSuite::parse(v).ok_or_else(|| ReplayError(format!("unknown auth suite '{v}'")))?
        }
    };

    Ok(ReplaySpec {
        cell: CellSpec {
            workload: field(&fields, "w")?.to_string(),
            topo,
            f: f as u8,
            r_bound: Duration(r),
            auth,
            variants,
        },
        sim_seed: num(&fields, "s")?,
        horizon: Duration(h),
        // Older/hand-written tokens may omit the cap; absent = unlimited.
        max_events: if field(&fields, "me").is_ok() {
            num(&fields, "me")?
        } else {
            0
        },
        scenario: FaultScenario { faults },
    })
}

/// The outcome of replaying a token.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Kind signature of the replayed schedule.
    pub label: String,
    /// Measured bad-output window (µs).
    pub recovery_us: u64,
    /// Unacceptable / judged output slots.
    pub bad_outputs: usize,
    /// Judged output slots.
    pub total_outputs: usize,
    /// Whether correct nodes converged.
    pub converged: bool,
    /// Broken claims (the reason the reproducer exists).
    pub violations: Vec<Violation>,
}

/// Plan and execute a replay, scoring it like any campaign run.
pub fn run(spec: &ReplaySpec) -> Result<ReplayReport, CellError> {
    let system = spec.cell.plan()?.with_max_events(spec.max_events);
    let schedule = FaultSchedule {
        id: 0,
        scenario: spec.scenario.clone(),
    };
    let report = system.run(&spec.scenario, spec.horizon, spec.sim_seed);
    let violations = score(&system, &schedule, &report, Duration::ZERO);
    Ok(ReplayReport {
        label: schedule.label(),
        recovery_us: report.recovery.bad_window().as_micros(),
        bad_outputs: report.recovery.bad_outputs,
        total_outputs: report.recovery.total_outputs,
        converged: report.converged,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CellSpec {
        CellSpec {
            workload: "avionics".into(),
            topo: TopoSpec::Bus {
                n: 9,
                bytes_per_ms: 100_000,
                latency_us: 5,
            },
            f: 1,
            r_bound: Duration::from_millis(150),
            auth: AuthSuite::HmacSha256,
            variants: vec![FaultVariant::EQUIVOCATION],
        }
    }

    #[test]
    fn token_round_trips() {
        let scenario = FaultScenario {
            faults: vec![
                FaultVariant::EQUIVOCATION.inject(NodeId(0), Time::from_millis(52)),
                FaultVariant::COMMISSION_GARBLED.inject(NodeId(3), Time(250_001)),
            ],
        };
        let tok = token(
            &spec(),
            12345,
            Duration::from_millis(700),
            5_000_000,
            &scenario,
        );
        let parsed = parse(&tok).expect("parses");
        assert_eq!(parsed.scenario, scenario);
        assert_eq!(parsed.sim_seed, 12345);
        assert_eq!(parsed.horizon, Duration::from_millis(700));
        assert_eq!(parsed.max_events, 5_000_000);
        assert_eq!(parsed.cell.workload, "avionics");
        assert_eq!(parsed.cell.f, 1);
        assert_eq!(parsed.cell.r_bound, Duration::from_millis(150));
        // Round-trip is exact: re-rendering yields the same token.
        assert_eq!(
            token(
                &parsed.cell,
                parsed.sim_seed,
                parsed.horizon,
                parsed.max_events,
                &parsed.scenario
            ),
            tok
        );
    }

    #[test]
    fn tokens_without_event_cap_parse_as_unlimited() {
        let tok = "w=avionics;t=bus9x100000x5;f=1;r=150000;h=500000;s=7;fl=";
        let parsed = parse(tok).expect("parses");
        assert_eq!(parsed.max_events, 0);
        // Pre-suite tokens mean the default HMAC suite, and re-render
        // without an `a=` field — byte-identical to what older campaigns
        // minted.
        assert_eq!(parsed.cell.auth, AuthSuite::HmacSha256);
        assert!(!token(
            &parsed.cell,
            parsed.sim_seed,
            parsed.horizon,
            parsed.max_events,
            &parsed.scenario
        )
        .contains(";a="));
    }

    #[test]
    fn sip_suite_tokens_round_trip() {
        let mut cell = spec();
        cell.auth = AuthSuite::SipHash24;
        let scenario = FaultScenario {
            faults: vec![FaultVariant::CRASH.inject(NodeId(2), Time::from_millis(52))],
        };
        let tok = token(&cell, 9, Duration::from_millis(400), 0, &scenario);
        assert!(tok.ends_with(";a=sip"), "{tok}");
        let parsed = parse(&tok).expect("parses");
        assert_eq!(parsed.cell.auth, AuthSuite::SipHash24);
        assert_eq!(parsed.cell.name(), "avionics9-bus-f1-sip");
        assert_eq!(
            token(
                &parsed.cell,
                parsed.sim_seed,
                parsed.horizon,
                parsed.max_events,
                &parsed.scenario
            ),
            tok
        );
        // Unknown suites are parse errors, not silent defaults.
        let bad = tok.replace(";a=sip", ";a=rot13");
        let err = parse(&bad).expect_err("rejects").to_string();
        assert!(err.contains("unknown auth suite"), "{err}");
    }

    #[test]
    fn fault_free_token_round_trips() {
        let tok = token(
            &spec(),
            5,
            Duration::from_millis(100),
            0,
            &FaultScenario::none(),
        );
        let parsed = parse(&tok).expect("parses");
        assert!(parsed.scenario.faults.is_empty());
        assert_eq!(parsed.max_events, 0);
    }

    #[test]
    fn bad_tokens_are_rejected_with_context() {
        for (tok, needle) in [
            ("w=avionics;t=bus9x100000x5;f=1;r=1;h=1", "missing field"),
            ("w=a;t=tree3;f=1;r=1;h=1;s=1;fl=", "unparseable topology"),
            (
                "w=a;t=bus9x1x1;f=1;r=1;h=1;s=1;fl=warp@1@n0",
                "unknown variant",
            ),
            (
                "w=a;t=bus9x1x1;f=1;r=1;h=1;s=1;fl=crash@1@n99",
                "out of range",
            ),
            ("w=a;t=bus9x1x1;f=1;r=x;h=1;s=1;fl=", "not a number"),
            // Range checks: tokens that used to panic in a workload
            // generator or silently truncate must be parse errors.
            ("w=avionics;t=bus1x100x1;f=1;r=1;h=1;s=1;fl=", "at least 2"),
            (
                "w=avionics;t=bus9x1x1;f=900;r=1;h=1;s=1;fl=",
                "out of range",
            ),
            ("w=avionics;t=bus9x1x1;f=0;r=1;h=1;s=1;fl=", "out of range"),
            (
                "w=avionics;t=bus9x1x1;f=1;r=0;h=1;s=1;fl=",
                "must be positive",
            ),
            (
                "w=avionics;t=bus9x1x1;f=1;r=1;h=0;s=1;fl=",
                "must be positive",
            ),
            // Oversized platforms: crafted tokens must not reach the
            // workload generator (allocation panic) — the overflow-prone
            // torus/fattree guards parse to None, and in-range-but-huge
            // sizes hit the replay node cap.
            (
                "w=scada;t=torus4294967296x4294967297x1x1;f=1;r=1;h=1;s=1;fl=",
                "unparseable topology",
            ),
            (
                "w=scada;t=torus3000000000x3000000000x1x1;f=1;r=1;h=1;s=1;fl=",
                "unparseable topology",
            ),
            (
                "w=scada;t=fattree6000000x1x1;f=1;r=1;h=1;s=1;fl=",
                "unparseable topology",
            ),
            ("w=scada;t=bus100000x100x1;f=1;r=1;h=1;s=1;fl=", "caps at"),
            (
                "w=scada;t=torus1000x1000x100x1;f=1;r=1;h=1;s=1;fl=",
                "caps at",
            ),
            // Chain grammar: sequential activations must be ordered, and
            // the chain length is bounded.
            (
                "w=avionics;t=bus9x1x1;f=3;r=1;h=1;s=1;fl=crash@200@n1+omission@100@n2",
                "out of order",
            ),
            (
                "w=avionics;t=bus9x1x1;f=3;r=1;h=1;s=1;\
                 fl=crash@1@n0+crash@2@n1+crash@3@n2+crash@4@n3+crash@5@n4\
                 +crash@6@n5+crash@7@n6+crash@8@n7+crash@9@n8",
                "caps at",
            ),
        ] {
            let err = parse(tok).expect_err(tok).to_string();
            assert!(err.contains(needle), "{tok}: {err}");
        }
    }

    #[test]
    fn f3_chain_tokens_round_trip_byte_identically() {
        // The fuzzer's hunting regime: three sequential faults on
        // distinct victims, rendered and re-parsed bit-for-bit.
        let mut cell = spec();
        cell.f = 3;
        let scenario = FaultScenario {
            faults: vec![
                FaultVariant::CRASH.inject(NodeId(2), Time::from_millis(52)),
                FaultVariant::OMISSION_STEALTH.inject(NodeId(5), Time::from_millis(260)),
                FaultVariant::COMMISSION_GARBLED.inject(NodeId(7), Time::from_millis(470)),
            ],
        };
        let tok = token(&cell, 99, Duration::from_millis(900), 20_000_000, &scenario);
        let parsed = parse(&tok).expect("parses");
        assert_eq!(parsed.scenario, scenario);
        assert_eq!(parsed.cell.f, 3);
        assert_eq!(
            token(
                &parsed.cell,
                parsed.sim_seed,
                parsed.horizon,
                parsed.max_events,
                &parsed.scenario
            ),
            tok
        );
        // Equal activations are legal (simultaneity is not disorder).
        let tied = "w=avionics;t=bus9x1x1;f=2;r=1;h=1;s=1;fl=crash@100@n1+omission@100@n2";
        assert!(parse(tied).is_ok());
    }

    #[test]
    fn fixed_equivocation_gap_replays_clean() {
        // This token is PR 2's first campaign finding; the detector fix
        // (checker echo) closed it, and the regression suite in
        // tests/regressions.rs pins it. Replay must agree: no violations,
        // deterministically.
        let scenario = FaultScenario {
            faults: vec![FaultVariant::EQUIVOCATION.inject(NodeId(0), Time::from_millis(52))],
        };
        let tok = token(
            &spec(),
            7,
            Duration::from_millis(500),
            20_000_000,
            &scenario,
        );
        let a = run(&parse(&tok).unwrap()).expect("replays");
        let b = run(&parse(&tok).unwrap()).expect("replays");
        assert!(
            a.violations.is_empty(),
            "fixed gap fired again: {:?}",
            a.violations
        );
        assert_eq!(a.violations, b.violations, "replay is deterministic");
        assert_eq!(a.recovery_us, b.recovery_us);
    }

    #[test]
    fn replay_reproduces_violations_deterministically() {
        // An inadmissible double-crash at f = 1 exceeds what the strategy
        // covers, so the violation machinery still has a live path
        // through replay: same token, same verdicts, every time.
        let scenario = FaultScenario {
            faults: vec![
                FaultVariant::CRASH.inject(NodeId(0), Time::from_millis(52)),
                FaultVariant::CRASH.inject(NodeId(1), Time::from_millis(252)),
            ],
        };
        let tok = token(
            &spec(),
            7,
            Duration::from_millis(500),
            20_000_000,
            &scenario,
        );
        let a = run(&parse(&tok).unwrap()).expect("replays");
        let b = run(&parse(&tok).unwrap()).expect("replays");
        assert!(
            !a.violations.is_empty(),
            "double crash of both pinned sensor hosts at f=1 must violate"
        );
        assert_eq!(a.violations, b.violations, "replay is deterministic");
        assert_eq!(a.recovery_us, b.recovery_us);
    }
}
