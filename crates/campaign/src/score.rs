//! Fuzzer run scoring and the phase-timeline coverage signature.
//!
//! The fuzzer keeps a schedule when it is *interesting*, and interest is
//! an integer so corpus admission is deterministic. Four components:
//!
//! * **Slack-to-R** — the closer the measured bad window came to the
//!   bound, the more the schedule is worth. A blown bound saturates the
//!   component: violations always out-score near-misses.
//! * **Evidence-pool near misses** — suspects left one accuser short of
//!   conviction, plus cascade-gated declaration suppressions. Both count
//!   runs that *almost* changed attribution, which slack alone cannot
//!   see.
//! * **Convictions minus faults** — a correct node ending on more
//!   convictions than the schedule injected faults means attribution
//!   over-fired (the false-cascade family the campaign has caught
//!   before).
//! * **New coverage** — the run's [`signature`] elements not seen by any
//!   earlier run. This is what keeps structurally novel schedules alive
//!   even when their slack is fat: a schedule that exercises a new
//!   detect/agree/blackout shape is a better mutation parent than a
//!   tight rerun of a known shape.
//!
//! The signature buckets each fault's five recovery phases
//! logarithmically (run-to-run noise within a bucket collapses) and
//! hashes them with the fault's variant, chain position, and chain
//! length, plus one run-level element for the end-to-end shape.

use crate::runner::RunRecord;
use crate::schedule::{FaultSchedule, FaultVariant};
use btr_core::RunReport;
use btr_crypto::digest64;
use btr_model::Duration;
use btr_obs::{PhaseMark, RecoveryTimeline};
use std::collections::BTreeSet;

/// Points a blown or exactly-met bound earns from the slack component.
const SLACK_SATURATION: u64 = 1_000;
/// Slack window (µs) over which the slack component decays to zero.
const SLACK_WINDOW_US: i64 = 1_000_000;
/// Points per evidence-pool near miss.
const NEAR_MISS_PTS: u64 = 50;
/// Points per suppressed declaration (weak signal — they are common).
const SUPPRESSED_PTS: u64 = 2;
/// Points per conviction beyond the injected fault count.
const EXCESS_CONVICTION_PTS: u64 = 200;
/// Points per signature element no earlier run produced.
pub const NEW_COVERAGE_PTS: u64 = 400;

/// The deterministic interest score of one executed run, before the
/// coverage bonus (which depends on global fuzzer state and is added by
/// the batch loop).
pub fn base_score(rec: &RunRecord) -> u64 {
    let slack = if rec.slack_us <= 0 {
        SLACK_SATURATION
    } else {
        (SLACK_SATURATION as i64 * (SLACK_WINDOW_US - rec.slack_us.min(SLACK_WINDOW_US))
            / SLACK_WINDOW_US) as u64
    };
    let evidence =
        (rec.near_misses * NEAR_MISS_PTS + rec.suppressed * SUPPRESSED_PTS).min(SLACK_SATURATION);
    let excess = (rec.convictions as u64).saturating_sub(rec.n_faults as u64);
    slack + evidence + excess * EXCESS_CONVICTION_PTS
}

/// Logarithmic duration bucket: 0 for 0 µs, else `floor(log2(us)) + 1`.
/// Collapses within-bucket jitter so the signature captures the *shape*
/// of a recovery, not its exact microsecond count.
fn log2_bucket(us: u64) -> u8 {
    if us == 0 {
        0
    } else {
        (64 - us.leading_zeros()) as u8
    }
}

/// The phase-timeline coverage signature of one observed run.
///
/// One element per injected fault — the five-phase decomposition of that
/// fault's recovery, log-bucketed and hashed together with the variant,
/// the fault's position in the chain, and the chain length — plus one
/// run-level element hashing the schedule label with the bucketed
/// end-to-end window, convergence, and violation kinds. Deterministic:
/// marks come from the deterministic simulator and the fold is pure.
pub fn signature(
    sched: &FaultSchedule,
    report: &RunReport,
    marks: &[PhaseMark],
    r_bound: Duration,
) -> BTreeSet<u64> {
    let mut out = BTreeSet::new();
    let n = sched.scenario.faults.len() as u8;
    for (i, f) in sched.scenario.faults.iter().enumerate() {
        // Per-fault window: from this fault's activation to the end of
        // the judged bad window (zero when the fault never produced a
        // bad output or was masked before it could).
        let recovery = report
            .recovery
            .last_bad
            .map(|lb| lb.saturating_since(f.at))
            .unwrap_or(Duration::ZERO);
        let t = RecoveryTimeline::fold(f.node, f.at, recovery, r_bound, marks);
        let buckets = [
            log2_bucket(t.detect_us),
            log2_bucket(t.agree_us),
            log2_bucket(t.blackout_us),
            log2_bucket(t.switch_us),
            log2_bucket(t.settle_us),
        ];
        out.insert(digest64(&[
            b"fault",
            FaultVariant::of(f).label().as_bytes(),
            &[i as u8, n],
            &buckets,
        ]));
    }
    // The run-level element folds in convergence and the bucketed global
    // window, so a fault-free run still contributes exactly one element.
    out.insert(digest64(&[
        b"run",
        sched.label().as_bytes(),
        &[
            log2_bucket(report.recovery.bad_window().as_micros()),
            report.converged as u8,
        ],
    ]));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{plan_cells, CampaignConfig};
    use btr_model::{NodeId, Time};

    fn record(slack_us: i64, near: u64, sup: u64, conv: u32, n_faults: u8) -> RunRecord {
        RunRecord {
            run_idx: 0,
            cell_idx: 0,
            schedule_id: 0,
            sim_seed: 1,
            label: "crash".into(),
            n_faults,
            admissible: true,
            recovery_us: 0,
            slack_us,
            bad_outputs: 0,
            total_outputs: 100,
            converged: true,
            near_misses: near,
            suppressed: sup,
            convictions: conv,
            violations: Vec::new(),
        }
    }

    #[test]
    fn tighter_slack_scores_higher_and_violations_saturate() {
        let fat = base_score(&record(900_000, 0, 0, 1, 1));
        let tight = base_score(&record(20_000, 0, 0, 1, 1));
        let blown = base_score(&record(-5_000, 0, 0, 1, 1));
        assert!(tight > fat, "{tight} vs {fat}");
        assert!(blown >= tight);
        assert_eq!(blown, SLACK_SATURATION);
    }

    #[test]
    fn evidence_and_excess_convictions_add_points() {
        let base = base_score(&record(500_000, 0, 0, 1, 1));
        let near = base_score(&record(500_000, 3, 10, 1, 1));
        assert_eq!(near - base, 3 * NEAR_MISS_PTS + 10 * SUPPRESSED_PTS);
        let excess = base_score(&record(500_000, 0, 0, 3, 1));
        assert_eq!(excess - base, 2 * EXCESS_CONVICTION_PTS);
    }

    #[test]
    fn log_buckets_collapse_jitter() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(1500), log2_bucket(1900));
        assert_ne!(log2_bucket(1000), log2_bucket(5000));
    }

    #[test]
    fn signatures_are_deterministic_and_shape_sensitive() {
        let cfg = CampaignConfig {
            combos: true,
            cells: crate::grid::fuzz_grid(),
            ..CampaignConfig::new(5, 4, 1)
        };
        let cells = plan_cells(&cfg).expect("plans");
        let cell = &cells[0];
        let sched = FaultSchedule {
            id: 0,
            scenario: btr_core::FaultScenario {
                faults: vec![FaultVariant::CRASH.inject(NodeId(2), Time::from_millis(52))],
            },
        };
        let (report_a, rec_a) = cell.system.run_observed(&sched.scenario, cell.horizon, 7);
        let (report_b, rec_b) = cell.system.run_observed(&sched.scenario, cell.horizon, 7);
        let sig_a = signature(&sched, &report_a, rec_a.marks(), cell.spec.r_bound);
        let sig_b = signature(&sched, &report_b, rec_b.marks(), cell.spec.r_bound);
        assert_eq!(sig_a, sig_b, "signature must be a pure function of the run");
        assert_eq!(sig_a.len(), 2, "one fault element + one run element");

        // A different variant on the same node at the same instant is a
        // different shape.
        let sched2 = FaultSchedule {
            id: 0,
            scenario: btr_core::FaultScenario {
                faults: vec![FaultVariant::OMISSION.inject(NodeId(2), Time::from_millis(52))],
            },
        };
        let (report_c, rec_c) = cell.system.run_observed(&sched2.scenario, cell.horizon, 7);
        let sig_c = signature(&sched2, &report_c, rec_c.marks(), cell.spec.r_bound);
        assert_ne!(sig_a, sig_c);
    }
}
