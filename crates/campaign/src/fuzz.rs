//! Coverage-guided fault-schedule search.
//!
//! `btr-campaign`'s grid sweeps the fault space *uniformly*; the fuzzer
//! spends the same simulation budget *adaptively*. Each executed run is
//! scored ([`crate::score`]) and fingerprinted with a phase-timeline
//! coverage signature; interesting schedules enter a bounded corpus
//! ([`crate::corpus`]) keyed by shrinker-canonical replay form, and new
//! batches are bred from the corpus with the seeded mutation operators
//! in [`crate::schedule::mutate`] — including chain extension to the
//! cell's full budget, which is how 1-fault seeds evolve into the f=3
//! sequential chains the [`crate::grid::fuzz_grid`] hunts.
//!
//! **Determinism.** The search is generational: a batch's jobs are a
//! pure function of the corpus state *after the previous batch*, jobs
//! execute on [`crate::runner::run_indexed`] (results merge in index
//! order at any thread count), and corpus/coverage updates fold
//! sequentially in that order. So the entire outcome — corpus digest,
//! coverage curve, violation tokens, `FUZZ_btr.json` bytes — is a pure
//! function of `(seed, budget)` and is **byte-identical at any thread
//! count**. CI pins this by diffing a 1-thread and an N-thread run.

use crate::corpus::{canonical_key, Corpus};
use crate::grid::{CellError, CellSpec};
use crate::replay;
use crate::runner::{self, run_indexed, CampaignConfig, PlannedCell, RunRecord};
use crate::schedule::{mutate, FaultSchedule};
use crate::score::{base_score, signature, NEW_COVERAGE_PTS};
use crate::verdict::score as verdict_score;
use btr_model::Duration;
use std::collections::BTreeSet;

/// Seed schedules generated per cell before mutation takes over.
const SEED_SCHEDULES_PER_CELL: usize = 12;
/// Cap on distinct admissible-violation tokens kept in the outcome.
const MAX_VIOLATION_TOKENS: usize = 32;

/// Fuzzing campaign configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed: fixes seed schedules, mutation draws, and sim seeds.
    pub seed: u64,
    /// Total simulation runs to spend.
    pub budget: usize,
    /// Worker threads (never affects results, only wall time).
    pub threads: usize,
    /// Corpus capacity.
    pub corpus_max: usize,
    /// Mutants bred per generation. Fixed independently of `threads` —
    /// batch composition is part of the deterministic outcome.
    pub batch: usize,
    /// Per-run simulator event cap (0 = unlimited).
    pub max_events: u64,
    /// Extra tolerance on the R-bound check.
    pub slack: Duration,
    /// The cells to fuzz.
    pub cells: Vec<CellSpec>,
}

impl FuzzConfig {
    /// A fuzzing campaign over [`crate::grid::fuzz_grid`].
    pub fn new(seed: u64, budget: usize, threads: usize) -> FuzzConfig {
        FuzzConfig {
            seed,
            budget,
            threads,
            corpus_max: 64,
            batch: 16,
            max_events: 20_000_000,
            slack: Duration::ZERO,
            cells: crate::grid::fuzz_grid(),
        }
    }
}

/// Everything a finished fuzzing campaign produced. Every field is
/// deterministic in `(seed, budget)`.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// The configuration the search ran with.
    pub config: FuzzConfig,
    /// Cell names, in grid order.
    pub cells: Vec<String>,
    /// Runs actually executed (≤ budget).
    pub runs: usize,
    /// Final coverage: distinct phase-timeline signature elements.
    pub coverage: usize,
    /// Coverage growth curve: `(runs_executed, coverage)` per generation.
    pub curve: Vec<(usize, usize)>,
    /// The final corpus.
    pub corpus: Corpus,
    /// Tightest admissible slack seen (µs; negative = bound blown).
    pub min_slack_us: Option<i64>,
    /// Fattest admissible slack seen (µs).
    pub max_slack_us: Option<i64>,
    /// Highest run score admitted.
    pub best_score: u64,
    /// Replay tokens of admissible violating runs (deduped, capped).
    pub violations: Vec<String>,
}

impl FuzzOutcome {
    /// Render the full `FUZZ_btr.json` contents. Contains no wall-clock
    /// data — the whole file is byte-identical at any thread count.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"fuzz\": \"btr-schedule-fuzz\",\n");
        s.push_str(&format!(
            "  \"seed\": {}, \"budget\": {}, \"batch\": {}, \"corpus_max\": {},\n",
            self.config.seed, self.config.budget, self.config.batch, self.config.corpus_max
        ));
        s.push_str(&format!(
            "  \"cells\": [{}],\n",
            self.cells
                .iter()
                .map(|c| json_str(c))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str(&format!(
            "  \"runs\": {}, \"coverage\": {},\n",
            self.runs, self.coverage
        ));
        s.push_str("  \"coverage_curve\": [");
        for (i, (runs, cov)) in self.curve.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("[{runs}, {cov}]"));
        }
        s.push_str("],\n");
        s.push_str(&format!(
            "  \"slack\": {{\"min_us\": {}, \"max_us\": {}}},\n",
            json_opt_i64(self.min_slack_us),
            json_opt_i64(self.max_slack_us)
        ));
        s.push_str(&format!("  \"best_score\": {},\n", self.best_score));
        s.push_str(&format!(
            "  \"corpus\": {{\n    \"size\": {}, \"digest\": \"{:#018x}\",\n    \"entries\": [\n",
            self.corpus.len(),
            self.corpus.digest()
        ));
        let n = self.corpus.len();
        for (i, e) in self.corpus.entries().enumerate() {
            s.push_str(&format!(
                "      {{\"key\": {}, \"score\": {}, \"faults\": {}, \"new_signatures\": {}}}{}\n",
                json_str(&canonical_key(
                    &self.cells[e.cell_idx as usize],
                    &e.schedule
                )),
                e.score,
                e.schedule.scenario.faults.len(),
                e.new_signatures,
                if i + 1 < n { "," } else { "" }
            ));
        }
        s.push_str("    ]\n  },\n");
        s.push_str(&format!(
            "  \"violations_admissible\": {},\n  \"violations\": [",
            self.violations.len()
        ));
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&json_str(v));
        }
        s.push_str("]\n}\n");
        s
    }
}

fn json_str(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

fn json_opt_i64(v: Option<i64>) -> String {
    v.map_or_else(|| "null".into(), |v| v.to_string())
}

/// One executed-and-fingerprinted fuzz run.
struct FuzzRun {
    record: RunRecord,
    signature: BTreeSet<u64>,
    token: String,
}

/// Execute one job with the recorder installed and assemble the record
/// (same field derivations as `runner::execute_run`, off the observed
/// report) plus the coverage signature and replay token.
fn execute_observed(
    cfg: &FuzzConfig,
    cell: &PlannedCell,
    cell_idx: u16,
    sched: &FaultSchedule,
    run_idx: u32,
) -> FuzzRun {
    let seed = runner::sim_seed(cfg.seed, cell_idx as u32);
    let (report, rec) = cell
        .system
        .run_observed(&sched.scenario, cell.horizon, seed);
    let violations = verdict_score(&cell.system, sched, &report, cfg.slack);
    let recovery_us = report.recovery.bad_window().as_micros();
    let faults = &sched.scenario.faults;
    let budget_us = match (
        faults.iter().map(|f| f.at).min(),
        faults.iter().map(|f| f.at).max(),
    ) {
        (Some(first), Some(last)) => (last - first).as_micros() + cell.spec.r_bound.as_micros(),
        _ => cell.spec.r_bound.as_micros(),
    };
    let near_misses = report
        .node_stats
        .iter()
        .map(|(_, s, _, _)| s.near_miss_accusations)
        .sum();
    let suppressed = report
        .node_stats
        .iter()
        .map(|(_, s, _, _)| s.suppressed_declarations)
        .sum();
    let convictions = report
        .node_stats
        .iter()
        .map(|(_, _, _, fs)| *fs as u32)
        .max()
        .unwrap_or(0);
    let sig = signature(sched, &report, rec.marks(), cell.spec.r_bound);
    let token = replay::token(
        &cell.spec,
        seed,
        cell.horizon,
        cell.max_events,
        &sched.scenario,
    );
    FuzzRun {
        record: RunRecord {
            run_idx,
            cell_idx,
            schedule_id: 0,
            sim_seed: seed,
            label: sched.label(),
            n_faults: faults.len() as u8,
            admissible: sched.budget() <= cell.spec.f as usize,
            recovery_us,
            slack_us: budget_us as i64 - recovery_us as i64,
            bad_outputs: report.recovery.bad_outputs as u32,
            total_outputs: report.recovery.total_outputs as u32,
            converged: report.converged,
            near_misses,
            suppressed,
            convictions,
            violations,
        },
        signature: sig,
        token,
    }
}

/// Run the coverage-guided search. Pure in `(cfg.seed, cfg.budget)`:
/// thread count changes wall time only.
pub fn run_fuzz(cfg: &FuzzConfig) -> Result<FuzzOutcome, CellError> {
    // Plan the cells and draw the seed generation with the campaign
    // machinery: combos on, so seed schedules already span 1..=f chains.
    let plan_cfg = CampaignConfig {
        seed: cfg.seed,
        runs: SEED_SCHEDULES_PER_CELL * cfg.cells.len().max(1),
        threads: cfg.threads,
        sim_seeds: 1,
        combos: true,
        over_budget: false,
        max_events: cfg.max_events,
        slack: cfg.slack,
        cells: cfg.cells.clone(),
    };
    let cells = runner::plan_cells(&plan_cfg)?;
    let cell_names: Vec<String> = cells.iter().map(|c| c.spec.name()).collect();

    // Generation 0: the seed schedules, interleaved across cells so a
    // small budget still touches every cell.
    let mut jobs: Vec<(u16, FaultSchedule)> = Vec::new();
    let max_seed_schedules = cells.iter().map(|c| c.schedules.len()).max().unwrap_or(0);
    for s in 0..max_seed_schedules {
        for (c, cell) in cells.iter().enumerate() {
            if let Some(sched) = cell.schedules.get(s) {
                jobs.push((c as u16, sched.clone()));
            }
        }
    }

    let mut corpus = Corpus::new(cfg.corpus_max);
    let mut coverage: BTreeSet<u64> = BTreeSet::new();
    let mut curve = Vec::new();
    let mut violations: Vec<String> = Vec::new();
    let mut min_slack: Option<i64> = None;
    let mut max_slack: Option<i64> = None;
    let mut best_score = 0u64;
    let mut executed = 0usize;
    let mut generation = 0usize;

    while executed < cfg.budget {
        if jobs.is_empty() {
            // Breed the next generation from the corpus: parents rotate
            // in key order, mutation seeds advance with the global run
            // counter. Both depend only on state sealed at the end of
            // the previous generation.
            if corpus.is_empty() {
                break;
            }
            let n = cfg.batch.max(1).min(cfg.budget - executed);
            for j in 0..n {
                let parent = corpus
                    .nth(generation.wrapping_mul(cfg.batch.max(1)).wrapping_add(j))
                    .expect("non-empty corpus");
                let cell = &cells[parent.cell_idx as usize];
                let mseed = runner::sim_seed(cfg.seed ^ 0x6675_7a7a, (executed + j) as u32);
                let mutant = mutate(&cell.params, &parent.schedule, mseed);
                jobs.push((parent.cell_idx, mutant));
            }
        }
        jobs.truncate(cfg.budget - executed);

        let results = run_indexed(jobs.len(), cfg.threads, |i| {
            let (cell_idx, sched) = &jobs[i];
            execute_observed(
                cfg,
                &cells[*cell_idx as usize],
                *cell_idx,
                sched,
                (executed + i) as u32,
            )
        });

        // Sequential fold, in index order: this is the only place global
        // state changes, so the search trajectory is merge-order-stable.
        for (i, r) in results.iter().enumerate() {
            let new_sigs = r.signature.difference(&coverage).count();
            coverage.extend(r.signature.iter().copied());
            let score = base_score(&r.record) + new_sigs as u64 * NEW_COVERAGE_PTS;
            best_score = best_score.max(score);
            if r.record.admissible {
                min_slack = Some(min_slack.map_or(r.record.slack_us, |m| m.min(r.record.slack_us)));
                max_slack = Some(max_slack.map_or(r.record.slack_us, |m| m.max(r.record.slack_us)));
                if !r.record.violations.is_empty()
                    && violations.len() < MAX_VIOLATION_TOKENS
                    && !violations.contains(&r.token)
                {
                    violations.push(r.token.clone());
                }
            }
            let (cell_idx, sched) = &jobs[i];
            corpus.offer(
                *cell_idx,
                &cell_names[*cell_idx as usize],
                sched,
                score,
                new_sigs,
            );
        }
        executed += results.len();
        curve.push((executed, coverage.len()));
        jobs.clear();
        generation += 1;
    }

    Ok(FuzzOutcome {
        config: cfg.clone(),
        cells: cell_names,
        runs: executed,
        coverage: coverage.len(),
        curve,
        corpus,
        min_slack_us: min_slack,
        max_slack_us: max_slack,
        best_score,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::TopoSpec;
    use crate::schedule::FaultVariant;
    use btr_crypto::AuthSuite;

    /// A one-cell fuzz config small enough for unit tests: f=2 chains on
    /// the avionics bus, two variants.
    fn tiny_fuzz(budget: usize, threads: usize) -> FuzzConfig {
        FuzzConfig {
            corpus_max: 16,
            batch: 4,
            cells: vec![CellSpec {
                workload: "avionics".into(),
                topo: TopoSpec::Bus {
                    n: 9,
                    bytes_per_ms: 100_000,
                    latency_us: 5,
                },
                f: 2,
                r_bound: Duration::from_millis(150),
                auth: AuthSuite::HmacSha256,
                variants: vec![FaultVariant::CRASH, FaultVariant::OMISSION_STEALTH],
            }],
            ..FuzzConfig::new(41, budget, threads)
        }
    }

    #[test]
    fn fuzz_json_is_byte_identical_at_any_thread_count() {
        let a = run_fuzz(&tiny_fuzz(10, 1)).expect("fuzzes");
        let b = run_fuzz(&tiny_fuzz(10, 3)).expect("fuzzes");
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.runs, 10);
        assert_eq!(a.corpus.digest(), b.corpus.digest());
        assert!(a.coverage > 0);
        assert!(!a.curve.is_empty());
        // The curve is monotone in both coordinates.
        for w in a.curve.windows(2) {
            assert!(w[1].0 > w[0].0 && w[1].1 >= w[0].1, "{:?}", a.curve);
        }
    }

    #[test]
    fn violating_cells_surface_replay_tokens() {
        // R = 1 ms is unmeetable, so every crash run violates: the
        // violation path must emit parseable, admissible tokens.
        let mut cfg = tiny_fuzz(6, 2);
        cfg.cells[0].r_bound = Duration::from_millis(1);
        cfg.cells[0].variants = vec![FaultVariant::CRASH];
        let out = run_fuzz(&cfg).expect("fuzzes");
        assert!(!out.violations.is_empty());
        assert!(out.min_slack_us.unwrap() < 0, "{:?}", out.min_slack_us);
        for tok in &out.violations {
            let spec = replay::parse(tok).expect("fuzz tokens parse");
            assert!(spec.scenario.faults.len() <= cfg.cells[0].f as usize + 1);
        }
        let json = out.to_json();
        assert!(json.contains("\"violations_admissible\""));
    }
}
