//! Oracle scoring: turn one run's [`RunReport`] into campaign verdicts.
//!
//! A run *violates* when it breaks one of the paper's checkable claims:
//!
//! * **R-bound (Definition 3.1).** Bad outputs may only occur in the
//!   union of `[T_i, T_i + R)` over the injected manifestation times, so
//!   the last bad output must land by `last activation + R`.
//! * **Unconditional pre-fault correctness.** No output may go bad
//!   before the first fault manifests.
//! * **Criticality-ordered shedding.** The degraded plan the strategy
//!   prescribes for the injected pattern must never shed a sink while
//!   keeping a *less* critical one.
//!
//! Runs that hit the simulator event cap are violations too — a run the
//! judge could not finish proves nothing.

use crate::schedule::FaultSchedule;
use btr_core::{BtrSystem, RunReport};
use btr_model::{Duration, FaultSet, TaskId};

/// One broken claim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The bad-output window outlived `last activation + R`.
    RBoundExceeded {
        /// Measured window: last bad instant minus first manifestation (µs).
        window_us: u64,
        /// Allowed: (last activation - first manifestation) + R (µs).
        budget_us: u64,
    },
    /// An output went bad before any fault manifested.
    PreFaultBad {
        /// End of the first bad period (µs).
        first_bad_us: u64,
        /// First manifestation (µs).
        fault_at_us: u64,
    },
    /// The prescribed degraded plan sheds a sink while keeping a less
    /// critical one.
    ShedInversion {
        /// The higher-criticality sink that was shed.
        shed: TaskId,
        /// The lower-criticality sink that was kept.
        kept: TaskId,
    },
    /// The run hit the simulator event cap before the horizon.
    Truncated,
}

impl Violation {
    /// Stable kind tag for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::RBoundExceeded { .. } => "r-bound",
            Violation::PreFaultBad { .. } => "pre-fault-bad",
            Violation::ShedInversion { .. } => "shed-inversion",
            Violation::Truncated => "truncated",
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::RBoundExceeded {
                window_us,
                budget_us,
            } => write!(
                f,
                "R-bound exceeded: bad window {:.1} ms > budget {:.1} ms",
                *window_us as f64 / 1e3,
                *budget_us as f64 / 1e3
            ),
            Violation::PreFaultBad {
                first_bad_us,
                fault_at_us,
            } => write!(
                f,
                "output bad at {:.1} ms before the fault at {:.1} ms",
                *first_bad_us as f64 / 1e3,
                *fault_at_us as f64 / 1e3
            ),
            Violation::ShedInversion { shed, kept } => {
                write!(f, "plan sheds sink {shed} but keeps less-critical {kept}")
            }
            Violation::Truncated => write!(f, "run hit the simulator event cap"),
        }
    }
}

/// Score one run against the cell's claims.
///
/// `slack` widens the R check to absorb judging granularity (bad windows
/// are measured at period-end resolution); zero is correct for the
/// default grids because measured clean-run windows sit far below R.
pub fn score(
    sys: &BtrSystem,
    schedule: &FaultSchedule,
    report: &RunReport,
    slack: Duration,
) -> Vec<Violation> {
    let mut out = Vec::new();
    if report.truncated {
        out.push(Violation::Truncated);
    }
    let scenario = &schedule.scenario;
    if let Some(first_at) = scenario.first_manifestation() {
        let last_at = scenario
            .faults
            .iter()
            .map(|f| f.at)
            .max()
            .expect("non-empty scenario");
        if let Some(first_bad) = report.recovery.first_bad {
            // `first_bad` is a period end: a bad period that closed at or
            // before the first manifestation was entirely fault-free.
            if first_bad <= first_at {
                out.push(Violation::PreFaultBad {
                    first_bad_us: first_bad.as_micros(),
                    fault_at_us: first_at.as_micros(),
                });
            }
        }
        if let Some(last_bad) = report.recovery.last_bad {
            let r = sys.strategy().r_bound;
            let deadline = last_at + r + slack;
            if last_bad > deadline {
                out.push(Violation::RBoundExceeded {
                    window_us: last_bad.saturating_since(first_at).as_micros(),
                    budget_us: last_at.saturating_since(first_at).as_micros() + r.as_micros(),
                });
            }
        }
        out.extend(shed_inversions(sys, scenario.compromised()));
    } else if report.recovery.bad_outputs > 0 {
        // Fault-free runs must be perfect; report the earliest bad slot.
        let first_bad = report
            .recovery
            .first_bad
            .expect("bad outputs imply a window");
        out.push(Violation::PreFaultBad {
            first_bad_us: first_bad.as_micros(),
            fault_at_us: 0,
        });
    }
    out
}

/// Tasks that are *structurally unservable* under a fault set: sources
/// and sinks are pinned to physical nodes (sensors and actuators cannot
/// migrate), so a pinned task on a compromised node is gone no matter
/// what the planner chooses, and everything that transitively loses all
/// of its inputs goes with it. Shedding these is forced, not a choice,
/// so they are exempt from the criticality-ordering check.
fn forced_shed(sys: &BtrSystem, injected: &FaultSet) -> std::collections::BTreeSet<TaskId> {
    let w = sys.workload();
    let mut dead = std::collections::BTreeSet::new();
    // Walk in dataflow order (id order is not guaranteed topological),
    // so starvation propagates through the whole chain in one pass.
    for &id in w.topo_order() {
        let t = w.task(id);
        let pinned_dead = t.kind.pinned_node().is_some_and(|n| injected.contains(n));
        let starved = !t.inputs.is_empty() && t.inputs.iter().all(|u| dead.contains(u));
        if pinned_dead || starved {
            dead.insert(id);
        }
    }
    dead
}

/// Check the prescribed degraded plan for criticality-inverted shedding.
fn shed_inversions(sys: &BtrSystem, compromised: Vec<btr_model::NodeId>) -> Vec<Violation> {
    if compromised.is_empty() {
        return Vec::new();
    }
    let injected: FaultSet = compromised.into_iter().collect();
    let plan = sys.strategy().plan(sys.strategy().best_plan_for(&injected));
    let forced = forced_shed(sys, &injected);
    let mut shed_sinks = Vec::new();
    let mut kept_sinks = Vec::new();
    for sink in sys.workload().sinks() {
        if plan.shed.contains(&sink.id) {
            if !forced.contains(&sink.id) {
                shed_sinks.push(sink);
            }
        } else {
            kept_sinks.push(sink);
        }
    }
    let mut out = Vec::new();
    for shed in &shed_sinks {
        if let Some(kept) = kept_sinks
            .iter()
            .filter(|k| k.criticality < shed.criticality)
            .min_by_key(|k| k.criticality)
        {
            out.push(Violation::ShedInversion {
                shed: shed.id,
                kept: kept.id,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::FaultVariant;
    use btr_core::FaultScenario;
    use btr_model::{NodeId, Time, Topology};
    use btr_planner::PlannerConfig;

    fn system() -> BtrSystem {
        let workload = btr_workload::generators::avionics(9);
        let topo = Topology::bus(9, 100_000, Duration(5));
        let mut cfg = PlannerConfig::new(1, Duration::from_millis(150));
        cfg.admit_best_effort = true;
        BtrSystem::plan(workload, topo, cfg).expect("plannable")
    }

    fn schedule(faults: Vec<btr_core::InjectedFault>) -> FaultSchedule {
        FaultSchedule {
            id: 0,
            scenario: FaultScenario { faults },
        }
    }

    #[test]
    fn clean_crash_run_passes() {
        let sys = system();
        let s = schedule(vec![
            FaultVariant::CRASH.inject(NodeId(6), Time::from_millis(42))
        ]);
        let report = sys.run(&s.scenario, Duration::from_millis(400), 3);
        assert_eq!(score(&sys, &s, &report, Duration::ZERO), Vec::new());
    }

    #[test]
    fn fault_free_run_passes() {
        let sys = system();
        let s = schedule(vec![]);
        let report = sys.run(&s.scenario, Duration::from_millis(200), 3);
        assert_eq!(score(&sys, &s, &report, Duration::ZERO), Vec::new());
    }

    #[test]
    fn equivocation_now_recovers_within_r() {
        // PR 2's campaign found this exact run violating the R-bound:
        // equivocation by node 0 never produced conflicting-signature
        // evidence (single-consumer victim), so outputs stayed wrong to
        // the horizon. With consumers echoing accepted outputs to the
        // task's checker, the conflict is proven and the run is clean.
        let sys = system();
        let s = schedule(vec![
            FaultVariant::EQUIVOCATION.inject(NodeId(0), Time::from_millis(52))
        ]);
        let report = sys.run(&s.scenario, Duration::from_millis(500), 7);
        assert_eq!(score(&sys, &s, &report, Duration::ZERO), Vec::new());
    }

    #[test]
    fn unrecovered_run_scores_an_r_bound_violation() {
        // The oracle's R-bound arm, exercised against a bound the run
        // genuinely cannot meet: crash detection alone takes several
        // periods, so R = 1 ms is unachievable and must be flagged.
        let workload = btr_workload::generators::avionics(9);
        let topo = Topology::bus(9, 100_000, Duration(5));
        let mut cfg = PlannerConfig::new(1, Duration::from_millis(1));
        cfg.admit_best_effort = true;
        let sys = BtrSystem::plan(workload, topo, cfg).expect("plannable");
        let s = schedule(vec![
            FaultVariant::CRASH.inject(NodeId(6), Time::from_millis(42))
        ]);
        let report = sys.run(&s.scenario, Duration::from_millis(400), 3);
        let v = score(&sys, &s, &report, Duration::ZERO);
        assert!(
            v.iter().any(|v| v.kind() == "r-bound"),
            "expected an R-bound violation, got {v:?}"
        );
    }

    #[test]
    fn truncated_runs_are_flagged() {
        let sys = system().with_max_events(500);
        let s = schedule(vec![
            FaultVariant::CRASH.inject(NodeId(6), Time::from_millis(42))
        ]);
        let report = sys.run(&s.scenario, Duration::from_millis(400), 3);
        assert!(report.truncated);
        let v = score(&sys, &s, &report, Duration::ZERO);
        assert!(v.contains(&Violation::Truncated), "{v:?}");
    }

    #[test]
    fn default_plans_shed_in_criticality_order() {
        let sys = system();
        for n in 0..9u32 {
            assert_eq!(shed_inversions(&sys, vec![NodeId(n)]), Vec::new());
        }
    }
}
