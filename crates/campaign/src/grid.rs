//! The campaign grid: which (workload × platform × fault budget) cells a
//! campaign sweeps, and how each cell is planned.
//!
//! Cells carry their own fault-variant set so a grid can focus a sweep,
//! but the default grid no longer excludes anything: the R-bound gaps
//! the first campaign found (equivocation on sparse-consumer victims,
//! SCADA omission/timing attribution, the sequential false-attribution
//! cascade, ring re-routing) are fixed, and every cell now schedules
//! every variant — including the fusion-chain ring cell that the gaps
//! had kept out. CI asserts zero admissible violations across the whole
//! space (see EXPERIMENTS.md "campaign findings — resolved").

use crate::schedule::{FaultVariant, ScheduleParams};
use btr_core::{BtrSystem, SystemError};
use btr_crypto::AuthSuite;
use btr_model::{Duration, Time, Topology};
use btr_planner::PlannerConfig;
use btr_workload::generators;

/// Platform family, sized. Spelled `bus9x100000x5` in labels and replay
/// tokens: family, node count, bytes/ms, latency µs (mesh adds rows×cols).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopoSpec {
    /// A single shared bus.
    Bus {
        /// Node count.
        n: usize,
        /// Usable bandwidth, bytes per millisecond.
        bytes_per_ms: u32,
        /// Propagation latency, µs.
        latency_us: u64,
    },
    /// A point-to-point ring.
    Ring {
        /// Node count.
        n: usize,
        /// Usable bandwidth, bytes per millisecond.
        bytes_per_ms: u32,
        /// Propagation latency, µs.
        latency_us: u64,
    },
    /// A 2D mesh (grid).
    Mesh {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
        /// Usable bandwidth, bytes per millisecond.
        bytes_per_ms: u32,
        /// Propagation latency, µs.
        latency_us: u64,
    },
    /// A 2D torus (mesh with wrap-around links; see `btr_topo::torus`).
    Torus {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
        /// Usable bandwidth, bytes per millisecond.
        bytes_per_ms: u32,
        /// Propagation latency, µs.
        latency_us: u64,
    },
    /// A k-ary fat-tree (see `btr_topo::fat_tree`; `k³/4 + 5k²/4` nodes).
    FatTree {
        /// Tree arity (even, ≥ 2).
        k: usize,
        /// Usable bandwidth, bytes per millisecond.
        bytes_per_ms: u32,
        /// Propagation latency, µs.
        latency_us: u64,
    },
}

impl TopoSpec {
    /// Number of nodes this spec instantiates.
    pub fn n_nodes(&self) -> usize {
        match *self {
            TopoSpec::Bus { n, .. } | TopoSpec::Ring { n, .. } => n,
            TopoSpec::Mesh { rows, cols, .. } | TopoSpec::Torus { rows, cols, .. } => rows * cols,
            TopoSpec::FatTree { k, .. } => btr_topo::fat_tree_size(k),
        }
    }

    /// Build the topology.
    pub fn build(&self) -> Topology {
        match *self {
            TopoSpec::Bus {
                n,
                bytes_per_ms,
                latency_us,
            } => Topology::bus(n, bytes_per_ms, Duration(latency_us)),
            TopoSpec::Ring {
                n,
                bytes_per_ms,
                latency_us,
            } => Topology::ring(n, bytes_per_ms, Duration(latency_us)),
            TopoSpec::Mesh {
                rows,
                cols,
                bytes_per_ms,
                latency_us,
            } => Topology::mesh(rows, cols, bytes_per_ms, Duration(latency_us)),
            TopoSpec::Torus {
                rows,
                cols,
                bytes_per_ms,
                latency_us,
            } => btr_topo::torus(rows, cols, bytes_per_ms, Duration(latency_us))
                .expect("torus specs are size-validated at parse/construction"),
            TopoSpec::FatTree {
                k,
                bytes_per_ms,
                latency_us,
            } => btr_topo::fat_tree(k, 0, bytes_per_ms, Duration(latency_us))
                .expect("fat-tree specs are size-validated at parse/construction"),
        }
    }

    /// Canonical token spelling (parseable by [`TopoSpec::parse`]).
    pub fn token(&self) -> String {
        match *self {
            TopoSpec::Bus {
                n,
                bytes_per_ms,
                latency_us,
            } => format!("bus{n}x{bytes_per_ms}x{latency_us}"),
            TopoSpec::Ring {
                n,
                bytes_per_ms,
                latency_us,
            } => format!("ring{n}x{bytes_per_ms}x{latency_us}"),
            TopoSpec::Mesh {
                rows,
                cols,
                bytes_per_ms,
                latency_us,
            } => format!("mesh{rows}x{cols}x{bytes_per_ms}x{latency_us}"),
            TopoSpec::Torus {
                rows,
                cols,
                bytes_per_ms,
                latency_us,
            } => format!("torus{rows}x{cols}x{bytes_per_ms}x{latency_us}"),
            TopoSpec::FatTree {
                k,
                bytes_per_ms,
                latency_us,
            } => format!("fattree{k}x{bytes_per_ms}x{latency_us}"),
        }
    }

    /// Parse a [`TopoSpec::token`] spelling.
    pub fn parse(s: &str) -> Option<TopoSpec> {
        let (family, rest) = if let Some(r) = s.strip_prefix("bus") {
            ("bus", r)
        } else if let Some(r) = s.strip_prefix("ring") {
            ("ring", r)
        } else if let Some(r) = s.strip_prefix("mesh") {
            ("mesh", r)
        } else if let Some(r) = s.strip_prefix("torus") {
            ("torus", r)
        } else if let Some(r) = s.strip_prefix("fattree") {
            ("fattree", r)
        } else {
            return None;
        };
        let nums: Vec<u64> = rest
            .split('x')
            .map(str::parse)
            .collect::<Result<_, _>>()
            .ok()?;
        match (family, nums.as_slice()) {
            ("bus", &[n, b, l]) => Some(TopoSpec::Bus {
                n: n as usize,
                bytes_per_ms: b as u32,
                latency_us: l,
            }),
            ("ring", &[n, b, l]) => Some(TopoSpec::Ring {
                n: n as usize,
                bytes_per_ms: b as u32,
                latency_us: l,
            }),
            ("mesh", &[r, c, b, l]) => Some(TopoSpec::Mesh {
                rows: r as usize,
                cols: c as usize,
                bytes_per_ms: b as u32,
                latency_us: l,
            }),
            // Size guards use checked arithmetic and sane ceilings: a
            // crafted token must parse to None (the replay CLI's clean
            // exit(2) path), never overflow in the guard itself or in a
            // later n_nodes()/generator computation.
            ("torus", &[r, c, b, l])
                if r.checked_mul(c).is_some_and(|p| (2..=1 << 20).contains(&p)) =>
            {
                Some(TopoSpec::Torus {
                    rows: r as usize,
                    cols: c as usize,
                    bytes_per_ms: b as u32,
                    latency_us: l,
                })
            }
            ("fattree", &[k, b, l]) if (2..=64).contains(&k) && k % 2 == 0 => {
                Some(TopoSpec::FatTree {
                    k: k as usize,
                    bytes_per_ms: b as u32,
                    latency_us: l,
                })
            }
            _ => None,
        }
    }
}

/// One campaign cell: a planned deployment the runner injects faults into.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// Workload family (a `btr_workload::generators::catalog` name).
    pub workload: String,
    /// Platform.
    pub topo: TopoSpec,
    /// Fault budget the strategy is planned for.
    pub f: u8,
    /// The recovery bound R the cell is judged against.
    pub r_bound: Duration,
    /// The authenticator suite the cell's deployment runs with
    /// (HMAC-SHA-256 default; verdicts are suite-independent, so a
    /// SipHash twin of a cell is a differential oracle, not new
    /// coverage). Spelled `a=sip` in replay tokens, `-sip` in names.
    pub auth: AuthSuite,
    /// The fault variants scheduled on this cell.
    pub variants: Vec<FaultVariant>,
}

impl CellSpec {
    /// Short display name, e.g. `avionics9-bus-f1` (`-sip` appended for
    /// the non-default authenticator suite).
    pub fn name(&self) -> String {
        let family = match self.topo {
            TopoSpec::Bus { .. } => "bus",
            TopoSpec::Ring { .. } => "ring",
            TopoSpec::Mesh { .. } => "mesh",
            TopoSpec::Torus { .. } => "torus",
            TopoSpec::FatTree { .. } => "fattree",
        };
        format!(
            "{}{}-{}-f{}{}",
            self.workload,
            self.topo.n_nodes(),
            family,
            self.f,
            match self.auth {
                AuthSuite::HmacSha256 => "",
                AuthSuite::SipHash24 => "-sip",
            }
        )
    }

    /// Plan the cell into a runnable system.
    pub fn plan(&self) -> Result<BtrSystem, CellError> {
        let gen = generators::by_name(&self.workload)
            .ok_or_else(|| CellError::UnknownWorkload(self.workload.clone()))?;
        // Validate the platform size before handing it to the workload
        // generators, which assert (panic) below two nodes — a crafted
        // replay token or grid must fail cleanly instead.
        let n = self.topo.n_nodes();
        if n < 2 {
            return Err(CellError::TooFewNodes { got: n });
        }
        let workload = gen(n);
        let mut cfg = PlannerConfig::new(self.f, self.r_bound);
        cfg.admit_best_effort = true;
        BtrSystem::plan(workload, self.topo.build(), cfg)
            .map(|s| s.with_auth_suite(self.auth))
            .map_err(CellError::Planning)
    }

    /// Schedule-generator parameters for this cell.
    ///
    /// Activation windows and gaps scale with the cell's period and R:
    /// faults start after 4 warm-up periods, first activations spread
    /// over 20 periods, and sequential faults are spaced at least R
    /// apart (the paper's "a new fault every R" adversary).
    pub fn schedule_params(
        &self,
        period: Duration,
        deadline: Duration,
        combos: bool,
        over_budget: bool,
    ) -> ScheduleParams {
        let p = period.as_micros();
        let r = self.r_bound.as_micros();
        ScheduleParams {
            n_nodes: self.topo.n_nodes() as u32,
            f: self.f,
            period,
            deadline,
            first_at: Time(4 * p),
            last_at: Time(4 * p + 20 * p),
            gap: (Duration(r), Duration(r + 10 * p)),
            variants: self.variants.clone(),
            combos,
            over_budget,
        }
    }

    /// The judging horizon: latest possible activation, plus R to
    /// recover, plus a 10-period settling tail.
    pub fn horizon(&self, period: Duration, combos: bool, over_budget: bool) -> Duration {
        let p = period.as_micros();
        let r = self.r_bound.as_micros();
        let max_faults = if over_budget {
            self.f as u64 + 1
        } else if combos {
            self.f as u64
        } else {
            1
        };
        let last_activation = 24 * p + (max_faults - 1) * (r + 10 * p);
        Duration(last_activation + r + 10 * p)
    }
}

/// Cell construction / planning errors.
#[derive(Debug)]
pub enum CellError {
    /// The workload name is not in the generator catalog.
    UnknownWorkload(String),
    /// The platform has too few nodes to host any workload.
    TooFewNodes {
        /// The offending node count.
        got: usize,
    },
    /// The planner failed for this cell.
    Planning(SystemError),
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellError::UnknownWorkload(w) => write!(f, "unknown workload '{w}'"),
            CellError::TooFewNodes { got } => {
                write!(f, "platform has {got} node(s); workloads need at least 2")
            }
            CellError::Planning(e) => write!(f, "cell planning failed: {e}"),
        }
    }
}

impl std::error::Error for CellError {}

/// The default campaign grid: nine cells spanning four workload
/// families, five platform families (bus, multi-hop ring, mesh, torus,
/// fat-tree), and budgets f ∈ {1, 2}, every cell scheduling **every**
/// fault variant. CI asserts zero admissible violations here, including
/// under `--combos`. The variant exclusions and the missing ring cell
/// that used to pin this grid to a "clean" subspace were R-bound gaps,
/// now fixed — see EXPERIMENTS.md "campaign findings — resolved"; the
/// mesh/torus/fat-tree cells and the second f=2 cell are the ROADMAP's
/// "scale the grid" step riding on the btr-topo subsystem.
pub fn default_grid() -> Vec<CellSpec> {
    vec![
        CellSpec {
            workload: "avionics".into(),
            topo: TopoSpec::Bus {
                n: 9,
                bytes_per_ms: 100_000,
                latency_us: 5,
            },
            f: 1,
            r_bound: Duration::from_millis(150),
            auth: AuthSuite::HmacSha256,
            variants: FaultVariant::ALL.to_vec(),
        },
        CellSpec {
            workload: "avionics".into(),
            topo: TopoSpec::Bus {
                n: 9,
                bytes_per_ms: 100_000,
                latency_us: 5,
            },
            f: 2,
            r_bound: Duration::from_millis(150),
            auth: AuthSuite::HmacSha256,
            variants: FaultVariant::ALL.to_vec(),
        },
        CellSpec {
            workload: "automotive".into(),
            topo: TopoSpec::Bus {
                n: 8,
                bytes_per_ms: 200_000,
                latency_us: 5,
            },
            f: 1,
            r_bound: Duration::from_millis(100),
            auth: AuthSuite::HmacSha256,
            variants: FaultVariant::ALL.to_vec(),
        },
        CellSpec {
            workload: "scada".into(),
            topo: TopoSpec::Bus {
                n: 6,
                bytes_per_ms: 100_000,
                latency_us: 10,
            },
            f: 1,
            r_bound: Duration::from_millis(400),
            auth: AuthSuite::HmacSha256,
            variants: FaultVariant::ALL.to_vec(),
        },
        CellSpec {
            workload: "fusion-chain".into(),
            topo: TopoSpec::Ring {
                n: 9,
                bytes_per_ms: 100_000,
                latency_us: 5,
            },
            f: 1,
            r_bound: Duration::from_millis(150),
            auth: AuthSuite::HmacSha256,
            variants: FaultVariant::ALL.to_vec(),
        },
        // The ROADMAP-requested multi-hop grid growth: the same avionics
        // workload on a 3x3 mesh (relayed flows, crash re-routing), the
        // torus wrap variant, a 36-node k=4 fat-tree (host/switch
        // asymmetry with redundant aggregation — k=2 was rejected: every
        // switch is a single point of failure there, so one dead agg
        // partitions its pod and forces structurally-unservable sheds
        // the criticality oracle rightly flags), and a second f=2 cell
        // on a multi-hop platform.
        CellSpec {
            workload: "avionics".into(),
            topo: TopoSpec::Mesh {
                rows: 3,
                cols: 3,
                bytes_per_ms: 100_000,
                latency_us: 5,
            },
            f: 1,
            r_bound: Duration::from_millis(150),
            auth: AuthSuite::HmacSha256,
            variants: FaultVariant::ALL.to_vec(),
        },
        CellSpec {
            workload: "fusion-chain".into(),
            topo: TopoSpec::Torus {
                rows: 3,
                cols: 3,
                bytes_per_ms: 100_000,
                latency_us: 5,
            },
            f: 1,
            r_bound: Duration::from_millis(150),
            auth: AuthSuite::HmacSha256,
            variants: FaultVariant::ALL.to_vec(),
        },
        // Datacenter-class bandwidth: at CAN-bus rates the period-start
        // heartbeat/evidence bursts queue ~1-3 ms on the shared relay
        // lanes of the tree's aggregation layer, blowing through the
        // schedule's producer-to-consumer slot gaps in fault-free runs.
        CellSpec {
            workload: "scada".into(),
            topo: TopoSpec::FatTree {
                k: 4,
                bytes_per_ms: 1_000_000,
                latency_us: 5,
            },
            f: 1,
            r_bound: Duration::from_millis(400),
            auth: AuthSuite::HmacSha256,
            variants: FaultVariant::ALL.to_vec(),
        },
        CellSpec {
            workload: "avionics".into(),
            topo: TopoSpec::Mesh {
                rows: 3,
                cols: 3,
                bytes_per_ms: 100_000,
                latency_us: 5,
            },
            f: 2,
            r_bound: Duration::from_millis(150),
            auth: AuthSuite::HmacSha256,
            variants: FaultVariant::ALL.to_vec(),
        },
    ]
}

/// The fuzzer's hunting grid: small, deep cells aimed where the PR 3
/// direct-evidence gating has least margin — the f=3 sequential-chain
/// regime on the avionics bus (three cascading faults, any variant mix)
/// and f=2 on the sparse-fan-in SCADA bus whose scaled attribution
/// thresholds the campaign already bent once. Kept to two cells so a
/// bounded `--budget` buys chain depth rather than grid breadth.
pub fn fuzz_grid() -> Vec<CellSpec> {
    vec![
        CellSpec {
            workload: "avionics".into(),
            topo: TopoSpec::Bus {
                n: 9,
                bytes_per_ms: 100_000,
                latency_us: 5,
            },
            f: 3,
            r_bound: Duration::from_millis(150),
            auth: AuthSuite::HmacSha256,
            variants: FaultVariant::ALL.to_vec(),
        },
        CellSpec {
            workload: "scada".into(),
            topo: TopoSpec::Bus {
                n: 6,
                bytes_per_ms: 100_000,
                latency_us: 10,
            },
            f: 2,
            r_bound: Duration::from_millis(400),
            auth: AuthSuite::HmacSha256,
            variants: FaultVariant::ALL.to_vec(),
        },
    ]
}

/// The same cells as [`default_grid`] with every variant enabled. Since
/// the campaign-found gaps were fixed, the default grid already runs the
/// full variant space, so this is an alias; it remains the stable name
/// scripts pass via `--all-variants`.
pub fn all_variant_grid() -> Vec<CellSpec> {
    default_grid()
}

/// Force one authenticator suite on every cell of a grid (`harness
/// campaign --auth hmac|sip`). Running the same grid under each suite
/// and comparing `runs_digest` is the campaign-level cross-suite
/// differential oracle — verdicts must be bit-identical.
pub fn with_auth(mut cells: Vec<CellSpec>, suite: AuthSuite) -> Vec<CellSpec> {
    for c in &mut cells {
        c.auth = suite;
    }
    cells
}

/// Duplicate every cell with a SipHash twin (`harness campaign --auth
/// both`): one campaign sweeps both suites side by side, twins
/// distinguished by the `-sip` name suffix and the `a=sip` token field.
pub fn auth_sweep(cells: Vec<CellSpec>) -> Vec<CellSpec> {
    let mut out = Vec::with_capacity(cells.len() * 2);
    for c in cells {
        let mut twin = c.clone();
        twin.auth = AuthSuite::SipHash24;
        out.push(c);
        out.push(twin);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topo_tokens_round_trip() {
        let specs = [
            TopoSpec::Bus {
                n: 9,
                bytes_per_ms: 100_000,
                latency_us: 5,
            },
            TopoSpec::Ring {
                n: 6,
                bytes_per_ms: 400_000,
                latency_us: 3,
            },
            TopoSpec::Mesh {
                rows: 4,
                cols: 5,
                bytes_per_ms: 150_000,
                latency_us: 5,
            },
            TopoSpec::Torus {
                rows: 3,
                cols: 4,
                bytes_per_ms: 100_000,
                latency_us: 5,
            },
            TopoSpec::FatTree {
                k: 4,
                bytes_per_ms: 1_000_000,
                latency_us: 5,
            },
        ];
        for s in specs {
            assert_eq!(
                TopoSpec::parse(&s.token()),
                Some(s.clone()),
                "{}",
                s.token()
            );
            assert_eq!(s.build().node_count(), s.n_nodes());
        }
        assert!(TopoSpec::parse("star5x1x1").is_none());
        assert!(TopoSpec::parse("bus9x100000").is_none());
        // Degenerate or overflow-prone sizes must parse to None, not
        // panic in the guard or in a later n_nodes() computation.
        assert!(TopoSpec::parse("torus1x1x100x1").is_none());
        assert!(TopoSpec::parse("torus4294967296x4294967297x1x1").is_none());
        assert!(TopoSpec::parse("torus3000000000x3000000000x1x1").is_none());
        assert!(TopoSpec::parse("fattree3x100x1").is_none());
        assert!(TopoSpec::parse("fattree0x100x1").is_none());
        assert!(TopoSpec::parse("fattree6000000x1x1").is_none());
    }

    #[test]
    fn default_grid_cells_plan() {
        for cell in default_grid() {
            let sys = cell
                .plan()
                .unwrap_or_else(|e| panic!("{}: {e}", cell.name()));
            assert_eq!(sys.strategy().f, cell.f, "{}", cell.name());
            assert_eq!(sys.strategy().r_bound, cell.r_bound, "{}", cell.name());
        }
    }

    #[test]
    fn fuzz_grid_cells_plan_at_their_fault_budgets() {
        let cells = fuzz_grid();
        assert!(cells.iter().any(|c| c.f == 3), "fuzz grid must reach f=3");
        for cell in cells {
            let sys = cell
                .plan()
                .unwrap_or_else(|e| panic!("{}: {e}", cell.name()));
            assert_eq!(sys.strategy().f, cell.f, "{}", cell.name());
            let params = cell.schedule_params(
                Duration::from_millis(10),
                Duration::from_millis(8),
                true,
                true,
            );
            assert_eq!(params.f, cell.f, "{}", cell.name());
        }
    }

    #[test]
    fn cell_names_are_distinct() {
        let names: std::collections::BTreeSet<String> =
            default_grid().iter().map(CellSpec::name).collect();
        assert_eq!(names.len(), default_grid().len());
    }

    #[test]
    fn auth_sweep_twins_every_cell() {
        let base = default_grid();
        let swept = auth_sweep(default_grid());
        assert_eq!(swept.len(), 2 * base.len());
        // Twins differ only in suite; names stay distinct grid-wide.
        for pair in swept.chunks(2) {
            assert_eq!(pair[0].auth, AuthSuite::HmacSha256);
            assert_eq!(pair[1].auth, AuthSuite::SipHash24);
            assert_eq!(pair[1].name(), format!("{}-sip", pair[0].name()));
        }
        let names: std::collections::BTreeSet<String> = swept.iter().map(CellSpec::name).collect();
        assert_eq!(names.len(), swept.len());
        // Forcing a suite touches every cell and plans with it.
        let forced = with_auth(default_grid(), AuthSuite::SipHash24);
        assert!(forced.iter().all(|c| c.auth == AuthSuite::SipHash24));
        let sys = forced[0].plan().expect("plans");
        assert_eq!(sys.auth_suite(), AuthSuite::SipHash24);
    }

    #[test]
    fn horizon_covers_latest_activation_plus_r() {
        for cell in default_grid() {
            let period = Duration::from_millis(10);
            let params = cell.schedule_params(period, Duration::from_millis(8), true, true);
            let h = cell.horizon(period, true, true);
            let worst_last = params.last_at.as_micros()
                + (params.max_faults() as u64 - 1) * params.gap.1.as_micros();
            assert!(
                h.as_micros() >= worst_last + cell.r_bound.as_micros(),
                "{}: horizon {h} too short for last activation {worst_last}",
                cell.name()
            );
        }
    }

    #[test]
    fn unknown_workload_is_an_error() {
        let cell = CellSpec {
            workload: "warp-drive".into(),
            topo: TopoSpec::Bus {
                n: 4,
                bytes_per_ms: 1000,
                latency_us: 1,
            },
            f: 1,
            r_bound: Duration::from_millis(100),
            auth: AuthSuite::HmacSha256,
            variants: FaultVariant::ALL.to_vec(),
        };
        assert!(matches!(cell.plan(), Err(CellError::UnknownWorkload(_))));
    }
}
