//! Shard-partition analyzer: price the PDES split before building it.
//!
//! The ROADMAP's top open item is to shard the simulator across cores
//! with conservative time windows (classic PDES). Whether that wins
//! depends on three numbers per candidate partition, all measurable
//! today from a [`TrafficMatrix`] and the topology alone:
//!
//! - **Cut-traffic fraction** `c`: the share of link traffic crossing
//!   region boundaries — every crossing message is a synchronization
//!   obligation between shards.
//! - **Load imbalance** `β`: max region load over mean region load —
//!   conservative windows advance at the pace of the busiest shard.
//! - **Lookahead**: the minimum latency of any cut link — the PDES
//!   window size; each shard may run this far ahead of its neighbours
//!   without risking causality (the link-latency model guarantees a
//!   nonzero bound).
//!
//! The predicted speedup ceiling folds the first two into an
//! Amdahl-style bound: `1 / (c + (1 − c) / (k / β))` for `k` regions —
//! cut traffic serializes, the rest parallelizes at the busiest shard's
//! pace. It is a *ceiling*, not a forecast: it ignores window-barrier
//! latency, which the measured lookahead lets the sharding PR reason
//! about separately.
//!
//! Each topology family exposes its natural cuts as assignment vectors
//! (torus row/tile bands, fat-tree pods, star-of-rings arms, contiguous
//! ring blocks), derived from the same construction order the builders
//! in this crate use.

use crate::{fat_tree_size, torus_dims};
use btr_model::Topology;
use btr_obs::TrafficMatrix;

/// One scored candidate partition.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardCandidate {
    /// Candidate name (`"torus-rows/2"`, `"fat-tree-pods"`, ...).
    pub name: String,
    /// Number of regions (shards).
    pub regions: usize,
    /// Measured load per region (deliveries + accepted sends by the
    /// region's nodes).
    pub region_load: Vec<u64>,
    /// Links whose endpoints span more than one region.
    pub cut_links: usize,
    /// Share of carried link messages that traverse a cut link.
    pub cut_traffic_fraction: f64,
    /// Max region load over mean region load (≥ 1.0 when loaded).
    pub imbalance: f64,
    /// Minimum cut-link latency in µs — the conservative-window bound.
    pub lookahead_us: u64,
    /// Amdahl-style speedup ceiling `1 / (c + (1 − c) / (k / β))`.
    pub predicted_ceiling: f64,
}

/// Score one partition of `topo` under measured `traffic`. `assign`
/// maps node index → region (regions need not be contiguous ids; the
/// region count is `max(assign) + 1`).
///
/// Panics if `assign.len() != topo.node_count()`.
pub fn analyze_partition(
    topo: &Topology,
    assign: &[usize],
    traffic: &TrafficMatrix,
    name: &str,
) -> ShardCandidate {
    assert_eq!(
        assign.len(),
        topo.node_count(),
        "assignment must cover every node"
    );
    let regions = assign.iter().copied().max().map_or(1, |m| m + 1);

    // Region load: protocol events the region's nodes process —
    // deliveries in plus sends out (both are per-node rows of the
    // matrix; bounds-guarded so an unloaded or smaller matrix scores 0).
    let mut region_load = vec![0u64; regions];
    for (i, &r) in assign.iter().enumerate() {
        let rx = traffic.rx_msgs().get(i).copied().unwrap_or(0);
        let tx = traffic.tx_msgs().get(i).copied().unwrap_or(0);
        region_load[r] = region_load[r].saturating_add(rx).saturating_add(tx);
    }

    // Cut structure: a link is cut when its endpoints span regions
    // (multi-drop bus links cut as soon as any two endpoints differ).
    let mut cut_links = 0usize;
    let mut cut_msgs = 0u64;
    let mut total_msgs = 0u64;
    let mut lookahead_us = u64::MAX;
    for (li, link) in topo.links().iter().enumerate() {
        let msgs = if li < traffic.links() {
            traffic.link_msgs(li)
        } else {
            0
        };
        total_msgs = total_msgs.saturating_add(msgs);
        let first = assign[link.endpoints[0].index()];
        let cut = link.endpoints.iter().any(|e| assign[e.index()] != first);
        if cut {
            cut_links += 1;
            cut_msgs = cut_msgs.saturating_add(msgs);
            lookahead_us = lookahead_us.min(link.latency.as_micros());
        }
    }
    if lookahead_us == u64::MAX {
        lookahead_us = 0;
    }

    let cut_traffic_fraction = if total_msgs > 0 {
        cut_msgs as f64 / total_msgs as f64
    } else {
        0.0
    };
    let max_load = region_load.iter().copied().max().unwrap_or(0);
    let total_load: u64 = region_load.iter().sum();
    let imbalance = if total_load > 0 {
        max_load as f64 / (total_load as f64 / regions as f64)
    } else {
        1.0
    };
    let effective_parallelism = regions as f64 / imbalance;
    let c = cut_traffic_fraction;
    let predicted_ceiling = 1.0 / (c + (1.0 - c) / effective_parallelism);

    ShardCandidate {
        name: name.to_string(),
        regions,
        region_load,
        cut_links,
        cut_traffic_fraction,
        imbalance,
        lookahead_us,
        predicted_ceiling,
    }
}

/// Contiguous-band split of one torus dimension into `k` regions:
/// region = `r * k / rows` (row bands) using the same `r * cols + c`
/// node-id layout [`crate::torus`] builds. Falls back to column bands
/// when the row extent is too small to split `k` ways; `None` when
/// neither dimension can.
pub fn torus_bands(n: usize, k: usize) -> Option<Vec<usize>> {
    let (rows, cols) = torus_dims(n);
    if k < 2 {
        return None;
    }
    if rows >= k {
        Some((0..n).map(|i| (i / cols) * k / rows).collect())
    } else if cols >= k {
        Some((0..n).map(|i| (i % cols) * k / cols).collect())
    } else {
        None
    }
}

/// 2×2 tile split of the torus (4 regions) — cuts both dimensions, so
/// each region keeps half of each dimension's wrap links internal.
/// `None` when either extent is below 2.
pub fn torus_tiles2x2(n: usize) -> Option<Vec<usize>> {
    let (rows, cols) = torus_dims(n);
    if rows < 2 || cols < 2 {
        return None;
    }
    Some(
        (0..n)
            .map(|i| {
                let (r, c) = (i / cols, i % cols);
                (r * 2 / rows) * 2 + (c * 2 / cols)
            })
            .collect(),
    )
}

/// Pod partition of the exactly-`n`-node fat-tree [`crate::fat_tree`]
/// builds (the same k-selection as the catalog generator): each pod is
/// a region; core switches round-robin across pod regions; padded
/// extra hosts follow their edge switch's pod. `None` when `n` cannot
/// host a fat-tree.
pub fn fat_tree_pods(n: usize) -> Option<Vec<usize>> {
    let mut k = 2;
    while fat_tree_size(k + 2) <= n {
        k += 2;
    }
    if fat_tree_size(k) > n {
        return None;
    }
    let half = k / 2;
    let mut assign = Vec::with_capacity(n);
    // Cores first (shared infrastructure: spread round-robin).
    for j in 0..half * half {
        assign.push(j % k);
    }
    // Then per pod: half aggs, half edges, half*half hosts.
    for pod in 0..k {
        for _ in 0..(2 * half + half * half) {
            assign.push(pod);
        }
    }
    // Extra hosts attach round-robin across the global edge list; edge
    // e lives in pod e / half.
    let extra = n - fat_tree_size(k);
    for i in 0..extra {
        let e = i % (k * half);
        assign.push(e / half);
    }
    Some(assign)
}

/// Arm partition of [`crate::scada_star`]: hub `h` plus the field
/// devices assigned to it round-robin form region `h`. `None` below
/// the family's 3-node minimum.
pub fn scada_arms(n: usize) -> Option<Vec<usize>> {
    if n < 3 {
        return None;
    }
    let hubs = (n / 10).max(2).min(n - 1);
    Some(
        (0..n)
            .map(|i| if i < hubs { i } else { (i - hubs) % hubs })
            .collect(),
    )
}

/// Contiguous id-block split into `k` regions (the natural cut for
/// ring-based families like small-world): region = `i * k / n`.
pub fn ring_blocks(n: usize, k: usize) -> Option<Vec<usize>> {
    if k < 2 || n < k {
        return None;
    }
    Some((0..n).map(|i| i * k / n).collect())
}

/// The natural candidate partitions for a catalog family at size `n`:
/// at least two per family wherever the size allows, named for the
/// `shard_plan` report.
pub fn candidate_partitions(family: &str, n: usize) -> Vec<(String, Vec<usize>)> {
    let mut out: Vec<(String, Option<Vec<usize>>)> = Vec::new();
    match family {
        "torus" => {
            out.push(("torus-bands/2".into(), torus_bands(n, 2)));
            out.push(("torus-bands/4".into(), torus_bands(n, 4)));
            out.push(("torus-tiles/2x2".into(), torus_tiles2x2(n)));
        }
        "fat-tree" => {
            out.push(("fat-tree-pods".into(), fat_tree_pods(n)));
            out.push((
                "fat-tree-pod-pairs".into(),
                fat_tree_pods(n).and_then(|a| {
                    let regions = a.iter().copied().max()? + 1;
                    (regions >= 4).then(|| a.iter().map(|&r| r / 2).collect())
                }),
            ));
            out.push(("fat-tree-halves".into(), ring_blocks(n, 2)));
        }
        "scada-star" => {
            out.push(("scada-arms".into(), scada_arms(n)));
            out.push((
                "scada-arm-halves".into(),
                scada_arms(n).and_then(|a| {
                    let regions = a.iter().copied().max()? + 1;
                    (regions >= 4).then(|| a.iter().map(|&r| r % 2).collect())
                }),
            ));
        }
        _ => {
            out.push((format!("{family}-blocks/2"), ring_blocks(n, 2)));
            out.push((format!("{family}-blocks/4"), ring_blocks(n, 4)));
        }
    }
    out.into_iter()
        .filter_map(|(name, a)| a.map(|a| (name, a)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{scada_star, torus, TopoParams};
    use btr_model::Duration;

    fn uniform_traffic(topo: &Topology) -> TrafficMatrix {
        let mut t = TrafficMatrix::new(topo.node_count(), topo.links().len());
        for i in 0..topo.node_count() {
            t.record_tx(i);
            t.record_rx(i);
        }
        for l in 0..topo.links().len() {
            t.record_link(l, 100, l % 3 == 0);
        }
        t
    }

    #[test]
    fn torus_bands_cover_and_balance() {
        let a = torus_bands(1000, 4).expect("25x40 splits 4 ways");
        assert_eq!(a.len(), 1000);
        assert_eq!(a.iter().copied().max(), Some(3));
        // 25 rows into 4 bands: sizes within one row of each other.
        let mut sizes = [0usize; 4];
        for &r in &a {
            sizes[r] += 1;
        }
        assert!(sizes.iter().all(|&s| (240..=280).contains(&s)), "{sizes:?}");
    }

    #[test]
    fn analyzer_scores_torus_cut() {
        let topo = torus(4, 5, 100_000, Duration(5)).unwrap();
        let traffic = uniform_traffic(&topo);
        let assign = torus_bands(20, 2).unwrap();
        let c = analyze_partition(&topo, &assign, &traffic, "torus-bands/2");
        assert_eq!(c.regions, 2);
        assert_eq!(c.region_load.iter().sum::<u64>(), 40);
        // A 2-band split of a 4x5 torus cuts 2 row boundaries x 5 cols.
        assert_eq!(c.cut_links, 10);
        assert!(c.cut_traffic_fraction > 0.0 && c.cut_traffic_fraction < 1.0);
        assert_eq!(c.lookahead_us, 5);
        assert!((c.imbalance - 1.0).abs() < 1e-9);
        let expected = 1.0 / (0.25 + 0.75 / 2.0);
        assert!((c.predicted_ceiling - expected).abs() < 1e-9, "{c:?}");
        assert!(c.predicted_ceiling > 1.0 && c.predicted_ceiling <= 2.0);
    }

    #[test]
    fn unloaded_matrix_scores_zero_cut_fraction() {
        let topo = torus(4, 5, 100_000, Duration(5)).unwrap();
        let empty = TrafficMatrix::new(20, topo.links().len());
        let assign = torus_bands(20, 2).unwrap();
        let c = analyze_partition(&topo, &assign, &empty, "empty");
        assert_eq!(c.cut_traffic_fraction, 0.0);
        assert_eq!(c.imbalance, 1.0);
        assert!(c.cut_links > 0);
    }

    #[test]
    fn fat_tree_pod_assignment_matches_build_order() {
        // k=4, no padding: 36 nodes, 4 pods.
        let a = fat_tree_pods(36).unwrap();
        assert_eq!(a.len(), 36);
        assert_eq!(a.iter().copied().max(), Some(3));
        // 4 cores round-robin.
        assert_eq!(&a[..4], &[0, 1, 2, 3]);
        // Pod blocks of 8 (2 agg + 2 edge + 4 hosts).
        for pod in 0..4 {
            for i in 0..8 {
                assert_eq!(a[4 + pod * 8 + i], pod, "pod {pod} slot {i}");
            }
        }
        // Padded: extra hosts land in edge-order pods.
        let padded = fat_tree_pods(41).unwrap();
        assert_eq!(padded.len(), 41);
        assert_eq!(&padded[36..], &[0, 0, 1, 1, 2]);
    }

    #[test]
    fn scada_arms_match_family_layout() {
        let n = 43;
        let a = scada_arms(n).unwrap();
        let topo = scada_star(n, 100_000, Duration(5)).unwrap();
        assert_eq!(a.len(), topo.node_count());
        // 4 hubs, each its own region; devices round-robin.
        assert_eq!(&a[..4], &[0, 1, 2, 3]);
        assert_eq!(a[4], 0);
        assert_eq!(a[5], 1);
        // Only backbone links are cut: every field ring stays inside
        // its arm.
        let traffic = uniform_traffic(&topo);
        let c = analyze_partition(&topo, &a, &traffic, "scada-arms");
        assert_eq!(c.regions, 4);
        assert_eq!(c.cut_links, 4, "{c:?}");
    }

    #[test]
    fn every_family_offers_two_candidates_at_scale_sizes() {
        for (family, gen) in crate::catalog() {
            for n in [100usize, 400, 1000] {
                let topo = gen(&TopoParams::new(n)).unwrap();
                let cands = candidate_partitions(family, n);
                assert!(
                    cands.len() >= 2,
                    "{family}({n}): only {} candidates",
                    cands.len()
                );
                for (name, assign) in &cands {
                    assert_eq!(assign.len(), n, "{name}");
                    let regions = assign.iter().copied().max().unwrap() + 1;
                    assert!(regions >= 2, "{name}: single region");
                    let traffic = uniform_traffic(&topo);
                    let c = analyze_partition(&topo, assign, &traffic, name);
                    assert!(c.cut_links > 0, "{name}: no cut links");
                    assert!(c.predicted_ceiling >= 1.0, "{name}: {c:?}");
                    assert!(c.lookahead_us > 0, "{name}: zero lookahead");
                }
            }
        }
    }
}
