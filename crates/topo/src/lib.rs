//! Parametric large-scale platform topologies.
//!
//! The hand-rolled `Topology::{bus, ring, mesh}` constructors in
//! `btr-model` cover the paper's small testbed shapes; this crate grows
//! the platform side to the thousand-node regime the ROADMAP names:
//! structured fabrics (2-D torus, fat-tree), statistical graphs
//! (small-world rewiring), and the hierarchical star-of-rings layout of
//! real SCADA plants. Every family is built on
//! [`btr_model::TopologyBuilder`], is deterministic in its parameters
//! (the small-world family additionally in its seed), and is registered
//! in [`catalog`]/[`by_name`] mirroring `btr_workload::generators`, so
//! harness subcommands and campaign cells can name platforms the same
//! way they name workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use btr_model::{Duration, NodeId, Topology, TopologyBuilder, TopologyError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub mod shard;

/// Sizing and link parameters shared by every topology family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoParams {
    /// Total node count the family must instantiate exactly.
    pub n: usize,
    /// Seed for the statistically-generated families (small-world
    /// rewiring); structured families ignore it.
    pub seed: u64,
    /// Usable bandwidth of every link, bytes per millisecond.
    pub bytes_per_ms: u32,
    /// Propagation latency of every link.
    pub latency: Duration,
}

impl TopoParams {
    /// Parameters for `n` nodes with the default link characteristics
    /// used across the experiment suite (100 kB/ms, 5 µs).
    pub fn new(n: usize) -> TopoParams {
        TopoParams {
            n,
            seed: 0x7090,
            bytes_per_ms: 100_000,
            latency: Duration(5),
        }
    }
}

/// Why a family could not be instantiated at the requested size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopoBuildError {
    /// The family needs at least `need` nodes.
    TooFewNodes {
        /// The family that rejected the size.
        family: &'static str,
        /// Minimum node count the family supports.
        need: usize,
        /// The requested node count.
        got: usize,
    },
    /// The assembled graph failed `TopologyBuilder` validation (a family
    /// bug — the constructors here are supposed to emit valid graphs).
    Invalid(TopologyError),
}

impl std::fmt::Display for TopoBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopoBuildError::TooFewNodes { family, need, got } => {
                write!(f, "{family} needs at least {need} nodes, got {got}")
            }
            TopoBuildError::Invalid(e) => write!(f, "invalid topology: {e}"),
        }
    }
}

impl std::error::Error for TopoBuildError {}

fn finish(b: TopologyBuilder) -> Result<Topology, TopoBuildError> {
    b.build().map_err(TopoBuildError::Invalid)
}

/// A 2-D torus of `rows * cols` nodes: a mesh with wrap-around links in
/// every dimension of extent ≥ 3 (at extent 2 the wrap link would
/// duplicate the mesh edge, at 1 there is nothing to wrap).
///
/// Requires `rows * cols >= 2`.
pub fn torus(
    rows: usize,
    cols: usize,
    bytes_per_ms: u32,
    latency: Duration,
) -> Result<Topology, TopoBuildError> {
    if rows * cols < 2 {
        return Err(TopoBuildError::TooFewNodes {
            family: "torus",
            need: 2,
            got: rows * cols,
        });
    }
    let mut b = TopologyBuilder::new();
    let mut ids = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        ids.push(b.full_node());
    }
    let at = |r: usize, c: usize| ids[r * cols + c];
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.link(&[at(r, c), at(r, c + 1)], bytes_per_ms, latency);
            } else if cols >= 3 {
                b.link(&[at(r, c), at(r, 0)], bytes_per_ms, latency);
            }
            if r + 1 < rows {
                b.link(&[at(r, c), at(r + 1, c)], bytes_per_ms, latency);
            } else if rows >= 3 {
                b.link(&[at(r, c), at(0, c)], bytes_per_ms, latency);
            }
        }
    }
    finish(b)
}

/// The near-square factorisation used when a torus is requested by node
/// count alone: the largest divisor of `n` that is at most `sqrt(n)`,
/// paired with its cofactor (so 20 → 4×5, 1000 → 25×40; primes
/// degenerate to 1×n, i.e. a ring).
pub fn torus_dims(n: usize) -> (usize, usize) {
    let mut rows = 1;
    let mut d = 1;
    while d * d <= n {
        if n.is_multiple_of(d) {
            rows = d;
        }
        d += 1;
    }
    (rows, n / rows)
}

/// A k-ary fat-tree (Al-Fares et al.) with dual-homed hosts: `(k/2)²`
/// core switches, `k` pods of `k/2` aggregation and `k/2` edge switches,
/// and `k/2` hosts per edge switch — `k³/4 + 5k²/4` nodes for even
/// `k ≥ 2`.
///
/// Aggregation switch `j` of each pod uplinks to cores
/// `[j·k/2, (j+1)·k/2)`; every edge switch connects to every aggregation
/// switch in its pod. Hosts hang off their edge switch and — when the
/// pod has a second edge switch (`k ≥ 4`) — off the next edge switch as
/// well (MLAG-style dual-homing). With dual-homed hosts no *single*
/// node failure partitions the fabric, which is what lets campaign
/// cells gate single-fault recovery on this family; at `k = 2` hosts
/// are necessarily single-homed and every switch is a cut vertex.
/// `extra_hosts` additional hosts are attached (dual-homed the same
/// way) round-robin across edge switches so a caller can hit an exact
/// node count.
pub fn fat_tree(
    k: usize,
    extra_hosts: usize,
    bytes_per_ms: u32,
    latency: Duration,
) -> Result<Topology, TopoBuildError> {
    if k < 2 || !k.is_multiple_of(2) {
        return Err(TopoBuildError::TooFewNodes {
            family: "fat-tree",
            need: fat_tree_size(2),
            got: k,
        });
    }
    let half = k / 2;
    let mut b = TopologyBuilder::new();
    let cores: Vec<NodeId> = (0..half * half).map(|_| b.full_node()).collect();
    let mut edges: Vec<NodeId> = Vec::with_capacity(k * half);
    let home = |b: &mut TopologyBuilder, pod_edges: &[NodeId], e: usize, host: NodeId| {
        b.link(&[pod_edges[e], host], bytes_per_ms, latency);
        if pod_edges.len() >= 2 {
            b.link(
                &[pod_edges[(e + 1) % pod_edges.len()], host],
                bytes_per_ms,
                latency,
            );
        }
    };
    for _pod in 0..k {
        let aggs: Vec<NodeId> = (0..half).map(|_| b.full_node()).collect();
        let pod_edges: Vec<NodeId> = (0..half).map(|_| b.full_node()).collect();
        for (j, &agg) in aggs.iter().enumerate() {
            for c in 0..half {
                b.link(&[agg, cores[j * half + c]], bytes_per_ms, latency);
            }
            for &edge in &pod_edges {
                b.link(&[agg, edge], bytes_per_ms, latency);
            }
        }
        for e in 0..half {
            for _ in 0..half {
                let host = b.full_node();
                home(&mut b, &pod_edges, e, host);
            }
        }
        edges.extend(pod_edges);
    }
    for i in 0..extra_hosts {
        let host = b.full_node();
        let e = i % edges.len();
        let pod = e / half;
        let pod_edges = &edges[pod * half..(pod + 1) * half];
        home(&mut b, pod_edges, e % half, host);
    }
    finish(b)
}

/// Node count of a k-ary fat-tree with no extra hosts (saturating, so
/// size probes on absurd arities cannot overflow).
pub fn fat_tree_size(k: usize) -> usize {
    let half = k / 2;
    (half * half)
        .saturating_add(k.saturating_mul(half).saturating_mul(2))
        .saturating_add(k.saturating_mul(half).saturating_mul(half))
}

/// A Newman–Watts small-world graph: a base ring (which guarantees
/// connectivity) plus one second-neighbour chord per node, each chord
/// independently rewired to a uniformly random non-adjacent target with
/// probability 10% — deterministically from `seed`.
///
/// Requires `n ≥ 5` (below that every pair is already ring-adjacent and
/// there is nowhere to rewire to).
pub fn small_world(
    n: usize,
    seed: u64,
    bytes_per_ms: u32,
    latency: Duration,
) -> Result<Topology, TopoBuildError> {
    if n < 5 {
        return Err(TopoBuildError::TooFewNodes {
            family: "small-world",
            need: 5,
            got: n,
        });
    }
    const REWIRE_PPM: u64 = 100_000; // 10% of chords become shortcuts.
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = TopologyBuilder::new();
    let ids: Vec<NodeId> = (0..n).map(|_| b.full_node()).collect();
    for i in 0..n {
        b.link(&[ids[i], ids[(i + 1) % n]], bytes_per_ms, latency);
    }
    for i in 0..n {
        let mut target = (i + 2) % n;
        if rng.gen_range(0u64..1_000_000) < REWIRE_PPM {
            // Redraw until the chord is neither a self-loop nor a ring
            // edge nor the default chord (expected O(1) draws at n ≥ 5).
            loop {
                let t = rng.gen_range(0usize..n);
                let d = (n + t - i) % n;
                if d >= 2 && d != n - 1 && t != target {
                    target = t;
                    break;
                }
            }
        }
        b.link(&[ids[i], ids[target]], bytes_per_ms, latency);
    }
    finish(b)
}

/// A hierarchical SCADA plant: a control backbone ring of hub nodes
/// (PLCs/RTU concentrators), each hub anchoring a field ring of the
/// devices assigned to it round-robin.
///
/// One hub per 10 nodes (minimum 2). Hub counts of 2 and field rings of
/// ≤ 2 devices degrade to single links so no link is duplicated.
/// Requires `n ≥ 3`.
pub fn scada_star(
    n: usize,
    bytes_per_ms: u32,
    latency: Duration,
) -> Result<Topology, TopoBuildError> {
    if n < 3 {
        return Err(TopoBuildError::TooFewNodes {
            family: "scada-star",
            need: 3,
            got: n,
        });
    }
    let hubs = (n / 10).max(2).min(n - 1);
    let mut b = TopologyBuilder::new();
    let ids: Vec<NodeId> = (0..n).map(|_| b.full_node()).collect();
    // Control backbone among the first `hubs` nodes.
    if hubs == 2 {
        b.link(&[ids[0], ids[1]], bytes_per_ms, latency);
    } else {
        for h in 0..hubs {
            b.link(&[ids[h], ids[(h + 1) % hubs]], bytes_per_ms, latency);
        }
    }
    // Field devices round-robin onto hubs; each hub's devices form a
    // ring through the hub (chain for rings that would duplicate links).
    let mut field: Vec<Vec<NodeId>> = vec![Vec::new(); hubs];
    for (i, &id) in ids.iter().enumerate().skip(hubs) {
        field[(i - hubs) % hubs].push(id);
    }
    for (h, devices) in field.iter().enumerate() {
        if devices.is_empty() {
            continue;
        }
        let mut ring = vec![ids[h]];
        ring.extend(devices.iter().copied());
        if ring.len() <= 3 {
            for pair in ring.windows(2) {
                b.link(&[pair[0], pair[1]], bytes_per_ms, latency);
            }
        } else {
            for i in 0..ring.len() {
                b.link(
                    &[ring[i], ring[(i + 1) % ring.len()]],
                    bytes_per_ms,
                    latency,
                );
            }
        }
    }
    finish(b)
}

fn torus_n(p: &TopoParams) -> Result<Topology, TopoBuildError> {
    let (rows, cols) = torus_dims(p.n);
    torus(rows, cols, p.bytes_per_ms, p.latency)
}

fn fat_tree_n(p: &TopoParams) -> Result<Topology, TopoBuildError> {
    // Largest even k whose bare fat-tree fits, padded with extra hosts
    // up to exactly n.
    let mut k = 2;
    while fat_tree_size(k + 2) <= p.n {
        k += 2;
    }
    if fat_tree_size(k) > p.n {
        return Err(TopoBuildError::TooFewNodes {
            family: "fat-tree",
            need: fat_tree_size(2),
            got: p.n,
        });
    }
    fat_tree(k, p.n - fat_tree_size(k), p.bytes_per_ms, p.latency)
}

fn small_world_n(p: &TopoParams) -> Result<Topology, TopoBuildError> {
    small_world(p.n, p.seed, p.bytes_per_ms, p.latency)
}

fn scada_star_n(p: &TopoParams) -> Result<Topology, TopoBuildError> {
    scada_star(p.n, p.bytes_per_ms, p.latency)
}

/// A topology family constructor: parameters in, an exactly-`n`-node
/// platform out.
pub type TopoGenerator = fn(&TopoParams) -> Result<Topology, TopoBuildError>;

/// A named topology family.
pub type NamedTopology = (&'static str, TopoGenerator);

/// The named topology catalog.
///
/// Harness subcommands and campaign cells refer to platform families by
/// name, so the mapping must be stable and enumerable — the platform
/// counterpart of `btr_workload::generators::catalog`.
pub fn catalog() -> &'static [NamedTopology] {
    &[
        ("torus", torus_n),
        ("fat-tree", fat_tree_n),
        ("small-world", small_world_n),
        ("scada-star", scada_star_n),
    ]
}

/// Look up a catalog family by name.
pub fn by_name(name: &str) -> Option<TopoGenerator> {
    catalog().iter().find(|(n, _)| *n == name).map(|(_, g)| *g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_resolve_and_generate_exact_n() {
        for (name, gen) in catalog() {
            let via_lookup = by_name(name).expect("catalog name resolves");
            for n in [40usize, 97, 250] {
                let p = TopoParams::new(n);
                let t = gen(&p).unwrap_or_else(|e| panic!("{name}({n}): {e}"));
                assert_eq!(t.node_count(), n, "{name}({n}) node count");
                assert_eq!(
                    t,
                    via_lookup(&p).unwrap(),
                    "{name}({n}) lookup/direct mismatch"
                );
            }
        }
        assert!(by_name("no-such-family").is_none());
    }

    #[test]
    fn torus_shape_and_distances() {
        let t = torus(4, 5, 100, Duration(1)).unwrap();
        assert_eq!(t.node_count(), 20);
        // Every node has degree 4 (two per dimension).
        for n in t.nodes() {
            assert_eq!(t.neighbors(n.id).len(), 4, "node {}", n.id);
        }
        // 2 * 20 links (one per node per dimension).
        assert_eq!(t.links().len(), 40);
        // Wrap-around halves the mesh diameter: 2 + 2 instead of 3 + 4.
        assert_eq!(t.diameter(), 4);
    }

    #[test]
    fn torus_small_extents_do_not_duplicate_links() {
        // 2xC: the row wrap would duplicate the mesh edge; must not.
        let t = torus(2, 4, 100, Duration(1)).unwrap();
        for a in t.nodes() {
            for m in t.neighbors(a.id) {
                let shared = t
                    .links()
                    .iter()
                    .filter(|l| l.attaches(a.id) && l.attaches(m))
                    .count();
                assert_eq!(shared, 1, "parallel links between {} and {m}", a.id);
            }
        }
        // 1xN degenerates to a ring.
        let r = torus(1, 6, 100, Duration(1)).unwrap();
        assert_eq!(r.links().len(), 6);
        assert_eq!(r.diameter(), 3);
    }

    #[test]
    fn torus_dims_factorisation() {
        assert_eq!(torus_dims(20), (4, 5));
        assert_eq!(torus_dims(100), (10, 10));
        assert_eq!(torus_dims(400), (20, 20));
        assert_eq!(torus_dims(1000), (25, 40));
        assert_eq!(torus_dims(13), (1, 13)); // Prime: a ring.
    }

    #[test]
    fn fat_tree_shape() {
        // k=4: 4 cores, 8 agg, 8 edge, 16 hosts.
        assert_eq!(fat_tree_size(4), 36);
        let t = fat_tree(4, 0, 100, Duration(1)).unwrap();
        assert_eq!(t.node_count(), 36);
        // Hosts (degree 2: dual-homed onto both pod edge switches).
        let hosts = t
            .nodes()
            .iter()
            .filter(|n| t.neighbors(n.id).len() == 2)
            .count();
        assert_eq!(hosts, 16);
        // Any two hosts reach each other within 6 hops (host-edge-agg-
        // core-agg-edge-host).
        assert!(t.diameter() <= 6);
        // Dual-homing means no single node failure partitions the
        // fabric at k >= 4.
        for dead in t.nodes() {
            let avoid = std::collections::BTreeSet::from([dead.id]);
            for n in t.nodes() {
                if n.id == dead.id {
                    continue;
                }
                let d = t.distances_avoiding(n.id, &avoid);
                let unreachable = t
                    .nodes()
                    .iter()
                    .filter(|m| m.id != dead.id && d[m.id.index()] == u32::MAX)
                    .count();
                assert_eq!(
                    unreachable, 0,
                    "killing {} partitions from {}",
                    dead.id, n.id
                );
            }
        }
        // Extra hosts pad to an exact size.
        let padded = fat_tree(4, 5, 100, Duration(1)).unwrap();
        assert_eq!(padded.node_count(), 41);
        // Odd or tiny k rejected.
        assert!(fat_tree(3, 0, 100, Duration(1)).is_err());
        assert!(fat_tree(0, 0, 100, Duration(1)).is_err());
    }

    #[test]
    fn small_world_is_seeded_and_shortens_paths() {
        let a = small_world(64, 1, 100, Duration(1)).unwrap();
        let b = small_world(64, 1, 100, Duration(1)).unwrap();
        assert_eq!(a, b, "same seed must give the same graph");
        let c = small_world(64, 2, 100, Duration(1)).unwrap();
        assert_ne!(a, c, "different seeds should rewire differently");
        // Base ring + one chord per node.
        assert_eq!(a.links().len(), 128);
        // Chords cut the 64-ring diameter (32) roughly in half even
        // before any shortcut rewiring.
        assert!(a.diameter() <= 17, "diameter {}", a.diameter());
        assert!(small_world(4, 1, 100, Duration(1)).is_err());
    }

    #[test]
    fn scada_star_shape() {
        let t = scada_star(43, 100, Duration(1)).unwrap();
        assert_eq!(t.node_count(), 43);
        // 4 hubs: backbone ring of 4 + field rings.
        let hub_degrees: Vec<usize> = (0..4).map(|h| t.neighbors(NodeId(h)).len()).collect();
        // Each hub: 2 backbone + 2 field-ring ends.
        assert!(hub_degrees.iter().all(|&d| d == 4), "{hub_degrees:?}");
        assert!(scada_star(2, 100, Duration(1)).is_err());
    }

    #[test]
    fn families_validate_across_sizes() {
        // Sweep sizes incl. awkward ones; every build must validate (the
        // TopologyBuilder checks connectivity, link sanity, etc.).
        for n in [7usize, 16, 36, 37, 99, 100, 101, 512, 1000] {
            for (name, gen) in catalog() {
                let t = gen(&TopoParams::new(n)).unwrap_or_else(|e| panic!("{name}({n}): {e}"));
                assert_eq!(t.node_count(), n, "{name}({n})");
            }
        }
    }

    #[test]
    fn too_small_sizes_are_clean_errors() {
        for (name, gen) in catalog() {
            let err = gen(&TopoParams::new(1));
            assert!(
                matches!(err, Err(TopoBuildError::TooFewNodes { .. })),
                "{name}(1) should be TooFewNodes, got {err:?}"
            );
        }
        let e = TopoBuildError::TooFewNodes {
            family: "torus",
            need: 2,
            got: 1,
        };
        assert!(e.to_string().contains("torus"));
    }
}
