//! Schedule synthesis and schedulability analysis.
//!
//! Section 4.1 of the paper: "The planner then tries to derive a schedule
//! for each node and a resource allocation for each link. If the system
//! is not schedulable ... the planner removes some of the less critical
//! tasks and retries."
//!
//! This crate is the "derive a schedule" half: given a placement of
//! augmented tasks (replicas, checkers, verification slots) onto nodes,
//! it list-schedules the dataflow in topological order, accounting for
//! message latency between nodes on their reserved link slices, and
//! checks deadlines, period fit, and link-bandwidth budgets. The
//! criticality-shedding retry loop lives in `btr-planner`.
//!
//! It also answers the domain's favourite cost question — "the impact on
//! clock frequency is a common evaluation metric" (Section 2) — via
//! [`min_speed_pct`]: the slowest global CPU speed at which the system is
//! still schedulable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comm;

pub use comm::comm_bound;

use btr_model::{
    ATask, Duration, LinkAlloc, NodeId, NodeSchedule, ScheduleEntry, TaskId, Topology,
};
use btr_net::RoutingTable;
use btr_workload::{TaskKind, Workload};
use std::collections::BTreeMap;

/// Base wire size of one task-output envelope (header + signed output).
pub const OUTPUT_WIRE_BYTES: u32 = 200;
/// Additional wire bytes per carried witness (signed input).
pub const WITNESS_WIRE_BYTES: u32 = 120;

/// Estimated wire size of a task output carrying `fanin` witnesses.
pub fn output_wire_estimate(base: u32, fanin: usize) -> u32 {
    base + WITNESS_WIRE_BYTES * fanin as u32
}

/// Scheduling parameters.
#[derive(Debug, Clone)]
pub struct SchedParams {
    /// The system period P.
    pub period: Duration,
    /// Global CPU speed in percent of nominal (sweeps the clock-frequency
    /// metric; per-node speeds from the topology are multiplied in).
    pub speed_pct: u32,
    /// Base wire bytes per task-output message (witnesses are added per
    /// input; see [`output_wire_estimate`]).
    pub output_bytes: u32,
    /// Slack added to every message-arrival bound, covering control-plane
    /// competition on the sender's reserved slice (heartbeat bursts at
    /// period boundaries, evidence floods during recovery).
    pub comm_slack: Duration,
    /// Per-node CPU reserve for evidence verification (the paper's
    /// "verification tasks ... consume resources at runtime and must
    /// therefore be scheduled together with the workload tasks").
    pub verify_reserve: Duration,
    /// Fraction of each link share reserved for control traffic
    /// (evidence distribution and mode changes, Section 4.3).
    pub control_reserve_frac: f64,
    /// Voting schemes (BFT/ZZ baselines) read *every* lane of each input:
    /// readiness waits for the slowest lane and bandwidth is charged for
    /// all lane-to-consumer flows. BTR's lane-matched dataflow leaves
    /// this off.
    pub consume_all_lanes: bool,
}

impl Default for SchedParams {
    fn default() -> Self {
        SchedParams {
            period: Duration::from_millis(10),
            speed_pct: 100,
            output_bytes: OUTPUT_WIRE_BYTES,
            comm_slack: Duration(300),
            verify_reserve: Duration(200),
            control_reserve_frac: 0.2,
            consume_all_lanes: false,
        }
    }
}

/// Why synthesis failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    /// A lane's sink output misses its deadline.
    DeadlineMiss {
        /// The sink (or checked) task.
        task: TaskId,
        /// When it would finish.
        finish: Duration,
        /// Its deadline.
        deadline: Duration,
    },
    /// A node's schedule does not fit in the period.
    PeriodOverrun {
        /// The overloaded node.
        node: NodeId,
    },
    /// A sender's data-plane traffic exceeds its link share.
    BandwidthExceeded {
        /// The sending node.
        node: NodeId,
        /// Demanded bytes per period.
        demand: u64,
        /// Available bytes per period after the control reserve.
        capacity: u64,
    },
    /// The placement is missing a required augmented task.
    MissingPlacement(ATask),
    /// Two placed nodes have no route between them.
    NoRoute {
        /// Producer node.
        from: NodeId,
        /// Consumer node.
        to: NodeId,
    },
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::DeadlineMiss {
                task,
                finish,
                deadline,
            } => write!(f, "{task} finishes at {finish} after deadline {deadline}"),
            SchedError::PeriodOverrun { node } => write!(f, "schedule overruns period on {node}"),
            SchedError::BandwidthExceeded {
                node,
                demand,
                capacity,
            } => write!(f, "{node} needs {demand} B/period, share is {capacity}"),
            SchedError::MissingPlacement(a) => write!(f, "no placement for {a}"),
            SchedError::NoRoute { from, to } => write!(f, "no route {from} -> {to}"),
        }
    }
}

impl std::error::Error for SchedError {}

/// The synthesised distributed schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Synthesis {
    /// Per-node cyclic schedules.
    pub schedules: BTreeMap<NodeId, NodeSchedule>,
    /// Per-link bandwidth shares actually used (plus control reserve).
    pub link_alloc: Vec<LinkAlloc>,
    /// Completion offset of the latest task in the period.
    pub makespan: Duration,
    /// Finish offset of each task's primary lane (for deadline reports).
    pub primary_finish: BTreeMap<TaskId, Duration>,
}

/// Which upstream replica a consumer lane reads.
///
/// Replica lanes are "vertical": lane `r` of a task consumes lane
/// `min(r, producer_lanes - 1)` of each input. Lane 0 is the primary
/// pipeline that feeds sinks; checkers read *all* lanes of their task.
pub fn input_lane(consumer_replica: u8, producer_lanes: u8) -> u8 {
    consumer_replica.min(producer_lanes.saturating_sub(1))
}

/// WCET budget for a checking task over `lanes` replica outputs.
pub fn check_wcet(lanes: u8) -> Duration {
    Duration(20 + 10 * lanes as u64)
}

/// Synthesise schedules for a placement.
///
/// `lanes[task]` is the replica count for each *unshed* workload task;
/// shed tasks simply do not appear. `placement` must contain a node for
/// every `ATask::Work { task, replica < lanes[task] }`, for every
/// `ATask::Check { task }` with `lanes[task] >= 2`, and may contain
/// `ATask::Verify` entries for per-node reserves.
pub fn synthesize(
    workload: &Workload,
    topo: &Topology,
    routing: &RoutingTable,
    placement: &BTreeMap<ATask, NodeId>,
    lanes: &BTreeMap<TaskId, u8>,
    params: &SchedParams,
) -> Result<Synthesis, SchedError> {
    let mut node_avail: BTreeMap<NodeId, Duration> = BTreeMap::new();
    let mut entries: BTreeMap<NodeId, Vec<ScheduleEntry>> = BTreeMap::new();
    let mut finish: BTreeMap<ATask, Duration> = BTreeMap::new();
    let mut link_demand: BTreeMap<(NodeId, u32), u64> = BTreeMap::new(); // (sender, link) -> bytes.
    let mut primary_finish: BTreeMap<TaskId, Duration> = BTreeMap::new();

    let scale = |wcet: Duration, node: NodeId| -> Duration {
        let node_speed = topo.node(node).speed_pct.max(1) as u64;
        let eff = node_speed * params.speed_pct.max(1) as u64 / 100;
        Duration((wcet.0 * 100).div_ceil(eff.max(1)))
    };

    let place = |atask: ATask,
                 node: NodeId,
                 ready: Duration,
                 wcet: Duration,
                 node_avail: &mut BTreeMap<NodeId, Duration>,
                 entries: &mut BTreeMap<NodeId, Vec<ScheduleEntry>>|
     -> Duration {
        let avail = node_avail.get(&node).copied().unwrap_or(Duration::ZERO);
        let start = ready.max(avail);
        let end = start + wcet;
        node_avail.insert(node, end);
        entries
            .entry(node)
            .or_default()
            .push(ScheduleEntry { atask, start, wcet });
        end
    };

    // Account one flow's bytes along its route.
    let charge_route = |from: NodeId,
                        to: NodeId,
                        bytes: u32,
                        link_demand: &mut BTreeMap<(NodeId, u32), u64>|
     -> Result<(), SchedError> {
        if from == to {
            return Ok(());
        }
        let path = routing
            .path(from, to)
            .ok_or(SchedError::NoRoute { from, to })?;
        for hop in path.windows(2) {
            let link = topo
                .link_between(hop[0], hop[1])
                .expect("routing uses existing links");
            *link_demand.entry((hop[0], link.0)).or_insert(0) += bytes as u64;
        }
        Ok(())
    };

    // Schedule workload tasks in topological order; within a task,
    // replicas ascending, then the checker.
    for &tid in workload.topo_order() {
        let Some(&n_lanes) = lanes.get(&tid) else {
            continue; // Shed task.
        };
        let spec = workload.task(tid);
        for r in 0..n_lanes {
            let atask = ATask::Work {
                task: tid,
                replica: r,
            };
            let node = *placement
                .get(&atask)
                .ok_or(SchedError::MissingPlacement(atask))?;
            // Ready when the needed input lanes' outputs have arrived
            // here: the matched lane for BTR, every lane for voting
            // baselines.
            let mut ready = Duration::ZERO;
            for &input in &spec.inputs {
                let Some(&in_lanes) = lanes.get(&input) else {
                    continue; // Input shed: task runs degraded (no data).
                };
                let needed: Vec<u8> = if params.consume_all_lanes {
                    (0..in_lanes).collect()
                } else {
                    vec![input_lane(r, in_lanes)]
                };
                for lane in needed {
                    let in_atask = ATask::Work {
                        task: input,
                        replica: lane,
                    };
                    let in_node = *placement
                        .get(&in_atask)
                        .ok_or(SchedError::MissingPlacement(in_atask))?;
                    let f = finish.get(&in_atask).copied().unwrap_or(Duration::ZERO);
                    // The producer's message carries one witness per input
                    // of the *producer* task.
                    let bytes = output_wire_estimate(
                        params.output_bytes,
                        workload.task(input).inputs.len(),
                    );
                    let hop = comm_bound(topo, routing, in_node, node, bytes).ok_or(
                        SchedError::NoRoute {
                            from: in_node,
                            to: node,
                        },
                    )?;
                    let arrive = f + if in_node == node {
                        Duration::ZERO
                    } else {
                        hop + params.comm_slack
                    };
                    ready = ready.max(arrive);
                    charge_route(in_node, node, bytes, &mut link_demand)?;
                }
            }
            let wcet = scale(spec.wcet, node);
            let end = place(atask, node, ready, wcet, &mut node_avail, &mut entries);
            finish.insert(atask, end);
            if r == 0 {
                primary_finish.insert(tid, end);
            }
        }
        // Checking task (only for replicated tasks).
        if n_lanes >= 2 {
            let chk = ATask::Check { task: tid };
            let node = *placement
                .get(&chk)
                .ok_or(SchedError::MissingPlacement(chk))?;
            let mut ready = Duration::ZERO;
            let bytes = output_wire_estimate(params.output_bytes, spec.inputs.len());
            for r in 0..n_lanes {
                let in_atask = ATask::Work {
                    task: tid,
                    replica: r,
                };
                let in_node = placement[&in_atask];
                let f = finish[&in_atask];
                let hop =
                    comm_bound(topo, routing, in_node, node, bytes).ok_or(SchedError::NoRoute {
                        from: in_node,
                        to: node,
                    })?;
                let arrive = f + if in_node == node {
                    Duration::ZERO
                } else {
                    hop + params.comm_slack
                };
                ready = ready.max(arrive);
                charge_route(in_node, node, bytes, &mut link_demand)?;
            }
            let wcet = scale(check_wcet(n_lanes), node);
            let end = place(chk, node, ready, wcet, &mut node_avail, &mut entries);
            finish.insert(chk, end);
        }
    }

    // Deadline checks on the primary lane of every scheduled task.
    for (&tid, &f) in &primary_finish {
        let spec = workload.task(tid);
        // For sinks the finish time includes delivering to the actuator
        // (the sink task runs *on* the actuating node).
        if f > spec.deadline {
            return Err(SchedError::DeadlineMiss {
                task: tid,
                finish: f,
                deadline: spec.deadline,
            });
        }
    }

    // Verification reserves: appended after the data-plane slots.
    for (&atask, &node) in placement.iter() {
        if let ATask::Verify { .. } = atask {
            let wcet = scale(params.verify_reserve, node);
            place(
                atask,
                node,
                Duration::ZERO,
                wcet,
                &mut node_avail,
                &mut entries,
            );
        }
    }

    // Period fit.
    let mut makespan = Duration::ZERO;
    for (&node, avail) in &node_avail {
        if *avail > params.period {
            return Err(SchedError::PeriodOverrun { node });
        }
        makespan = makespan.max(*avail);
    }

    // Link bandwidth: each sender's demand must fit its share minus the
    // control reserve.
    let mut link_alloc: Vec<LinkAlloc> = Vec::new();
    for link in topo.links() {
        let slice_rate = (link.bytes_per_ms as u64 / link.endpoints.len() as u64).max(1);
        let share = slice_rate * params.period.as_micros() / 1_000;
        let control = (share as f64 * params.control_reserve_frac) as u64;
        let capacity = share.saturating_sub(control);
        let mut shares = BTreeMap::new();
        for &node in &link.endpoints {
            let demand = link_demand.get(&(node, link.id.0)).copied().unwrap_or(0);
            if demand > capacity {
                return Err(SchedError::BandwidthExceeded {
                    node,
                    demand,
                    capacity,
                });
            }
            shares.insert(node, demand);
        }
        link_alloc.push(LinkAlloc {
            link: link.id,
            shares,
            control_reserve: control,
        });
    }

    // Sort and wrap schedules.
    let schedules = entries
        .into_iter()
        .map(|(node, mut es)| {
            es.sort_by_key(|e| (e.start, e.atask));
            (node, NodeSchedule { entries: es })
        })
        .collect();

    Ok(Synthesis {
        schedules,
        link_alloc,
        makespan,
        primary_finish,
    })
}

/// The minimum global CPU speed (percent of nominal) at which `try_synth`
/// succeeds, found by binary search over 1..=1600. Returns `None` if even
/// 1600% fails.
pub fn min_speed_pct(mut try_synth: impl FnMut(u32) -> bool) -> Option<u32> {
    if !try_synth(1600) {
        return None;
    }
    let (mut lo, mut hi) = (1u32, 1600u32);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if try_synth(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(lo)
}

/// Trivial placement used by tests and baselines: pin sources/sinks,
/// round-robin everything else over non-faulty nodes, lane `r` offset by
/// `r` so replicas land on distinct nodes.
pub fn round_robin_placement(
    workload: &Workload,
    topo: &Topology,
    lanes: &BTreeMap<TaskId, u8>,
    faulty: &[NodeId],
) -> BTreeMap<ATask, NodeId> {
    let healthy: Vec<NodeId> = topo
        .nodes()
        .iter()
        .map(|n| n.id)
        .filter(|n| !faulty.contains(n))
        .collect();
    assert!(!healthy.is_empty(), "no healthy nodes");
    let mut placement = BTreeMap::new();
    let mut cursor = 0usize;
    for spec in workload.tasks() {
        let Some(&n_lanes) = lanes.get(&spec.id) else {
            continue;
        };
        for r in 0..n_lanes {
            let node = match spec.kind {
                TaskKind::Source { pinned } | TaskKind::Sink { pinned } if r == 0 => {
                    // Pinned copies stay put even if the pin is faulty —
                    // callers exclude pinned-faulty tasks beforehand.
                    pinned
                }
                _ => healthy[(cursor + r as usize) % healthy.len()],
            };
            placement.insert(
                ATask::Work {
                    task: spec.id,
                    replica: r,
                },
                node,
            );
        }
        if n_lanes >= 2 {
            let node = healthy[(cursor + n_lanes as usize) % healthy.len()];
            placement.insert(ATask::Check { task: spec.id }, node);
        }
        cursor += 1;
    }
    for &node in &healthy {
        placement.insert(ATask::Verify { node }, node);
    }
    placement
}

#[cfg(test)]
mod tests {
    use super::*;
    use btr_model::Criticality;
    use btr_workload::WorkloadBuilder;

    fn ms(x: u64) -> Duration {
        Duration::from_millis(x)
    }

    /// source(n0) -> ctl -> sink(n1), single lane.
    fn chain() -> Workload {
        let mut b = WorkloadBuilder::new(ms(10), 1);
        let s = b.source("s", NodeId(0), Duration(200), Criticality::Safety, ms(10));
        let c = b.compute("c", &[s], Duration(400), Criticality::Safety, ms(10), 0);
        b.sink(
            "k",
            NodeId(1),
            &[c],
            Duration(100),
            Criticality::Safety,
            ms(5),
        );
        b.build().unwrap()
    }

    fn single_lanes(w: &Workload) -> BTreeMap<TaskId, u8> {
        w.tasks().iter().map(|t| (t.id, 1)).collect()
    }

    #[test]
    fn schedules_simple_chain() {
        let w = chain();
        let topo = Topology::bus(2, 10_000, Duration(10));
        let routing = RoutingTable::new(&topo);
        let lanes = single_lanes(&w);
        let placement = round_robin_placement(&w, &topo, &lanes, &[]);
        let synth = synthesize(
            &w,
            &topo,
            &routing,
            &placement,
            &lanes,
            &SchedParams::default(),
        )
        .expect("chain is schedulable");
        // Primary lane of the sink finished before its 5 ms deadline.
        assert!(synth.primary_finish[&TaskId(2)] <= ms(5));
        assert!(synth.makespan <= ms(10));
        // Schedules validate as plan schedules.
        for (node, sched) in &synth.schedules {
            sched.validate(*node, ms(10)).expect("valid schedule");
        }
    }

    #[test]
    fn deadline_miss_detected_at_low_speed() {
        let w = chain();
        let topo = Topology::bus(2, 10_000, Duration(10));
        let routing = RoutingTable::new(&topo);
        let lanes = single_lanes(&w);
        let placement = round_robin_placement(&w, &topo, &lanes, &[]);
        let params = SchedParams {
            speed_pct: 10, // 10x slower: 200+400+100 -> 7000 µs > 5 ms deadline.
            ..SchedParams::default()
        };
        let err = synthesize(&w, &topo, &routing, &placement, &lanes, &params).unwrap_err();
        assert!(matches!(err, SchedError::DeadlineMiss { .. }), "{err:?}");
    }

    #[test]
    fn replicated_lanes_schedule_and_check() {
        let w = chain();
        let topo = Topology::bus(4, 10_000, Duration(10));
        let routing = RoutingTable::new(&topo);
        let mut lanes = BTreeMap::new();
        lanes.insert(TaskId(0), 2u8);
        lanes.insert(TaskId(1), 2u8);
        lanes.insert(TaskId(2), 1u8); // Sink single.
        let placement = round_robin_placement(&w, &topo, &lanes, &[]);
        let synth = synthesize(
            &w,
            &topo,
            &routing,
            &placement,
            &lanes,
            &SchedParams::default(),
        )
        .expect("replicated chain schedulable");
        // Checkers are scheduled for both replicated tasks.
        let has_chk = |t: u32| {
            synth
                .schedules
                .values()
                .any(|s| s.slot(ATask::Check { task: TaskId(t) }).is_some())
        };
        assert!(has_chk(0));
        assert!(has_chk(1));
        assert!(!has_chk(2));
    }

    #[test]
    fn bandwidth_exceeded_on_tiny_link() {
        let w = chain();
        // 2-node bus with 2 B/ms: share = 1 B/ms = 10 bytes/period.
        let topo = Topology::bus(2, 2, Duration(10));
        let routing = RoutingTable::new(&topo);
        let lanes = single_lanes(&w);
        let placement = round_robin_placement(&w, &topo, &lanes, &[]);
        // Even one 150-byte output exceeds the 8-byte post-reserve share,
        // but with a tiny link the comm bound alone blows the deadline
        // first; accept either error.
        let err = synthesize(
            &w,
            &topo,
            &routing,
            &placement,
            &lanes,
            &SchedParams::default(),
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                SchedError::BandwidthExceeded { .. } | SchedError::DeadlineMiss { .. }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn shed_tasks_are_skipped() {
        let w = chain();
        let topo = Topology::bus(2, 10_000, Duration(10));
        let routing = RoutingTable::new(&topo);
        // Shed everything but the source: only the source is scheduled...
        // but the source has consumers, so shed the consumer chain fully.
        let mut lanes = BTreeMap::new();
        lanes.insert(TaskId(0), 1u8);
        let placement = round_robin_placement(&w, &topo, &lanes, &[]);
        let synth = synthesize(
            &w,
            &topo,
            &routing,
            &placement,
            &lanes,
            &SchedParams::default(),
        )
        .unwrap();
        let slots: usize = synth.schedules.values().map(|s| s.entries.len()).sum();
        // Source + 2 verify slots.
        assert_eq!(slots, 3);
    }

    #[test]
    fn min_speed_search_is_tight() {
        let w = chain();
        let topo = Topology::bus(2, 10_000, Duration(10));
        let routing = RoutingTable::new(&topo);
        let lanes = single_lanes(&w);
        let placement = round_robin_placement(&w, &topo, &lanes, &[]);
        let try_at = |pct: u32| {
            let params = SchedParams {
                speed_pct: pct,
                ..SchedParams::default()
            };
            synthesize(&w, &topo, &routing, &placement, &lanes, &params).is_ok()
        };
        let min = min_speed_pct(try_at).expect("schedulable at some speed");
        assert!(try_at(min));
        assert!(min == 1 || !try_at(min - 1), "min {min} not tight");
    }

    #[test]
    fn missing_placement_reported() {
        let w = chain();
        let topo = Topology::bus(2, 10_000, Duration(10));
        let routing = RoutingTable::new(&topo);
        let lanes = single_lanes(&w);
        let placement = BTreeMap::new();
        let err = synthesize(
            &w,
            &topo,
            &routing,
            &placement,
            &lanes,
            &SchedParams::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SchedError::MissingPlacement(_)));
    }

    #[test]
    fn input_lane_mapping() {
        assert_eq!(input_lane(0, 3), 0);
        assert_eq!(input_lane(2, 3), 2);
        assert_eq!(input_lane(2, 1), 0); // Fewer producer lanes: clamp.
        assert_eq!(input_lane(1, 0), 0); // Degenerate.
    }

    #[test]
    fn avionics_is_schedulable_on_nine_nodes() {
        let w = btr_workload::generators::avionics(9);
        let topo = Topology::bus(9, 50_000, Duration(10));
        let routing = RoutingTable::new(&topo);
        let lanes = single_lanes(&w);
        let placement = round_robin_placement(&w, &topo, &lanes, &[]);
        let synth = synthesize(
            &w,
            &topo,
            &routing,
            &placement,
            &lanes,
            &SchedParams::default(),
        );
        assert!(synth.is_ok(), "{synth:?}");
    }
}
