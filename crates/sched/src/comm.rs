//! Worst-case communication bounds between placed tasks.
//!
//! The planner and scheduler need an upper bound on how long a message of
//! a given size takes between two nodes. With reserved per-sender slices
//! and static routes this is a closed form: per hop, serialisation at the
//! slice rate plus propagation latency. This is the same arithmetic the
//! simulator's `Nic` performs, so the bound is exact when the sender's
//! slice is idle and conservative otherwise.

use btr_model::{Duration, NodeId, Topology};
use btr_net::RoutingTable;

/// Upper bound on delivering `bytes` from `src` to `dst`.
///
/// Returns `Duration::ZERO` for `src == dst` and `None` when no route
/// exists (e.g. the fault pattern cut the network).
pub fn comm_bound(
    topo: &Topology,
    routing: &RoutingTable,
    src: NodeId,
    dst: NodeId,
    bytes: u32,
) -> Option<Duration> {
    if src == dst {
        return Some(Duration::ZERO);
    }
    let path = routing.path(src, dst)?;
    let mut total = Duration::ZERO;
    for hop in path.windows(2) {
        let link_id = topo.link_between(hop[0], hop[1])?;
        let link = topo.link(link_id);
        let slice_rate = (link.bytes_per_ms as u64 / link.endpoints.len() as u64).max(1);
        let tx = (bytes as u64 * 1_000).div_ceil(slice_rate).max(1);
        total += Duration(tx) + link.latency;
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_for_local() {
        let t = Topology::bus(3, 1_000, Duration(10));
        let r = RoutingTable::new(&t);
        assert_eq!(
            comm_bound(&t, &r, NodeId(1), NodeId(1), 500),
            Some(Duration::ZERO)
        );
    }

    #[test]
    fn single_hop_bus() {
        // 3 nodes on a 3000 B/ms bus: slice = 1000 B/ms = 1 B/µs.
        let t = Topology::bus(3, 3_000, Duration(10));
        let r = RoutingTable::new(&t);
        // 100 bytes -> 100 µs + 10 µs latency.
        assert_eq!(
            comm_bound(&t, &r, NodeId(0), NodeId(2), 100),
            Some(Duration(110))
        );
    }

    #[test]
    fn multi_hop_accumulates() {
        let t = Topology::ring(4, 2_000, Duration(5));
        let r = RoutingTable::new(&t);
        // Each p2p link: slice = 1000 B/ms; 2 hops for opposite corners.
        let one = comm_bound(&t, &r, NodeId(0), NodeId(1), 100).unwrap();
        let two = comm_bound(&t, &r, NodeId(0), NodeId(2), 100).unwrap();
        assert_eq!(two, Duration(one.0 * 2));
    }

    #[test]
    fn matches_simulator_nic_timing() {
        use btr_model::Time;
        use btr_net::Nic;
        use std::collections::BTreeMap;
        let t = Topology::bus(4, 4_000, Duration(50));
        let r = RoutingTable::new(&t);
        let bound = comm_bound(&t, &r, NodeId(0), NodeId(3), 128).unwrap();
        let mut nic = Nic::new(
            t.link(t.links()[0].id).clone(),
            Duration::from_millis(10),
            &BTreeMap::new(),
        );
        let measured = nic.send(Time(0), NodeId(0), 128).unwrap();
        assert_eq!(Time(bound.0), measured);
    }
}
