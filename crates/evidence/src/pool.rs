//! The evidence pool: admission, validation, blame, and blacklisting.

use btr_crypto::KeyStore;
use btr_model::evidence::{EvidenceFlaw, WorkloadView};
use btr_model::{EvidenceClass, EvidenceId, EvidenceRecord, NodeId, PeriodIdx};
use std::collections::{BTreeMap, BTreeSet};

/// Pool configuration.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Max records admitted to full verification per sender per period
    /// (models the bounded `Verify` CPU slot).
    pub per_sender_budget: u32,
    /// Bogus records before a sender is blacklisted.
    pub blacklist_threshold: u32,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            per_sender_budget: 64,
            blacklist_threshold: 8,
        }
    }
}

/// Outcome of offering a record to the pool.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmitOutcome {
    /// Newly verified: act on it (update fault set) and forward it.
    Verified {
        /// Proofs convict this node directly.
        convicts: Option<NodeId>,
        /// The record's class.
        class: EvidenceClass,
    },
    /// Already known; do nothing.
    Duplicate,
    /// Invalid; counted against the sender.
    Rejected(EvidenceFlaw),
    /// Sender exceeded its admission budget this period.
    RateLimited,
    /// Sender is blacklisted for repeated bogus evidence.
    Blacklisted,
}

/// Per-node store of validated evidence.
pub struct EvidencePool {
    cfg: PoolConfig,
    verified: BTreeMap<EvidenceId, EvidenceRecord>,
    rejected_ids: BTreeSet<EvidenceId>,
    bogus_by: BTreeMap<NodeId, u32>,
    blacklist: BTreeSet<NodeId>,
    used_budget: BTreeMap<NodeId, (PeriodIdx, u32)>,
    convicted: BTreeSet<NodeId>,
}

impl EvidencePool {
    /// Create a pool.
    pub fn new(cfg: PoolConfig) -> Self {
        EvidencePool {
            cfg,
            verified: BTreeMap::new(),
            rejected_ids: BTreeSet::new(),
            bogus_by: BTreeMap::new(),
            blacklist: BTreeSet::new(),
            used_budget: BTreeMap::new(),
            convicted: BTreeSet::new(),
        }
    }

    /// Offer a record received from `sender` during `period`.
    ///
    /// Validation order is cheap-first, per the paper's DoS concern:
    /// blacklist check, duplicate check, budget check, then signature
    /// and (for proofs) re-execution.
    pub fn admit(
        &mut self,
        ks: &KeyStore,
        view: &dyn WorkloadView,
        sender: NodeId,
        record: &EvidenceRecord,
        period: PeriodIdx,
    ) -> AdmitOutcome {
        if self.blacklist.contains(&sender) {
            return AdmitOutcome::Blacklisted;
        }
        let id = record.id();
        if self.verified.contains_key(&id) || self.rejected_ids.contains(&id) {
            return AdmitOutcome::Duplicate;
        }
        // Budget: full verification is bounded per sender per period.
        let entry = self.used_budget.entry(sender).or_insert((period, 0));
        if entry.0 != period {
            *entry = (period, 0);
        }
        if entry.1 >= self.cfg.per_sender_budget {
            return AdmitOutcome::RateLimited;
        }
        entry.1 += 1;

        match record.verify(ks, view) {
            Ok(()) => {
                if let Some(n) = record.convicts() {
                    self.convicted.insert(n);
                }
                self.verified.insert(id, record.clone());
                AdmitOutcome::Verified {
                    convicts: record.convicts(),
                    class: record.class(),
                }
            }
            Err(flaw) => {
                self.rejected_ids.insert(id);
                let count = self.bogus_by.entry(sender).or_insert(0);
                *count += 1;
                if *count >= self.cfg.blacklist_threshold {
                    self.blacklist.insert(sender);
                }
                AdmitOutcome::Rejected(flaw)
            }
        }
    }

    /// All verified records.
    pub fn verified(&self) -> impl Iterator<Item = &EvidenceRecord> {
        self.verified.values()
    }

    /// A verified record by id.
    pub fn get(&self, id: EvidenceId) -> Option<&EvidenceRecord> {
        self.verified.get(&id)
    }

    /// Nodes convicted by verified proofs.
    pub fn convicted(&self) -> &BTreeSet<NodeId> {
        &self.convicted
    }

    /// Senders currently blacklisted for bogus evidence.
    pub fn blacklisted(&self) -> &BTreeSet<NodeId> {
        &self.blacklist
    }

    /// Bogus-record count per sender (diagnostics / E8).
    pub fn bogus_count(&self, sender: NodeId) -> u32 {
        self.bogus_by.get(&sender).copied().unwrap_or(0)
    }

    /// Number of verified records.
    pub fn len(&self) -> usize {
        self.verified.len()
    }

    /// True if no record has been verified.
    pub fn is_empty(&self) -> bool {
        self.verified.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btr_crypto::{NodeKey, Signer};
    use btr_model::{inputs_digest, sensor_value, SignedOutput, TaskId};

    struct View;
    impl WorkloadView for View {
        fn inputs_of_task(&self, task: TaskId) -> Option<Vec<TaskId>> {
            (task.0 < 3).then(Vec::new)
        }
        fn task_is_source(&self, _task: TaskId) -> bool {
            true
        }
        fn workload_seed(&self) -> u64 {
            5
        }
    }

    fn signer(i: u32) -> Signer {
        Signer::new(NodeKey::derive(41, i))
    }
    fn ks() -> KeyStore {
        KeyStore::derive(41, 8)
    }

    /// A valid bad-computation proof: source 2 lies about its reading.
    fn valid_proof(p: PeriodIdx) -> EvidenceRecord {
        let honest = sensor_value(TaskId(2), p, 5);
        let out = SignedOutput::sign(
            &signer(2),
            TaskId(2),
            0,
            p,
            honest ^ 1,
            inputs_digest(&[]),
            NodeId(2),
        );
        EvidenceRecord::BadComputation {
            accused: NodeId(2),
            output: out,
            inputs: vec![],
        }
    }

    /// Bogus: accusation against an honest reading.
    fn bogus(p: PeriodIdx) -> EvidenceRecord {
        let honest = sensor_value(TaskId(2), p, 5);
        let out = SignedOutput::sign(
            &signer(2),
            TaskId(2),
            0,
            p,
            honest,
            inputs_digest(&[]),
            NodeId(2),
        );
        EvidenceRecord::BadComputation {
            accused: NodeId(2),
            output: out,
            inputs: vec![],
        }
    }

    #[test]
    fn verify_then_duplicate() {
        let mut pool = EvidencePool::new(PoolConfig::default());
        let r = valid_proof(1);
        let out = pool.admit(&ks(), &View, NodeId(1), &r, 0);
        assert!(matches!(
            out,
            AdmitOutcome::Verified {
                convicts: Some(n),
                ..
            } if n == NodeId(2)
        ));
        assert_eq!(
            pool.admit(&ks(), &View, NodeId(3), &r, 0),
            AdmitOutcome::Duplicate
        );
        assert!(pool.convicted().contains(&NodeId(2)));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn bogus_leads_to_blacklist() {
        let mut pool = EvidencePool::new(PoolConfig {
            per_sender_budget: 100,
            blacklist_threshold: 3,
        });
        for p in 0..3 {
            let out = pool.admit(&ks(), &View, NodeId(6), &bogus(p), 0);
            assert!(matches!(out, AdmitOutcome::Rejected(_)), "{out:?}");
        }
        assert!(pool.blacklisted().contains(&NodeId(6)));
        assert_eq!(pool.bogus_count(NodeId(6)), 3);
        // Further records from the blacklisted sender are ignored — even
        // valid ones.
        assert_eq!(
            pool.admit(&ks(), &View, NodeId(6), &valid_proof(9), 0),
            AdmitOutcome::Blacklisted
        );
        // But the same record from an honest sender still lands.
        assert!(matches!(
            pool.admit(&ks(), &View, NodeId(1), &valid_proof(9), 0),
            AdmitOutcome::Verified { .. }
        ));
    }

    #[test]
    fn rate_limit_per_period_resets() {
        let mut pool = EvidencePool::new(PoolConfig {
            per_sender_budget: 2,
            blacklist_threshold: 100,
        });
        assert!(matches!(
            pool.admit(&ks(), &View, NodeId(1), &valid_proof(0), 7),
            AdmitOutcome::Verified { .. }
        ));
        assert!(matches!(
            pool.admit(&ks(), &View, NodeId(1), &valid_proof(1), 7),
            AdmitOutcome::Verified { .. }
        ));
        assert_eq!(
            pool.admit(&ks(), &View, NodeId(1), &valid_proof(2), 7),
            AdmitOutcome::RateLimited
        );
        // Next period: budget refreshed.
        assert!(matches!(
            pool.admit(&ks(), &View, NodeId(1), &valid_proof(2), 8),
            AdmitOutcome::Verified { .. }
        ));
    }

    #[test]
    fn rejected_records_become_cheap_duplicates() {
        let mut pool = EvidencePool::new(PoolConfig::default());
        let b = bogus(1);
        assert!(matches!(
            pool.admit(&ks(), &View, NodeId(1), &b, 0),
            AdmitOutcome::Rejected(_)
        ));
        // Same bogus record again (any sender): constant-time duplicate.
        assert_eq!(
            pool.admit(&ks(), &View, NodeId(2), &b, 0),
            AdmitOutcome::Duplicate
        );
        assert!(pool.is_empty());
    }

    #[test]
    fn declarations_verify_without_convicting() {
        let mut pool = EvidencePool::new(PoolConfig::default());
        let d = EvidenceRecord::declare_crash(&signer(4), NodeId(4), NodeId(5), 3);
        let out = pool.admit(&ks(), &View, NodeId(4), &d, 0);
        assert_eq!(
            out,
            AdmitOutcome::Verified {
                convicts: None,
                class: EvidenceClass::Declaration
            }
        );
        assert!(pool.convicted().is_empty());
    }
}
