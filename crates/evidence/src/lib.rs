//! Evidence validation and distribution (Section 4.3 of the paper).
//!
//! "Once a node has detected a fault, the resulting evidence must quickly
//! be distributed to any other nodes that need to be aware of it. The
//! distribution process must a) compete for resources with the foreground
//! tasks, b) be completed within bounded time, and c) prevent the
//! adversary from causing delays via DoS, e.g., by flooding the system
//! with bogus evidence."
//!
//! The design follows the paper's sketch directly:
//!
//! * Bandwidth and CPU for evidence handling are *reserved* (the link
//!   control reserve and the per-node `Verify` schedule slot), so
//!   distribution competes with, but cannot be starved by, the data
//!   plane.
//! * Every node **validates before it endorses**: only records that
//!   verify locally are forwarded ("having each node validate incoming
//!   evidence before distributing it further").
//! * Invalid records are *charged to their sender*: cheap signature
//!   checks run first, a per-sender admission budget bounds verification
//!   CPU, and senders exceeding a bogus-record threshold are blacklisted
//!   ("invalid evidence can be counted as evidence against the signer").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;

pub use pool::{AdmitOutcome, EvidencePool, PoolConfig};

use btr_model::{EvidenceId, NodeId, PeriodIdx, ReplicaIdx, TaskId};
use std::collections::BTreeSet;

/// Flooding dedup: decides, per evidence record, whether this node still
/// needs to forward it (endorse-once semantics), and per received output,
/// whether it still needs to be echoed to its task's checker.
///
/// The echo channel exists for equivocation detection: conflicting signed
/// outputs are only a *proof* once two copies meet at one node, and an
/// equivocator whose tasks each have a single consumer can keep the
/// copies apart forever. Consumers therefore echo the first copy they
/// accept to the task's checker, making the checker the designated
/// meeting point (one extra message per consumed flow per period).
#[derive(Debug, Default)]
pub struct Disseminator {
    forwarded: BTreeSet<EvidenceId>,
    echoed: BTreeSet<(TaskId, ReplicaIdx, PeriodIdx)>,
}

impl Disseminator {
    /// Create an empty disseminator.
    pub fn new() -> Self {
        Self::default()
    }

    /// True exactly once per record id: the caller should forward the
    /// record to its flooding targets and will get `false` afterwards.
    pub fn should_forward(&mut self, id: EvidenceId) -> bool {
        self.forwarded.insert(id)
    }

    /// Flooding targets: every healthy peer except the node itself and
    /// the peer the record arrived from (it already has it).
    pub fn targets(
        &self,
        node: NodeId,
        all_nodes: usize,
        from: Option<NodeId>,
        known_faulty: &BTreeSet<NodeId>,
    ) -> Vec<NodeId> {
        (0..all_nodes as u32)
            .map(NodeId)
            .filter(|&n| n != node && Some(n) != from && !known_faulty.contains(&n))
            .collect()
    }

    /// True exactly once per (task, replica, period): the caller should
    /// echo the accepted output to the task's checker.
    pub fn should_echo(&mut self, task: TaskId, replica: ReplicaIdx, period: PeriodIdx) -> bool {
        self.echoed.insert((task, replica, period))
    }

    /// Drop echo bookkeeping older than `before` periods (bounded memory;
    /// the checker's own pool dedups any re-echo after GC).
    pub fn gc_echoes(&mut self, before: PeriodIdx) {
        self.echoed.retain(|&(_, _, p)| p >= before);
    }

    /// Number of records forwarded so far.
    pub fn forwarded_count(&self) -> usize {
        self.forwarded.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_exactly_once() {
        let mut d = Disseminator::new();
        let id = EvidenceId(7);
        assert!(d.should_forward(id));
        assert!(!d.should_forward(id));
        assert!(d.should_forward(EvidenceId(8)));
        assert_eq!(d.forwarded_count(), 2);
    }

    #[test]
    fn echo_exactly_once_per_slot_until_gc() {
        let mut d = Disseminator::new();
        use btr_model::TaskId;
        assert!(d.should_echo(TaskId(1), 0, 5));
        assert!(!d.should_echo(TaskId(1), 0, 5));
        assert!(d.should_echo(TaskId(1), 1, 5));
        assert!(d.should_echo(TaskId(2), 0, 5));
        d.gc_echoes(6);
        // After GC the slot may echo again (bounded memory beats perfect
        // dedup; the checker's pool dedups the duplicate).
        assert!(d.should_echo(TaskId(1), 0, 5));
    }

    #[test]
    fn targets_exclude_self_source_and_faulty() {
        let d = Disseminator::new();
        let faulty = BTreeSet::from([NodeId(3)]);
        let t = d.targets(NodeId(0), 5, Some(NodeId(1)), &faulty);
        assert_eq!(t, vec![NodeId(2), NodeId(4)]);
        // Locally generated evidence (no source) goes to everyone else.
        let t = d.targets(NodeId(0), 4, None, &BTreeSet::new());
        assert_eq!(t, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }
}
