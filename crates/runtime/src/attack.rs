//! Scripted Byzantine behaviours.
//!
//! The threat model (Section 2.1): "there is an adversary who has
//! compromised some subset of the nodes and has complete control over
//! them". A compromised node in our simulation runs the *same* BTR stack
//! but with an [`Attack`] script spliced into its output, heartbeat, and
//! control paths — it keeps its signing key (the adversary controls the
//! node, not the keys of others) and stays bound by the link guardians
//! (the MAC is hardware).

use btr_model::{Duration, TaskId, Time};
use std::collections::BTreeSet;

/// A scripted compromise, active from a start time onward.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Attack {
    /// Send wrong values (commission). If `garble_commitment` is set the
    /// attacker also lies about its input commitment — which evades
    /// re-execution proofs but is convicted by `BadWitness` instead.
    Commission {
        /// Activation time.
        from: Time,
        /// Only these tasks are corrupted (None = all hosted tasks).
        tasks: Option<BTreeSet<TaskId>>,
        /// Lie about the input commitment too.
        garble_commitment: bool,
    },
    /// Silently drop outputs and/or heartbeats (omission).
    Omission {
        /// Activation time.
        from: Time,
        /// Drop task outputs.
        drop_outputs: bool,
        /// Drop heartbeats too (looks like a crash).
        drop_heartbeats: bool,
    },
    /// Emit outputs late — "doing the right thing at the wrong time".
    Timing {
        /// Activation time.
        from: Time,
        /// Extra delay added to every output emission.
        delay: Duration,
    },
    /// Send conflicting signed outputs to different consumers.
    Equivocate {
        /// Activation time.
        from: Time,
    },
    /// Flood the control plane with bogus evidence (DoS, Section 4.3).
    EvidenceSpam {
        /// Activation time.
        from: Time,
        /// Bogus records per period.
        per_period: u32,
    },
    /// Babbling idiot: saturate the node's bandwidth allocation.
    Babble {
        /// Activation time.
        from: Time,
        /// Garbage messages per period (guardians clip the excess).
        msgs_per_period: u32,
    },
}

impl Attack {
    /// The attack's activation time.
    pub fn from(&self) -> Time {
        match self {
            Attack::Commission { from, .. }
            | Attack::Omission { from, .. }
            | Attack::Timing { from, .. }
            | Attack::Equivocate { from }
            | Attack::EvidenceSpam { from, .. }
            | Attack::Babble { from, .. } => *from,
        }
    }

    /// True once the attack is live at `now`.
    pub fn active(&self, now: Time) -> bool {
        now >= self.from()
    }

    /// True if this attack corrupts the value of `task` at `now`.
    pub fn corrupts(&self, now: Time, task: TaskId) -> bool {
        match self {
            Attack::Commission { tasks, .. } if self.active(now) => {
                tasks.as_ref().is_none_or(|set| set.contains(&task))
            }
            _ => false,
        }
    }

    /// Short label for experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            Attack::Commission { .. } => "commission",
            Attack::Omission { .. } => "omission",
            Attack::Timing { .. } => "timing",
            Attack::Equivocate { .. } => "equivocation",
            Attack::EvidenceSpam { .. } => "evidence-spam",
            Attack::Babble { .. } => "babble",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_gating() {
        let a = Attack::Equivocate {
            from: Time::from_millis(50),
        };
        assert!(!a.active(Time::from_millis(49)));
        assert!(a.active(Time::from_millis(50)));
        assert_eq!(a.from(), Time::from_millis(50));
    }

    #[test]
    fn commission_task_filter() {
        let a = Attack::Commission {
            from: Time(0),
            tasks: Some(BTreeSet::from([TaskId(3)])),
            garble_commitment: false,
        };
        assert!(a.corrupts(Time(0), TaskId(3)));
        assert!(!a.corrupts(Time(0), TaskId(4)));
        let all = Attack::Commission {
            from: Time(0),
            tasks: None,
            garble_commitment: false,
        };
        assert!(all.corrupts(Time(1), TaskId(9)));
        // Non-commission attacks never corrupt values.
        let o = Attack::Omission {
            from: Time(0),
            drop_outputs: true,
            drop_heartbeats: false,
        };
        assert!(!o.corrupts(Time(1), TaskId(0)));
    }

    #[test]
    fn labels() {
        assert_eq!(
            Attack::Babble {
                from: Time(0),
                msgs_per_period: 1
            }
            .label(),
            "babble"
        );
    }
}
