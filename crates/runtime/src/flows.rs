//! Per-node view of the active plan: schedule slots, output routes,
//! expected inputs, and checker configurations.

use btr_detector::CheckerConfig;
use btr_model::{ATask, Duration, NodeId, Plan, PlanId, ReplicaIdx, ScheduleEntry, TaskId};
use btr_sched::input_lane;
use btr_workload::{TaskKind, Workload};
use std::collections::{BTreeMap, BTreeSet};

/// Everything a node needs to execute its part of one plan.
#[derive(Debug, Clone)]
pub struct PlanView {
    /// The plan this view was derived from.
    pub plan_id: PlanId,
    /// My schedule slots, in plan order (indices stable for timers).
    pub entries: Vec<ScheduleEntry>,
    /// For each Work task I host: destination nodes for its output.
    pub out_routes: BTreeMap<ATask, Vec<NodeId>>,
    /// For each Work task I host: (input task, lane, producer node).
    pub in_flows: BTreeMap<ATask, Vec<(TaskId, ReplicaIdx, NodeId)>>,
    /// Replica lane counts per unshed task.
    pub lanes: BTreeMap<TaskId, u8>,
    /// Checker configurations for Check tasks I host.
    pub checkers: Vec<CheckerConfig>,
    /// The checker host of every checked task in the plan (all nodes, not
    /// just mine): consumers echo received outputs there so conflicting
    /// signed copies meet in one place (equivocation detection even when
    /// every victim task has a single consumer).
    pub checker_nodes: BTreeMap<TaskId, NodeId>,
    /// When each work lane is scheduled to *emit* within its period
    /// (slot start + WCET), for every lane in the plan. Receivers derive
    /// arrival deadlines from this: an output arriving much later than
    /// its emit instant is a timing fault, even if it beats the task's
    /// end-to-end deadline.
    pub emit_offsets: BTreeMap<(TaskId, ReplicaIdx), Duration>,
    /// For every node: the *distinct* other nodes that would notice its
    /// silence under this plan (consumers of its lanes plus checkers of
    /// its tasks). This is the accuser fan-in the omission tracker can
    /// expect — a suspect with only two plausible accusers can never
    /// accumulate three distinct peers, so its attribution threshold
    /// scales down, but only for accusations from exactly this set.
    pub accuser_sets: BTreeMap<NodeId, BTreeSet<NodeId>>,
    /// For every task: the nodes hosting any lane of any *transitive*
    /// input task under this plan. A producer whose upstream set
    /// intersects the known fault set is starved, not faulty — its
    /// silence is explainable and must not be declared (the
    /// false-attribution-cascade gate).
    pub upstream_hosts: BTreeMap<TaskId, BTreeSet<NodeId>>,
}

impl PlanView {
    /// The remote nodes this node's slice of the plan exchanges traffic
    /// with: destinations of its output routes (consumers and checkers),
    /// producers of its input flows, and — when it receives any remote
    /// flow — itself (the row producers route *toward*).
    ///
    /// This is the plan-derived routing demand: the demand-driven
    /// backend (`btr_net::DemandRoutes`) materialises one BFS row per
    /// destination on first use, so warming exactly this set
    /// (`btr_sim::World::warm_routes`) pre-builds every row the plan's
    /// data plane will touch. Heartbeats and evidence floods reach all
    /// peers and fill the remaining rows on demand.
    pub fn route_demand(&self, me: NodeId) -> BTreeSet<NodeId> {
        let mut out = BTreeSet::new();
        for targets in self.out_routes.values() {
            out.extend(targets.iter().copied());
        }
        let mut receives_remote = false;
        for (u, _, pnode) in self.in_flows.values().flatten() {
            if *pnode != me {
                receives_remote = true;
            }
            // Consumers echo the first accepted copy of each input to
            // its checker (equivocation detection), so the checker
            // host's row is demanded as well.
            if let Some(&chk) = self.checker_nodes.get(u) {
                if chk != me {
                    out.insert(chk);
                }
            }
        }
        // Checkers receive every checked lane's output, and remote
        // producers route toward this node: its own row is demanded.
        if receives_remote || !self.checkers.is_empty() {
            out.insert(me);
        }
        out
    }
}

/// Lane counts implied by a plan's placement.
pub fn plan_lanes(plan: &Plan) -> BTreeMap<TaskId, u8> {
    let mut lanes: BTreeMap<TaskId, u8> = BTreeMap::new();
    for atask in plan.placement.keys() {
        if let ATask::Work { task, replica } = atask {
            let e = lanes.entry(*task).or_insert(0);
            *e = (*e).max(replica + 1);
        }
    }
    lanes
}

/// Derive the node-local view of a plan.
pub fn derive_view(node: NodeId, plan: &Plan, workload: &Workload) -> PlanView {
    let lanes = plan_lanes(plan);
    let entries: Vec<ScheduleEntry> = plan
        .schedules
        .get(&node)
        .map(|s| s.entries.clone())
        .unwrap_or_default();

    let mut out_routes: BTreeMap<ATask, Vec<NodeId>> = BTreeMap::new();
    let mut in_flows: BTreeMap<ATask, Vec<(TaskId, ReplicaIdx, NodeId)>> = BTreeMap::new();
    let mut checkers = Vec::new();

    // Plan-global derivations (identical on every node).
    let mut checker_nodes: BTreeMap<TaskId, NodeId> = BTreeMap::new();
    for (atask, &n) in &plan.placement {
        if let ATask::Check { task } = atask {
            checker_nodes.insert(*task, n);
        }
    }
    let mut emit_offsets: BTreeMap<(TaskId, ReplicaIdx), Duration> = BTreeMap::new();
    for sched in plan.schedules.values() {
        for e in &sched.entries {
            if let ATask::Work { task, replica } = e.atask {
                emit_offsets.insert((task, replica), e.start + e.wcet);
            }
        }
    }
    let accuser_sets = derive_accuser_sets(plan, workload, &lanes, &checker_nodes);
    let upstream_hosts = derive_upstream_hosts(plan, workload, &lanes);

    for e in &entries {
        match e.atask {
            ATask::Work { task, replica } => {
                // Output routes: consumer lanes reading this lane, plus
                // the task's checker.
                let my_lanes = lanes.get(&task).copied().unwrap_or(1);
                let mut targets = Vec::new();
                for &c in workload.consumers_of(task) {
                    let Some(&c_lanes) = lanes.get(&c) else {
                        continue; // Consumer shed.
                    };
                    for rc in 0..c_lanes {
                        if input_lane(rc, my_lanes) == replica {
                            if let Some(n) = plan.node_of(ATask::Work {
                                task: c,
                                replica: rc,
                            }) {
                                targets.push(n);
                            }
                        }
                    }
                }
                if let Some(chk) = plan.checker_of(task) {
                    targets.push(chk);
                }
                targets.sort_unstable();
                targets.dedup();
                targets.retain(|&n| n != node); // Local delivery is direct.
                out_routes.insert(e.atask, targets);

                // Input flows.
                let spec = workload.task(task);
                let mut flows = Vec::new();
                for &u in &spec.inputs {
                    let Some(&u_lanes) = lanes.get(&u) else {
                        continue; // Input shed: degraded.
                    };
                    let lane = input_lane(replica, u_lanes);
                    if let Some(pnode) = plan.node_of(ATask::Work {
                        task: u,
                        replica: lane,
                    }) {
                        flows.push((u, lane, pnode));
                    }
                }
                in_flows.insert(e.atask, flows);
            }
            ATask::Check { task } => {
                let n_lanes = lanes.get(&task).copied().unwrap_or(0);
                let lane_nodes: Vec<NodeId> = (0..n_lanes)
                    .filter_map(|r| plan.node_of(ATask::Work { task, replica: r }))
                    .collect();
                let spec = workload.task(task);
                checkers.push(CheckerConfig {
                    task,
                    lanes: n_lanes,
                    lane_nodes,
                    is_source: matches!(spec.kind, TaskKind::Source { .. }),
                    inputs: spec.inputs.clone(),
                    seed: workload.seed,
                });
            }
            ATask::Verify { .. } => {}
        }
    }

    PlanView {
        plan_id: plan.id,
        entries,
        out_routes,
        in_flows,
        lanes,
        checkers,
        checker_nodes,
        emit_offsets,
        accuser_sets,
        upstream_hosts,
    }
}

/// The distinct other nodes that would notice each node's silence under
/// `plan`: hosts of consumer lanes reading its lanes, plus checkers of the
/// tasks it hosts lanes of.
fn derive_accuser_sets(
    plan: &Plan,
    workload: &Workload,
    lanes: &BTreeMap<TaskId, u8>,
    checker_nodes: &BTreeMap<TaskId, NodeId>,
) -> BTreeMap<NodeId, BTreeSet<NodeId>> {
    let mut accusers: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
    for (atask, &host) in &plan.placement {
        let ATask::Work { task, replica } = *atask else {
            continue;
        };
        let set = accusers.entry(host).or_default();
        let my_lanes = lanes.get(&task).copied().unwrap_or(1);
        for &c in workload.consumers_of(task) {
            let Some(&c_lanes) = lanes.get(&c) else {
                continue;
            };
            for rc in 0..c_lanes {
                if input_lane(rc, my_lanes) == replica {
                    if let Some(n) = plan.node_of(ATask::Work {
                        task: c,
                        replica: rc,
                    }) {
                        if n != host {
                            set.insert(n);
                        }
                    }
                }
            }
        }
        if let Some(&chk) = checker_nodes.get(&task) {
            if chk != host {
                set.insert(chk);
            }
        }
    }
    accusers
}

/// Hosts of every lane of every transitive input task, per task.
fn derive_upstream_hosts(
    plan: &Plan,
    workload: &Workload,
    lanes: &BTreeMap<TaskId, u8>,
) -> BTreeMap<TaskId, BTreeSet<NodeId>> {
    // One forward pass in dataflow order (inputs strictly precede
    // consumers — id order is NOT guaranteed topological) closes the
    // transitive sets.
    let mut out: BTreeMap<TaskId, BTreeSet<NodeId>> = BTreeMap::new();
    for &t in workload.topo_order() {
        let spec = workload.task(t);
        let mut set = BTreeSet::new();
        for &u in &spec.inputs {
            if let Some(up) = out.get(&u) {
                set.extend(up.iter().copied());
            }
            let u_lanes = lanes.get(&u).copied().unwrap_or(0);
            for r in 0..u_lanes {
                if let Some(n) = plan.node_of(ATask::Work {
                    task: u,
                    replica: r,
                }) {
                    set.insert(n);
                }
            }
        }
        out.insert(spec.id, set);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use btr_model::{Criticality, Duration, FaultSet, NodeSchedule, PlanId};
    use btr_workload::WorkloadBuilder;

    fn ms(x: u64) -> Duration {
        Duration::from_millis(x)
    }

    /// source(2 lanes) -> ctl(2 lanes) -> sink; checker for ctl on n3.
    fn setup() -> (Workload, Plan) {
        let mut b = WorkloadBuilder::new(ms(10), 1);
        let s = b.source("s", NodeId(0), Duration(100), Criticality::High, ms(10));
        let c = b.compute("c", &[s], Duration(200), Criticality::High, ms(10), 64);
        b.sink("k", NodeId(2), &[c], Duration(50), Criticality::High, ms(9));
        let w = b.build().unwrap();

        let mut placement = BTreeMap::new();
        let work = |t: u32, r: u8| ATask::Work {
            task: TaskId(t),
            replica: r,
        };
        placement.insert(work(0, 0), NodeId(0));
        placement.insert(work(0, 1), NodeId(1));
        placement.insert(work(1, 0), NodeId(0));
        placement.insert(work(1, 1), NodeId(1));
        placement.insert(work(2, 0), NodeId(2));
        placement.insert(ATask::Check { task: TaskId(1) }, NodeId(3));
        placement.insert(ATask::Check { task: TaskId(0) }, NodeId(3));

        let mut schedules: BTreeMap<NodeId, NodeSchedule> = BTreeMap::new();
        let mut add = |node: NodeId, atask: ATask, start: u64, wcet: u64| {
            schedules
                .entry(node)
                .or_default()
                .entries
                .push(ScheduleEntry {
                    atask,
                    start: Duration(start),
                    wcet: Duration(wcet),
                });
        };
        add(NodeId(0), work(0, 0), 0, 100);
        add(NodeId(0), work(1, 0), 200, 200);
        add(NodeId(1), work(0, 1), 0, 100);
        add(NodeId(1), work(1, 1), 200, 200);
        add(NodeId(2), work(2, 0), 600, 50);
        add(NodeId(3), ATask::Check { task: TaskId(0) }, 300, 30);
        add(NodeId(3), ATask::Check { task: TaskId(1) }, 500, 30);

        let plan = Plan {
            id: PlanId(0),
            fault_set: FaultSet::empty(),
            placement,
            schedules,
            shed: Default::default(),
            link_alloc: vec![],
        };
        (w, plan)
    }

    #[test]
    fn lanes_derived_from_placement() {
        let (_, plan) = setup();
        let lanes = plan_lanes(&plan);
        assert_eq!(lanes[&TaskId(0)], 2);
        assert_eq!(lanes[&TaskId(1)], 2);
        assert_eq!(lanes[&TaskId(2)], 1);
    }

    #[test]
    fn node0_routes_and_flows() {
        let (w, plan) = setup();
        let v = derive_view(NodeId(0), &plan, &w);
        assert_eq!(v.plan_id, PlanId(0));
        assert_eq!(v.entries.len(), 2);
        // Source lane 0 output: consumed by ctl lane 0 (local, excluded)
        // and the checker on n3.
        let w00 = ATask::Work {
            task: TaskId(0),
            replica: 0,
        };
        assert_eq!(v.out_routes[&w00], vec![NodeId(3)]);
        // Ctl lane 0: feeds sink on n2 and checker on n3.
        let w10 = ATask::Work {
            task: TaskId(1),
            replica: 0,
        };
        assert_eq!(v.out_routes[&w10], vec![NodeId(2), NodeId(3)]);
        // Ctl lane 0 consumes source lane 0, produced locally on n0.
        assert_eq!(v.in_flows[&w10], vec![(TaskId(0), 0, NodeId(0))]);
        assert!(v.checkers.is_empty());
    }

    #[test]
    fn sink_consumes_primary_lane() {
        let (w, plan) = setup();
        let v = derive_view(NodeId(2), &plan, &w);
        let w20 = ATask::Work {
            task: TaskId(2),
            replica: 0,
        };
        assert_eq!(v.in_flows[&w20], vec![(TaskId(1), 0, NodeId(0))]);
        // Sink output goes nowhere (actuator).
        assert!(v.out_routes[&w20].is_empty());
    }

    #[test]
    fn checker_node_gets_configs() {
        let (w, plan) = setup();
        let v = derive_view(NodeId(3), &plan, &w);
        assert_eq!(v.checkers.len(), 2);
        let chk1 = v.checkers.iter().find(|c| c.task == TaskId(1)).unwrap();
        assert_eq!(chk1.lanes, 2);
        assert_eq!(chk1.lane_nodes, vec![NodeId(0), NodeId(1)]);
        assert!(!chk1.is_source);
        let chk0 = v.checkers.iter().find(|c| c.task == TaskId(0)).unwrap();
        assert!(chk0.is_source);
    }

    #[test]
    fn unplaced_node_has_empty_view() {
        let (w, plan) = setup();
        let v = derive_view(NodeId(7), &plan, &w);
        assert!(v.entries.is_empty());
        assert!(v.out_routes.is_empty());
        assert!(v.checkers.is_empty());
        assert!(v.route_demand(NodeId(7)).is_empty());
    }

    #[test]
    fn route_demand_covers_plan_flows() {
        let (w, plan) = setup();
        // Node 0 hosts source+ctl lane 0: sends to the sink host (n2)
        // and the checker (n3); consumes only locally, so its own row
        // is not demanded.
        let d0 = derive_view(NodeId(0), &plan, &w).route_demand(NodeId(0));
        assert_eq!(d0, BTreeSet::from([NodeId(2), NodeId(3)]));
        // Node 2 hosts the sink: receives the remote ctl lane (its own
        // row is demanded by the producer) and echoes to the checker.
        let d2 = derive_view(NodeId(2), &plan, &w).route_demand(NodeId(2));
        assert!(d2.contains(&NodeId(2)) && d2.contains(&NodeId(3)), "{d2:?}");
        // Node 3 hosts the checkers: every checked lane routes toward it.
        let d3 = derive_view(NodeId(3), &plan, &w).route_demand(NodeId(3));
        assert!(d3.contains(&NodeId(3)), "{d3:?}");
    }
}
