//! Timer-id encoding for the BTR node.
//!
//! The simulator hands back opaque `u64` timer ids; the runtime packs its
//! bookkeeping into them: `[kind:4][version:8][idx:12][period:40]`.
//! The `version` field is the schedule version — slot timers armed under
//! an old plan are dropped after a mode switch instead of double-running.

use btr_model::PeriodIdx;

/// Decoded timer meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Timer {
    /// Start of a period (re-arms itself).
    PeriodBoundary {
        /// The period that starts now.
        period: PeriodIdx,
    },
    /// A schedule slot begins (gather inputs, start executing).
    SlotStart {
        /// Schedule version the slot belongs to.
        version: u8,
        /// Index into the node's schedule entries.
        idx: u16,
        /// The period of this instance.
        period: PeriodIdx,
    },
    /// A slot's execution budget elapsed (emit outputs / actuate).
    SlotEmit {
        /// Schedule version the slot belongs to.
        version: u8,
        /// Index into the node's schedule entries.
        idx: u16,
        /// The period of this instance.
        period: PeriodIdx,
    },
    /// A pending mode switch may be due.
    Activate,
}

const PERIOD_BITS: u64 = 40;
const IDX_BITS: u64 = 12;
const VERSION_BITS: u64 = 8;
const PERIOD_MASK: u64 = (1 << PERIOD_BITS) - 1;
const IDX_MASK: u64 = (1 << IDX_BITS) - 1;
const VERSION_MASK: u64 = (1 << VERSION_BITS) - 1;

/// Encode a timer into a simulator timer id.
pub fn encode(t: Timer) -> u64 {
    let (kind, version, idx, period) = match t {
        Timer::PeriodBoundary { period } => (1u64, 0u64, 0u64, period),
        Timer::SlotStart {
            version,
            idx,
            period,
        } => (2, version as u64, idx as u64, period),
        Timer::SlotEmit {
            version,
            idx,
            period,
        } => (3, version as u64, idx as u64, period),
        Timer::Activate => (4, 0, 0, 0),
    };
    (kind << (VERSION_BITS + IDX_BITS + PERIOD_BITS))
        | ((version & VERSION_MASK) << (IDX_BITS + PERIOD_BITS))
        | ((idx & IDX_MASK) << PERIOD_BITS)
        | (period & PERIOD_MASK)
}

/// Decode a simulator timer id (None for foreign/corrupt ids).
///
/// Strict: fields a kind does not use must be zero, so every valid raw
/// id is exactly `encode` of its decoding. A raw with stray bits set —
/// a foreign subsystem's id, a corrupted one — is rejected rather than
/// aliased onto a nearby timer.
pub fn decode(raw: u64) -> Option<Timer> {
    let kind = raw >> (VERSION_BITS + IDX_BITS + PERIOD_BITS);
    let version = ((raw >> (IDX_BITS + PERIOD_BITS)) & VERSION_MASK) as u8;
    let idx = ((raw >> PERIOD_BITS) & IDX_MASK) as u16;
    let period = raw & PERIOD_MASK;
    match kind {
        1 if version == 0 && idx == 0 => Some(Timer::PeriodBoundary { period }),
        2 => Some(Timer::SlotStart {
            version,
            idx,
            period,
        }),
        3 => Some(Timer::SlotEmit {
            version,
            idx,
            period,
        }),
        4 if version == 0 && idx == 0 && period == 0 => Some(Timer::Activate),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let cases = [
            Timer::PeriodBoundary { period: 0 },
            Timer::PeriodBoundary { period: 1 << 39 },
            Timer::SlotStart {
                version: 255,
                idx: 4095,
                period: 123456789,
            },
            Timer::SlotEmit {
                version: 7,
                idx: 0,
                period: 42,
            },
            Timer::Activate,
        ];
        for t in cases {
            assert_eq!(decode(encode(t)), Some(t), "{t:?}");
        }
    }

    #[test]
    fn distinct_encodings() {
        let a = encode(Timer::SlotStart {
            version: 1,
            idx: 2,
            period: 3,
        });
        let b = encode(Timer::SlotEmit {
            version: 1,
            idx: 2,
            period: 3,
        });
        assert_ne!(a, b);
    }

    #[test]
    fn garbage_rejected() {
        assert_eq!(decode(0), None);
        assert_eq!(decode(u64::MAX), None);
    }

    #[test]
    fn unused_bits_rejected() {
        // Kind 1 (PeriodBoundary) leaves version and idx unused; kind 4
        // (Activate) uses no payload fields at all. A raw with those
        // bits set is not `encode` of anything and must not alias.
        let boundary = encode(Timer::PeriodBoundary { period: 42 });
        assert_eq!(decode(boundary | (1 << (IDX_BITS + PERIOD_BITS))), None);
        assert_eq!(decode(boundary | (1 << PERIOD_BITS)), None);
        let activate = encode(Timer::Activate);
        assert_eq!(decode(activate | 1), None);
        assert_eq!(decode(activate | (1 << PERIOD_BITS)), None);
        assert_eq!(decode(activate | (1 << (IDX_BITS + PERIOD_BITS))), None);
        // The faulty-node crash sentinel (kind 15) stays foreign.
        assert_eq!(decode(u64::MAX), None);
    }

    /// Property sweep over the full `Timer` space with a seeded PRNG:
    /// encode∘decode is the identity on timers, decode∘encode is the
    /// identity on the raws it accepts, and mutating any single bit of a
    /// valid raw never aliases back onto the same timer.
    #[test]
    fn prop_round_trip_full_space() {
        let mut rng = btr_crypto::SplitMix64::new(0xb7c0de);
        for _ in 0..20_000 {
            let r = rng.next_u64();
            let t = match r & 3 {
                0 => Timer::PeriodBoundary {
                    period: (r >> 2) & PERIOD_MASK,
                },
                1 => Timer::SlotStart {
                    version: (r >> 2) as u8,
                    idx: ((r >> 10) & IDX_MASK) as u16,
                    period: (r >> 22) & PERIOD_MASK,
                },
                2 => Timer::SlotEmit {
                    version: (r >> 2) as u8,
                    idx: ((r >> 10) & IDX_MASK) as u16,
                    period: (r >> 22) & PERIOD_MASK,
                },
                _ => Timer::Activate,
            };
            let raw = encode(t);
            assert_eq!(decode(raw), Some(t), "{t:?}");
            let flip = raw ^ (1 << (rng.next_u64() % 64));
            if let Some(aliased) = decode(flip) {
                assert_ne!(aliased, t, "bit flip of {raw:#x} aliased {t:?}");
            }
        }
    }

    /// Dual direction: arbitrary raws either decode to a timer whose
    /// re-encoding is bit-identical to the raw, or are rejected.
    #[test]
    fn prop_decode_is_partial_inverse_of_encode() {
        let mut rng = btr_crypto::SplitMix64::new(0x7e57);
        for _ in 0..20_000 {
            let raw = rng.next_u64();
            if let Some(t) = decode(raw) {
                assert_eq!(encode(t), raw, "lossy decode of {raw:#x} -> {t:?}");
            }
        }
    }
}
