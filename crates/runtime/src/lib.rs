//! The per-node BTR software stack.
//!
//! [`BtrNode`] is what a correct node runs: the static cyclic executor
//! for its slice of the active plan, the fault detector, the evidence
//! pool and disseminator, and the mode switcher. It implements the
//! simulator's `NodeBehavior`, so a system run is just: plan offline
//! (`btr-planner`), install a `BtrNode` per node, inject faults, observe
//! sink outputs.
//!
//! A compromised node runs the same stack with an [`Attack`] script
//! spliced in (Section 2.1's "complete control", minus other nodes' keys
//! and the hardware MAC).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod flows;
pub mod timers;

pub use attack::Attack;
pub use flows::{derive_view, plan_lanes, PlanView};

use btr_detector::Detector;
use btr_evidence::{AdmitOutcome, Disseminator, EvidencePool, PoolConfig};
use btr_model::{
    inputs_digest, sensor_value, task_value, ATask, Duration, Envelope, EvidenceClass,
    EvidenceRecord, NodeId, Payload, PeriodIdx, ReplicaIdx, SignedOutput, Strategy, TaskId, Time,
    Value,
};
use btr_modeswitch::{ModeSwitcher, SwitchAction};
use btr_obs::Phase;
use btr_sim::{NodeBehavior, NodeCtx, TimerId};
use btr_workload::{TaskKind, Workload};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use timers::Timer;

/// True if `producer`'s failure to deliver `task` is already explained by
/// the known fault set: some lane of a transitive input of `task` is
/// hosted on a convicted node under the current plan, so the producer is
/// starved, not faulty. Declaring it anyway is how the false-attribution
/// cascade started (see EXPERIMENTS.md campaign findings) — blame stays
/// pinned on the nodes with direct evidence against them.
///
/// Free function so the end-of-period handler can call it while the
/// detector is mutably borrowed.
fn starvation_explained(
    upstream_hosts: &BTreeMap<TaskId, BTreeSet<NodeId>>,
    faulty: &BTreeSet<NodeId>,
    task: TaskId,
) -> bool {
    upstream_hosts
        .get(&task)
        .is_some_and(|hosts| hosts.iter().any(|h| faulty.contains(h)))
}

/// Runtime configuration for a BTR node.
#[derive(Debug, Clone)]
pub struct BtrConfig {
    /// Heartbeat periods missed before crash suspicion.
    pub heartbeat_miss_threshold: u64,
    /// Distinct peers implicating a node before omission attribution
    /// (scaled down per suspect to the accuser fan-in the active plan
    /// actually provides, never below two).
    pub omission_threshold: usize,
    /// Tolerated lateness beyond a lane's scheduled emit instant before
    /// an arriving output is declared mistimed. Wide enough to absorb
    /// network queueing; far below the delays a timing attack needs to
    /// corrupt downstream schedules.
    pub timing_slack: Duration,
    /// Evidence pool admission limits.
    pub pool: PoolConfig,
    /// Send per-period heartbeats (crash detection substrate).
    pub heartbeats: bool,
    /// Optional adversarial script (compromised node).
    pub attack: Option<Attack>,
}

impl Default for BtrConfig {
    fn default() -> Self {
        BtrConfig {
            heartbeat_miss_threshold: 3,
            omission_threshold: 3,
            timing_slack: Duration::from_millis(4),
            pool: PoolConfig::default(),
            heartbeats: true,
            attack: None,
        }
    }
}

/// Counters exposed for experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Task outputs emitted.
    pub outputs_sent: u64,
    /// Task instances skipped because an input never arrived.
    pub outputs_missed: u64,
    /// Evidence records generated locally.
    pub evidence_generated: u64,
    /// Evidence records forwarded (endorsed).
    pub evidence_forwarded: u64,
    /// Evidence records rejected as bogus.
    pub evidence_rejected: u64,
    /// Heartbeats sent.
    pub heartbeats_sent: u64,
    /// Bytes of migrated task state received.
    pub state_bytes_in: u64,
    /// Evidence-pool near misses: suspects left one accuser short of
    /// conviction (snapshot of the detector's omission tracker).
    pub near_miss_accusations: u64,
    /// Path declarations withheld by the cascade gates — the detector's
    /// exoneration/explained-silence skips plus the recipient-side gate
    /// on missing inputs (blackout, already-convicted, explained).
    pub suppressed_declarations: u64,
}

/// The BTR node behaviour.
pub struct BtrNode {
    id: NodeId,
    workload: Arc<Workload>,
    strategy: Arc<Strategy>,
    cfg: BtrConfig,
    detector: Detector,
    pool: EvidencePool,
    dissem: Disseminator,
    switcher: ModeSwitcher,
    view: PlanView,
    /// Bumped on every plan install; stale slot timers are dropped.
    version: u8,
    /// Received input values: (period, task, lane) -> output (first wins).
    inputs: BTreeMap<(PeriodIdx, TaskId, ReplicaIdx), SignedOutput>,
    /// Computed outputs awaiting their emit instant: (period, slot idx).
    pending_emit: BTreeMap<(PeriodIdx, u16), (SignedOutput, Vec<SignedOutput>, bool)>,
    /// Node count (flooding targets).
    n_nodes: usize,
    /// Exposed counters.
    stats: NodeStats,
    /// Alternation flip used by the equivocation attack.
    equiv_flip: u64,
}

impl BtrNode {
    /// Create a node runtime over an installed workload and strategy.
    pub fn new(
        id: NodeId,
        workload: Arc<Workload>,
        strategy: Arc<Strategy>,
        n_nodes: usize,
        cfg: BtrConfig,
    ) -> BtrNode {
        let mut detector = Detector::new(id, cfg.heartbeat_miss_threshold, cfg.omission_threshold);
        let pool = EvidencePool::new(cfg.pool.clone());
        let switcher = ModeSwitcher::new(id, &strategy);
        let view = derive_view(id, strategy.initial_plan(), &workload);
        detector.set_plausible_accusers(view.accuser_sets.clone());
        BtrNode {
            id,
            workload,
            strategy,
            cfg,
            detector,
            pool,
            dissem: Disseminator::new(),
            switcher,
            view,
            version: 0,
            inputs: BTreeMap::new(),
            pending_emit: BTreeMap::new(),
            n_nodes,
            stats: NodeStats::default(),
            equiv_flip: 0,
        }
    }

    /// Current counters. Detector-side tallies (near misses, gate
    /// suppressions) are folded in at read time so the hot path never
    /// touches them.
    pub fn stats(&self) -> NodeStats {
        let mut s = self.stats;
        s.near_miss_accusations = self.detector.near_miss_suspects() as u64;
        s.suppressed_declarations += self.detector.suppressed_declarations();
        s
    }

    /// The node's current plan.
    pub fn current_plan(&self) -> btr_model::PlanId {
        self.switcher.current_plan()
    }

    /// The node's local fault set.
    pub fn fault_set(&self) -> &btr_model::FaultSet {
        self.switcher.fault_set()
    }

    /// Completed mode switches.
    pub fn switch_count(&self) -> u64 {
        self.switcher.switch_count()
    }

    /// The node's evidence pool (diagnostics and experiments).
    pub fn pool(&self) -> &EvidencePool {
        &self.pool
    }

    fn period_start(&self, p: PeriodIdx) -> Time {
        Time(p * self.workload.period.as_micros())
    }

    /// True while a mode transition is pending or freshly completed:
    /// missing messages in this window are expected confusion (charged
    /// against R), not new faults.
    fn in_blackout(&self, now: Time) -> bool {
        self.switcher
            .in_blackout(now, Duration(2 * self.workload.period.as_micros()))
    }

    /// See [`starvation_explained`].
    fn silence_explained(&self, task: TaskId) -> bool {
        starvation_explained(
            &self.view.upstream_hosts,
            self.switcher.fault_set().as_set(),
            task,
        )
    }

    /// Install the checkers for the current view.
    fn sync_checkers(&mut self) {
        for t in self.detector.checked_tasks() {
            self.detector.remove_checker(t);
        }
        for cfg in &self.view.checkers {
            self.detector.install_checker(cfg.clone());
        }
    }

    fn install_plan(&mut self, plan_id: btr_model::PlanId, ctx: &mut NodeCtx<'_>) {
        let plan = self.strategy.plan(plan_id);
        self.view = derive_view(self.id, plan, &self.workload);
        self.version = self.version.wrapping_add(1);
        self.sync_checkers();
        self.detector
            .set_plausible_accusers(self.view.accuser_sets.clone());
        // Schedule the remaining slots of the current period under the
        // new version (the boundary handler for this period ran before
        // activation and its slots are now stale).
        let now = ctx.now();
        let p = now.period_index(self.workload.period);
        let p_start = self.period_start(p);
        for (idx, e) in self.view.entries.iter().enumerate() {
            let at = p_start + e.start;
            if at >= now {
                ctx.set_timer_at(
                    at,
                    timers::encode(Timer::SlotStart {
                        version: self.version,
                        idx: idx as u16,
                        period: p,
                    }),
                );
            }
        }
    }

    fn report_fault(&mut self, faulty: NodeId, reference: Time, ctx: &mut NodeCtx<'_>) {
        match self
            .switcher
            .add_fault(&self.strategy, ctx.now(), reference, faulty)
        {
            SwitchAction::None => {}
            SwitchAction::Begin {
                to: _,
                activate_at,
                transfers,
            } => {
                // Phase boundary: this node has convicted `faulty` and
                // is starting the mode switch. Out-of-band telemetry —
                // a no-op unless the substrate carries a recorder.
                ctx.observe(Phase::Attributed, faulty);
                for t in transfers {
                    if let ATask::Work { task, .. } = t.atask {
                        ctx.send(
                            t.to,
                            Payload::StateTransfer {
                                task,
                                to_plan: self
                                    .switcher
                                    .pending()
                                    .map(|(p, _)| p)
                                    .unwrap_or(self.switcher.current_plan()),
                                seq: 0,
                                total: 1,
                                bytes: t.bytes,
                            },
                        );
                    }
                }
                ctx.set_timer_at(activate_at, timers::encode(Timer::Activate));
            }
        }
    }

    fn act_on_verified(&mut self, record: &EvidenceRecord, ctx: &mut NodeCtx<'_>) {
        // Reference time = end of the period the evidence refers to:
        // identical on every node holding the record, so mode switches
        // align cluster-wide.
        let reference = self.period_start(record.period() + 1);
        // Phase boundary: verified evidence implicating a node exists
        // at this correct node (the earliest such mark across nodes is
        // the detection instant).
        ctx.observe(Phase::EvidenceObserved, record.accuses());
        if let Some(x) = record.convicts() {
            self.report_fault(x, reference, ctx);
        } else {
            let newly = self.detector.record_declaration(record);
            for x in newly {
                self.report_fault(x, reference, ctx);
            }
        }
    }

    fn flood(&mut self, record: &EvidenceRecord, from: Option<NodeId>, ctx: &mut NodeCtx<'_>) {
        if !self.dissem.should_forward(record.id()) {
            return;
        }
        // Flood to everyone (even suspected nodes): fault sets converge
        // only if all correct nodes eventually hold the same evidence,
        // and local suspicion must never partition the control plane.
        let targets = self.dissem.targets(
            self.id,
            self.n_nodes,
            from,
            &std::collections::BTreeSet::new(),
        );
        for t in targets {
            ctx.send(t, Payload::Evidence(record.clone()));
            self.stats.evidence_forwarded += 1;
        }
    }

    /// Admit locally generated evidence, act on it, and flood it.
    fn handle_local_evidence(&mut self, records: Vec<EvidenceRecord>, ctx: &mut NodeCtx<'_>) {
        let period = ctx.now().period_index(self.workload.period);
        for record in records {
            let outcome = self.pool.admit(
                ctx.keystore(),
                self.workload.as_ref(),
                self.id,
                &record,
                period,
            );
            if let AdmitOutcome::Verified { .. } = outcome {
                self.stats.evidence_generated += 1;
                self.act_on_verified(&record, ctx);
                self.flood(&record, None, ctx);
            }
        }
    }

    fn handle_boundary(&mut self, p: PeriodIdx, ctx: &mut NodeCtx<'_>) {
        let p_start = self.period_start(p);
        // Heartbeats.
        let drop_hb = matches!(
            self.cfg.attack,
            Some(Attack::Omission {
                drop_heartbeats: true,
                ..
            }) if self.cfg.attack.as_ref().unwrap().active(ctx.now())
        );
        if self.cfg.heartbeats && !drop_hb {
            // Heartbeats go to *everyone*, including suspected nodes: a
            // wrongly suspected peer must keep hearing us, or suspicion
            // becomes self-fulfilling.
            for n in 0..self.n_nodes as u32 {
                let n = NodeId(n);
                if n != self.id {
                    ctx.send(n, Payload::Heartbeat { period: p });
                    self.stats.heartbeats_sent += 1;
                }
            }
        }
        // Attack side-channels that fire per period.
        match self.cfg.attack.clone() {
            Some(Attack::EvidenceSpam { from, per_period })
                if Time::ZERO + Duration::ZERO <= ctx.now() && ctx.now() >= from =>
            {
                for i in 0..per_period {
                    let victim = NodeId((self.id.0 + 1 + i) % self.n_nodes as u32);
                    // Fabricated "proof" with an invalid inner signature:
                    // cheap for verifiers to reject, counted against us.
                    let forged = SignedOutput::sign(
                        ctx.signer(),
                        TaskId(0),
                        0,
                        p,
                        0xBAD0 + i as u64,
                        0,
                        victim, // Producer mismatch: sig.key != producer.
                    );
                    let bogus = EvidenceRecord::BadComputation {
                        accused: victim,
                        output: forged,
                        inputs: vec![],
                    };
                    for n in 0..self.n_nodes as u32 {
                        if NodeId(n) != self.id {
                            ctx.send(NodeId(n), Payload::Evidence(bogus.clone()));
                        }
                    }
                }
            }
            Some(Attack::Babble {
                from,
                msgs_per_period,
            }) if ctx.now() >= from => {
                for i in 0..msgs_per_period {
                    let dst = NodeId(i % self.n_nodes as u32);
                    if dst != self.id {
                        ctx.send(dst, Payload::Control(0xBB));
                    }
                }
            }
            _ => {}
        }
        // Close out the previous period's detection — unless we are in a
        // mode-transition blackout: while a switch is pending or within
        // two periods after activation, missing outputs are expected
        // confusion, not omission faults (Section 4.4: "some brief
        // confusion may even be acceptable"). BTR charges that window
        // against R rather than generating false accusations from it.
        if p > 0 {
            let blackout = self.in_blackout(ctx.now());
            if blackout {
                self.detector.gc(p.saturating_sub(4));
            } else {
                let faulty = self.switcher.fault_set().as_set().clone();
                let upstream_hosts = &self.view.upstream_hosts;
                let explained = |task: TaskId, _producer: NodeId| {
                    starvation_explained(upstream_hosts, &faulty, task)
                };
                let evs = self
                    .detector
                    .end_of_period(ctx.signer(), p - 1, &faulty, &explained);
                self.handle_local_evidence(evs, ctx);
            }
        }
        // Schedule this period's slots.
        for (idx, e) in self.view.entries.iter().enumerate() {
            ctx.set_timer_at(
                p_start + e.start,
                timers::encode(Timer::SlotStart {
                    version: self.version,
                    idx: idx as u16,
                    period: p,
                }),
            );
        }
        // Garbage-collect stale inputs.
        let keep_from = p.saturating_sub(3);
        self.inputs.retain(|&(ip, _, _), _| ip >= keep_from);
        self.pending_emit.retain(|&(ip, _), _| ip >= keep_from);
        self.dissem.gc_echoes(keep_from);
        // Re-arm.
        ctx.set_timer_at(
            p_start + self.workload.period,
            timers::encode(Timer::PeriodBoundary { period: p + 1 }),
        );
    }

    fn handle_slot_start(&mut self, version: u8, idx: u16, p: PeriodIdx, ctx: &mut NodeCtx<'_>) {
        if version != self.version {
            return; // Stale plan.
        }
        let Some(entry) = self.view.entries.get(idx as usize).copied() else {
            return;
        };
        let ATask::Work { task, replica } = entry.atask else {
            return; // Check/Verify slots are event-driven.
        };
        let spec = self.workload.task(task);
        let is_sink = matches!(spec.kind, TaskKind::Sink { .. });
        let is_source = matches!(spec.kind, TaskKind::Source { .. });

        // Gather inputs.
        let (vals, witnesses): (Vec<(TaskId, Value)>, Vec<SignedOutput>) = if is_source {
            (Vec::new(), Vec::new())
        } else {
            let flows = self
                .view
                .in_flows
                .get(&entry.atask)
                .cloned()
                .unwrap_or_default();
            let mut vals = Vec::with_capacity(flows.len());
            let mut wits = Vec::with_capacity(flows.len());
            let mut missing: Option<(TaskId, NodeId)> = None;
            for (u, lane, node) in flows {
                match self.inputs.get(&(p, u, lane)) {
                    Some(w) => {
                        vals.push((u, w.value));
                        wits.push(w.clone());
                    }
                    None => {
                        missing = Some((u, node));
                        break;
                    }
                }
            }
            if let Some((u, producer)) = missing {
                self.stats.outputs_missed += 1;
                // Recipient-side path declaration (Section 4.2: "allow
                // both the sender and the recipient to declare ... a
                // problem with the path between them"). If the silent
                // producer already exonerated itself by blaming its own
                // upstream, chain the declaration to that *root* — blame
                // propagates up the dataflow instead of pooling on
                // innocent intermediates.
                let (blame_node, blame_task) = self
                    .detector
                    .exoneration_of(producer, p)
                    .unwrap_or((producer, u));
                if !self.in_blackout(ctx.now())
                    && blame_node != self.id
                    && !self.switcher.fault_set().contains(blame_node)
                    && !self.silence_explained(u)
                    && !self.silence_explained(blame_task)
                {
                    let decl = EvidenceRecord::declare_path(
                        ctx.signer(),
                        self.id,
                        blame_node,
                        self.id,
                        blame_task,
                        p,
                    );
                    self.handle_local_evidence(vec![decl], ctx);
                } else {
                    self.stats.suppressed_declarations += 1;
                }
                return; // Cannot compute this period.
            }
            (vals, wits)
        };

        let mut value = if is_source {
            sensor_value(task, p, self.workload.seed)
        } else {
            task_value(task, p, &vals)
        };
        let mut digest = inputs_digest(&vals);

        // Commission attack: corrupt the value (and maybe the commitment).
        if let Some(attack) = &self.cfg.attack {
            if attack.corrupts(ctx.now(), task) {
                value ^= 0xDEAD_BEEF;
                if let Attack::Commission {
                    garble_commitment: true,
                    ..
                } = attack
                {
                    digest ^= 0x1234_5678;
                }
            }
        }

        let output = SignedOutput::sign(ctx.signer(), task, replica, p, value, digest, self.id);
        // Make the value available to same-node consumers immediately:
        // the static schedule already serialises slots on this node, so a
        // local consumer can never be scheduled before this slot ends —
        // except exactly at the end boundary, where event order would
        // otherwise race.
        self.store_input(output.clone());
        self.pending_emit
            .insert((p, idx), (output, witnesses, is_sink));

        // Emit after the execution budget (plus any timing-attack delay).
        let mut delay = entry.wcet;
        if let Some(Attack::Timing { from, delay: d }) = &self.cfg.attack {
            if ctx.now() >= *from {
                delay += *d;
            }
        }
        ctx.set_timer(
            delay,
            timers::encode(Timer::SlotEmit {
                version: self.version,
                idx,
                period: p,
            }),
        );
    }

    fn handle_slot_emit(&mut self, version: u8, idx: u16, p: PeriodIdx, ctx: &mut NodeCtx<'_>) {
        if version != self.version {
            return;
        }
        let Some((output, witnesses, is_sink)) = self.pending_emit.remove(&(p, idx)) else {
            return;
        };
        if is_sink {
            ctx.actuate(output.task, p, output.value);
            return;
        }
        // Omission attack: silently drop outputs.
        if let Some(Attack::Omission {
            from,
            drop_outputs: true,
            ..
        }) = &self.cfg.attack
        {
            if ctx.now() >= *from {
                return;
            }
        }
        let targets = self
            .view
            .out_routes
            .get(&ATask::Work {
                task: output.task,
                replica: output.replica,
            })
            .cloned()
            .unwrap_or_default();
        // Equivocation attack: sign a conflicting twin and split targets.
        let equivocate =
            matches!(&self.cfg.attack, Some(Attack::Equivocate { from }) if ctx.now() >= *from);
        if equivocate && targets.len() >= 2 {
            self.equiv_flip += 1;
            let twin = SignedOutput::sign(
                ctx.signer(),
                output.task,
                output.replica,
                p,
                output.value ^ (0x5150 + self.equiv_flip),
                output.inputs_digest,
                self.id,
            );
            let half = targets.len() / 2;
            for (i, t) in targets.iter().enumerate() {
                let o = if i < half {
                    output.clone()
                } else {
                    twin.clone()
                };
                ctx.send(
                    *t,
                    Payload::Output {
                        output: o,
                        witnesses: witnesses.clone(),
                    },
                );
            }
            self.stats.outputs_sent += 1;
            return;
        }
        for t in targets {
            ctx.send(
                t,
                Payload::Output {
                    output: output.clone(),
                    witnesses: witnesses.clone(),
                },
            );
        }
        self.stats.outputs_sent += 1;
    }

    fn store_input(&mut self, output: SignedOutput) {
        let key = (output.period, output.task, output.replica);
        self.inputs.entry(key).or_insert(output);
    }

    fn handle_output_msg(
        &mut self,
        env_src: NodeId,
        sent_at: Time,
        env_sig: Option<btr_crypto::Signature>,
        output: SignedOutput,
        witnesses: Vec<SignedOutput>,
        ctx: &mut NodeCtx<'_>,
    ) {
        // Relayed copies (checker echoes) are cross-check material, not
        // fresh observations: they carry no timing signal and are not
        // echoed onward.
        let direct = env_src == output.producer;
        // Store if this is an input one of my tasks expects.
        let wanted = self.view.in_flows.values().any(|flows| {
            flows
                .iter()
                .any(|&(u, lane, _)| u == output.task && lane == output.replica)
        });
        if wanted && ctx.verify_output(&output).is_ok() {
            self.store_input(output.clone());
            // Echo the accepted copy to the task's checker, once per
            // slot: conflicting signed copies then meet in the checker's
            // pool even when each of the producer's tasks has a single
            // consumer (the campaign's avionics equivocation gap).
            if direct {
                if let Some(&chk) = self.view.checker_nodes.get(&output.task) {
                    if chk != self.id
                        && chk != output.producer
                        && self
                            .dissem
                            .should_echo(output.task, output.replica, output.period)
                    {
                        ctx.send(
                            chk,
                            Payload::Output {
                                output: output.clone(),
                                witnesses: Vec::new(),
                            },
                        );
                    }
                }
            }
        }
        // Timing window: the lane's scheduled emit instant plus slack
        // (falling back to the task deadline when the plan has no slot
        // for it). Only direct arrivals outside a transition blackout are
        // judged — echoes arrive a hop late by design.
        let expected_by = if direct && !self.in_blackout(ctx.now()) {
            let base = match self.view.emit_offsets.get(&(output.task, output.replica)) {
                Some(&emit) => emit + self.cfg.timing_slack,
                None => self.workload.task(output.task).deadline,
            };
            Some(self.period_start(output.period) + base)
        } else {
            None
        };
        let signer = ctx.signer().clone();
        let evs = self.detector.observe_output(
            ctx.keystore(),
            &signer,
            self.workload.as_ref(),
            output,
            &witnesses,
            ctx.now(),
            expected_by,
            env_sig.map(|s| (sent_at, s)),
        );
        self.handle_local_evidence(evs, ctx);
    }

    fn handle_evidence_msg(&mut self, from: NodeId, record: EvidenceRecord, ctx: &mut NodeCtx<'_>) {
        let period = ctx.now().period_index(self.workload.period);
        let outcome = self.pool.admit(
            ctx.keystore(),
            self.workload.as_ref(),
            from,
            &record,
            period,
        );
        match outcome {
            AdmitOutcome::Verified { .. } => {
                // Record declarations for attribution even when they do
                // not (yet) cross the threshold.
                self.act_on_verified(&record, ctx);
                self.flood(&record, Some(from), ctx);
                // Declarations also feed the detector's tracker above via
                // act_on_verified; proofs update the switcher directly.
                let _ = EvidenceClass::Proof;
            }
            AdmitOutcome::Rejected(_) => {
                self.stats.evidence_rejected += 1;
            }
            _ => {}
        }
    }
}

impl NodeBehavior for BtrNode {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        self.sync_checkers();
        ctx.set_timer(
            Duration::ZERO,
            timers::encode(Timer::PeriodBoundary { period: 0 }),
        );
    }

    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, env: Envelope) {
        // Authentication gate: unattributable traffic is dropped.
        if ctx.verify_env(&env).is_err() {
            return;
        }
        let sig = env.sig;
        match env.payload {
            Payload::Output { output, witnesses } => {
                self.handle_output_msg(env.src, env.sent_at, sig, output, witnesses, ctx);
            }
            Payload::Heartbeat { period } => {
                self.detector.observe_heartbeat(env.src, period);
            }
            Payload::Evidence(record) => {
                self.handle_evidence_msg(env.src, record, ctx);
            }
            Payload::StateTransfer { bytes, .. } => {
                self.stats.state_bytes_in += bytes as u64;
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: TimerId) {
        match timers::decode(timer) {
            Some(Timer::PeriodBoundary { period }) => self.handle_boundary(period, ctx),
            Some(Timer::SlotStart {
                version,
                idx,
                period,
            }) => self.handle_slot_start(version, idx, period, ctx),
            Some(Timer::SlotEmit {
                version,
                idx,
                period,
            }) => self.handle_slot_emit(version, idx, period, ctx),
            Some(Timer::Activate) => {
                if let Some(plan) = self.switcher.poll(ctx.now()) {
                    self.install_plan(plan, ctx);
                    // Phase boundary: the recovery plan is live on this
                    // node for every fault it covers.
                    let subjects: Vec<NodeId> =
                        self.switcher.fault_set().as_set().iter().copied().collect();
                    for s in subjects {
                        ctx.observe(Phase::SwitchCompleted, s);
                    }
                }
            }
            None => {}
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btr_model::Topology;
    use btr_planner::{build_strategy, PlannerConfig};
    use btr_sim::{SimConfig, World};

    fn ms(x: u64) -> Duration {
        Duration::from_millis(x)
    }

    fn setup(f: u8) -> (Arc<Workload>, Arc<Strategy>, Topology) {
        let w = Arc::new(btr_workload::generators::avionics(9));
        let topo = Topology::bus(9, 100_000, Duration(5));
        let mut cfg = PlannerConfig::new(f, ms(150));
        cfg.admit_best_effort = true;
        let (s, _) = build_strategy(&w, &topo, &cfg).unwrap();
        (w, Arc::new(s), topo)
    }

    fn world_with_btr(
        w: &Arc<Workload>,
        s: &Arc<Strategy>,
        topo: &Topology,
        attacks: &[(NodeId, Attack)],
    ) -> World {
        let mut sim_cfg = SimConfig::new(7);
        sim_cfg.period = w.period;
        let mut world = World::new(topo.clone(), sim_cfg);
        for n in 0..topo.node_count() as u32 {
            let mut cfg = BtrConfig::default();
            if let Some((_, a)) = attacks.iter().find(|(id, _)| *id == NodeId(n)) {
                cfg.attack = Some(a.clone());
            }
            world.set_behavior(
                NodeId(n),
                Box::new(BtrNode::new(
                    NodeId(n),
                    Arc::clone(w),
                    Arc::clone(s),
                    topo.node_count(),
                    cfg,
                )),
            );
        }
        world
    }

    fn node_ref(world: &World, id: NodeId) -> &BtrNode {
        world
            .behavior(id)
            .and_then(|b| b.as_any())
            .and_then(|a| a.downcast_ref::<BtrNode>())
            .expect("btr node")
    }

    #[test]
    fn fault_free_run_produces_correct_sink_outputs() {
        let (w, s, topo) = setup(1);
        let mut world = world_with_btr(&w, &s, &topo, &[]);
        world.start();
        world.run_until(Time::from_millis(100));
        // Every sink actuated in (nearly) every period.
        let sinks = w.sinks().count() as u64;
        let periods = 9; // Periods 0..9 fully complete.
        let acts = world.actuations().len() as u64;
        assert!(
            acts >= sinks * periods,
            "expected >= {} actuations, got {acts}",
            sinks * periods
        );
        // All actuation values match the deterministic reference.
        for a in world.actuations() {
            let spec = w.task(a.task);
            let vals: Vec<(TaskId, Value)> = spec
                .inputs
                .iter()
                .map(|&u| {
                    // Recursively reference values: inputs of sinks are
                    // compute tasks; recompute from the dataflow.
                    (u, reference_value(&w, u, a.period))
                })
                .collect();
            let expect = task_value(a.task, a.period, &vals);
            assert_eq!(a.value, expect, "sink {} period {}", a.task, a.period);
        }
        // No evidence generated in a fault-free run.
        for n in 0..9u32 {
            let node = node_ref(&world, NodeId(n));
            assert_eq!(node.stats().evidence_generated, 0, "node {n}");
            assert_eq!(node.fault_set().len(), 0);
        }
    }

    fn reference_value(w: &Workload, t: TaskId, p: PeriodIdx) -> Value {
        let spec = w.task(t);
        if matches!(spec.kind, TaskKind::Source { .. }) {
            return sensor_value(t, p, w.seed);
        }
        let vals: Vec<(TaskId, Value)> = spec
            .inputs
            .iter()
            .map(|&u| (u, reference_value(w, u, p)))
            .collect();
        task_value(t, p, &vals)
    }

    /// Reference value under a plan's shed set (degraded modes drop
    /// inputs, so expected sink values change with the plan).
    fn plan_reference_value(
        w: &Workload,
        shed: &std::collections::BTreeSet<TaskId>,
        t: TaskId,
        p: PeriodIdx,
    ) -> Option<Value> {
        if shed.contains(&t) {
            return None;
        }
        let spec = w.task(t);
        if matches!(spec.kind, TaskKind::Source { .. }) {
            return Some(sensor_value(t, p, w.seed));
        }
        let vals: Vec<(TaskId, Value)> = spec
            .inputs
            .iter()
            .filter_map(|&u| plan_reference_value(w, shed, u, p).map(|v| (u, v)))
            .collect();
        if vals.is_empty() {
            return None;
        }
        Some(task_value(t, p, &vals))
    }

    #[test]
    fn commission_fault_is_detected_and_recovered() {
        let (w, s, topo) = setup(1);
        // Find a node hosting a lane-0 compute task in the initial plan,
        // so corruption actually reaches a sink.
        let initial = s.initial_plan();
        let ctl = w
            .tasks()
            .iter()
            .find(|t| t.name == "flight-control")
            .unwrap()
            .id;
        let victim = initial
            .node_of(ATask::Work {
                task: ctl,
                replica: 0,
            })
            .unwrap();
        let attack = Attack::Commission {
            from: Time::from_millis(30),
            tasks: None,
            garble_commitment: false,
        };
        let mut world = world_with_btr(&w, &s, &topo, &[(victim, attack)]);
        world.start();
        world.run_until(Time::from_millis(200));
        // Every correct node converged on the fault set {victim}.
        for n in 0..9u32 {
            if NodeId(n) == victim {
                continue;
            }
            let node = node_ref(&world, NodeId(n));
            assert!(
                node.fault_set().contains(victim),
                "node {n} never learned about {victim}"
            );
            assert_eq!(node.current_plan(), s.best_plan_for(node.fault_set()));
        }
        // And sink outputs are correct again at the end of the run,
        // relative to the degraded plan the system converged to.
        let sample = node_ref(
            &world,
            (0..9u32).map(NodeId).find(|&n| n != victim).unwrap(),
        );
        let plan = s.plan(sample.current_plan());
        let last_period = world.actuations().iter().map(|a| a.period).max().unwrap();
        let tail: Vec<_> = world
            .actuations()
            .iter()
            .filter(|a| a.period == last_period)
            .collect();
        assert!(!tail.is_empty());
        for a in &tail {
            let expect = plan_reference_value(&w, &plan.shed, a.task, a.period);
            assert_eq!(Some(a.value), expect, "sink {} period {}", a.task, a.period);
        }
    }

    #[test]
    fn crash_fault_triggers_suspicion_and_switch() {
        let (w, s, topo) = setup(1);
        let initial = s.initial_plan();
        // Crash a node hosting work (not an actuator pin, to keep sinks).
        let fusion = w
            .tasks()
            .iter()
            .find(|t| t.name == "state-fusion")
            .unwrap()
            .id;
        let victim = initial
            .node_of(ATask::Work {
                task: fusion,
                replica: 0,
            })
            .unwrap();
        let mut world = world_with_btr(&w, &s, &topo, &[]);
        world.schedule_control(Time::from_millis(35), btr_sim::ControlAction::Crash(victim));
        world.start();
        world.run_until(Time::from_millis(250));
        let mut converged = 0;
        for n in 0..9u32 {
            if NodeId(n) == victim || world.is_crashed(NodeId(n)) {
                continue;
            }
            let node = node_ref(&world, NodeId(n));
            if node.fault_set().contains(victim) {
                converged += 1;
            }
        }
        assert!(
            converged >= 7,
            "only {converged} nodes converged on the crash"
        );
    }

    #[test]
    fn garbled_commitment_is_convicted_via_bad_witness() {
        let (w, s, topo) = setup(1);
        let initial = s.initial_plan();
        let fusion = w
            .tasks()
            .iter()
            .find(|t| t.name == "state-fusion")
            .unwrap()
            .id;
        let victim = initial
            .node_of(ATask::Work {
                task: fusion,
                replica: 0,
            })
            .unwrap();
        // The smarter commission attacker: lies about its commitment to
        // dodge re-execution proofs. BadWitness catches it instead.
        let attack = Attack::Commission {
            from: Time::from_millis(30),
            tasks: None,
            garble_commitment: true,
        };
        let mut world = world_with_btr(&w, &s, &topo, &[(victim, attack)]);
        world.start();
        world.run_until(Time::from_millis(250));
        let mut converged = 0;
        for n in 0..9u32 {
            if NodeId(n) == victim {
                continue;
            }
            let node = node_ref(&world, NodeId(n));
            if node.fault_set().contains(victim) {
                converged += 1;
            }
        }
        assert_eq!(converged, 8, "garbled commitment must still convict");
    }

    #[test]
    fn timing_attack_is_declared_and_recovered() {
        let (w, s, topo) = setup(1);
        let initial = s.initial_plan();
        let fusion = w
            .tasks()
            .iter()
            .find(|t| t.name == "state-fusion")
            .unwrap()
            .id;
        let victim = initial
            .node_of(ATask::Work {
                task: fusion,
                replica: 0,
            })
            .unwrap();
        let attack = Attack::Timing {
            from: Time::from_millis(30),
            delay: Duration::from_millis(8),
        };
        let mut world = world_with_btr(&w, &s, &topo, &[(victim, attack)]);
        world.start();
        world.run_until(Time::from_millis(400));
        let mut converged = 0;
        for n in 0..9u32 {
            if NodeId(n) == victim {
                continue;
            }
            let node = node_ref(&world, NodeId(n));
            if node.fault_set().contains(victim) {
                converged += 1;
            }
        }
        assert!(converged >= 7, "timing fault not attributed: {converged}");
    }

    #[test]
    fn timer_version_prevents_stale_slots() {
        // Covered implicitly by recovery tests; here check decode gating.
        let t = timers::encode(Timer::SlotStart {
            version: 3,
            idx: 1,
            period: 10,
        });
        assert!(matches!(
            timers::decode(t),
            Some(Timer::SlotStart { version: 3, .. })
        ));
    }
}
