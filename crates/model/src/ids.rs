//! Identifiers for nodes, tasks, links, plans, replicas, and periods.

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// A physical node (processor) in the CPS.
    NodeId,
    "n"
);
id_type!(
    /// A workload task in the dataflow graph (sources and sinks included).
    TaskId,
    "t"
);
id_type!(
    /// A network link (point-to-point or bus).
    LinkId,
    "l"
);
id_type!(
    /// A plan computed by the offline planner.
    PlanId,
    "plan"
);

/// Which replica of a task (0-based). The primary is replica 0.
pub type ReplicaIdx = u8;

/// Index of a release period since simulation start.
pub type PeriodIdx = u64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(TaskId(7).to_string(), "t7");
        assert_eq!(LinkId(1).to_string(), "l1");
        assert_eq!(PlanId(0).to_string(), "plan0");
        assert_eq!(NodeId(9).index(), 9);
        assert_eq!(NodeId::from(4), NodeId(4));
    }

    #[test]
    fn ordering() {
        assert!(NodeId(1) < NodeId(2));
        assert!(TaskId(0) < TaskId(10));
    }
}
