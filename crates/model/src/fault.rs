//! Fault kinds and fault sets.
//!
//! The threat model (Section 2.1) is Byzantine: "there is an adversary who
//! has compromised some subset of the nodes and has complete control over
//! them". [`FaultKind`] enumerates the concrete manifestations our fault
//! injector can script; [`FaultSet`] is the append-only set of nodes that
//! correct nodes have *convicted or excluded*, which Section 4.4 uses to
//! converge on a plan without running agreement.

use crate::ids::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A concrete fault behaviour that can manifest on a compromised node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultKind {
    /// The node stops entirely (fail-stop).
    Crash,
    /// The node silently drops some or all of its required messages.
    Omission,
    /// The node sends wrong values (commission faults).
    Commission,
    /// The node does the right thing at the wrong time (Section 4.2:
    /// "doing the right thing at the wrong time").
    Timing,
    /// The node sends conflicting signed outputs to different peers.
    Equivocation,
    /// The node floods its bandwidth allocation (babbling idiot / DoS).
    Babble,
    /// The node fabricates bogus evidence to DoS the verifiers (4.3).
    EvidenceSpam,
}

impl FaultKind {
    /// All kinds, in a stable order.
    pub const ALL: [FaultKind; 7] = [
        FaultKind::Crash,
        FaultKind::Omission,
        FaultKind::Commission,
        FaultKind::Timing,
        FaultKind::Equivocation,
        FaultKind::Babble,
        FaultKind::EvidenceSpam,
    ];

    /// Short label for tables.
    pub const fn label(self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::Omission => "omission",
            FaultKind::Commission => "commission",
            FaultKind::Timing => "timing",
            FaultKind::Equivocation => "equivocation",
            FaultKind::Babble => "babble",
            FaultKind::EvidenceSpam => "evidence-spam",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// An append-only set of nodes believed faulty.
///
/// Section 4.4: "this set is append-only, and, if a node receives valid
/// evidence of a fault on some other node X, it can safely add X to its
/// local set". Plan selection is a deterministic function of this set.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct FaultSet(BTreeSet<NodeId>);

impl FaultSet {
    /// The empty set (the all-correct mode).
    pub fn empty() -> Self {
        FaultSet::default()
    }

    /// Build from a list of nodes.
    pub fn from_nodes(nodes: &[NodeId]) -> Self {
        FaultSet(nodes.iter().copied().collect())
    }

    /// Add a node; returns true if it was newly inserted.
    pub fn insert(&mut self, n: NodeId) -> bool {
        self.0.insert(n)
    }

    /// True if `n` is in the set.
    pub fn contains(&self, n: NodeId) -> bool {
        self.0.contains(&n)
    }

    /// Number of faulty nodes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if no node is marked faulty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate in ascending node order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.0.iter().copied()
    }

    /// True if `self` ⊆ `other`.
    pub fn is_subset(&self, other: &FaultSet) -> bool {
        self.0.is_subset(&other.0)
    }

    /// Union of two fault sets.
    pub fn union(&self, other: &FaultSet) -> FaultSet {
        FaultSet(self.0.union(&other.0).copied().collect())
    }

    /// The set as a borrowed `BTreeSet` (for graph algorithms).
    pub fn as_set(&self) -> &BTreeSet<NodeId> {
        &self.0
    }

    /// Canonical bytes for indexing/signing.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 * self.0.len());
        for n in &self.0 {
            out.extend_from_slice(&n.0.to_be_bytes());
        }
        out
    }
}

impl FromIterator<NodeId> for FaultSet {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        FaultSet(iter.into_iter().collect())
    }
}

impl std::fmt::Display for FaultSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, n) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn append_only_semantics() {
        let mut fs = FaultSet::empty();
        assert!(fs.is_empty());
        assert!(fs.insert(NodeId(3)));
        assert!(!fs.insert(NodeId(3)));
        assert!(fs.insert(NodeId(1)));
        assert_eq!(fs.len(), 2);
        assert!(fs.contains(NodeId(1)));
        assert!(!fs.contains(NodeId(0)));
    }

    #[test]
    fn display_sorted() {
        let fs = FaultSet::from_nodes(&[NodeId(3), NodeId(1)]);
        assert_eq!(fs.to_string(), "{n1,n3}");
        assert_eq!(FaultSet::empty().to_string(), "{}");
    }

    #[test]
    fn subset_and_union() {
        let a = FaultSet::from_nodes(&[NodeId(1)]);
        let b = FaultSet::from_nodes(&[NodeId(1), NodeId(2)]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert_eq!(a.union(&b), b);
    }

    #[test]
    fn canonical_bytes_order_independent() {
        let a = FaultSet::from_nodes(&[NodeId(2), NodeId(1)]);
        let b = FaultSet::from_nodes(&[NodeId(1), NodeId(2)]);
        assert_eq!(a.canonical_bytes(), b.canonical_bytes());
        assert_ne!(
            a.canonical_bytes(),
            FaultSet::from_nodes(&[NodeId(1)]).canonical_bytes()
        );
    }

    #[test]
    fn fault_kind_labels_unique() {
        let labels: BTreeSet<&str> = FaultKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), FaultKind::ALL.len());
    }

    proptest! {
        /// Insertion order never affects the canonical representation.
        #[test]
        fn prop_canonical_independent_of_order(mut ids in proptest::collection::vec(0u32..16, 0..10)) {
            let fs1: FaultSet = ids.iter().map(|&i| NodeId(i)).collect();
            ids.reverse();
            let fs2: FaultSet = ids.iter().map(|&i| NodeId(i)).collect();
            prop_assert_eq!(fs1.canonical_bytes(), fs2.canonical_bytes());
            prop_assert_eq!(fs1, fs2);
        }

        /// Union is commutative and monotone.
        #[test]
        fn prop_union_laws(a in proptest::collection::vec(0u32..12, 0..6),
                           b in proptest::collection::vec(0u32..12, 0..6)) {
            let fa: FaultSet = a.iter().map(|&i| NodeId(i)).collect();
            let fb: FaultSet = b.iter().map(|&i| NodeId(i)).collect();
            let u = fa.union(&fb);
            prop_assert_eq!(u.clone(), fb.union(&fa));
            prop_assert!(fa.is_subset(&u));
            prop_assert!(fb.is_subset(&u));
        }
    }
}
