//! Wire messages.
//!
//! Everything nodes exchange is an [`Envelope`] carrying a [`Payload`].
//! Envelopes are signed by their sender so that receivers can attribute
//! traffic; the payloads that need independent lives of their own
//! (task outputs, evidence) additionally carry their own signatures.

use crate::enc::Enc;
use crate::evidence::{EvidenceRecord, SignedOutput};
use crate::ids::{NodeId, PeriodIdx, PlanId, TaskId};
use crate::time::Time;
use btr_crypto::{KeyStore, SigError, Signature, Signer};
use serde::{Deserialize, Serialize};

/// Phases of the PBFT-lite baseline's agreement round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PbftPhase {
    /// Leader proposes a value.
    PrePrepare,
    /// Replicas echo the proposal.
    Prepare,
    /// Replicas commit.
    Commit,
}

/// Message payloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Payload {
    /// A task output on the data plane, carrying the signed inputs the
    /// producer consumed ("witnesses") so checkers can verify the
    /// commitment and assign blame without extra round trips.
    Output {
        /// The signed output.
        output: SignedOutput,
        /// The signed inputs the producer consumed (empty for sources).
        witnesses: Vec<SignedOutput>,
    },
    /// Periodic liveness beacon.
    Heartbeat {
        /// The sender's current period.
        period: PeriodIdx,
    },
    /// A piece of fault evidence (control plane, Section 4.3).
    Evidence(EvidenceRecord),
    /// A chunk of migrating task state during a mode change (Section 4.4).
    StateTransfer {
        /// The migrating task.
        task: TaskId,
        /// Plan the state is migrating into.
        to_plan: PlanId,
        /// Chunk sequence number.
        seq: u32,
        /// Total number of chunks.
        total: u32,
        /// Bytes of task state in this chunk.
        bytes: u32,
    },
    /// Acknowledgement that the sender will activate `plan` at the given time.
    ModeAck {
        /// The plan being activated.
        plan: PlanId,
        /// Activation instant (global time).
        activate_at: Time,
    },
    /// Agreement traffic for the PBFT-lite baseline.
    Pbft {
        /// Task whose output is being agreed on.
        task: TaskId,
        /// Release period.
        period: PeriodIdx,
        /// Proposed/echoed value.
        value: u64,
        /// Protocol phase.
        phase: PbftPhase,
        /// View number.
        view: u32,
    },
    /// ZZ baseline: wake a dormant replica.
    Wake {
        /// Task whose dormant replica should start.
        task: TaskId,
        /// Period at which disagreement was noticed.
        period: PeriodIdx,
    },
    /// Self-stabilisation baseline: audit probe/response.
    Audit {
        /// Task being audited.
        about: TaskId,
        /// Period being audited.
        period: PeriodIdx,
        /// The value the audited node reported.
        value: u64,
    },
    /// Small control message (tests and custom protocols).
    Control(u8),
}

impl Payload {
    /// Canonical bytes for envelope signing.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut e = Enc::new("btr-payload");
        self.encode_into(&mut e);
        e.finish()
    }

    /// Exact length of [`Payload::canonical_bytes`] without materialising
    /// it. Allocation-free for every variant except `Evidence`, whose
    /// nested record is variable-length (evidence is control-plane
    /// traffic, deliberately rare).
    pub fn canonical_len(&self) -> usize {
        let mut e = Enc::count("btr-payload");
        self.encode_into(&mut e);
        e.len()
    }

    /// Write the canonical encoding (sans domain prefix) into `e`.
    pub(crate) fn encode_into(&self, e: &mut Enc<'_>) {
        match self {
            Payload::Output { output, witnesses } => {
                e.u8(0).u64(SignedOutput::CANONICAL_ID_LEN as u64);
                output.encode_id(e);
                e.u32(witnesses.len() as u32);
                for w in witnesses {
                    e.u64(SignedOutput::CANONICAL_ID_LEN as u64);
                    w.encode_id(e);
                }
            }
            Payload::Heartbeat { period } => {
                e.u8(1).u64(*period);
            }
            Payload::Evidence(ev) => {
                e.u8(2).bytes(&ev.canonical_bytes());
            }
            Payload::StateTransfer {
                task,
                to_plan,
                seq,
                total,
                bytes,
            } => {
                e.u8(3)
                    .u32(task.0)
                    .u32(to_plan.0)
                    .u32(*seq)
                    .u32(*total)
                    .u32(*bytes);
            }
            Payload::ModeAck { plan, activate_at } => {
                e.u8(4).u32(plan.0).u64(activate_at.0);
            }
            Payload::Pbft {
                task,
                period,
                value,
                phase,
                view,
            } => {
                let ph = match phase {
                    PbftPhase::PrePrepare => 0,
                    PbftPhase::Prepare => 1,
                    PbftPhase::Commit => 2,
                };
                e.u8(5)
                    .u32(task.0)
                    .u64(*period)
                    .u64(*value)
                    .u8(ph)
                    .u32(*view);
            }
            Payload::Wake { task, period } => {
                e.u8(6).u32(task.0).u64(*period);
            }
            Payload::Audit {
                about,
                period,
                value,
            } => {
                e.u8(7).u32(about.0).u64(*period).u64(*value);
            }
            Payload::Control(tag) => {
                e.u8(8).u8(*tag);
            }
        }
    }

    /// Bytes this payload occupies on the wire (approximate but stable).
    ///
    /// `StateTransfer` counts the carried state bytes; everything else is
    /// sized by its canonical encoding. Computed by counting, not by
    /// building the encoding — this runs once per transmitted message.
    pub fn wire_size(&self) -> u32 {
        match self {
            Payload::StateTransfer { bytes, .. } => 24 + *bytes,
            other => other.canonical_len() as u32,
        }
    }

    /// Short label for traces.
    pub fn label(&self) -> &'static str {
        match self {
            Payload::Output { .. } => "output",
            Payload::Heartbeat { .. } => "heartbeat",
            Payload::Evidence(_) => "evidence",
            Payload::StateTransfer { .. } => "state",
            Payload::ModeAck { .. } => "mode-ack",
            Payload::Pbft { .. } => "pbft",
            Payload::Wake { .. } => "wake",
            Payload::Audit { .. } => "audit",
            Payload::Control(_) => "control",
        }
    }
}

/// A message in flight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Sender's claimed send time (covered by the signature).
    pub sent_at: Time,
    /// The payload.
    pub payload: Payload,
    /// Sender's signature over (src, sent_at, payload).
    pub sig: Option<Signature>,
}

/// Fixed per-envelope header bytes on the wire.
pub const ENVELOPE_HEADER_BYTES: u32 = 28;
/// Wire bytes for an envelope signature: a 4-byte key id plus the fixed
/// 32-byte authenticator field. Both authenticator suites share the
/// field (SipHash-2-4 tags are zero-padded; see `btr_crypto::AuthSuite`),
/// so message sizes — and therefore link serialisation timings — are
/// bit-identical across suites and only CPU cost differs. The
/// cross-suite differential oracles rely on this.
pub const SIGNATURE_BYTES: u32 = 36;

impl Envelope {
    /// Create an unsigned envelope.
    pub fn new(src: NodeId, dst: NodeId, sent_at: Time, payload: Payload) -> Envelope {
        Envelope {
            src,
            dst,
            sent_at,
            payload,
            sig: None,
        }
    }

    /// The canonical bytes an envelope signature covers. Public so that
    /// evidence records can re-verify a sender's envelope signature from
    /// its reconstructed parts (see `EvidenceRecord::BadWitness`).
    pub fn signing_bytes_for(src: NodeId, sent_at: Time, payload: &Payload) -> Vec<u8> {
        let mut buf = Vec::new();
        Self::write_signing_bytes(src, sent_at, payload, &mut buf);
        buf
    }

    /// Write the canonical signing bytes into a caller-owned scratch
    /// buffer (cleared first). Byte-identical to
    /// [`Envelope::signing_bytes_for`], but allocation-free once the
    /// scratch has warmed up — this is the simulator's per-message path.
    pub fn write_signing_bytes(src: NodeId, sent_at: Time, payload: &Payload, buf: &mut Vec<u8>) {
        let mut e = Enc::over(buf, "btr-envelope");
        e.u32(src.0).u64(sent_at.0);
        // Stream the payload encoding in place of
        // `e.bytes(&payload.canonical_bytes())`: length prefix, then the
        // payload's own domain tag and body.
        e.u64(payload.canonical_len() as u64);
        e.bytes(b"btr-payload");
        payload.encode_into(&mut e);
    }

    /// Sign the envelope as `signer` (must match `src` to verify).
    pub fn signed(self, signer: &Signer) -> Envelope {
        let mut scratch = Vec::new();
        self.signed_with(signer, &mut scratch)
    }

    /// Like [`Envelope::signed`], writing the signing bytes into a
    /// reusable scratch buffer instead of allocating.
    pub fn signed_with(mut self, signer: &Signer, scratch: &mut Vec<u8>) -> Envelope {
        Self::write_signing_bytes(self.src, self.sent_at, &self.payload, scratch);
        self.sig = Some(signer.sign(scratch));
        self
    }

    /// Verify the envelope signature against the claimed source.
    pub fn verify(&self, ks: &KeyStore) -> Result<(), SigError> {
        let mut scratch = Vec::new();
        self.verify_with(ks, &mut scratch)
    }

    /// Like [`Envelope::verify`], writing the signing bytes into a
    /// reusable scratch buffer instead of allocating.
    pub fn verify_with(&self, ks: &KeyStore, scratch: &mut Vec<u8>) -> Result<(), SigError> {
        match &self.sig {
            None => Err(SigError::BadTag(self.src.0)),
            Some(sig) => {
                if sig.key != self.src.0 {
                    return Err(SigError::BadTag(self.src.0));
                }
                Self::write_signing_bytes(self.src, self.sent_at, &self.payload, scratch);
                ks.verify(sig, scratch)
            }
        }
    }

    /// Total wire size in bytes.
    pub fn wire_size(&self) -> u32 {
        ENVELOPE_HEADER_BYTES
            + self.payload.wire_size()
            + if self.sig.is_some() {
                SIGNATURE_BYTES
            } else {
                0
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btr_crypto::NodeKey;

    fn signer(i: u32) -> Signer {
        Signer::new(NodeKey::derive(5, i))
    }

    fn ks() -> KeyStore {
        KeyStore::derive(5, 4)
    }

    #[test]
    fn sign_verify_round_trip() {
        let env = Envelope::new(
            NodeId(1),
            NodeId(2),
            Time(500),
            Payload::Heartbeat { period: 3 },
        )
        .signed(&signer(1));
        assert_eq!(env.verify(&ks()), Ok(()));
    }

    #[test]
    fn unsigned_envelope_rejected() {
        let env = Envelope::new(NodeId(1), NodeId(2), Time(0), Payload::Control(1));
        assert!(env.verify(&ks()).is_err());
    }

    #[test]
    fn spoofed_source_rejected() {
        // Node 3 signs but claims to be node 1.
        let env =
            Envelope::new(NodeId(1), NodeId(2), Time(0), Payload::Control(1)).signed(&signer(3));
        assert!(env.verify(&ks()).is_err());
    }

    #[test]
    fn tampered_payload_rejected() {
        let mut env =
            Envelope::new(NodeId(1), NodeId(2), Time(0), Payload::Control(1)).signed(&signer(1));
        env.payload = Payload::Control(2);
        assert!(env.verify(&ks()).is_err());
    }

    #[test]
    fn tampered_send_time_rejected() {
        let mut env =
            Envelope::new(NodeId(1), NodeId(2), Time(0), Payload::Control(1)).signed(&signer(1));
        env.sent_at = Time(99);
        assert!(env.verify(&ks()).is_err());
    }

    #[test]
    fn wire_sizes_are_sane() {
        let hb = Envelope::new(
            NodeId(0),
            NodeId(1),
            Time(0),
            Payload::Heartbeat { period: 0 },
        );
        let signed = hb.clone().signed(&signer(0));
        assert_eq!(signed.wire_size(), hb.wire_size() + SIGNATURE_BYTES);

        let st = Payload::StateTransfer {
            task: TaskId(1),
            to_plan: PlanId(2),
            seq: 0,
            total: 1,
            bytes: 1000,
        };
        assert_eq!(st.wire_size(), 1024);
    }

    #[test]
    fn payload_labels() {
        assert_eq!(Payload::Control(0).label(), "control");
        assert_eq!(Payload::Heartbeat { period: 1 }.label(), "heartbeat");
    }

    fn sample_payloads() -> Vec<Payload> {
        let so = |t: u32, v: u64| {
            crate::evidence::SignedOutput::sign(&signer(1), TaskId(t), 0, 3, v, 9, NodeId(1))
        };
        vec![
            Payload::Output {
                output: so(1, 10),
                witnesses: vec![so(2, 20), so(3, 30)],
            },
            Payload::Heartbeat { period: 42 },
            Payload::StateTransfer {
                task: TaskId(1),
                to_plan: PlanId(2),
                seq: 0,
                total: 4,
                bytes: 512,
            },
            Payload::ModeAck {
                plan: PlanId(1),
                activate_at: Time(77),
            },
            Payload::Pbft {
                task: TaskId(3),
                period: 5,
                value: 6,
                phase: PbftPhase::Prepare,
                view: 1,
            },
            Payload::Wake {
                task: TaskId(4),
                period: 8,
            },
            Payload::Audit {
                about: TaskId(5),
                period: 9,
                value: 10,
            },
            Payload::Control(7),
        ]
    }

    #[test]
    fn canonical_len_matches_canonical_bytes() {
        for p in sample_payloads() {
            assert_eq!(
                p.canonical_len(),
                p.canonical_bytes().len(),
                "length mismatch for {:?}",
                p.label()
            );
        }
    }

    #[test]
    fn scratch_signing_bytes_match_allocating_path() {
        let mut scratch = vec![0xffu8; 3]; // Dirty scratch must be cleared.
        for p in sample_payloads() {
            let owned = Envelope::signing_bytes_for(NodeId(3), Time(99), &p);
            Envelope::write_signing_bytes(NodeId(3), Time(99), &p, &mut scratch);
            assert_eq!(scratch, owned, "scratch mismatch for {:?}", p.label());
        }
    }

    #[test]
    fn signed_with_equals_signed() {
        let mut scratch = Vec::new();
        for p in sample_payloads() {
            let a = Envelope::new(NodeId(1), NodeId(2), Time(5), p.clone()).signed(&signer(1));
            let b = Envelope::new(NodeId(1), NodeId(2), Time(5), p)
                .signed_with(&signer(1), &mut scratch);
            assert_eq!(a, b);
            assert_eq!(a.verify_with(&ks(), &mut scratch), Ok(()));
        }
    }

    #[test]
    fn canonical_bytes_distinguish_variants() {
        let a = Payload::Heartbeat { period: 1 }.canonical_bytes();
        let b = Payload::Control(1).canonical_bytes();
        assert_ne!(a, b);
        let c = Payload::Wake {
            task: TaskId(1),
            period: 1,
        }
        .canonical_bytes();
        let d = Payload::Audit {
            about: TaskId(1),
            period: 1,
            value: 0,
        }
        .canonical_bytes();
        assert_ne!(c, d);
    }
}
