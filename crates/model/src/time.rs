//! Simulated time.
//!
//! Time is measured in integer **microsecond ticks** from simulation start.
//! Integer ticks keep the discrete-event simulator exactly deterministic
//! (no floating-point drift), which the reproduction relies on: the output
//! oracle compares a faulty run against a reference run tick by tick.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time (µs since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Time(pub u64);

/// A span of simulated time (µs).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Duration(pub u64);

impl Time {
    /// The simulation origin.
    pub const ZERO: Time = Time(0);

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Time {
        Time(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Time {
        Time(s * 1_000_000)
    }

    /// Microseconds since the origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds since the origin.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating subtraction producing a duration.
    pub fn saturating_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// The enclosing period index for a system period `p`.
    ///
    /// # Panics
    /// Panics if `p` is zero.
    pub fn period_index(self, p: Duration) -> u64 {
        assert!(p.0 > 0, "period must be positive");
        self.0 / p.0
    }

    /// The start of the next period boundary at or after `self`.
    ///
    /// # Panics
    /// Panics if `p` is zero.
    pub fn next_period_start(self, p: Duration) -> Time {
        assert!(p.0 > 0, "period must be positive");
        Time(self.0.div_ceil(p.0) * p.0)
    }
}

impl Duration {
    /// The zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Duration {
        Duration(s * 1_000_000)
    }

    /// Microseconds in the span.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds in the span.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Multiply by an integer factor, saturating.
    pub fn saturating_mul(self, k: u64) -> Duration {
        Duration(self.0.saturating_mul(k))
    }

    /// Integer division by a factor, rounding up.
    ///
    /// # Panics
    /// Panics if `k` is zero.
    pub fn div_ceil(self, k: u64) -> Duration {
        assert!(k > 0, "divisor must be positive");
        Duration(self.0.div_ceil(k))
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, rhs: Time) -> Duration {
        Duration(
            self.0
                .checked_sub(rhs.0)
                .expect("time subtraction underflow"),
        )
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(
            self.0
                .checked_sub(rhs.0)
                .expect("duration subtraction underflow"),
        )
    }
}

impl std::fmt::Display for Time {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl std::fmt::Display for Duration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Time::from_millis(5);
        let d = Duration::from_millis(3);
        assert_eq!(t + d, Time(8_000));
        assert_eq!((t + d) - t, d);
        assert_eq!(Time::from_secs(1), Time(1_000_000));
    }

    #[test]
    fn period_helpers() {
        let p = Duration::from_millis(10);
        assert_eq!(Time(0).period_index(p), 0);
        assert_eq!(Time(9_999).period_index(p), 0);
        assert_eq!(Time(10_000).period_index(p), 1);
        assert_eq!(Time(0).next_period_start(p), Time(0));
        assert_eq!(Time(1).next_period_start(p), Time(10_000));
        assert_eq!(Time(10_000).next_period_start(p), Time(10_000));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = Time(1) - Time(2);
    }

    #[test]
    fn saturating_since() {
        assert_eq!(Time(1).saturating_since(Time(5)), Duration::ZERO);
        assert_eq!(Time(5).saturating_since(Time(1)), Duration(4));
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Time(1_500)), "1.500ms");
        assert_eq!(format!("{}", Duration(250)), "0.250ms");
    }

    #[test]
    fn div_ceil() {
        assert_eq!(Duration(10).div_ceil(3), Duration(4));
        assert_eq!(Duration(9).div_ceil(3), Duration(3));
    }
}
