//! Canonical byte encoding for signing.
//!
//! Signatures must cover a *canonical* byte representation: if two nodes
//! encoded the same logical message differently, signature verification
//! would diverge. This module provides a tiny, explicit, versioned
//! encoding used for everything that is ever signed. (We deliberately do
//! not sign `serde_json` output — field order and float formatting would
//! make canonicalisation fragile.)
//!
//! An [`Enc`] can write to three kinds of output, so the same encoding
//! routine serves the cold path (owned buffer), the simulator's hot path
//! (a caller-owned scratch buffer, no allocation), and size queries
//! (counting only, no bytes materialised at all):
//!
//! * [`Enc::new`] — owned `Vec<u8>`, retrieved with [`Enc::finish`].
//! * [`Enc::over`] — borrowed scratch buffer, cleared and refilled.
//! * [`Enc::count`] — byte counting via [`Enc::len`].

enum Out<'a> {
    Owned(Vec<u8>),
    Borrowed(&'a mut Vec<u8>),
    Count(usize),
}

/// Incrementally builds (or sizes) a canonical byte string.
pub struct Enc<'a> {
    out: Out<'a>,
}

impl std::fmt::Debug for Enc<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Enc({} bytes)", self.len())
    }
}

impl Enc<'static> {
    /// Start an owned encoding with a domain-separation tag.
    pub fn new(domain: &str) -> Enc<'static> {
        let mut e = Enc {
            out: Out::Owned(Vec::new()),
        };
        e.bytes(domain.as_bytes());
        e
    }

    /// Start a counting encoding: no bytes are written, but [`Enc::len`]
    /// reports exactly what [`Enc::new`] would have produced.
    pub fn count(domain: &str) -> Enc<'static> {
        let mut e = Enc { out: Out::Count(0) };
        e.bytes(domain.as_bytes());
        e
    }
}

impl<'a> Enc<'a> {
    /// Start an encoding into a caller-owned scratch buffer (cleared
    /// first). The buffer keeps its capacity across uses, so a reused
    /// scratch makes encoding allocation-free in steady state.
    pub fn over(buf: &'a mut Vec<u8>, domain: &str) -> Enc<'a> {
        buf.clear();
        Self::append(buf, domain)
    }

    /// Start an encoding *appended* to a caller-owned buffer, without
    /// clearing it first. This is the batched-verification staging path:
    /// many messages' canonical bytes share one scratch buffer (see
    /// `btr_crypto::SigBatch`), each encoding starting where the previous
    /// one ended.
    pub fn append(buf: &'a mut Vec<u8>, domain: &str) -> Enc<'a> {
        let mut e = Enc {
            out: Out::Borrowed(buf),
        };
        e.bytes(domain.as_bytes());
        e
    }

    #[inline]
    fn raw(&mut self, v: &[u8]) {
        match &mut self.out {
            Out::Owned(b) => b.extend_from_slice(v),
            Out::Borrowed(b) => b.extend_from_slice(v),
            Out::Count(n) => *n += v.len(),
        }
    }

    /// Append a `u8`.
    #[inline]
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.raw(&[v]);
        self
    }

    /// Append a `u32` (big-endian).
    #[inline]
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.raw(&v.to_be_bytes());
        self
    }

    /// Append a `u64` (big-endian).
    #[inline]
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.raw(&v.to_be_bytes());
        self
    }

    /// Append a length-prefixed byte string.
    #[inline]
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u64(v.len() as u64);
        self.raw(v);
        self
    }

    /// Bytes written (or counted) so far.
    pub fn len(&self) -> usize {
        match &self.out {
            Out::Owned(b) => b.len(),
            Out::Borrowed(b) => b.len(),
            Out::Count(n) => *n,
        }
    }

    /// True if nothing has been written (never, once a domain is in).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finish and return the canonical bytes.
    ///
    /// # Panics
    /// Panics for counting or borrowed encoders — those callers read the
    /// scratch buffer or [`Enc::len`] instead.
    pub fn finish(self) -> Vec<u8> {
        match self.out {
            Out::Owned(b) => b,
            Out::Borrowed(_) => panic!("finish() on a borrowed Enc; read the scratch buffer"),
            Out::Count(_) => panic!("finish() on a counting Enc; use len()"),
        }
    }

    /// View the bytes so far.
    ///
    /// # Panics
    /// Panics for counting encoders, which materialise no bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.out {
            Out::Owned(b) => b,
            Out::Borrowed(b) => b,
            Out::Count(_) => panic!("as_slice() on a counting Enc"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_prefix_free() {
        let mut a = Enc::new("tag");
        a.u32(1).u64(2).bytes(b"xy");
        let mut b = Enc::new("tag");
        b.u32(1).u64(2).bytes(b"xy");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn length_prefix_prevents_ambiguity() {
        // ("a", "bc") must differ from ("ab", "c").
        let mut a = Enc::new("t");
        a.bytes(b"a").bytes(b"bc");
        let mut b = Enc::new("t");
        b.bytes(b"ab").bytes(b"c");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn domain_separation() {
        let a = Enc::new("domain-a").finish();
        let b = Enc::new("domain-b").finish();
        assert_ne!(a, b);
    }

    #[test]
    fn borrowed_matches_owned() {
        let mut owned = Enc::new("t");
        owned.u8(7).u32(8).u64(9).bytes(b"abc");
        let expected = owned.finish();

        let mut scratch = Vec::new();
        {
            let mut e = Enc::over(&mut scratch, "t");
            e.u8(7).u32(8).u64(9).bytes(b"abc");
            assert_eq!(e.len(), expected.len());
        }
        assert_eq!(scratch, expected);

        // Reuse keeps capacity and clears content.
        let cap = scratch.capacity();
        {
            let mut e = Enc::over(&mut scratch, "t");
            e.u8(1);
        }
        assert!(scratch.capacity() >= cap.min(scratch.len()));
        assert_ne!(scratch, expected);
    }

    #[test]
    fn append_stacks_encodings_without_clearing() {
        let mut one = Enc::new("t");
        one.u32(1);
        let first = one.finish();
        let mut two = Enc::new("t");
        two.u64(2);
        let second = two.finish();

        let mut buf = Vec::new();
        {
            let mut e = Enc::append(&mut buf, "t");
            e.u32(1);
        }
        let split = buf.len();
        {
            let mut e = Enc::append(&mut buf, "t");
            e.u64(2);
        }
        assert_eq!(&buf[..split], &first[..]);
        assert_eq!(&buf[split..], &second[..]);
    }

    #[test]
    fn count_matches_owned() {
        let mut owned = Enc::new("count-me");
        owned.u8(1).u32(2).u64(3).bytes(&[0u8; 17]);
        let mut counter = Enc::count("count-me");
        counter.u8(1).u32(2).u64(3).bytes(&[0u8; 17]);
        assert_eq!(counter.len(), owned.finish().len());
        assert!(!counter.is_empty());
    }
}
