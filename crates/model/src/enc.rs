//! Canonical byte encoding for signing.
//!
//! Signatures must cover a *canonical* byte representation: if two nodes
//! encoded the same logical message differently, signature verification
//! would diverge. This module provides a tiny, explicit, versioned
//! encoding used for everything that is ever signed. (We deliberately do
//! not sign `serde_json` output — field order and float formatting would
//! make canonicalisation fragile.)

/// Incrementally builds a canonical byte string.
#[derive(Debug, Default, Clone)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Start an encoding with a domain-separation tag.
    pub fn new(domain: &str) -> Self {
        let mut e = Enc { buf: Vec::new() };
        e.bytes(domain.as_bytes());
        e
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Append a `u32` (big-endian).
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Append a `u64` (big-endian).
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Append a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
        self
    }

    /// Finish and return the canonical bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// View the bytes so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_prefix_free() {
        let mut a = Enc::new("tag");
        a.u32(1).u64(2).bytes(b"xy");
        let mut b = Enc::new("tag");
        b.u32(1).u64(2).bytes(b"xy");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn length_prefix_prevents_ambiguity() {
        // ("a", "bc") must differ from ("ab", "c").
        let mut a = Enc::new("t");
        a.bytes(b"a").bytes(b"bc");
        let mut b = Enc::new("t");
        b.bytes(b"ab").bytes(b"c");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn domain_separation() {
        let a = Enc::new("domain-a").finish();
        let b = Enc::new("domain-b").finish();
        assert_ne!(a, b);
    }
}
