//! Mixed-criticality levels.
//!
//! The paper motivates fine-grained degradation with mixed-criticality
//! workloads: "the CPS on an airplane might run flight control and the
//! in-flight entertainment system. Thus, when a fault occurs, the system
//! can disable some of the less critical tasks and allocate their
//! resources to the more critical ones" (Section 1). We use four levels,
//! loosely modelled on automotive ASIL bands.

use serde::{Deserialize, Serialize};

/// Criticality of a task's output. Higher levels are shed last.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub enum Criticality {
    /// Best-effort (e.g. in-flight entertainment).
    #[default]
    Low,
    /// Mission-relevant but not safety-relevant (e.g. telemetry).
    Medium,
    /// Important to the mission (e.g. navigation).
    High,
    /// Safety-critical; loss can cause physical damage (e.g. flight control).
    Safety,
}

impl Criticality {
    /// All levels, from lowest to highest.
    pub const ALL: [Criticality; 4] = [
        Criticality::Low,
        Criticality::Medium,
        Criticality::High,
        Criticality::Safety,
    ];

    /// A small integer rank (0 = lowest).
    pub const fn rank(self) -> u8 {
        match self {
            Criticality::Low => 0,
            Criticality::Medium => 1,
            Criticality::High => 2,
            Criticality::Safety => 3,
        }
    }

    /// Inverse of [`Criticality::rank`].
    pub const fn from_rank(rank: u8) -> Option<Criticality> {
        match rank {
            0 => Some(Criticality::Low),
            1 => Some(Criticality::Medium),
            2 => Some(Criticality::High),
            3 => Some(Criticality::Safety),
            _ => None,
        }
    }

    /// Short human-readable label.
    pub const fn label(self) -> &'static str {
        match self {
            Criticality::Low => "LOW",
            Criticality::Medium => "MED",
            Criticality::High => "HIGH",
            Criticality::Safety => "SAFETY",
        }
    }
}

impl std::fmt::Display for Criticality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_rank() {
        assert!(Criticality::Low < Criticality::Medium);
        assert!(Criticality::Medium < Criticality::High);
        assert!(Criticality::High < Criticality::Safety);
        for c in Criticality::ALL {
            assert_eq!(Criticality::from_rank(c.rank()), Some(c));
        }
        assert_eq!(Criticality::from_rank(9), None);
    }

    #[test]
    fn labels() {
        assert_eq!(Criticality::Safety.to_string(), "SAFETY");
        assert_eq!(Criticality::Low.to_string(), "LOW");
    }
}
