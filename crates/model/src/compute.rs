//! The deterministic task computation.
//!
//! Every workload task computes a *deterministic* function of its inputs.
//! This is what makes the paper's evidence mechanism work: a "verification
//! task" can re-execute any task from its (signed) inputs and compare the
//! result against a replica's (signed) output, yielding a transferable
//! proof of misbehaviour — the PeerReview recipe the authors build on.
//!
//! In the simulation the function is a digest: real control-law outputs
//! are stand-ins for 64-bit values derived via SHA-256 from the task id,
//! the period index, and the (sorted) input values. Determinism, input
//! sensitivity, and cheap re-execution are the properties the protocol
//! needs, and the digest provides all three.

use crate::ids::{PeriodIdx, TaskId};
use btr_crypto::digest64;

/// A task output value.
pub type Value = u64;

/// Compute a task's output for one period from its input values.
///
/// `inputs` is (producer task, value) pairs; the function sorts them by
/// producer id internally so callers need not pre-sort.
pub fn task_value(task: TaskId, period: PeriodIdx, inputs: &[(TaskId, Value)]) -> Value {
    let mut sorted: Vec<(TaskId, Value)> = inputs.to_vec();
    sorted.sort_unstable_by_key(|(t, _)| *t);
    let mut bytes = Vec::with_capacity(16 + sorted.len() * 12);
    bytes.extend_from_slice(&task.0.to_be_bytes());
    bytes.extend_from_slice(&period.to_be_bytes());
    for (t, v) in &sorted {
        bytes.extend_from_slice(&t.0.to_be_bytes());
        bytes.extend_from_slice(&v.to_be_bytes());
    }
    digest64(&[b"btr-task", &bytes])
}

/// Commitment digest over the exact inputs a replica consumed.
///
/// Covered by the producer's signature on its [`crate::SignedOutput`], this
/// is what makes bad-computation proofs *sound*: an honest replica commits
/// to the inputs it actually used, so re-execution over any input set
/// matching the commitment always reproduces its output — no valid proof
/// against an honest node can exist, even when an upstream equivocates
/// (the PeerReview-style argument; see DESIGN.md).
pub fn inputs_digest(inputs: &[(TaskId, Value)]) -> u64 {
    let mut sorted: Vec<(TaskId, Value)> = inputs.to_vec();
    sorted.sort_unstable_by_key(|(t, _)| *t);
    let mut bytes = Vec::with_capacity(sorted.len() * 12);
    for (t, v) in &sorted {
        bytes.extend_from_slice(&t.0.to_be_bytes());
        bytes.extend_from_slice(&v.to_be_bytes());
    }
    digest64(&[b"btr-inputs", &bytes])
}

/// Compute a sensor (source) task's reading for one period.
///
/// Sources have no dataflow inputs; their "reading" is derived from the
/// workload seed so reference and live runs agree.
pub fn sensor_value(task: TaskId, period: PeriodIdx, workload_seed: u64) -> Value {
    digest64(&[
        b"btr-sensor",
        &workload_seed.to_be_bytes(),
        &task.0.to_be_bytes(),
        &period.to_be_bytes(),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let inputs = [(TaskId(1), 10), (TaskId(2), 20)];
        assert_eq!(
            task_value(TaskId(5), 3, &inputs),
            task_value(TaskId(5), 3, &inputs)
        );
    }

    #[test]
    fn input_order_does_not_matter() {
        let a = task_value(TaskId(5), 3, &[(TaskId(1), 10), (TaskId(2), 20)]);
        let b = task_value(TaskId(5), 3, &[(TaskId(2), 20), (TaskId(1), 10)]);
        assert_eq!(a, b);
    }

    #[test]
    fn sensitive_to_every_argument() {
        let base = task_value(TaskId(5), 3, &[(TaskId(1), 10)]);
        assert_ne!(base, task_value(TaskId(6), 3, &[(TaskId(1), 10)]));
        assert_ne!(base, task_value(TaskId(5), 4, &[(TaskId(1), 10)]));
        assert_ne!(base, task_value(TaskId(5), 3, &[(TaskId(1), 11)]));
        assert_ne!(base, task_value(TaskId(5), 3, &[(TaskId(2), 10)]));
        assert_ne!(base, task_value(TaskId(5), 3, &[]));
    }

    #[test]
    fn inputs_digest_order_independent_and_sensitive() {
        let a = inputs_digest(&[(TaskId(1), 10), (TaskId(2), 20)]);
        let b = inputs_digest(&[(TaskId(2), 20), (TaskId(1), 10)]);
        assert_eq!(a, b);
        assert_ne!(a, inputs_digest(&[(TaskId(1), 10), (TaskId(2), 21)]));
        assert_ne!(a, inputs_digest(&[(TaskId(1), 10)]));
        assert_ne!(inputs_digest(&[]), a);
    }

    #[test]
    fn sensor_values_vary_with_seed_task_period() {
        let v = sensor_value(TaskId(0), 0, 42);
        assert_ne!(v, sensor_value(TaskId(0), 0, 43));
        assert_ne!(v, sensor_value(TaskId(1), 0, 42));
        assert_ne!(v, sensor_value(TaskId(0), 1, 42));
        assert_eq!(v, sensor_value(TaskId(0), 0, 42));
    }
}
