//! The CPS platform: nodes and links.
//!
//! Mirrors the system model of Section 2.1: "The system consists of a set
//! of nodes and a set of links. Nodes have a finite processing speed and
//! access to a local clock ... Each link is connected to some subset of
//! the nodes and has a finite bandwidth." Links with more than two
//! endpoints model shared buses (e.g. CAN); the per-node bandwidth
//! allocation is the statically-allocated MAC share that defeats the
//! babbling-idiot problem.

use crate::ids::{LinkId, NodeId};
use crate::time::Duration;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Static description of one node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// The node's id (dense, 0-based).
    pub id: NodeId,
    /// Processing speed in percent of nominal (100 = nominal). The paper
    /// assumes homogeneous speeds "for simplicity"; we keep the field so
    /// experiments can sweep the common clock-frequency metric.
    pub speed_pct: u32,
    /// True if physical sensors are attached (the node can host sources).
    pub can_sense: bool,
    /// True if physical actuators are attached (the node can host sinks).
    pub can_actuate: bool,
}

/// Static description of one link.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// The link's id (dense, 0-based).
    pub id: LinkId,
    /// Nodes attached to this link (2 = point-to-point, >2 = bus).
    pub endpoints: Vec<NodeId>,
    /// Usable bandwidth in bytes per millisecond.
    pub bytes_per_ms: u32,
    /// Propagation latency.
    pub latency: Duration,
}

impl LinkSpec {
    /// True if `n` is attached to this link.
    pub fn attaches(&self, n: NodeId) -> bool {
        self.endpoints.contains(&n)
    }

    /// Time to serialise `bytes` onto this link (excluding propagation).
    pub fn tx_time(&self, bytes: u32) -> Duration {
        // bytes / (bytes_per_ms / 1000 per µs), rounded up, at least 1 µs.
        let us = (bytes as u64 * 1_000).div_ceil(self.bytes_per_ms as u64);
        Duration(us.max(1))
    }
}

/// Errors from topology construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A link references a node id that does not exist.
    UnknownNode(NodeId),
    /// A link has fewer than two endpoints.
    DegenerateLink(LinkId),
    /// A link has zero bandwidth.
    ZeroBandwidth(LinkId),
    /// The node graph is not connected.
    Disconnected {
        /// A node unreachable from node 0.
        unreachable: NodeId,
    },
    /// No nodes were declared.
    Empty,
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::UnknownNode(n) => write!(f, "link references unknown node {n}"),
            TopologyError::DegenerateLink(l) => write!(f, "link {l} has fewer than 2 endpoints"),
            TopologyError::ZeroBandwidth(l) => write!(f, "link {l} has zero bandwidth"),
            TopologyError::Disconnected { unreachable } => {
                write!(f, "topology is disconnected: {unreachable} unreachable")
            }
            TopologyError::Empty => write!(f, "topology has no nodes"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// A validated platform description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<NodeSpec>,
    links: Vec<LinkSpec>,
    /// For each node, the links it attaches to.
    node_links: Vec<Vec<LinkId>>,
}

impl Topology {
    /// All nodes, ordered by id.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// All links, ordered by id.
    pub fn links(&self) -> &[LinkSpec] {
        &self.links
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Look up a node spec.
    ///
    /// # Panics
    /// Panics if the id is out of range (ids are validated at build time).
    pub fn node(&self, id: NodeId) -> &NodeSpec {
        &self.nodes[id.index()]
    }

    /// Look up a link spec.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn link(&self, id: LinkId) -> &LinkSpec {
        &self.links[id.index()]
    }

    /// The links node `n` attaches to.
    pub fn links_of(&self, n: NodeId) -> &[LinkId] {
        &self.node_links[n.index()]
    }

    /// Direct neighbours of `n` (nodes sharing at least one link).
    pub fn neighbors(&self, n: NodeId) -> BTreeSet<NodeId> {
        let mut out = BTreeSet::new();
        for l in self.links_of(n) {
            for &m in &self.link(*l).endpoints {
                if m != n {
                    out.insert(m);
                }
            }
        }
        out
    }

    /// A link directly connecting `a` and `b`, if any (lowest id wins).
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.links
            .iter()
            .find(|l| l.attaches(a) && l.attaches(b))
            .map(|l| l.id)
    }

    /// Hop-count distances from `src` to every node (BFS).
    pub fn distances_from(&self, src: NodeId) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.nodes.len()];
        dist[src.index()] = 0;
        let mut q = VecDeque::from([src]);
        while let Some(n) = q.pop_front() {
            for m in self.neighbors(n) {
                if dist[m.index()] == u32::MAX {
                    dist[m.index()] = dist[n.index()] + 1;
                    q.push_back(m);
                }
            }
        }
        dist
    }

    /// Network diameter in hops.
    pub fn diameter(&self) -> u32 {
        let mut d = 0;
        for n in &self.nodes {
            for x in self.distances_from(n.id) {
                if x != u32::MAX {
                    d = d.max(x);
                }
            }
        }
        d
    }

    /// Distances from `src` avoiding a set of (faulty) nodes.
    ///
    /// Faulty nodes neither originate nor relay traffic; links they sit on
    /// still work between the remaining endpoints (the MAC shares are
    /// static, so a faulty node cannot take over others' slots).
    pub fn distances_avoiding(&self, src: NodeId, avoid: &BTreeSet<NodeId>) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.nodes.len()];
        if avoid.contains(&src) {
            return dist;
        }
        dist[src.index()] = 0;
        let mut q = VecDeque::from([src]);
        while let Some(n) = q.pop_front() {
            for m in self.neighbors(n) {
                if avoid.contains(&m) {
                    continue;
                }
                if dist[m.index()] == u32::MAX {
                    dist[m.index()] = dist[n.index()] + 1;
                    q.push_back(m);
                }
            }
        }
        dist
    }
}

/// Builder for [`Topology`].
#[derive(Debug, Default, Clone)]
pub struct TopologyBuilder {
    nodes: Vec<NodeSpec>,
    links: Vec<LinkSpec>,
}

impl TopologyBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node with the given capabilities; returns its id.
    pub fn node(&mut self, speed_pct: u32, can_sense: bool, can_actuate: bool) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeSpec {
            id,
            speed_pct,
            can_sense,
            can_actuate,
        });
        id
    }

    /// Add a nominal-speed node with sensors and actuators.
    pub fn full_node(&mut self) -> NodeId {
        self.node(100, true, true)
    }

    /// Add a link; returns its id.
    pub fn link(&mut self, endpoints: &[NodeId], bytes_per_ms: u32, latency: Duration) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        self.links.push(LinkSpec {
            id,
            endpoints: endpoints.to_vec(),
            bytes_per_ms,
            latency,
        });
        id
    }

    /// Validate and build.
    pub fn build(self) -> Result<Topology, TopologyError> {
        if self.nodes.is_empty() {
            return Err(TopologyError::Empty);
        }
        for l in &self.links {
            if l.endpoints.len() < 2 {
                return Err(TopologyError::DegenerateLink(l.id));
            }
            if l.bytes_per_ms == 0 {
                return Err(TopologyError::ZeroBandwidth(l.id));
            }
            for &n in &l.endpoints {
                if n.index() >= self.nodes.len() {
                    return Err(TopologyError::UnknownNode(n));
                }
            }
        }
        let mut node_links = vec![Vec::new(); self.nodes.len()];
        for l in &self.links {
            for &n in &l.endpoints {
                node_links[n.index()].push(l.id);
            }
        }
        let topo = Topology {
            nodes: self.nodes,
            links: self.links,
            node_links,
        };
        // Connectivity check (single nodes are trivially connected).
        if topo.nodes.len() > 1 {
            let dist = topo.distances_from(NodeId(0));
            if let Some(i) = dist.iter().position(|&d| d == u32::MAX) {
                return Err(TopologyError::Disconnected {
                    unreachable: NodeId(i as u32),
                });
            }
        }
        Ok(topo)
    }
}

/// Convenience constructors for common CPS platforms.
impl Topology {
    /// A single shared bus (CAN-style) connecting `n` nodes.
    ///
    /// A single-node "bus" has no link (the node talks only to itself).
    pub fn bus(n: usize, bytes_per_ms: u32, latency: Duration) -> Topology {
        let mut b = TopologyBuilder::new();
        let nodes: Vec<NodeId> = (0..n).map(|_| b.full_node()).collect();
        if n > 1 {
            b.link(&nodes, bytes_per_ms, latency);
        }
        b.build().expect("bus topology is always valid")
    }

    /// A ring of `n` nodes with point-to-point links.
    pub fn ring(n: usize, bytes_per_ms: u32, latency: Duration) -> Topology {
        let mut b = TopologyBuilder::new();
        let nodes: Vec<NodeId> = (0..n).map(|_| b.full_node()).collect();
        for i in 0..n {
            b.link(&[nodes[i], nodes[(i + 1) % n]], bytes_per_ms, latency);
        }
        b.build().expect("ring topology is always valid")
    }

    /// Dual redundant buses (avionics-style): every node on two buses.
    pub fn dual_bus(n: usize, bytes_per_ms: u32, latency: Duration) -> Topology {
        let mut b = TopologyBuilder::new();
        let nodes: Vec<NodeId> = (0..n).map(|_| b.full_node()).collect();
        b.link(&nodes, bytes_per_ms, latency);
        b.link(&nodes, bytes_per_ms, latency);
        b.build().expect("dual bus topology is always valid")
    }

    /// A 2D mesh (grid) of `rows * cols` nodes.
    pub fn mesh(rows: usize, cols: usize, bytes_per_ms: u32, latency: Duration) -> Topology {
        let mut b = TopologyBuilder::new();
        let mut ids = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            ids.push(b.full_node());
        }
        let at = |r: usize, c: usize| ids[r * cols + c];
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    b.link(&[at(r, c), at(r, c + 1)], bytes_per_ms, latency);
                }
                if r + 1 < rows {
                    b.link(&[at(r, c), at(r + 1, c)], bytes_per_ms, latency);
                }
            }
        }
        b.build().expect("mesh topology is always valid")
    }
}

/// Per-node, per-link static bandwidth shares (bytes per period).
///
/// This is the "bandwidth of each link is statically allocated between the
/// nodes" assumption from Section 2.1; guardians in `btr-net` enforce it.
pub type BandwidthAlloc = BTreeMap<(NodeId, LinkId), u64>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_is_fully_connected() {
        let t = Topology::bus(5, 100, Duration(10));
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.links().len(), 1);
        assert_eq!(t.neighbors(NodeId(0)).len(), 4);
        assert_eq!(t.diameter(), 1);
    }

    #[test]
    fn ring_distances() {
        let t = Topology::ring(6, 100, Duration(10));
        let d = t.distances_from(NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1]);
        assert_eq!(t.diameter(), 3);
    }

    #[test]
    fn mesh_shape() {
        let t = Topology::mesh(2, 3, 100, Duration(5));
        assert_eq!(t.node_count(), 6);
        // 2 rows * 2 horizontal + 3 vertical = 7 links.
        assert_eq!(t.links().len(), 7);
        assert_eq!(t.diameter(), 3); // Corner to corner.
    }

    #[test]
    fn disconnected_rejected() {
        let mut b = TopologyBuilder::new();
        let a = b.full_node();
        let c = b.full_node();
        let _d = b.full_node(); // Never linked.
        b.link(&[a, c], 10, Duration(1));
        assert_eq!(
            b.build(),
            Err(TopologyError::Disconnected {
                unreachable: NodeId(2)
            })
        );
    }

    #[test]
    fn bad_links_rejected() {
        let mut b = TopologyBuilder::new();
        let a = b.full_node();
        b.link(&[a], 10, Duration(1));
        assert!(matches!(b.build(), Err(TopologyError::DegenerateLink(_))));

        let mut b = TopologyBuilder::new();
        let a = b.full_node();
        let c = b.full_node();
        b.link(&[a, c], 0, Duration(1));
        assert!(matches!(b.build(), Err(TopologyError::ZeroBandwidth(_))));

        let mut b = TopologyBuilder::new();
        let a = b.full_node();
        b.link(&[a, NodeId(7)], 10, Duration(1));
        assert!(matches!(b.build(), Err(TopologyError::UnknownNode(_))));

        assert_eq!(TopologyBuilder::new().build(), Err(TopologyError::Empty));
    }

    #[test]
    fn tx_time_rounds_up() {
        let l = LinkSpec {
            id: LinkId(0),
            endpoints: vec![NodeId(0), NodeId(1)],
            bytes_per_ms: 1000, // 1 byte per µs.
            latency: Duration(0),
        };
        assert_eq!(l.tx_time(1), Duration(1));
        assert_eq!(l.tx_time(1500), Duration(1500));
        let slow = LinkSpec {
            bytes_per_ms: 3,
            ..l
        };
        assert_eq!(slow.tx_time(1), Duration(334)); // ceil(1000/3).
    }

    #[test]
    fn distances_avoiding_faulty() {
        // Ring of 4: avoiding node 1 forces the long way round.
        let t = Topology::ring(4, 100, Duration(1));
        let avoid = BTreeSet::from([NodeId(1)]);
        let d = t.distances_avoiding(NodeId(0), &avoid);
        assert_eq!(d[2], 2); // 0 -> 3 -> 2.
        assert_eq!(d[1], u32::MAX);
        // Avoiding the source yields nothing reachable.
        let d = t.distances_avoiding(NodeId(0), &BTreeSet::from([NodeId(0)]));
        assert!(d.iter().all(|&x| x == u32::MAX));
    }

    #[test]
    fn link_between() {
        let t = Topology::ring(4, 100, Duration(1));
        assert!(t.link_between(NodeId(0), NodeId(1)).is_some());
        assert!(t.link_between(NodeId(0), NodeId(2)).is_none());
    }

    #[test]
    fn value_semantics_round_trip() {
        // Serialization proper is stubbed offline (see vendor/README.md);
        // what persistence relies on is that equal construction inputs
        // give structurally equal topologies and clones are faithful.
        let t = Topology::mesh(2, 2, 50, Duration(3));
        assert_eq!(t, Topology::mesh(2, 2, 50, Duration(3)));
        assert_eq!(t, t.clone());
        assert_ne!(t, Topology::mesh(2, 2, 51, Duration(3)));
    }
}
