//! Evidence records: the currency of BTR fault handling.
//!
//! Section 4.2 of the paper: "it is necessary to generate evidence of
//! detected faults that other nodes can verify independently". Two classes
//! exist, and the distinction drives the whole protocol:
//!
//! * **Proofs** ([`EvidenceClass::Proof`]) are self-contained and
//!   transferable: any node can check them with only the keystore and the
//!   installed workload spec. Equivocation (two conflicting signed
//!   outputs) and bad computation (signed inputs + a signed output that
//!   re-execution refutes) are proofs.
//! * **Declarations** ([`EvidenceClass::Declaration`]) are unprovable
//!   claims — omission and timing faults leave no transferable trace
//!   ("there is no direct way to prove that a faulty node failed to
//!   send"). They are signed by their declarer and handled statistically
//!   (path avoidance + accusation counting, Section 4.2's suggestion).

use crate::compute::{sensor_value, task_value, Value};
use crate::enc::Enc;
use crate::ids::{NodeId, PeriodIdx, ReplicaIdx, TaskId};
use crate::time::Time;
use btr_crypto::{digest64, KeyStore, Signature, Signer};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// What evidence verifiers need to know about the workload.
///
/// Implemented by `btr_workload::Workload`; defined here so evidence
/// verification stays in the model crate (and the dependency graph stays
/// acyclic). The paper installs the workload on every node offline, so
/// assuming verifiers hold it is faithful.
pub trait WorkloadView {
    /// Declared dataflow inputs of `task`, or `None` for unknown tasks.
    fn inputs_of_task(&self, task: TaskId) -> Option<Vec<TaskId>>;
    /// True if `task` is a sensor source.
    fn task_is_source(&self, task: TaskId) -> bool;
    /// The workload seed (determines sensor readings).
    fn workload_seed(&self) -> u64;
}

/// A task output signed by its producer.
///
/// This is the atom of both the data plane and the evidence plane.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SignedOutput {
    /// The logical task that produced the value.
    pub task: TaskId,
    /// Which replica of the task.
    pub replica: ReplicaIdx,
    /// Release period the value belongs to.
    pub period: PeriodIdx,
    /// The computed value.
    pub value: Value,
    /// Commitment to the exact inputs consumed (see
    /// [`btr_model::compute::inputs_digest`]); `0` convention is *not*
    /// special — sources commit to the empty input set.
    ///
    /// [`btr_model::compute::inputs_digest`]: crate::compute::inputs_digest
    pub inputs_digest: u64,
    /// The node that ran the replica.
    pub producer: NodeId,
    /// Producer's signature over the canonical encoding.
    pub sig: Signature,
}

impl SignedOutput {
    /// Canonical bytes covered by the signature.
    pub fn signing_bytes(
        task: TaskId,
        replica: ReplicaIdx,
        period: PeriodIdx,
        value: Value,
        inputs_digest: u64,
        producer: NodeId,
    ) -> Vec<u8> {
        let mut buf = Vec::new();
        Self::write_signing_bytes(
            task,
            replica,
            period,
            value,
            inputs_digest,
            producer,
            &mut buf,
        );
        buf
    }

    /// Write the signing bytes into a caller-owned scratch buffer
    /// (cleared first); allocation-free once the scratch has warmed up.
    #[allow(clippy::too_many_arguments)]
    pub fn write_signing_bytes(
        task: TaskId,
        replica: ReplicaIdx,
        period: PeriodIdx,
        value: Value,
        inputs_digest: u64,
        producer: NodeId,
        buf: &mut Vec<u8>,
    ) {
        let mut e = Enc::over(buf, "btr-output");
        e.u32(task.0)
            .u8(replica)
            .u64(period)
            .u64(value)
            .u64(inputs_digest)
            .u32(producer.0);
    }

    /// Append this output's signing bytes to a shared buffer without
    /// clearing it — the staging primitive for batched verification
    /// (`btr_crypto::SigBatch` carries many outputs' bytes in one
    /// scratch). Byte-identical to [`SignedOutput::signing_bytes`].
    pub fn append_signing_bytes(&self, buf: &mut Vec<u8>) {
        let mut e = Enc::append(buf, "btr-output");
        e.u32(self.task.0)
            .u8(self.replica)
            .u64(self.period)
            .u64(self.value)
            .u64(self.inputs_digest)
            .u32(self.producer.0);
    }

    /// Stage this output into a verification batch, carrying the same
    /// key-id/producer consistency gate as [`SignedOutput::verify_with`]
    /// (a tag made under the *sender's* key over bytes naming a
    /// different producer is a valid MAC but a forged attribution — it
    /// is staged pre-failed so no MAC is spent on it). This is the one
    /// place the gate lives for the batched path; after
    /// `KeyStore::verify_batch`, `ok[i]` equals what `verify_with`
    /// would have returned for the i-th staged output.
    pub fn stage_for_verify(&self, batch: &mut btr_crypto::SigBatch) {
        if self.sig.key != self.producer.0 {
            batch.push_prefailed();
        } else {
            batch.push_with(&self.sig, |buf| self.append_signing_bytes(buf));
        }
    }

    /// Produce a signed output (called by the producing node).
    #[allow(clippy::too_many_arguments)]
    pub fn sign(
        signer: &Signer,
        task: TaskId,
        replica: ReplicaIdx,
        period: PeriodIdx,
        value: Value,
        inputs_digest: u64,
        producer: NodeId,
    ) -> SignedOutput {
        let mut scratch = Vec::new();
        Self::sign_with(
            signer,
            task,
            replica,
            period,
            value,
            inputs_digest,
            producer,
            &mut scratch,
        )
    }

    /// Like [`SignedOutput::sign`], writing the signing bytes into a
    /// reusable scratch buffer instead of allocating (the signed-traffic
    /// hot path signs one of these per task release).
    #[allow(clippy::too_many_arguments)]
    pub fn sign_with(
        signer: &Signer,
        task: TaskId,
        replica: ReplicaIdx,
        period: PeriodIdx,
        value: Value,
        inputs_digest: u64,
        producer: NodeId,
        scratch: &mut Vec<u8>,
    ) -> SignedOutput {
        Self::write_signing_bytes(
            task,
            replica,
            period,
            value,
            inputs_digest,
            producer,
            scratch,
        );
        SignedOutput {
            task,
            replica,
            period,
            value,
            inputs_digest,
            producer,
            sig: signer.sign(scratch),
        }
    }

    /// Verify the producer's signature.
    pub fn verify(&self, ks: &KeyStore) -> Result<(), EvidenceFlaw> {
        let mut scratch = Vec::new();
        self.verify_with(ks, &mut scratch)
    }

    /// Like [`SignedOutput::verify`], writing the signing bytes into a
    /// reusable scratch buffer instead of allocating.
    pub fn verify_with(&self, ks: &KeyStore, scratch: &mut Vec<u8>) -> Result<(), EvidenceFlaw> {
        if self.sig.key != self.producer.0 {
            return Err(EvidenceFlaw::BadSignature);
        }
        Self::write_signing_bytes(
            self.task,
            self.replica,
            self.period,
            self.value,
            self.inputs_digest,
            self.producer,
            scratch,
        );
        ks.verify(&self.sig, scratch)
            .map_err(|_| EvidenceFlaw::BadSignature)
    }

    fn encode(&self, e: &mut Enc<'_>) {
        e.u32(self.task.0)
            .u8(self.replica)
            .u64(self.period)
            .u64(self.value)
            .u64(self.inputs_digest)
            .u32(self.producer.0)
            .u32(self.sig.key)
            .bytes(&self.sig.tag.0);
    }
}

/// Proof vs declaration (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvidenceClass {
    /// Independently verifiable; convicts the accused node.
    Proof,
    /// Signed claim; attributable to the declarer, not probative.
    Declaration,
}

/// Unique id of an evidence record (digest of canonical bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EvidenceId(pub u64);

impl std::fmt::Display for EvidenceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ev{:016x}", self.0)
    }
}

/// Why an evidence record failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvidenceFlaw {
    /// A signature inside the record does not verify.
    BadSignature,
    /// The record's pieces do not fit together (wrong tasks/periods/ids).
    Inconsistent(&'static str),
    /// The claimed input set does not match the task's declared inputs.
    InputSetMismatch,
    /// Re-execution reproduces the accused output: the accusation is false.
    RecomputationMatches,
    /// The record references a task unknown to the installed workload.
    UnknownTask(TaskId),
    /// The supplied inputs do not match the accused's signed commitment.
    CommitmentMismatch,
}

impl std::fmt::Display for EvidenceFlaw {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvidenceFlaw::BadSignature => write!(f, "bad signature"),
            EvidenceFlaw::Inconsistent(s) => write!(f, "inconsistent record: {s}"),
            EvidenceFlaw::InputSetMismatch => write!(f, "input set mismatch"),
            EvidenceFlaw::RecomputationMatches => write!(f, "re-execution matches claimed output"),
            EvidenceFlaw::UnknownTask(t) => write!(f, "unknown task {t}"),
            EvidenceFlaw::CommitmentMismatch => {
                write!(f, "inputs do not match the signed commitment")
            }
        }
    }
}

impl std::error::Error for EvidenceFlaw {}

/// A piece of evidence about a fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EvidenceRecord {
    /// Two conflicting signed outputs for the same (task, replica, period):
    /// irrefutable proof the producer equivocated.
    Equivocation {
        /// The equivocating node.
        accused: NodeId,
        /// First signed output.
        a: SignedOutput,
        /// Second, conflicting signed output.
        b: SignedOutput,
    },
    /// A signed output that re-execution over the accused's own signed
    /// inputs refutes: proof of a commission fault.
    BadComputation {
        /// The node that produced the wrong output.
        accused: NodeId,
        /// The wrong (signed) output.
        output: SignedOutput,
        /// The signed inputs the accused consumed (one per declared input task).
        inputs: Vec<SignedOutput>,
    },
    /// A signed Output *message* whose witnesses do not match the
    /// producer's own signed commitment (or its declared input set):
    /// proof of a protocol violation. This closes the loophole where a
    /// commission fault hides behind a garbage commitment.
    BadWitness {
        /// The producer that sent the malformed message.
        accused: NodeId,
        /// The output inside the message.
        output: SignedOutput,
        /// The witnesses inside the message.
        witnesses: Vec<SignedOutput>,
        /// The envelope's claimed send time (covered by the signature).
        sent_at: Time,
        /// The producer's envelope signature over (src, sent_at, payload).
        env_sig: Signature,
    },
    /// Declarer claims the path `from -> to` failed to deliver an expected
    /// message (omission). Unprovable; counted for attribution.
    PathDeclaration {
        /// Node making the claim (must be `from` or `to`).
        declarer: NodeId,
        /// Sending end of the path.
        from: NodeId,
        /// Receiving end of the path.
        to: NodeId,
        /// The expected task output that did not arrive.
        task: TaskId,
        /// The period in which the omission was observed.
        period: PeriodIdx,
        /// Declarer's signature.
        sig: Signature,
    },
    /// Declarer claims `output` arrived outside its expected window.
    TimingDeclaration {
        /// Node making the claim.
        declarer: NodeId,
        /// The (validly signed) output that was mistimed.
        output: SignedOutput,
        /// When the output should have arrived by.
        expected_by: Time,
        /// When the declarer observed it.
        observed_at: Time,
        /// Declarer's signature.
        sig: Signature,
    },
    /// Declarer claims `about` stopped sending heartbeats.
    CrashSuspicion {
        /// Node making the claim.
        declarer: NodeId,
        /// The suspected node.
        about: NodeId,
        /// Last period a heartbeat was seen.
        period: PeriodIdx,
        /// Declarer's signature.
        sig: Signature,
    },
}

impl EvidenceRecord {
    /// Proof or declaration?
    pub fn class(&self) -> EvidenceClass {
        match self {
            EvidenceRecord::Equivocation { .. }
            | EvidenceRecord::BadComputation { .. }
            | EvidenceRecord::BadWitness { .. } => EvidenceClass::Proof,
            _ => EvidenceClass::Declaration,
        }
    }

    /// The node a *proof* convicts (None for declarations).
    pub fn convicts(&self) -> Option<NodeId> {
        match self {
            EvidenceRecord::Equivocation { accused, .. }
            | EvidenceRecord::BadComputation { accused, .. }
            | EvidenceRecord::BadWitness { accused, .. } => Some(*accused),
            _ => None,
        }
    }

    /// The release period the record refers to (used to derive a
    /// deterministic, cluster-wide activation boundary for the resulting
    /// mode switch).
    pub fn period(&self) -> PeriodIdx {
        match self {
            EvidenceRecord::Equivocation { a, .. } => a.period,
            EvidenceRecord::BadComputation { output, .. }
            | EvidenceRecord::BadWitness { output, .. }
            | EvidenceRecord::TimingDeclaration { output, .. } => output.period,
            EvidenceRecord::PathDeclaration { period, .. }
            | EvidenceRecord::CrashSuspicion { period, .. } => *period,
        }
    }

    /// The node the record implicates: the accused for proofs, the
    /// blamed end for declarations (the sender of a missing path
    /// output, the producer of a mistimed one, the silent peer of a
    /// crash suspicion). Declarations merely *suggest* this node — the
    /// detector's thresholds decide conviction — but it is the right
    /// subject for observability ("first evidence concerning n6").
    pub fn accuses(&self) -> NodeId {
        match self {
            EvidenceRecord::Equivocation { accused, .. }
            | EvidenceRecord::BadComputation { accused, .. }
            | EvidenceRecord::BadWitness { accused, .. } => *accused,
            EvidenceRecord::PathDeclaration { from, .. } => *from,
            EvidenceRecord::TimingDeclaration { output, .. } => output.producer,
            EvidenceRecord::CrashSuspicion { about, .. } => *about,
        }
    }

    /// The declarer of a declaration (None for proofs).
    pub fn declarer(&self) -> Option<NodeId> {
        match self {
            EvidenceRecord::PathDeclaration { declarer, .. }
            | EvidenceRecord::TimingDeclaration { declarer, .. }
            | EvidenceRecord::CrashSuspicion { declarer, .. } => Some(*declarer),
            _ => None,
        }
    }

    /// Canonical bytes (identifies and sizes the record).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut e = Enc::new("btr-evidence");
        match self {
            EvidenceRecord::Equivocation { accused, a, b } => {
                e.u8(0).u32(accused.0);
                a.encode(&mut e);
                b.encode(&mut e);
            }
            EvidenceRecord::BadComputation {
                accused,
                output,
                inputs,
            } => {
                e.u8(1).u32(accused.0);
                output.encode(&mut e);
                e.u32(inputs.len() as u32);
                for i in inputs {
                    i.encode(&mut e);
                }
            }
            EvidenceRecord::PathDeclaration {
                declarer,
                from,
                to,
                task,
                period,
                sig,
            } => {
                e.u8(2)
                    .u32(declarer.0)
                    .u32(from.0)
                    .u32(to.0)
                    .u32(task.0)
                    .u64(*period)
                    .u32(sig.key)
                    .bytes(&sig.tag.0);
            }
            EvidenceRecord::TimingDeclaration {
                declarer,
                output,
                expected_by,
                observed_at,
                sig,
            } => {
                e.u8(3).u32(declarer.0);
                output.encode(&mut e);
                e.u64(expected_by.0)
                    .u64(observed_at.0)
                    .u32(sig.key)
                    .bytes(&sig.tag.0);
            }
            EvidenceRecord::CrashSuspicion {
                declarer,
                about,
                period,
                sig,
            } => {
                e.u8(4)
                    .u32(declarer.0)
                    .u32(about.0)
                    .u64(*period)
                    .u32(sig.key)
                    .bytes(&sig.tag.0);
            }
            EvidenceRecord::BadWitness {
                accused,
                output,
                witnesses,
                sent_at,
                env_sig,
            } => {
                e.u8(5).u32(accused.0);
                output.encode(&mut e);
                e.u32(witnesses.len() as u32);
                for w in witnesses {
                    w.encode(&mut e);
                }
                e.u64(sent_at.0).u32(env_sig.key).bytes(&env_sig.tag.0);
            }
        }
        e.finish()
    }

    /// Stable id for deduplication.
    pub fn id(&self) -> EvidenceId {
        EvidenceId(digest64(&[&self.canonical_bytes()]))
    }

    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> u32 {
        self.canonical_bytes().len() as u32
    }

    /// Verify the record.
    ///
    /// For proofs this fully checks the conviction (signatures, internal
    /// consistency, re-execution). For declarations it checks the
    /// declarer's signature and internal consistency only — declarations
    /// are *attributable*, not probative.
    pub fn verify(&self, ks: &KeyStore, view: &dyn WorkloadView) -> Result<(), EvidenceFlaw> {
        match self {
            EvidenceRecord::Equivocation { accused, a, b } => {
                a.verify(ks)?;
                b.verify(ks)?;
                if a.producer != *accused || b.producer != *accused {
                    return Err(EvidenceFlaw::Inconsistent("producer != accused"));
                }
                if (a.task, a.replica, a.period) != (b.task, b.replica, b.period) {
                    return Err(EvidenceFlaw::Inconsistent("outputs not comparable"));
                }
                if a.value == b.value {
                    return Err(EvidenceFlaw::Inconsistent("values agree"));
                }
                Ok(())
            }
            EvidenceRecord::BadComputation {
                accused,
                output,
                inputs,
            } => {
                output.verify(ks)?;
                if output.producer != *accused {
                    return Err(EvidenceFlaw::Inconsistent("producer != accused"));
                }
                let declared = view
                    .inputs_of_task(output.task)
                    .ok_or(EvidenceFlaw::UnknownTask(output.task))?;
                let expected: BTreeSet<TaskId> = declared.into_iter().collect();
                let supplied: BTreeSet<TaskId> = inputs.iter().map(|i| i.task).collect();
                if expected != supplied || inputs.len() != supplied.len() {
                    return Err(EvidenceFlaw::InputSetMismatch);
                }
                let mut vals = Vec::with_capacity(inputs.len());
                for i in inputs {
                    i.verify(ks)?;
                    if i.period != output.period {
                        return Err(EvidenceFlaw::Inconsistent("input from wrong period"));
                    }
                    vals.push((i.task, i.value));
                }
                let recomputed = if view.task_is_source(output.task) {
                    // Sources read physical sensors; the commitment is
                    // ignored and the reading is checked directly.
                    sensor_value(output.task, output.period, view.workload_seed())
                } else {
                    // Soundness: the supplied inputs must match the
                    // accused's own signed commitment, so honest nodes can
                    // never be convicted with substituted inputs.
                    if crate::compute::inputs_digest(&vals) != output.inputs_digest {
                        return Err(EvidenceFlaw::CommitmentMismatch);
                    }
                    task_value(output.task, output.period, &vals)
                };
                if recomputed == output.value {
                    Err(EvidenceFlaw::RecomputationMatches)
                } else {
                    Ok(())
                }
            }
            EvidenceRecord::BadWitness {
                accused,
                output,
                witnesses,
                sent_at,
                env_sig,
            } => {
                // The envelope signature binds the accused to exactly this
                // (output, witnesses) payload.
                if env_sig.key != accused.0 || output.producer != *accused {
                    return Err(EvidenceFlaw::BadSignature);
                }
                let payload = crate::message::Payload::Output {
                    output: output.clone(),
                    witnesses: witnesses.clone(),
                };
                let bytes =
                    crate::message::Envelope::signing_bytes_for(*accused, *sent_at, &payload);
                ks.verify(env_sig, &bytes)
                    .map_err(|_| EvidenceFlaw::BadSignature)?;
                output.verify(ks)?;
                if view.task_is_source(output.task) {
                    return Err(EvidenceFlaw::Inconsistent(
                        "sources are checked by reading, not witnesses",
                    ));
                }
                let declared = view
                    .inputs_of_task(output.task)
                    .ok_or(EvidenceFlaw::UnknownTask(output.task))?;
                let expected: BTreeSet<TaskId> = declared.into_iter().collect();
                let supplied: BTreeSet<TaskId> = witnesses.iter().map(|w| w.task).collect();
                let mut vals = Vec::with_capacity(witnesses.len());
                let mut witness_flaw = expected != supplied || witnesses.len() != supplied.len();
                for w in witnesses {
                    if w.verify(ks).is_err() || w.period != output.period {
                        witness_flaw = true;
                    }
                    vals.push((w.task, w.value));
                }
                if crate::compute::inputs_digest(&vals) != output.inputs_digest {
                    witness_flaw = true;
                }
                if witness_flaw {
                    Ok(())
                } else {
                    // The message was actually well-formed: bogus accusation.
                    Err(EvidenceFlaw::RecomputationMatches)
                }
            }
            EvidenceRecord::PathDeclaration {
                declarer,
                from,
                to,
                task,
                period,
                sig,
            } => {
                if declarer != from && declarer != to {
                    return Err(EvidenceFlaw::Inconsistent("declarer not on path"));
                }
                let mut e = Enc::new("btr-path-decl");
                e.u32(declarer.0)
                    .u32(from.0)
                    .u32(to.0)
                    .u32(task.0)
                    .u64(*period);
                Self::check_decl_sig(ks, *declarer, sig, e.as_slice())
            }
            EvidenceRecord::TimingDeclaration {
                declarer,
                output,
                expected_by,
                observed_at,
                sig,
            } => {
                output.verify(ks)?;
                if observed_at <= expected_by {
                    return Err(EvidenceFlaw::Inconsistent("observation not late"));
                }
                let mut e = Enc::new("btr-timing-decl");
                e.u32(declarer.0)
                    .bytes(&output.canonical_id_bytes())
                    .u64(expected_by.0)
                    .u64(observed_at.0);
                Self::check_decl_sig(ks, *declarer, sig, e.as_slice())
            }
            EvidenceRecord::CrashSuspicion {
                declarer,
                about,
                period,
                sig,
            } => {
                if declarer == about {
                    return Err(EvidenceFlaw::Inconsistent("self-suspicion"));
                }
                let mut e = Enc::new("btr-crash-decl");
                e.u32(declarer.0).u32(about.0).u64(*period);
                Self::check_decl_sig(ks, *declarer, sig, e.as_slice())
            }
        }
    }

    fn check_decl_sig(
        ks: &KeyStore,
        declarer: NodeId,
        sig: &Signature,
        bytes: &[u8],
    ) -> Result<(), EvidenceFlaw> {
        if sig.key != declarer.0 {
            return Err(EvidenceFlaw::BadSignature);
        }
        ks.verify(sig, bytes)
            .map_err(|_| EvidenceFlaw::BadSignature)
    }

    /// Construct a signed path declaration.
    pub fn declare_path(
        signer: &Signer,
        declarer: NodeId,
        from: NodeId,
        to: NodeId,
        task: TaskId,
        period: PeriodIdx,
    ) -> EvidenceRecord {
        let mut e = Enc::new("btr-path-decl");
        e.u32(declarer.0)
            .u32(from.0)
            .u32(to.0)
            .u32(task.0)
            .u64(period);
        EvidenceRecord::PathDeclaration {
            declarer,
            from,
            to,
            task,
            period,
            sig: signer.sign(e.as_slice()),
        }
    }

    /// Construct a signed timing declaration.
    pub fn declare_timing(
        signer: &Signer,
        declarer: NodeId,
        output: SignedOutput,
        expected_by: Time,
        observed_at: Time,
    ) -> EvidenceRecord {
        let mut e = Enc::new("btr-timing-decl");
        e.u32(declarer.0)
            .bytes(&output.canonical_id_bytes())
            .u64(expected_by.0)
            .u64(observed_at.0);
        EvidenceRecord::TimingDeclaration {
            declarer,
            output,
            expected_by,
            observed_at,
            sig: signer.sign(e.as_slice()),
        }
    }

    /// Construct a signed crash suspicion.
    pub fn declare_crash(
        signer: &Signer,
        declarer: NodeId,
        about: NodeId,
        period: PeriodIdx,
    ) -> EvidenceRecord {
        let mut e = Enc::new("btr-crash-decl");
        e.u32(declarer.0).u32(about.0).u64(period);
        EvidenceRecord::CrashSuspicion {
            declarer,
            about,
            period,
            sig: signer.sign(e.as_slice()),
        }
    }
}

impl SignedOutput {
    /// Length of [`SignedOutput::canonical_id_bytes`]; every field is
    /// fixed-size, so callers embedding an id can write the length prefix
    /// first and stream the encoding without building it. Checked against
    /// the actual encoding by a test.
    pub const CANONICAL_ID_LEN: usize = {
        let domain = 8 + "btr-output-id".len();
        let fields = 4 + 1 + 8 + 8 + 8 + 4; // task, replica, period, value, digest, producer
        let sig = 4 + (8 + 32); // key id + length-prefixed tag
        domain + fields + sig
    };

    /// Bytes that uniquely identify this output (including its signature),
    /// used when a declaration references an output.
    pub fn canonical_id_bytes(&self) -> Vec<u8> {
        let mut e = Enc::new("btr-output-id");
        self.encode(&mut e);
        e.finish()
    }

    /// Stream the id encoding (exactly [`SignedOutput::CANONICAL_ID_LEN`]
    /// bytes) into an in-progress encoder, avoiding the intermediate
    /// vector of [`SignedOutput::canonical_id_bytes`].
    pub fn encode_id(&self, e: &mut Enc<'_>) {
        e.bytes(b"btr-output-id");
        self.encode(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btr_crypto::NodeKey;

    struct TestView;
    impl WorkloadView for TestView {
        fn inputs_of_task(&self, task: TaskId) -> Option<Vec<TaskId>> {
            match task.0 {
                0 | 1 => Some(vec![]),                 // Sources.
                2 => Some(vec![TaskId(0), TaskId(1)]), // Fusion.
                _ => None,
            }
        }
        fn task_is_source(&self, task: TaskId) -> bool {
            task.0 < 2
        }
        fn workload_seed(&self) -> u64 {
            7
        }
    }

    fn signer(i: u32) -> Signer {
        Signer::new(NodeKey::derive(99, i))
    }

    fn keystore() -> KeyStore {
        KeyStore::derive(99, 8)
    }

    #[test]
    fn signed_output_round_trip() {
        let s = signer(3);
        let out = SignedOutput::sign(&s, TaskId(2), 0, 5, 0xdead, 0, NodeId(3));
        assert_eq!(out.verify(&keystore()), Ok(()));
        let mut forged = out.clone();
        forged.value = 0xbeef;
        assert_eq!(forged.verify(&keystore()), Err(EvidenceFlaw::BadSignature));
    }

    #[test]
    fn canonical_id_len_is_exact() {
        let s = signer(3);
        let out = SignedOutput::sign(&s, TaskId(2), 1, 5, u64::MAX, 0, NodeId(3));
        assert_eq!(
            out.canonical_id_bytes().len(),
            SignedOutput::CANONICAL_ID_LEN
        );
        // Streaming must reproduce the owned encoding byte for byte.
        let mut e = Enc::new("outer");
        e.u64(SignedOutput::CANONICAL_ID_LEN as u64);
        out.encode_id(&mut e);
        let mut reference = Enc::new("outer");
        reference.bytes(&out.canonical_id_bytes());
        assert_eq!(e.finish(), reference.finish());
    }

    #[test]
    fn append_signing_bytes_matches_owned() {
        let s = signer(3);
        let out = SignedOutput::sign(&s, TaskId(2), 1, 5, 77, 0xfeed, NodeId(3));
        let owned = SignedOutput::signing_bytes(
            out.task,
            out.replica,
            out.period,
            out.value,
            out.inputs_digest,
            out.producer,
        );
        // Appending after existing content must leave it intact and
        // reproduce the owned encoding after it.
        let mut buf = vec![9u8, 9, 9];
        out.append_signing_bytes(&mut buf);
        assert_eq!(&buf[..3], &[9, 9, 9]);
        assert_eq!(&buf[3..], &owned[..]);
    }

    #[test]
    fn stage_for_verify_matches_single_verify() {
        let s = signer(3);
        let good = SignedOutput::sign(&s, TaskId(2), 0, 5, 1, 2, NodeId(3));
        let mut forged = good.clone();
        forged.value ^= 1;
        let mut relabelled = good.clone();
        relabelled.producer = NodeId(5); // Valid MAC, forged attribution.
        let outputs = [good, forged, relabelled];
        let mut batch = btr_crypto::SigBatch::new();
        for o in &outputs {
            o.stage_for_verify(&mut batch);
        }
        let mut ok = Vec::new();
        keystore().verify_batch(&batch, &mut ok);
        for (o, got) in outputs.iter().zip(&ok) {
            assert_eq!(*got, o.verify(&keystore()).is_ok(), "{o:?}");
        }
        assert_eq!(ok, vec![true, false, false]);
    }

    #[test]
    fn sign_with_equals_sign() {
        let s = signer(3);
        let mut scratch = vec![0xffu8; 7];
        let a = SignedOutput::sign(&s, TaskId(2), 0, 5, 1, 2, NodeId(3));
        let b = SignedOutput::sign_with(&s, TaskId(2), 0, 5, 1, 2, NodeId(3), &mut scratch);
        assert_eq!(a, b);
        assert_eq!(b.verify(&keystore()), Ok(()));
    }

    #[test]
    fn scratch_verify_matches_allocating_verify() {
        let s = signer(3);
        let out = SignedOutput::sign(&s, TaskId(2), 0, 5, 0xdead, 0, NodeId(3));
        let mut scratch = vec![1, 2, 3];
        assert_eq!(out.verify_with(&keystore(), &mut scratch), Ok(()));
        let mut forged = out.clone();
        forged.period = 6;
        assert_eq!(
            forged.verify_with(&keystore(), &mut scratch),
            Err(EvidenceFlaw::BadSignature)
        );
    }

    #[test]
    fn equivocation_proof_validates() {
        let s = signer(3);
        let a = SignedOutput::sign(&s, TaskId(2), 0, 5, 1, 0, NodeId(3));
        let b = SignedOutput::sign(&s, TaskId(2), 0, 5, 2, 0, NodeId(3));
        let ev = EvidenceRecord::Equivocation {
            accused: NodeId(3),
            a,
            b,
        };
        assert_eq!(ev.class(), EvidenceClass::Proof);
        assert_eq!(ev.convicts(), Some(NodeId(3)));
        assert_eq!(ev.verify(&keystore(), &TestView), Ok(()));
    }

    #[test]
    fn equivocation_requires_conflict() {
        let s = signer(3);
        let a = SignedOutput::sign(&s, TaskId(2), 0, 5, 1, 0, NodeId(3));
        let ev = EvidenceRecord::Equivocation {
            accused: NodeId(3),
            a: a.clone(),
            b: a,
        };
        assert!(matches!(
            ev.verify(&keystore(), &TestView),
            Err(EvidenceFlaw::Inconsistent(_))
        ));
    }

    #[test]
    fn cannot_frame_with_relabelled_equivocation() {
        // Node 4 tries to pin node 3's outputs on node 5.
        let s = signer(3);
        let a = SignedOutput::sign(&s, TaskId(2), 0, 5, 1, 0, NodeId(3));
        let b = SignedOutput::sign(&s, TaskId(2), 0, 5, 2, 0, NodeId(3));
        let ev = EvidenceRecord::Equivocation {
            accused: NodeId(5),
            a,
            b,
        };
        assert!(matches!(
            ev.verify(&keystore(), &TestView),
            Err(EvidenceFlaw::Inconsistent(_))
        ));
    }

    fn good_inputs(period: PeriodIdx) -> Vec<SignedOutput> {
        let v0 = sensor_value(TaskId(0), period, 7);
        let v1 = sensor_value(TaskId(1), period, 7);
        let empty = crate::compute::inputs_digest(&[]);
        vec![
            SignedOutput::sign(&signer(0), TaskId(0), 0, period, v0, empty, NodeId(0)),
            SignedOutput::sign(&signer(1), TaskId(1), 0, period, v1, empty, NodeId(1)),
        ]
    }

    fn digest_of(inputs: &[SignedOutput]) -> u64 {
        let vals: Vec<(TaskId, Value)> = inputs.iter().map(|i| (i.task, i.value)).collect();
        crate::compute::inputs_digest(&vals)
    }

    #[test]
    fn bad_computation_proof_validates() {
        let inputs = good_inputs(5);
        let vals: Vec<(TaskId, Value)> = inputs.iter().map(|i| (i.task, i.value)).collect();
        let correct = task_value(TaskId(2), 5, &vals);
        // Node 3 outputs something wrong (committing to the real inputs).
        let wrong = SignedOutput::sign(
            &signer(3),
            TaskId(2),
            0,
            5,
            correct ^ 1,
            digest_of(&inputs),
            NodeId(3),
        );
        let ev = EvidenceRecord::BadComputation {
            accused: NodeId(3),
            output: wrong,
            inputs,
        };
        assert_eq!(ev.verify(&keystore(), &TestView), Ok(()));
    }

    #[test]
    fn honest_computation_cannot_be_convicted() {
        let inputs = good_inputs(5);
        let vals: Vec<(TaskId, Value)> = inputs.iter().map(|i| (i.task, i.value)).collect();
        let correct = task_value(TaskId(2), 5, &vals);
        let out = SignedOutput::sign(
            &signer(3),
            TaskId(2),
            0,
            5,
            correct,
            digest_of(&inputs),
            NodeId(3),
        );
        let ev = EvidenceRecord::BadComputation {
            accused: NodeId(3),
            output: out,
            inputs,
        };
        assert_eq!(
            ev.verify(&keystore(), &TestView),
            Err(EvidenceFlaw::RecomputationMatches)
        );
    }

    #[test]
    fn framing_by_omitting_inputs_rejected() {
        let inputs = good_inputs(5);
        let vals: Vec<(TaskId, Value)> = inputs.iter().map(|i| (i.task, i.value)).collect();
        let correct = task_value(TaskId(2), 5, &vals);
        let out = SignedOutput::sign(
            &signer(3),
            TaskId(2),
            0,
            5,
            correct,
            digest_of(&inputs),
            NodeId(3),
        );
        // Accuser drops one input so re-execution would differ.
        let ev = EvidenceRecord::BadComputation {
            accused: NodeId(3),
            output: out,
            inputs: inputs[..1].to_vec(),
        };
        assert_eq!(
            ev.verify(&keystore(), &TestView),
            Err(EvidenceFlaw::InputSetMismatch)
        );
    }

    #[test]
    fn bad_source_reading_convicted() {
        // Source 0 reports a reading that differs from its sensor value.
        let honest = sensor_value(TaskId(0), 9, 7);
        let out = SignedOutput::sign(&signer(0), TaskId(0), 0, 9, honest ^ 0xff, 0, NodeId(0));
        let ev = EvidenceRecord::BadComputation {
            accused: NodeId(0),
            output: out,
            inputs: vec![],
        };
        assert_eq!(ev.verify(&keystore(), &TestView), Ok(()));
    }

    #[test]
    fn declarations_validate_and_attribute() {
        let s = signer(2);
        let d = EvidenceRecord::declare_path(&s, NodeId(2), NodeId(2), NodeId(4), TaskId(2), 7);
        assert_eq!(d.class(), EvidenceClass::Declaration);
        assert_eq!(d.convicts(), None);
        assert_eq!(d.declarer(), Some(NodeId(2)));
        assert_eq!(d.verify(&keystore(), &TestView), Ok(()));
    }

    #[test]
    fn path_declaration_must_come_from_endpoint() {
        let s = signer(6);
        let d = EvidenceRecord::declare_path(&s, NodeId(6), NodeId(2), NodeId(4), TaskId(2), 7);
        assert!(matches!(
            d.verify(&keystore(), &TestView),
            Err(EvidenceFlaw::Inconsistent(_))
        ));
    }

    #[test]
    fn timing_declaration_checks_lateness_and_inner_sig() {
        let out = SignedOutput::sign(&signer(3), TaskId(2), 0, 5, 1, 0, NodeId(3));
        let d = EvidenceRecord::declare_timing(
            &signer(4),
            NodeId(4),
            out.clone(),
            Time(1_000),
            Time(2_000),
        );
        assert_eq!(d.verify(&keystore(), &TestView), Ok(()));
        let not_late =
            EvidenceRecord::declare_timing(&signer(4), NodeId(4), out, Time(2_000), Time(1_000));
        assert!(matches!(
            not_late.verify(&keystore(), &TestView),
            Err(EvidenceFlaw::Inconsistent(_))
        ));
    }

    #[test]
    fn crash_suspicion_rejects_self() {
        let d = EvidenceRecord::declare_crash(&signer(4), NodeId(4), NodeId(4), 3);
        assert!(matches!(
            d.verify(&keystore(), &TestView),
            Err(EvidenceFlaw::Inconsistent(_))
        ));
    }

    #[test]
    fn forged_declaration_signature_rejected() {
        // Node 5 forges a declaration in node 2's name.
        let d =
            EvidenceRecord::declare_path(&signer(5), NodeId(2), NodeId(2), NodeId(4), TaskId(2), 7);
        assert_eq!(
            d.verify(&keystore(), &TestView),
            Err(EvidenceFlaw::BadSignature)
        );
    }

    #[test]
    fn substituted_inputs_cannot_convict_honest_node() {
        // Upstream source 0 equivocates: sends value A to the replica and
        // signs a different value B elsewhere. The replica honestly
        // computes from A and commits to A. A "proof" built with B must
        // fail (commitment mismatch), so honest nodes are never convicted.
        let p = 5u64;
        let va = sensor_value(TaskId(0), p, 7);
        let vb = va ^ 0x77;
        let empty = crate::compute::inputs_digest(&[]);
        let input_a = SignedOutput::sign(&signer(0), TaskId(0), 0, p, va, empty, NodeId(0));
        let input_b = SignedOutput::sign(&signer(0), TaskId(0), 0, p, vb, empty, NodeId(0));
        let v1 = sensor_value(TaskId(1), p, 7);
        let input_1 = SignedOutput::sign(&signer(1), TaskId(1), 0, p, v1, empty, NodeId(1));

        // Honest replica consumed A (and input 1).
        let consumed = [input_a, input_1.clone()];
        let vals: Vec<(TaskId, Value)> = consumed.iter().map(|i| (i.task, i.value)).collect();
        let honest_out = SignedOutput::sign(
            &signer(3),
            TaskId(2),
            0,
            p,
            task_value(TaskId(2), p, &vals),
            crate::compute::inputs_digest(&vals),
            NodeId(3),
        );
        // Attacker substitutes B for A.
        let ev = EvidenceRecord::BadComputation {
            accused: NodeId(3),
            output: honest_out,
            inputs: vec![input_b, input_1],
        };
        assert_eq!(
            ev.verify(&keystore(), &TestView),
            Err(EvidenceFlaw::CommitmentMismatch)
        );
    }

    #[test]
    fn bad_witness_convicts_garbled_commitment() {
        // Node 3 sends an Output message whose witnesses do not match its
        // signed commitment: the envelope signature convicts it.
        let p = 5u64;
        let w = good_inputs(p);
        let vals: Vec<(TaskId, Value)> = w.iter().map(|i| (i.task, i.value)).collect();
        let out = SignedOutput::sign(
            &signer(3),
            TaskId(2),
            0,
            p,
            task_value(TaskId(2), p, &vals) ^ 9,
            0xBAD, // Garbage commitment.
            NodeId(3),
        );
        let payload = crate::message::Payload::Output {
            output: out.clone(),
            witnesses: w.clone(),
        };
        let sent_at = Time(1234);
        let bytes = crate::message::Envelope::signing_bytes_for(NodeId(3), sent_at, &payload);
        let env_sig = signer(3).sign(&bytes);
        let ev = EvidenceRecord::BadWitness {
            accused: NodeId(3),
            output: out,
            witnesses: w,
            sent_at,
            env_sig,
        };
        assert_eq!(ev.class(), EvidenceClass::Proof);
        assert_eq!(ev.convicts(), Some(NodeId(3)));
        assert_eq!(ev.verify(&keystore(), &TestView), Ok(()));
    }

    #[test]
    fn bad_witness_rejects_well_formed_message() {
        // A bogus accusation: the message was actually fine.
        let p = 6u64;
        let w = good_inputs(p);
        let vals: Vec<(TaskId, Value)> = w.iter().map(|i| (i.task, i.value)).collect();
        let out = SignedOutput::sign(
            &signer(3),
            TaskId(2),
            0,
            p,
            task_value(TaskId(2), p, &vals),
            crate::compute::inputs_digest(&vals),
            NodeId(3),
        );
        let payload = crate::message::Payload::Output {
            output: out.clone(),
            witnesses: w.clone(),
        };
        let sent_at = Time(99);
        let bytes = crate::message::Envelope::signing_bytes_for(NodeId(3), sent_at, &payload);
        let env_sig = signer(3).sign(&bytes);
        let ev = EvidenceRecord::BadWitness {
            accused: NodeId(3),
            output: out,
            witnesses: w,
            sent_at,
            env_sig,
        };
        assert_eq!(
            ev.verify(&keystore(), &TestView),
            Err(EvidenceFlaw::RecomputationMatches)
        );
    }

    #[test]
    fn bad_witness_cannot_be_forged_by_checker() {
        // A malicious checker fabricates witnesses node 3 never sent: the
        // envelope signature will not verify.
        let p = 7u64;
        let w = good_inputs(p);
        let out = SignedOutput::sign(&signer(3), TaskId(2), 0, p, 1, 0xBAD, NodeId(3));
        let payload = crate::message::Payload::Output {
            output: out.clone(),
            witnesses: vec![], // Not what was signed below.
        };
        let bytes = crate::message::Envelope::signing_bytes_for(NodeId(3), Time(0), &payload);
        let env_sig = signer(3).sign(&bytes);
        let ev = EvidenceRecord::BadWitness {
            accused: NodeId(3),
            output: out,
            witnesses: w, // Checker swapped witnesses after signing.
            sent_at: Time(0),
            env_sig,
        };
        assert_eq!(
            ev.verify(&keystore(), &TestView),
            Err(EvidenceFlaw::BadSignature)
        );
    }

    #[test]
    fn record_period_extraction() {
        let s = signer(2);
        let d = EvidenceRecord::declare_crash(&s, NodeId(2), NodeId(3), 41);
        assert_eq!(d.period(), 41);
        let pd = EvidenceRecord::declare_path(&s, NodeId(2), NodeId(1), NodeId(2), TaskId(0), 17);
        assert_eq!(pd.period(), 17);
    }

    #[test]
    fn ids_are_stable_and_distinct() {
        let s = signer(2);
        let d1 = EvidenceRecord::declare_crash(&s, NodeId(2), NodeId(3), 1);
        let d2 = EvidenceRecord::declare_crash(&s, NodeId(2), NodeId(3), 2);
        assert_eq!(d1.id(), d1.clone().id());
        assert_ne!(d1.id(), d2.id());
        assert!(d1.wire_size() > 0);
    }
}
