//! Plans, schedules, and strategies.
//!
//! Section 4 of the paper: "Our approach to BTR is centered around the
//! concept of a plan, which is basically a distributed schedule: it maps
//! the tasks from the workload (and some additional tasks, such as
//! replicas) to specific nodes, and it prescribes a schedule for each of
//! the nodes." The set of plans plus the conditions for switching between
//! them is the [`Strategy`] ("the plans, and the conditions for switching
//! between them, form the system's strategy for responding to faults").

use crate::fault::FaultSet;
use crate::ids::{LinkId, NodeId, PlanId, ReplicaIdx, TaskId};
use crate::time::Duration;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Serialize ordered maps with structured keys as pair sequences, since
/// JSON only supports string map keys.
///
/// Only reachable through the `#[serde(with = ...)]` attributes, which the
/// offline serde stand-in treats as inert — hence the `dead_code` allow.
#[allow(dead_code)]
mod serde_pairs {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::collections::BTreeMap;

    pub fn serialize<K, V, S>(map: &BTreeMap<K, V>, ser: S) -> Result<S::Ok, S::Error>
    where
        K: Serialize + Ord,
        V: Serialize,
        S: Serializer,
    {
        ser.collect_seq(map.iter())
    }

    pub fn deserialize<'de, K, V, D>(de: D) -> Result<BTreeMap<K, V>, D::Error>
    where
        K: Deserialize<'de> + Ord,
        V: Deserialize<'de>,
        D: Deserializer<'de>,
    {
        let pairs: Vec<(K, V)> = Vec::deserialize(de)?;
        Ok(pairs.into_iter().collect())
    }
}

/// An *augmented* task: a workload task replica, or one of the auxiliary
/// tasks the planner adds (Section 4.1: "It adds 1) replicas; 2) checking
/// tasks ...; and 3) verification tasks").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ATask {
    /// Replica `replica` of workload task `task`.
    Work {
        /// The workload task.
        task: TaskId,
        /// Replica index (0 = primary).
        replica: ReplicaIdx,
    },
    /// The checking task comparing the replicas of `task`.
    Check {
        /// The checked workload task.
        task: TaskId,
    },
    /// The evidence-verification reserve slot on `node`.
    Verify {
        /// The node whose schedule carries the reserve.
        node: NodeId,
    },
}

impl ATask {
    /// The underlying workload task, if this is a work or check task.
    pub fn work_task(&self) -> Option<TaskId> {
        match self {
            ATask::Work { task, .. } | ATask::Check { task } => Some(*task),
            ATask::Verify { .. } => None,
        }
    }

    /// True for `Work` entries.
    pub fn is_work(&self) -> bool {
        matches!(self, ATask::Work { .. })
    }
}

impl std::fmt::Display for ATask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ATask::Work { task, replica } => write!(f, "{task}/r{replica}"),
            ATask::Check { task } => write!(f, "chk({task})"),
            ATask::Verify { node } => write!(f, "ver({node})"),
        }
    }
}

/// One slot in a node's static cyclic schedule (offsets within the period).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleEntry {
    /// What runs.
    pub atask: ATask,
    /// Start offset from the period boundary.
    pub start: Duration,
    /// Budgeted execution time on this node.
    pub wcet: Duration,
}

impl ScheduleEntry {
    /// End offset of the slot.
    pub fn end(&self) -> Duration {
        self.start + self.wcet
    }
}

/// A node's static cyclic schedule for one plan.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct NodeSchedule {
    /// Slots sorted by start offset.
    pub entries: Vec<ScheduleEntry>,
}

/// Why a schedule or plan is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// Two slots on the same node overlap in time.
    Overlap(NodeId),
    /// A slot extends past the period.
    ExceedsPeriod(NodeId),
    /// A task is placed on a node in the plan's fault set.
    PlacedOnFaulty(NodeId),
    /// A scheduled task is missing from the placement (or vice versa).
    PlacementMismatch,
    /// A placement references a node outside the topology.
    UnknownNode(NodeId),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Overlap(n) => write!(f, "overlapping slots on {n}"),
            PlanError::ExceedsPeriod(n) => write!(f, "slot exceeds period on {n}"),
            PlanError::PlacedOnFaulty(n) => write!(f, "task placed on faulty node {n}"),
            PlanError::PlacementMismatch => write!(f, "placement and schedules disagree"),
            PlanError::UnknownNode(n) => write!(f, "placement references unknown node {n}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl NodeSchedule {
    /// Validate sortedness, non-overlap, and fit within `period`.
    pub fn validate(&self, node: NodeId, period: Duration) -> Result<(), PlanError> {
        let mut prev_end = Duration::ZERO;
        for e in &self.entries {
            if e.start < prev_end {
                return Err(PlanError::Overlap(node));
            }
            if e.end() > period {
                return Err(PlanError::ExceedsPeriod(node));
            }
            prev_end = e.end();
        }
        Ok(())
    }

    /// Fraction of the period spent executing.
    pub fn utilization(&self, period: Duration) -> f64 {
        if period.0 == 0 {
            return 0.0;
        }
        let busy: u64 = self.entries.iter().map(|e| e.wcet.0).sum();
        busy as f64 / period.0 as f64
    }

    /// Find the slot for an augmented task.
    pub fn slot(&self, atask: ATask) -> Option<&ScheduleEntry> {
        self.entries.iter().find(|e| e.atask == atask)
    }
}

/// Per-link bandwidth shares for one plan (bytes per period per node).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkAlloc {
    /// The link being shared.
    pub link: LinkId,
    /// Data-plane bytes per period each node may send.
    pub shares: BTreeMap<NodeId, u64>,
    /// Reserved control-plane bytes per period per node (evidence and
    /// mode-change traffic, Section 4.3's "reserving some amount of
    /// computation and bandwidth for evidence distribution").
    pub control_reserve: u64,
}

/// A distributed schedule for one fault pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    /// This plan's id (index into the strategy's plan store).
    pub id: PlanId,
    /// The fault pattern this plan handles.
    pub fault_set: FaultSet,
    /// Where every augmented task runs.
    #[serde(with = "serde_pairs")]
    pub placement: BTreeMap<ATask, NodeId>,
    /// Per-node cyclic schedules.
    pub schedules: BTreeMap<NodeId, NodeSchedule>,
    /// Workload tasks shed in this mode (mixed-criticality degradation).
    pub shed: BTreeSet<TaskId>,
    /// Per-link bandwidth shares.
    pub link_alloc: Vec<LinkAlloc>,
}

impl Plan {
    /// The node hosting an augmented task, if placed.
    pub fn node_of(&self, atask: ATask) -> Option<NodeId> {
        self.placement.get(&atask).copied()
    }

    /// All replicas of a workload task, as (replica, node) pairs.
    pub fn replicas_of(&self, task: TaskId) -> Vec<(ReplicaIdx, NodeId)> {
        self.placement
            .iter()
            .filter_map(|(a, n)| match a {
                ATask::Work { task: t, replica } if *t == task => Some((*replica, *n)),
                _ => None,
            })
            .collect()
    }

    /// The node hosting the checker of a task, if any.
    pub fn checker_of(&self, task: TaskId) -> Option<NodeId> {
        self.node_of(ATask::Check { task })
    }

    /// True if the plan sheds this workload task.
    pub fn is_shed(&self, task: TaskId) -> bool {
        self.shed.contains(&task)
    }

    /// Augmented tasks placed on a given node.
    pub fn tasks_on(&self, node: NodeId) -> Vec<ATask> {
        self.placement
            .iter()
            .filter_map(|(a, n)| (*n == node).then_some(*a))
            .collect()
    }

    /// Validate the plan against a topology and period.
    pub fn validate(&self, topo: &Topology, period: Duration) -> Result<(), PlanError> {
        for (&atask, &node) in &self.placement {
            if node.index() >= topo.node_count() {
                return Err(PlanError::UnknownNode(node));
            }
            if self.fault_set.contains(node) {
                return Err(PlanError::PlacedOnFaulty(node));
            }
            // Every placed task must be scheduled on its node.
            let sched = self
                .schedules
                .get(&node)
                .ok_or(PlanError::PlacementMismatch)?;
            if sched.slot(atask).is_none() {
                return Err(PlanError::PlacementMismatch);
            }
        }
        for (&node, sched) in &self.schedules {
            sched.validate(node, period)?;
            for e in &sched.entries {
                if self.placement.get(&e.atask) != Some(&node) {
                    return Err(PlanError::PlacementMismatch);
                }
            }
        }
        Ok(())
    }

    /// Peak CPU utilisation over all nodes.
    pub fn max_utilization(&self, period: Duration) -> f64 {
        self.schedules
            .values()
            .map(|s| s.utilization(period))
            .fold(0.0, f64::max)
    }

    /// Total data-plane bytes per period across links.
    pub fn total_bandwidth(&self) -> u64 {
        self.link_alloc
            .iter()
            .map(|l| l.shares.values().sum::<u64>())
            .sum()
    }
}

/// A migration of one augmented task during a mode transition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Migration {
    /// The migrating task.
    pub atask: ATask,
    /// Node it ran on in the old plan (`None` if newly started).
    pub from: Option<NodeId>,
    /// Node it runs on in the new plan.
    pub to: NodeId,
    /// Bytes of task state that must move.
    pub state_bytes: u32,
}

/// Metadata for one mode transition (edge in the strategy graph).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// Plan the system is leaving.
    pub from: PlanId,
    /// Plan the system is entering.
    pub to: PlanId,
    /// The newly faulty node that triggers this transition.
    pub trigger: NodeId,
    /// Task migrations required.
    pub migrations: Vec<Migration>,
    /// Planner's bound on the transition duration (state transfer +
    /// alignment); part of the R admission check.
    pub bound: Duration,
}

impl Transition {
    /// Total state bytes moved by this transition.
    pub fn state_bytes(&self) -> u64 {
        self.migrations.iter().map(|m| m.state_bytes as u64).sum()
    }

    /// Number of task reassignments (the paper's plan-distance notion:
    /// "it should otherwise change as little as possible").
    pub fn distance(&self) -> usize {
        self.migrations.len()
    }
}

/// The complete offline strategy: plans plus switching conditions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Strategy {
    /// Fault budget: max simultaneous faulty nodes planned for.
    pub f: u8,
    /// The recovery bound R the strategy was admitted against.
    pub r_bound: Duration,
    /// The system period P.
    pub period: Duration,
    /// All plans; `plans[p.index()]` has id `p`.
    pub plans: Vec<Plan>,
    /// Deterministic fault-set -> plan mapping.
    #[serde(with = "serde_pairs")]
    pub index: BTreeMap<FaultSet, PlanId>,
    /// Transition metadata keyed by (from, to).
    #[serde(with = "serde_pairs")]
    pub transitions: BTreeMap<(PlanId, PlanId), Transition>,
}

impl Strategy {
    /// The plan for the empty fault set.
    ///
    /// # Panics
    /// Panics if the strategy has no initial plan (never produced by the
    /// planner).
    pub fn initial_plan(&self) -> &Plan {
        let pid = self.index[&FaultSet::empty()];
        &self.plans[pid.index()]
    }

    /// Look up a plan by id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn plan(&self, id: PlanId) -> &Plan {
        &self.plans[id.index()]
    }

    /// The plan indexed for exactly this fault set, if any.
    pub fn plan_for(&self, fs: &FaultSet) -> Option<PlanId> {
        self.index.get(fs).copied()
    }

    /// Deterministic best-effort lookup: the exact plan if indexed,
    /// otherwise the plan of the largest indexed subset (ties broken by
    /// the `BTreeMap` order, which is canonical). All correct nodes with
    /// the same fault set therefore choose the same plan — the convergence
    /// argument of Section 4.4.
    pub fn best_plan_for(&self, fs: &FaultSet) -> PlanId {
        if let Some(p) = self.plan_for(fs) {
            return p;
        }
        let mut best: Option<(usize, &FaultSet, PlanId)> = None;
        for (key, &pid) in &self.index {
            if key.is_subset(fs) {
                let candidate = (key.len(), key, pid);
                best = match best {
                    None => Some(candidate),
                    Some(b) if candidate.0 > b.0 => Some(candidate),
                    Some(b) => Some(b),
                };
            }
        }
        best.map(|(_, _, pid)| pid)
            .unwrap_or_else(|| self.index[&FaultSet::empty()])
    }

    /// Transition metadata between two plans, if precomputed.
    pub fn transition(&self, from: PlanId, to: PlanId) -> Option<&Transition> {
        self.transitions.get(&(from, to))
    }

    /// Number of plans in the strategy.
    pub fn plan_count(&self) -> usize {
        self.plans.len()
    }

    /// The worst transition bound across the strategy (drives R admission).
    pub fn worst_transition_bound(&self) -> Duration {
        self.transitions
            .values()
            .map(|t| t.bound)
            .max()
            .unwrap_or(Duration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(atask: ATask, start: u64, wcet: u64) -> ScheduleEntry {
        ScheduleEntry {
            atask,
            start: Duration(start),
            wcet: Duration(wcet),
        }
    }

    fn work(t: u32, r: ReplicaIdx) -> ATask {
        ATask::Work {
            task: TaskId(t),
            replica: r,
        }
    }

    #[test]
    fn schedule_validation() {
        let node = NodeId(0);
        let period = Duration(100);
        let good = NodeSchedule {
            entries: vec![entry(work(0, 0), 0, 10), entry(work(1, 0), 10, 20)],
        };
        assert_eq!(good.validate(node, period), Ok(()));

        let overlap = NodeSchedule {
            entries: vec![entry(work(0, 0), 0, 15), entry(work(1, 0), 10, 20)],
        };
        assert_eq!(
            overlap.validate(node, period),
            Err(PlanError::Overlap(node))
        );

        let too_long = NodeSchedule {
            entries: vec![entry(work(0, 0), 95, 10)],
        };
        assert_eq!(
            too_long.validate(node, period),
            Err(PlanError::ExceedsPeriod(node))
        );
    }

    #[test]
    fn utilization() {
        let s = NodeSchedule {
            entries: vec![entry(work(0, 0), 0, 25), entry(work(1, 0), 50, 25)],
        };
        assert!((s.utilization(Duration(100)) - 0.5).abs() < 1e-9);
        assert_eq!(NodeSchedule::default().utilization(Duration(100)), 0.0);
    }

    fn tiny_plan() -> Plan {
        let mut placement = BTreeMap::new();
        placement.insert(work(0, 0), NodeId(0));
        placement.insert(work(0, 1), NodeId(1));
        placement.insert(ATask::Check { task: TaskId(0) }, NodeId(1));
        let mut schedules = BTreeMap::new();
        schedules.insert(
            NodeId(0),
            NodeSchedule {
                entries: vec![entry(work(0, 0), 0, 10)],
            },
        );
        schedules.insert(
            NodeId(1),
            NodeSchedule {
                entries: vec![
                    entry(work(0, 1), 0, 10),
                    entry(ATask::Check { task: TaskId(0) }, 20, 5),
                ],
            },
        );
        Plan {
            id: PlanId(0),
            fault_set: FaultSet::empty(),
            placement,
            schedules,
            shed: BTreeSet::new(),
            link_alloc: vec![],
        }
    }

    #[test]
    fn plan_queries() {
        let p = tiny_plan();
        assert_eq!(p.node_of(work(0, 0)), Some(NodeId(0)));
        assert_eq!(
            p.replicas_of(TaskId(0)),
            vec![(0, NodeId(0)), (1, NodeId(1))]
        );
        assert_eq!(p.checker_of(TaskId(0)), Some(NodeId(1)));
        assert!(!p.is_shed(TaskId(0)));
        assert_eq!(p.tasks_on(NodeId(1)).len(), 2);
    }

    #[test]
    fn plan_validate_ok_and_errors() {
        let topo = Topology::bus(3, 100, Duration(1));
        let period = Duration(100);
        let p = tiny_plan();
        assert_eq!(p.validate(&topo, period), Ok(()));

        // Placing on a faulty node is rejected.
        let mut bad = tiny_plan();
        bad.fault_set.insert(NodeId(0));
        assert_eq!(
            bad.validate(&topo, period),
            Err(PlanError::PlacedOnFaulty(NodeId(0)))
        );

        // Placement without a schedule slot is rejected.
        let mut bad = tiny_plan();
        bad.placement.insert(work(5, 0), NodeId(0));
        assert_eq!(
            bad.validate(&topo, period),
            Err(PlanError::PlacementMismatch)
        );

        // Unknown node is rejected.
        let mut bad = tiny_plan();
        bad.placement.insert(work(6, 0), NodeId(9));
        assert_eq!(
            bad.validate(&topo, period),
            Err(PlanError::UnknownNode(NodeId(9)))
        );
    }

    fn tiny_strategy() -> Strategy {
        let p0 = tiny_plan();
        let mut p1 = tiny_plan();
        p1.id = PlanId(1);
        p1.fault_set = FaultSet::from_nodes(&[NodeId(2)]);
        let mut index = BTreeMap::new();
        index.insert(FaultSet::empty(), PlanId(0));
        index.insert(FaultSet::from_nodes(&[NodeId(2)]), PlanId(1));
        let mut transitions = BTreeMap::new();
        transitions.insert(
            (PlanId(0), PlanId(1)),
            Transition {
                from: PlanId(0),
                to: PlanId(1),
                trigger: NodeId(2),
                migrations: vec![Migration {
                    atask: work(0, 1),
                    from: Some(NodeId(2)),
                    to: NodeId(1),
                    state_bytes: 128,
                }],
                bound: Duration(500),
            },
        );
        Strategy {
            f: 1,
            r_bound: Duration(1_000),
            period: Duration(100),
            plans: vec![p0, p1],
            index,
            transitions,
        }
    }

    #[test]
    fn strategy_lookup() {
        let s = tiny_strategy();
        assert_eq!(s.initial_plan().id, PlanId(0));
        assert_eq!(
            s.plan_for(&FaultSet::from_nodes(&[NodeId(2)])),
            Some(PlanId(1))
        );
        assert_eq!(s.plan_for(&FaultSet::from_nodes(&[NodeId(1)])), None);
        assert_eq!(s.plan_count(), 2);
    }

    #[test]
    fn best_plan_falls_back_to_largest_subset() {
        let s = tiny_strategy();
        // {n1, n2} is not indexed; {n2} is the largest indexed subset.
        let fs = FaultSet::from_nodes(&[NodeId(1), NodeId(2)]);
        assert_eq!(s.best_plan_for(&fs), PlanId(1));
        // {n1} only has the empty subset indexed.
        let fs = FaultSet::from_nodes(&[NodeId(1)]);
        assert_eq!(s.best_plan_for(&fs), PlanId(0));
    }

    #[test]
    fn transition_metadata() {
        let s = tiny_strategy();
        let t = s.transition(PlanId(0), PlanId(1)).unwrap();
        assert_eq!(t.distance(), 1);
        assert_eq!(t.state_bytes(), 128);
        assert_eq!(s.worst_transition_bound(), Duration(500));
        assert!(s.transition(PlanId(1), PlanId(0)).is_none());
    }

    #[test]
    fn atask_display_and_accessors() {
        assert_eq!(work(3, 1).to_string(), "t3/r1");
        assert_eq!(ATask::Check { task: TaskId(2) }.to_string(), "chk(t2)");
        assert_eq!(ATask::Verify { node: NodeId(1) }.to_string(), "ver(n1)");
        assert_eq!(work(3, 1).work_task(), Some(TaskId(3)));
        assert_eq!(ATask::Verify { node: NodeId(1) }.work_task(), None);
        assert!(work(0, 0).is_work());
    }

    #[test]
    fn strategy_value_semantics() {
        // Serialization proper is stubbed offline (see vendor/README.md);
        // equal construction and faithful clones are what the mode-change
        // convergence argument needs from the strategy value type.
        let s = tiny_strategy();
        assert_eq!(s, tiny_strategy());
        assert_eq!(s, s.clone());
        let mut other = tiny_strategy();
        other.r_bound = Duration(2_000);
        assert_ne!(s, other);
    }
}
