//! Shared vocabulary for the BTR system.
//!
//! This crate defines the types every other crate speaks: simulated time,
//! node/task/link identifiers, the CPS topology of Section 2.1 of the
//! paper ("a set of nodes and a set of links ... finite processing speed
//! ... finite bandwidth"), the periodic dataflow vocabulary, wire messages
//! and their canonical signing encodings, plans and strategies produced by
//! the planner, fault sets, and the evidence records exchanged by the
//! detector and distributor.
//!
//! Keeping these in one bottom-of-the-graph crate lets `detector`,
//! `evidence`, and `modeswitch` stay pure protocol logic, independently
//! testable without the simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compute;
pub mod criticality;
pub mod enc;
pub mod evidence;
pub mod fault;
pub mod ids;
pub mod message;
pub mod plan;
pub mod time;
pub mod topology;

pub use compute::{inputs_digest, sensor_value, task_value, Value};
pub use criticality::Criticality;
pub use evidence::{EvidenceClass, EvidenceFlaw, EvidenceId, EvidenceRecord, SignedOutput};
pub use fault::{FaultKind, FaultSet};
pub use ids::{LinkId, NodeId, PeriodIdx, PlanId, ReplicaIdx, TaskId};
pub use message::{Envelope, Payload};
pub use plan::{
    ATask, LinkAlloc, Migration, NodeSchedule, Plan, PlanError, ScheduleEntry, Strategy, Transition,
};
pub use time::{Duration, Time};
pub use topology::{LinkSpec, NodeSpec, Topology, TopologyBuilder, TopologyError};
