//! Event queues: the legacy inline heap and the arena-backed compact
//! heap.
//!
//! The simulator's queue orders events by `(time, sequence)`. The
//! original implementation moved the full event payload — an
//! [`Envelope`] is ~180 bytes — through every `BinaryHeap` sift, which
//! the ROADMAP flagged as the next per-delivery cost after the hot path
//! went allocation-free. The arena-backed queue stores envelopes (and
//! the rare boxed control actions) in free-listed arenas and keeps only
//! a 16-byte compact event — a tag plus a 4-byte handle — in each heap
//! entry, so sifts move 32-byte entries regardless of payload size.
//!
//! Ordering is by `(at, seq)` in both implementations and `seq` is
//! unique, so pop order — and therefore every simulation — is
//! bit-identical across the two. `SimConfig::legacy_hot_path` selects
//! the legacy queue, preserving the pre-optimisation implementation as
//! a live differential oracle (see `btr_bench::hotpath` and the A/B
//! tests below).

use crate::world::ControlAction;
use crate::TimerId;
use btr_model::{Envelope, NodeId, Time};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A simulator event, as dispatched by the world.
pub(crate) enum Event {
    /// Deliver an envelope to its destination.
    Deliver {
        /// Receiving node.
        dst: NodeId,
        /// The message.
        env: Envelope,
    },
    /// Fire a behaviour timer.
    Timer {
        /// Owning node.
        node: NodeId,
        /// Behaviour-chosen timer id.
        timer: TimerId,
    },
    /// Apply a control-plane intervention.
    Control(ControlAction),
}

/// A free-listed arena of `T` keyed by dense `u32` handles.
pub(crate) struct Arena<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }
}

impl<T> Arena<T> {
    fn insert(&mut self, value: T) -> u32 {
        match self.free.pop() {
            Some(h) => {
                debug_assert!(self.slots[h as usize].is_none());
                self.slots[h as usize] = Some(value);
                h
            }
            None => {
                self.slots.push(Some(value));
                (self.slots.len() - 1) as u32
            }
        }
    }

    fn take(&mut self, h: u32) -> T {
        let v = self.slots[h as usize].take().expect("live arena handle");
        self.free.push(h);
        v
    }

    fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }
}

/// Legacy heap entry: the event payload rides the heap.
pub(crate) struct LegacyScheduled {
    at: Time,
    seq: u64,
    event: Event,
}

impl PartialEq for LegacyScheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for LegacyScheduled {}
impl PartialOrd for LegacyScheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for LegacyScheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Compact event: a tag plus a handle into the side arenas.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CompactEvent {
    Deliver { dst: NodeId, env: u32 },
    Timer { node: NodeId, timer: TimerId },
    Control(u32),
}

/// Arena-mode heap entry: 32 bytes regardless of payload size.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompactScheduled {
    at: Time,
    seq: u64,
    ev: CompactEvent,
}

impl PartialEq for CompactScheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for CompactScheduled {}
impl PartialOrd for CompactScheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CompactScheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The world's event queue, in one of its two modes.
pub(crate) enum EventQueue {
    /// Pre-arena implementation: events (envelopes included) inline in
    /// the heap. Kept behind `SimConfig::legacy_hot_path` as the
    /// measured baseline and differential oracle.
    Legacy(BinaryHeap<Reverse<LegacyScheduled>>),
    /// Arena-backed: compact heap entries, payloads in free-listed
    /// arenas.
    Arena {
        heap: BinaryHeap<Reverse<CompactScheduled>>,
        envs: Arena<Envelope>,
        controls: Arena<ControlAction>,
    },
}

impl EventQueue {
    /// An empty queue in the requested mode.
    pub(crate) fn new(legacy: bool) -> EventQueue {
        if legacy {
            EventQueue::Legacy(BinaryHeap::new())
        } else {
            EventQueue::Arena {
                heap: BinaryHeap::new(),
                envs: Arena::default(),
                controls: Arena::default(),
            }
        }
    }

    /// Schedule `event` at `(at, seq)`.
    pub(crate) fn push(&mut self, at: Time, seq: u64, event: Event) {
        match self {
            EventQueue::Legacy(heap) => heap.push(Reverse(LegacyScheduled { at, seq, event })),
            EventQueue::Arena {
                heap,
                envs,
                controls,
            } => {
                let ev = match event {
                    Event::Deliver { dst, env } => CompactEvent::Deliver {
                        dst,
                        env: envs.insert(env),
                    },
                    Event::Timer { node, timer } => CompactEvent::Timer { node, timer },
                    Event::Control(action) => CompactEvent::Control(controls.insert(action)),
                };
                heap.push(Reverse(CompactScheduled { at, seq, ev }));
            }
        }
    }

    /// The timestamp of the next event, if any.
    pub(crate) fn next_at(&self) -> Option<Time> {
        match self {
            EventQueue::Legacy(heap) => heap.peek().map(|Reverse(s)| s.at),
            EventQueue::Arena { heap, .. } => heap.peek().map(|Reverse(s)| s.at),
        }
    }

    /// Pop the earliest event. Pop order is identical across modes:
    /// both heaps order by `(at, seq)` and `seq` is unique.
    pub(crate) fn pop(&mut self) -> Option<(Time, Event)> {
        match self {
            EventQueue::Legacy(heap) => heap.pop().map(|Reverse(s)| (s.at, s.event)),
            EventQueue::Arena {
                heap,
                envs,
                controls,
            } => heap.pop().map(|Reverse(s)| {
                let event = match s.ev {
                    CompactEvent::Deliver { dst, env } => Event::Deliver {
                        dst,
                        env: envs.take(env),
                    },
                    CompactEvent::Timer { node, timer } => Event::Timer { node, timer },
                    CompactEvent::Control(h) => Event::Control(controls.take(h)),
                };
                (s.at, event)
            }),
        }
    }

    /// Events currently queued.
    pub(crate) fn len(&self) -> usize {
        match self {
            EventQueue::Legacy(heap) => heap.len(),
            EventQueue::Arena { heap, .. } => heap.len(),
        }
    }

    /// Envelopes currently parked in the arena (0 in legacy mode) —
    /// must equal the queued `Deliver` count, pinned by tests.
    pub(crate) fn envelopes_in_flight(&self) -> usize {
        match self {
            EventQueue::Legacy(_) => 0,
            EventQueue::Arena { envs, .. } => envs.live(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btr_model::Payload;

    fn env(tag: u8) -> Envelope {
        Envelope::new(NodeId(0), NodeId(1), Time(0), Payload::Control(tag))
    }

    fn label(e: &Event) -> String {
        match e {
            Event::Deliver { dst, env } => format!("deliver:{dst}:{:?}", env.payload),
            Event::Timer { node, timer } => format!("timer:{node}:{timer}"),
            Event::Control(a) => format!("control:{a:?}"),
        }
    }

    /// Deterministic scramble of pushes; both queue modes must pop the
    /// identical sequence — the queue-level half of the legacy-vs-arena
    /// differential oracle (the world-level half is the bit-identical
    /// cross-mode runs in `btr_bench::hotpath`).
    #[test]
    fn arena_pops_exactly_like_legacy() {
        let mut legacy = EventQueue::new(true);
        let mut arena = EventQueue::new(false);
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for seq in 0..500u64 {
            // Clustered timestamps so ties on `at` are common and the
            // seq tie-break is exercised.
            let at = Time(next() % 50);
            let ev = || match seq % 3 {
                0 => Event::Deliver {
                    dst: NodeId((seq % 7) as u32),
                    env: env((seq % 251) as u8),
                },
                1 => Event::Timer {
                    node: NodeId((seq % 5) as u32),
                    timer: seq,
                },
                _ => Event::Control(ControlAction::Crash(NodeId((seq % 9) as u32))),
            };
            legacy.push(at, seq, ev());
            arena.push(at, seq, ev());
        }
        assert_eq!(legacy.len(), arena.len());
        let mut popped = 0;
        loop {
            let a = legacy.pop();
            let b = arena.pop();
            match (a, b) {
                (None, None) => break,
                (Some((ta, ea)), Some((tb, eb))) => {
                    assert_eq!(ta, tb, "timestamps diverged at pop {popped}");
                    assert_eq!(label(&ea), label(&eb), "events diverged at pop {popped}");
                }
                _ => panic!("queue lengths diverged at pop {popped}"),
            }
            popped += 1;
        }
        assert_eq!(popped, 500);
        assert_eq!(arena.envelopes_in_flight(), 0, "arena leaked envelopes");
    }

    #[test]
    fn arena_recycles_slots() {
        let mut q = EventQueue::new(false);
        for round in 0..10u64 {
            for i in 0..16u64 {
                q.push(
                    Time(i),
                    round * 16 + i,
                    Event::Deliver {
                        dst: NodeId(0),
                        env: env(i as u8),
                    },
                );
            }
            assert_eq!(q.envelopes_in_flight(), 16);
            while q.pop().is_some() {}
            assert_eq!(q.envelopes_in_flight(), 0);
        }
        if let EventQueue::Arena { envs, .. } = &q {
            assert_eq!(envs.slots.len(), 16, "slots must be recycled, not grown");
        }
    }

    #[test]
    fn compact_entries_are_small() {
        // The point of the arena: heap sifts move fixed 32-byte entries,
        // not whole envelopes.
        assert!(std::mem::size_of::<CompactScheduled>() <= 32);
        assert!(
            std::mem::size_of::<LegacyScheduled>() > 4 * std::mem::size_of::<CompactScheduled>()
        );
    }
}
