//! The simulation engine.

use crate::queue::{Event, EventQueue};
use crate::trace::{DropReason, SimMetrics, TraceEvent};
use crate::{NodeBehavior, TimerId};
use btr_crypto::{
    digest64, AuthSuite, KeyStore, NodeKey, SigError, Signer, SplitMix64, Xoshiro256StarStar,
};
use btr_model::{
    Duration, Envelope, EvidenceFlaw, LinkId, NodeId, Payload, PeriodIdx, SignedOutput, TaskId,
    Time, Topology, Value,
};
use btr_net::{Nic, RouteBackend, Routes, SendError};
use btr_obs::{
    Counter, Histogram, Lat, Phase, PhaseMark, Profile, Recorder, Subsystem, TrafficMatrix,
    COUNTER_KINDS,
};
use std::collections::{BTreeMap, BTreeSet};

/// Simulation-wide configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Seed for keys, clock skews, and per-node RNG streams.
    pub seed: u64,
    /// The system period P (guardian refill interval).
    pub period: Duration,
    /// Maximum absolute per-node clock skew (local clocks stay within
    /// this bound of global time — the paper's synchrony assumption).
    pub max_clock_skew: Duration,
    /// Collect a full event trace (adds memory; metrics are always on).
    pub trace: bool,
    /// Message-loss probability in parts per million (per message, or
    /// per shard when FEC is enabled).
    ///
    /// Section 2.1 assumes "losses are rare enough to be ignored" because
    /// link-level FEC masks transmission errors; without `fec` this is
    /// the *residual* post-FEC rate. Deterministic per seed.
    pub loss_ppm: u32,
    /// Link-level forward error correction: `(k, m)` sends every message
    /// as k data + m parity shards (cf. `btr_net::fec::FecCodec`); the
    /// message survives any ≤ m shard losses, at a wire-byte overhead of
    /// (k+m)/k. With this on, `loss_ppm` applies per *shard*.
    pub fec: Option<(u8, u8)>,
    /// Run the pre-optimization per-message path: SHA-256 loss rolls,
    /// per-message route vectors, and allocating signature encoding.
    ///
    /// Kept as the measured baseline for the perf harness (`harness
    /// bench`) and as a differential oracle for the optimized path. Both
    /// modes are deterministic per seed, but their *loss streams* differ
    /// (different samplers); with `loss_ppm == 0` the two modes produce
    /// bit-identical runs, which the determinism tests rely on.
    pub legacy_hot_path: bool,
    /// Hard cap on dispatched events (0 = unlimited). When a run exceeds
    /// the cap, [`World::run_until`] stops dispatching and the world is
    /// marked [`World::truncated`]. Campaign fleets use this as a safety
    /// valve so one pathological schedule (e.g. a message storm) cannot
    /// stall a worker thread; a truncated run is deterministic like any
    /// other, so the cap does not break reproducibility.
    pub max_events: u64,
    /// Which authenticator suite every node's `Signer` and the shared
    /// `KeyStore` use: HMAC-SHA-256 (default, the pinned baseline) or
    /// SipHash-2-4 128-bit tags (same unforgeability inside the
    /// simulation, a fraction of the CPU). Wire sizes are identical
    /// across suites, so two runs differing only in suite are
    /// bit-identical in everything but tag bytes.
    pub auth_suite: AuthSuite,
}

impl SimConfig {
    /// A config with sensible defaults for a 10 ms period system.
    pub fn new(seed: u64) -> SimConfig {
        SimConfig {
            seed,
            period: Duration::from_millis(10),
            max_clock_skew: Duration(20),
            trace: false,
            loss_ppm: 0,
            fec: None,
            legacy_hot_path: false,
            max_events: 0,
            auth_suite: AuthSuite::default(),
        }
    }
}

/// How a node treats traffic it is asked to relay.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ForwardPolicy {
    /// Relay everything (correct behaviour).
    #[default]
    Forward,
    /// Relay nothing (crashed or maliciously silent).
    DropAll,
    /// Drop traffic destined to specific nodes (targeted omission).
    DropTo(BTreeSet<NodeId>),
}

impl ForwardPolicy {
    fn refuses(&self, dst: NodeId) -> bool {
        match self {
            ForwardPolicy::Forward => false,
            ForwardPolicy::DropAll => true,
            ForwardPolicy::DropTo(set) => set.contains(&dst),
        }
    }
}

/// Scheduled control-plane interventions (the fault injector's lever).
pub enum ControlAction {
    /// Fail-stop the node.
    Crash(NodeId),
    /// Change how the node relays traffic.
    SetForwardPolicy(NodeId, ForwardPolicy),
    /// Shift the node's local clock by a signed offset (timing faults).
    ShiftClock(NodeId, i64),
    /// Swap in a new behaviour (e.g. turn a correct node Byzantine).
    ReplaceBehavior(NodeId, Box<dyn NodeBehavior>),
}

impl std::fmt::Debug for ControlAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlAction::Crash(n) => write!(f, "Crash({n})"),
            ControlAction::SetForwardPolicy(n, p) => write!(f, "SetForwardPolicy({n}, {p:?})"),
            ControlAction::ShiftClock(n, d) => write!(f, "ShiftClock({n}, {d})"),
            ControlAction::ReplaceBehavior(n, _) => write!(f, "ReplaceBehavior({n}, ..)"),
        }
    }
}

/// One recorded sink actuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Actuation {
    /// When the actuator fired.
    pub at: Time,
    /// The actuating node.
    pub node: NodeId,
    /// The sink task.
    pub task: TaskId,
    /// The release period the value belongs to.
    pub period: PeriodIdx,
    /// The emitted value.
    pub value: Value,
}

struct NodeSlot {
    behavior: Option<Box<dyn NodeBehavior>>,
    signer: Signer,
    crashed: bool,
    /// Local clock = global + offset (µs, may be negative).
    clock_offset: i64,
    forward: ForwardPolicy,
    /// Legacy per-node RNG: a hash-chain counter (see `NodeCtx::rng_u64`).
    rng_counter: u64,
    /// Optimized per-node RNG stream, seeded once from (seed, node).
    rng: SplitMix64,
}

/// Hot-path observability staging. Counters and latency samples
/// accumulate in these concrete fields — a branch plus an inlined
/// increment per fact when a recorder is installed, nothing when not —
/// and flush into the boxed recorder only when it is taken, keeping
/// virtual dispatch off the per-event path (it cost several percent of
/// hot-path wall time when every fact went through `dyn Recorder`).
/// Phase marks still go straight through: they are rare (a handful per
/// fault) and their observation order is worth keeping.
#[derive(Default)]
struct ObsScratch {
    counts: [u64; COUNTER_KINDS],
    delivery: Histogram,
    timer_lag: Histogram,
    /// Per-subsystem cost profile: event counts always (when a recorder
    /// is installed), wall nanoseconds only under
    /// [`World::set_wall_profiling`].
    profile: Profile,
    /// Per-node / per-link traffic attribution, sized once at
    /// [`World::set_recorder`] (the only allocation).
    traffic: TrafficMatrix,
}

/// The simulated world: platform, network, node behaviours, event queue.
pub struct World {
    topo: Topology,
    cfg: SimConfig,
    nics: Vec<Nic>,
    /// Precomputed all-pairs table below the scale threshold, demand-
    /// driven BFS row cache at or above it (see `btr_net::RouteBackend`).
    routing: RouteBackend,
    slots: Vec<NodeSlot>,
    queue: EventQueue,
    now: Time,
    seq: u64,
    /// Legacy loss sampler state: rolls consumed so far (hash-chain input).
    loss_counter: u64,
    /// Optimized loss sampler: one PRNG stream per world, seeded from the
    /// seed digest.
    loss_rng: Xoshiro256StarStar,
    /// Reusable scratch for canonical signing bytes (send + verify paths).
    scratch: Vec<u8>,
    /// Reusable per-message hop staging buffer: (from, to, link).
    hop_buf: Vec<(NodeId, NodeId, LinkId)>,
    keystore: KeyStore,
    actuations: Vec<Actuation>,
    trace: Vec<TraceEvent>,
    metrics: SimMetrics,
    started: bool,
    truncated: bool,
    /// Out-of-band observability hook (`None` = off, the default).
    ///
    /// Strictly read-only with respect to the simulation: the recorder
    /// receives copies of facts and can never influence event order,
    /// RNG streams, or message bytes, so obs-on and obs-off runs are
    /// bit-identical (pinned by `tests/obs_inert.rs`).
    obs: Option<Box<dyn Recorder>>,
    /// Staged facts for the installed recorder (empty while `obs` is
    /// `None`; flushed and reset by [`World::take_recorder`]).
    obs_scratch: ObsScratch,
    /// Wall-sampling mode: scope the hot-path subsystems with
    /// `Instant::now()` and report the nanoseconds through the profile.
    /// Wall times are machine-dependent, so they are *never* part of the
    /// logical trace or any digest — reporting only. Requires a
    /// recorder; off by default (one predictable branch per scope).
    wall_prof: bool,
    /// Wall nanoseconds attributed to nested scopes inside the current
    /// enclosing scope (lets dispatch/control report *self* time so the
    /// per-subsystem walls stay disjoint and sum to ≤ end-to-end).
    wall_nested_ns: u64,
}

impl World {
    /// Build a world over a topology. All nodes start with the idle
    /// behaviour; install real ones with [`World::set_behavior`].
    pub fn new(topo: Topology, cfg: SimConfig) -> World {
        let n = topo.node_count();
        let keystore = KeyStore::derive_suite(cfg.seed, n, cfg.auth_suite);
        let nics = topo
            .links()
            .iter()
            .map(|l| Nic::new(l.clone(), cfg.period, &BTreeMap::new()))
            .collect();
        let routing = RouteBackend::auto(&topo);
        let slots = (0..n)
            .map(|i| {
                let id = i as u32;
                let span = 2 * cfg.max_clock_skew.as_micros() + 1;
                let skew = (digest64(&[b"btr-skew", &cfg.seed.to_be_bytes(), &id.to_be_bytes()])
                    % span) as i64
                    - cfg.max_clock_skew.as_micros() as i64;
                NodeSlot {
                    behavior: Some(Box::new(crate::IdleBehavior)),
                    signer: Signer::new(NodeKey::derive_suite(cfg.seed, id, cfg.auth_suite)),
                    crashed: false,
                    clock_offset: skew,
                    forward: ForwardPolicy::Forward,
                    rng_counter: 0,
                    rng: SplitMix64::from_parts(&[
                        b"btr-node-rng",
                        &cfg.seed.to_be_bytes(),
                        &id.to_be_bytes(),
                    ]),
                }
            })
            .collect();
        let loss_rng = Xoshiro256StarStar::from_parts(&[b"btr-loss", &cfg.seed.to_be_bytes()]);
        let queue = EventQueue::new(cfg.legacy_hot_path);
        World {
            topo,
            cfg,
            nics,
            routing,
            slots,
            queue,
            now: Time::ZERO,
            seq: 0,
            loss_counter: 0,
            loss_rng,
            scratch: Vec::new(),
            hop_buf: Vec::new(),
            keystore,
            actuations: Vec::new(),
            trace: Vec::new(),
            metrics: SimMetrics::default(),
            started: false,
            truncated: false,
            obs: None,
            obs_scratch: ObsScratch::default(),
            wall_prof: false,
            wall_nested_ns: 0,
        }
    }

    /// Install an out-of-band recorder (histograms, counters, phase
    /// marks). Observation can never flow back into protocol state —
    /// see the field docs — so this is safe to enable on any run.
    pub fn set_recorder(&mut self, r: Box<dyn Recorder>) {
        // Flush staged facts into any outgoing recorder first so a swap
        // never leaks one observation window's counts into the next.
        let _ = self.take_recorder();
        self.obs = Some(r);
        // Size the traffic matrix once, here — every hot-path record
        // after this is an indexed increment, no allocation.
        self.obs_scratch.traffic =
            TrafficMatrix::new(self.topo.node_count(), self.topo.links().len());
    }

    /// Enable or disable wall-clock sampling of the hot-path subsystem
    /// scopes (routing, sign, verify, audit, dispatch, control). Wall
    /// times land in the profile's nanosecond ledger and are reported
    /// only — they never enter the logical trace or any digest, because
    /// they are machine- and load-dependent. Count profiles are always
    /// collected when a recorder is installed; this switch adds timing.
    pub fn set_wall_profiling(&mut self, on: bool) {
        self.wall_prof = on;
    }

    /// Start a wall-sampling scope (None unless wall profiling is on
    /// and a recorder is installed).
    #[inline]
    fn wall_start(&self) -> Option<std::time::Instant> {
        if self.wall_prof && self.obs.is_some() {
            Some(std::time::Instant::now())
        } else {
            None
        }
    }

    /// Close a leaf wall-sampling scope: charge the subsystem and add
    /// the span to the enclosing scope's nested ledger.
    #[inline]
    fn wall_end(&mut self, s: Subsystem, t0: Option<std::time::Instant>) {
        if let Some(t0) = t0 {
            let ns = t0.elapsed().as_nanos() as u64;
            self.obs_scratch.profile.add_wall(s, ns);
            self.wall_nested_ns = self.wall_nested_ns.saturating_add(ns);
        }
    }

    /// Close an *enclosing* wall-sampling scope (dispatch, control):
    /// charge only the self time — elapsed minus whatever nested leaf
    /// scopes already claimed — so subsystem walls stay disjoint.
    #[inline]
    fn wall_end_exclusive(&mut self, s: Subsystem, t0: Option<std::time::Instant>, nested0: u64) {
        if let Some(t0) = t0 {
            let total = t0.elapsed().as_nanos() as u64;
            let nested = self.wall_nested_ns.saturating_sub(nested0);
            self.obs_scratch
                .profile
                .add_wall(s, total.saturating_sub(nested));
        }
    }

    /// Count one subsystem invocation (no-op without a recorder).
    #[inline]
    fn prof(&mut self, s: Subsystem) {
        if self.obs.is_some() {
            self.obs_scratch.profile.bump(s);
        }
    }

    /// Remove and return the installed recorder (to read its contents
    /// after a run). Staged hot-path facts are flushed into it here.
    pub fn take_recorder(&mut self) -> Option<Box<dyn Recorder>> {
        let mut r = self.obs.take()?;
        let s = std::mem::take(&mut self.obs_scratch);
        for c in Counter::all() {
            let n = s.counts[c as usize];
            if n > 0 {
                r.count(c, n);
            }
        }
        if s.delivery.count() > 0 {
            r.latencies(Lat::Delivery, &s.delivery);
        }
        if s.timer_lag.count() > 0 {
            r.latencies(Lat::TimerLag, &s.timer_lag);
        }
        if !s.profile.is_empty() {
            r.profile(&s.profile);
        }
        if !s.traffic.is_empty() {
            r.traffic(&s.traffic);
        }
        Some(r)
    }

    /// Install a node's behaviour (before or after start).
    pub fn set_behavior(&mut self, node: NodeId, behavior: Box<dyn NodeBehavior>) {
        self.slots[node.index()].behavior = Some(behavior);
    }

    /// The platform topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The shared verification keystore.
    pub fn keystore(&self) -> &KeyStore {
        &self.keystore
    }

    /// The authenticator suite this world's signers and keystore use.
    pub fn auth_suite(&self) -> AuthSuite {
        self.cfg.auth_suite
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The system period.
    pub fn period(&self) -> Duration {
        self.cfg.period
    }

    /// Recorded actuations so far.
    pub fn actuations(&self) -> &[Actuation] {
        &self.actuations
    }

    /// The run's canonical logical trace (the cross-substrate
    /// equivalence oracle; see [`crate::trace::LogicalTrace`]).
    pub fn logical_trace(&self) -> crate::trace::LogicalTrace {
        crate::trace::LogicalTrace::from_actuations(&self.actuations)
    }

    /// Aggregate metrics.
    pub fn metrics(&self) -> &SimMetrics {
        &self.metrics
    }

    /// The trace (empty unless `cfg.trace`).
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// True if the node has crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.slots[node.index()].crashed
    }

    /// True if a run hit the `max_events` cap and stopped dispatching.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Heap bytes resident for routing state — O(n² · diameter) for the
    /// precomputed table, near-linear for the demand-driven row cache.
    /// The scale harness gates this sub-quadratic at n = 1000.
    pub fn routing_resident_bytes(&self) -> usize {
        self.routing.resident_bytes()
    }

    /// The selected routing backend ("precomputed" or "demand").
    pub fn routing_kind(&self) -> &'static str {
        self.routing.kind()
    }

    /// Events currently queued (diagnostics).
    pub fn queued_events(&self) -> usize {
        self.queue.len()
    }

    /// Envelopes parked in the event arena awaiting delivery (always 0
    /// in legacy mode, which carries envelopes inline in the heap). Must
    /// track the queued `Deliver` count exactly — a nonzero value after
    /// the queue drains would be an arena leak.
    pub fn envelopes_in_flight(&self) -> usize {
        self.queue.envelopes_in_flight()
    }

    /// Pre-materialise routing state toward the given destinations (the
    /// plan-derived traffic matrix; see `PlanView::route_demand`). A
    /// no-op for the precomputed backend, which is always warm; purely a
    /// latency optimisation for the demand backend — rows are built
    /// deterministically on first use either way.
    pub fn warm_routes<I: IntoIterator<Item = NodeId>>(&mut self, dsts: I) {
        self.routing.warm(dsts);
    }

    /// Borrow a node's behaviour for inspection (None while dispatching).
    pub fn behavior(&self, node: NodeId) -> Option<&dyn crate::NodeBehavior> {
        self.slots[node.index()].behavior.as_deref()
    }

    /// Total guardian-denied bytes for a node across all links.
    pub fn guardian_drops(&self, node: NodeId) -> u64 {
        self.nics.iter().map(|n| n.guardian_drops(node)).sum()
    }

    /// Schedule a control action at an absolute time.
    pub fn schedule_control(&mut self, at: Time, action: ControlAction) {
        self.push(at, Event::Control(action));
    }

    /// Call `on_start` on every behaviour (in node-id order) and mark the
    /// world runnable.
    pub fn start(&mut self) {
        assert!(!self.started, "world already started");
        self.started = true;
        for i in 0..self.slots.len() {
            self.dispatch_start(NodeId(i as u32));
        }
    }

    /// Run until the queue is empty or `t` is reached; time advances to `t`.
    ///
    /// If `cfg.max_events` is set and the run reaches it, dispatching
    /// stops immediately and [`World::truncated`] turns true (the cap is
    /// checked per event, so runs are still bit-deterministic).
    pub fn run_until(&mut self, t: Time) {
        assert!(self.started, "call start() first");
        loop {
            let due = matches!(self.queue.next_at(), Some(at) if at <= t);
            if !due {
                break;
            }
            // Check the cap only when another event would dispatch: a run
            // that *finishes* with exactly `max_events` events was not
            // cut short and must not be flagged.
            if self.cfg.max_events > 0 && self.metrics.events >= self.cfg.max_events {
                self.truncated = true;
                break;
            }
            let (at, event) = self.queue.pop().expect("peeked");
            self.now = at;
            self.metrics.events += 1;
            if self.obs.is_some() {
                self.obs_scratch.counts[Counter::Events as usize] += 1;
                self.obs_scratch.profile.bump(Subsystem::Queue);
            }
            match event {
                Event::Deliver { dst, env } => self.dispatch_message(dst, env),
                Event::Timer { node, timer } => self.dispatch_timer(node, timer),
                Event::Control(action) => self.apply_control(action),
            }
        }
        if t > self.now {
            self.now = t;
        }
    }

    /// Run for a span from the current time.
    pub fn run_for(&mut self, d: Duration) {
        let t = self.now + d;
        self.run_until(t);
    }

    fn push(&mut self, at: Time, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        if self.obs.is_some() {
            self.obs_scratch.profile.bump(Subsystem::Queue);
        }
        self.queue.push(at, seq, event);
    }

    fn apply_control(&mut self, action: ControlAction) {
        if self.obs.is_some() {
            self.obs_scratch.counts[Counter::Controls as usize] += 1;
            self.obs_scratch.profile.bump(Subsystem::ModeSwitch);
        }
        let t0 = self.wall_start();
        let nested0 = self.wall_nested_ns;
        self.apply_control_inner(action);
        self.wall_end_exclusive(Subsystem::ModeSwitch, t0, nested0);
    }

    fn apply_control_inner(&mut self, action: ControlAction) {
        match action {
            ControlAction::Crash(n) => {
                let slot = &mut self.slots[n.index()];
                if !slot.crashed {
                    slot.crashed = true;
                    slot.forward = ForwardPolicy::DropAll;
                    if self.cfg.trace {
                        self.trace.push(TraceEvent::Crashed {
                            at: self.now,
                            node: n,
                        });
                    }
                    if let Some(obs) = self.obs.as_deref_mut() {
                        obs.mark(PhaseMark {
                            observer: n,
                            subject: n,
                            phase: Phase::FaultActive,
                            at: self.now,
                        });
                    }
                    self.heal_routes();
                }
            }
            ControlAction::SetForwardPolicy(n, p) => {
                self.slots[n.index()].forward = p;
            }
            ControlAction::ShiftClock(n, d) => {
                self.slots[n.index()].clock_offset += d;
            }
            ControlAction::ReplaceBehavior(n, b) => {
                self.slots[n.index()].behavior = Some(b);
                // A fresh behaviour gets a start callback so it can set
                // up timers.
                self.dispatch_start(n);
            }
        }
    }

    fn dispatch_start(&mut self, node: NodeId) {
        if self.slots[node.index()].crashed {
            return;
        }
        let mut behavior = match self.slots[node.index()].behavior.take() {
            Some(b) => b,
            None => return,
        };
        let mut ctx = NodeCtx::new(self, node);
        behavior.on_start(&mut ctx);
        self.slots[node.index()].behavior.get_or_insert(behavior);
    }

    fn dispatch_message(&mut self, dst: NodeId, env: Envelope) {
        if self.slots[dst.index()].crashed {
            self.metrics.drops_other += 1;
            if self.obs.is_some() {
                // Attribute the drop to the (real, in-range) receiver;
                // env.src is a claim a Byzantine sender controls.
                self.obs_scratch.traffic.record_drop(dst.index());
            }
            if self.cfg.trace {
                self.trace.push(TraceEvent::Dropped {
                    at: self.now,
                    src: env.src,
                    dst,
                    reason: DropReason::ReceiverCrashed,
                });
            }
            return;
        }
        self.metrics.msgs_delivered += 1;
        if self.obs.is_some() {
            self.obs_scratch.counts[Counter::Delivers as usize] += 1;
            self.obs_scratch.profile.bump(Subsystem::Dispatch);
            self.obs_scratch.traffic.record_rx(dst.index());
        }
        if self.cfg.trace {
            self.trace.push(TraceEvent::Delivered {
                at: self.now,
                src: env.src,
                dst,
                label: env.payload.label(),
            });
        }
        let mut behavior = match self.slots[dst.index()].behavior.take() {
            Some(b) => b,
            None => return,
        };
        let t0 = self.wall_start();
        let nested0 = self.wall_nested_ns;
        let mut ctx = NodeCtx::new(self, dst);
        behavior.on_message(&mut ctx, env);
        self.wall_end_exclusive(Subsystem::Dispatch, t0, nested0);
        self.slots[dst.index()].behavior.get_or_insert(behavior);
    }

    fn dispatch_timer(&mut self, node: NodeId, timer: TimerId) {
        if self.slots[node.index()].crashed {
            return;
        }
        self.metrics.timers += 1;
        if self.obs.is_some() {
            self.obs_scratch.counts[Counter::Timers as usize] += 1;
            self.obs_scratch.profile.bump(Subsystem::Dispatch);
            // Sim timers fire exactly when armed; the lag histogram
            // exists for symmetry with the live substrate, where it
            // measures scheduling-induced dispatch lateness.
            self.obs_scratch.timer_lag.record(0);
        }
        let mut behavior = match self.slots[node.index()].behavior.take() {
            Some(b) => b,
            None => return,
        };
        let t0 = self.wall_start();
        let nested0 = self.wall_nested_ns;
        let mut ctx = NodeCtx::new(self, node);
        behavior.on_timer(&mut ctx, timer);
        self.wall_end_exclusive(Subsystem::Dispatch, t0, nested0);
        self.slots[node.index()].behavior.get_or_insert(behavior);
    }

    /// One transmission-loss roll in `0..1_000_000`, deterministic per
    /// seed. Legacy mode reproduces the original hash-chain sampler (one
    /// full SHA-256 compression per roll); the optimized sampler draws
    /// from a xoshiro256** stream seeded once from the seed digest.
    #[inline]
    fn loss_roll(&mut self) -> u32 {
        if self.cfg.legacy_hot_path {
            self.loss_counter += 1;
            (digest64(&[
                b"btr-loss",
                &self.cfg.seed.to_be_bytes(),
                &self.loss_counter.to_be_bytes(),
            ]) % 1_000_000) as u32
        } else {
            self.loss_rng.next_below(1_000_000) as u32
        }
    }

    /// Route and transmit an envelope from `src`. Returns the delivery
    /// time on success (mainly for tests; behaviours ignore it).
    ///
    /// This is the simulator's hottest function: one call per message. In
    /// the default mode it performs no heap allocation — the route is a
    /// borrow of the routing cache staged into a reusable hop buffer, and
    /// loss sampling is a few arithmetic ops per roll.
    fn transmit(&mut self, src: NodeId, env: Envelope) -> Option<Time> {
        let bytes = env.wire_size();
        let dst = env.dst;
        // The signed/unsigned lane split for the traffic matrix: signed
        // traffic is the expensive lane (sign at the source, verify at
        // sinks), so the shard analyzer wants to see where it flows.
        let signed = env.sig.is_some();
        if self.slots[src.index()].crashed {
            self.record_drop(src, dst, DropReason::SenderCrashed);
            return None;
        }
        if self.cfg.trace {
            self.trace.push(TraceEvent::Sent {
                at: self.now,
                src,
                dst,
                label: env.payload.label(),
                bytes,
            });
        }
        if src == dst {
            // Loopback: deliver immediately (no network traversal).
            self.metrics.msgs_sent += 1;
            if self.obs.is_some() {
                self.obs_scratch.counts[Counter::Sends as usize] += 1;
                self.obs_scratch.traffic.record_tx(src.index());
            }
            let at = self.now;
            self.push(at, Event::Deliver { dst, env });
            return Some(at);
        }

        // Resolve the route into the reusable hop buffer. Legacy mode
        // rebuilds the path vector per message and looks up each hop's
        // link, exactly like the pre-cache implementation.
        self.prof(Subsystem::Routing);
        let route_t0 = self.wall_start();
        let mut hops = std::mem::take(&mut self.hop_buf);
        hops.clear();
        if self.cfg.legacy_hot_path {
            match self.routing.path_vec(src, dst) {
                None => {
                    self.hop_buf = hops;
                    self.wall_end(Subsystem::Routing, route_t0);
                    self.record_drop(src, dst, DropReason::NoRoute);
                    return None;
                }
                Some(path) => {
                    for pair in path.windows(2) {
                        let link = self
                            .topo
                            .link_between(pair[0], pair[1])
                            .expect("routing path uses existing links");
                        hops.push((pair[0], pair[1], link));
                    }
                }
            }
        } else {
            match self.routing.path_and_links(src, dst) {
                None => {
                    self.hop_buf = hops;
                    self.wall_end(Subsystem::Routing, route_t0);
                    self.record_drop(src, dst, DropReason::NoRoute);
                    return None;
                }
                Some((nodes, links)) => {
                    for (i, &link) in links.iter().enumerate() {
                        hops.push((nodes[i], nodes[i + 1], link));
                    }
                }
            }
        }

        self.wall_end(Subsystem::Routing, route_t0);

        let delivery = self.transmit_over(&hops, src, dst, bytes, signed);
        self.hop_buf = hops;
        let t = delivery?;
        self.metrics.msgs_sent += 1;
        if self.obs.is_some() {
            self.obs_scratch.counts[Counter::Sends as usize] += 1;
            self.obs_scratch.delivery.record((t - self.now).as_micros());
            self.obs_scratch.traffic.record_tx(src.index());
        }
        self.push(t, Event::Deliver { dst, env });
        Some(t)
    }

    /// Loss-sample and drive a message across its staged hops. Returns
    /// the delivery time, or `None` (with the drop recorded) if any stage
    /// rejects it.
    fn transmit_over(
        &mut self,
        hops: &[(NodeId, NodeId, LinkId)],
        src: NodeId,
        dst: NodeId,
        bytes: u32,
        signed: bool,
    ) -> Option<Time> {
        // Transmission loss, deterministic per seed. With FEC enabled the
        // message is sharded: it survives up to m shard losses and pays a
        // (k+m)/k wire overhead; without FEC a single roll decides.
        let mut bytes = bytes;
        if self.cfg.loss_ppm > 0 {
            match self.cfg.fec {
                None => {
                    if self.loss_roll() < self.cfg.loss_ppm {
                        self.record_drop(src, dst, DropReason::TransmissionLoss);
                        return None;
                    }
                }
                Some((k, m)) => {
                    let k = k.max(1);
                    let mut lost = 0u8;
                    for _ in 0..(k + m) {
                        if self.loss_roll() < self.cfg.loss_ppm {
                            lost += 1;
                        }
                    }
                    if lost > m {
                        self.record_drop(src, dst, DropReason::TransmissionLoss);
                        return None;
                    }
                    bytes = bytes.saturating_mul((k + m) as u32) / k as u32;
                }
            }
        }
        let mut t = self.now;
        for &(a, _b, link) in hops {
            // Relay policy applies to intermediate hops only.
            if a != src {
                let slot = &self.slots[a.index()];
                if slot.crashed || slot.forward.refuses(dst) {
                    self.metrics.drops_forward += 1;
                    if self.obs.is_some() {
                        self.obs_scratch.traffic.record_drop(src.index());
                    }
                    if self.cfg.trace {
                        self.trace.push(TraceEvent::Dropped {
                            at: t,
                            src,
                            dst,
                            reason: DropReason::ForwardRefused(a),
                        });
                    }
                    return None;
                }
            }
            match self.nics[link.index()].send(t, a, bytes) {
                Ok(arrival) => t = arrival,
                Err(SendError::AllocationExhausted) => {
                    self.metrics.drops_guardian += 1;
                    if self.obs.is_some() {
                        self.obs_scratch.traffic.record_drop(src.index());
                    }
                    if self.cfg.trace {
                        self.trace.push(TraceEvent::Dropped {
                            at: t,
                            src,
                            dst,
                            reason: DropReason::GuardianDenied,
                        });
                    }
                    return None;
                }
                Err(SendError::NotAttached) => {
                    unreachable!("path hop not attached to its link")
                }
            }
            self.metrics.bytes_sent += bytes as u64;
            if self.obs.is_some() {
                self.obs_scratch
                    .traffic
                    .record_link(link.index(), bytes as u64, signed);
            }
        }
        Some(t)
    }

    /// Recompute routes around every crashed node. A dead node on a
    /// point-to-point link loses carrier, so its neighbours deterministically
    /// stop relaying through it; traffic *addressed* to it still routes and
    /// is dropped at the receiver (same attribution as before). On a bus
    /// (single shared link) this is a no-op, so crash-free runs and
    /// single-hop platforms are bit-identical to the pre-heal behaviour.
    ///
    /// Cost is backend-dependent: the precomputed table rebuilds all
    /// pairs (O(n² · diameter)); the demand backend just installs the new
    /// avoid set and drops its cached rows, re-materialising on demand.
    fn heal_routes(&mut self) {
        let crashed: BTreeSet<NodeId> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.crashed)
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        self.routing.recompute(&self.topo, &crashed, true);
    }

    fn record_drop(&mut self, src: NodeId, dst: NodeId, reason: DropReason) {
        match reason {
            DropReason::GuardianDenied => self.metrics.drops_guardian += 1,
            DropReason::ForwardRefused(_) => self.metrics.drops_forward += 1,
            _ => self.metrics.drops_other += 1,
        }
        if self.obs.is_some() {
            self.obs_scratch.traffic.record_drop(src.index());
        }
        if self.cfg.trace {
            self.trace.push(TraceEvent::Dropped {
                at: self.now,
                src,
                dst,
                reason,
            });
        }
    }
}

/// The substrate a [`NodeCtx`] acts on.
///
/// Node behaviours never touch this trait directly — they see the
/// concrete `NodeCtx` wrapper, whose API is identical whether the
/// backend is the discrete-event [`World`] or a live thread-per-node
/// actor (`btr-node`). That is what makes the simulator usable as a
/// trace oracle for the live runtime: the *same* protocol code runs on
/// both substrates, and only the event transport underneath differs.
///
/// Methods take the acting node explicitly; the backend enforces key
/// secrecy by construction because `signer(node)` is only ever called
/// with the id the dispatcher bound into the `NodeCtx`.
pub trait CtxBackend {
    /// Global time (simulation time, or the live runtime's logical clock).
    fn now(&self) -> Time;
    /// The node's local clock reading (global time + bounded skew).
    fn local_now(&self, node: NodeId) -> Time;
    /// The system period.
    fn period(&self) -> Duration;
    /// The node's own signer.
    fn signer(&self, node: NodeId) -> &Signer;
    /// The shared verification keystore.
    fn keystore(&self) -> &KeyStore;
    /// Sign a payload as `src` and transmit it to `dst`.
    fn send(&mut self, src: NodeId, dst: NodeId, payload: Payload);
    /// Transmit a pre-built envelope, charging `src`'s allocation.
    fn send_env(&mut self, src: NodeId, env: Envelope);
    /// Verify an envelope signature (scratch-buffer reuse inside).
    fn verify_env(&mut self, env: &Envelope) -> Result<(), SigError>;
    /// Verify a signed task output (scratch-buffer reuse inside).
    fn verify_output(&mut self, output: &SignedOutput) -> Result<(), EvidenceFlaw>;
    /// Arm a timer for `node` at an absolute global time.
    fn set_timer_at(&mut self, node: NodeId, at: Time, timer: TimerId);
    /// Record a sink actuation by `node`.
    fn actuate(&mut self, node: NodeId, task: TaskId, period: PeriodIdx, value: Value);
    /// Fail-stop `node` immediately.
    fn crash_self(&mut self, node: NodeId);
    /// Advance `node`'s deterministic pseudo-random stream.
    fn rng_u64(&mut self, node: NodeId) -> u64;
    /// Observe a recovery-phase boundary (out-of-band).
    ///
    /// Defaults to a no-op so backends without an observability layer
    /// pay nothing. Implementations must treat the mark as write-only
    /// telemetry: nothing about it may flow back into protocol state,
    /// timing, or RNG streams — that is what keeps obs-on and obs-off
    /// runs bit-identical.
    fn observe(&mut self, _mark: PhaseMark) {}
}

impl CtxBackend for World {
    fn now(&self) -> Time {
        self.now
    }

    fn local_now(&self, node: NodeId) -> Time {
        let t = self.now.as_micros() as i64 + self.slots[node.index()].clock_offset;
        Time(t.max(0) as u64)
    }

    fn period(&self) -> Duration {
        self.cfg.period
    }

    fn signer(&self, node: NodeId) -> &Signer {
        &self.slots[node.index()].signer
    }

    fn keystore(&self) -> &KeyStore {
        &self.keystore
    }

    fn send(&mut self, src: NodeId, dst: NodeId, payload: Payload) {
        self.prof(Subsystem::CryptoSign);
        let t0 = self.wall_start();
        let env = Envelope::new(src, dst, self.local_now(src), payload);
        let env = if self.cfg.legacy_hot_path {
            // Pre-optimization reference: allocate the signing bytes.
            env.signed(&self.slots[src.index()].signer)
        } else {
            // Write the canonical signing bytes into the world's scratch
            // buffer; steady-state sends perform no heap allocation.
            let mut scratch = std::mem::take(&mut self.scratch);
            let env = env.signed_with(&self.slots[src.index()].signer, &mut scratch);
            self.scratch = scratch;
            env
        };
        self.wall_end(Subsystem::CryptoSign, t0);
        self.transmit(src, env);
    }

    fn send_env(&mut self, src: NodeId, env: Envelope) {
        self.transmit(src, env);
    }

    fn verify_env(&mut self, env: &Envelope) -> Result<(), SigError> {
        self.prof(Subsystem::CryptoVerify);
        let t0 = self.wall_start();
        let mut scratch = std::mem::take(&mut self.scratch);
        let r = env.verify_with(&self.keystore, &mut scratch);
        self.scratch = scratch;
        self.wall_end(Subsystem::CryptoVerify, t0);
        r
    }

    fn verify_output(&mut self, output: &SignedOutput) -> Result<(), EvidenceFlaw> {
        self.prof(Subsystem::Audit);
        let t0 = self.wall_start();
        let mut scratch = std::mem::take(&mut self.scratch);
        let r = output.verify_with(&self.keystore, &mut scratch);
        self.scratch = scratch;
        self.wall_end(Subsystem::Audit, t0);
        r
    }

    fn set_timer_at(&mut self, node: NodeId, at: Time, timer: TimerId) {
        let at = at.max(self.now);
        self.push(at, Event::Timer { node, timer });
    }

    fn actuate(&mut self, node: NodeId, task: TaskId, period: PeriodIdx, value: Value) {
        self.metrics.actuations += 1;
        if self.obs.is_some() {
            self.obs_scratch.counts[Counter::Actuations as usize] += 1;
        }
        let a = Actuation {
            at: self.now,
            node,
            task,
            period,
            value,
        };
        self.actuations.push(a);
        if self.cfg.trace {
            self.trace.push(TraceEvent::Actuated {
                at: a.at,
                node: a.node,
                task: a.task,
                period: a.period,
                value: a.value,
            });
        }
    }

    fn crash_self(&mut self, node: NodeId) {
        self.prof(Subsystem::ModeSwitch);
        let t0 = self.wall_start();
        let slot = &mut self.slots[node.index()];
        slot.crashed = true;
        slot.forward = ForwardPolicy::DropAll;
        if self.cfg.trace {
            self.trace.push(TraceEvent::Crashed { at: self.now, node });
        }
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.mark(PhaseMark {
                observer: node,
                subject: node,
                phase: Phase::FaultActive,
                at: self.now,
            });
        }
        self.heal_routes();
        self.wall_end(Subsystem::ModeSwitch, t0);
    }

    fn observe(&mut self, mark: PhaseMark) {
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.mark(mark);
        }
    }

    fn rng_u64(&mut self, node: NodeId) -> u64 {
        let slot = &mut self.slots[node.index()];
        if self.cfg.legacy_hot_path {
            slot.rng_counter += 1;
            digest64(&[
                b"btr-node-rng",
                &self.cfg.seed.to_be_bytes(),
                &node.0.to_be_bytes(),
                &slot.rng_counter.to_be_bytes(),
            ])
        } else {
            slot.rng.next_u64()
        }
    }
}

/// The API a node behaviour uses to act on the world.
///
/// A thin, substrate-agnostic view over a [`CtxBackend`]: the simulator
/// and the live runtime construct one per dispatch, and behaviours are
/// oblivious to which is underneath.
pub struct NodeCtx<'w> {
    backend: &'w mut dyn CtxBackend,
    node: NodeId,
}

impl<'w> NodeCtx<'w> {
    /// Bind a context for `node` over a backend (used by dispatchers,
    /// not behaviours).
    pub fn new(backend: &'w mut dyn CtxBackend, node: NodeId) -> NodeCtx<'w> {
        NodeCtx { backend, node }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// Global simulation time. (The paper assumes synchronised clocks;
    /// use [`NodeCtx::local_now`] for the node's skewed local view.)
    pub fn now(&self) -> Time {
        self.backend.now()
    }

    /// The node's local clock reading (global time + bounded skew).
    pub fn local_now(&self) -> Time {
        self.backend.local_now(self.node)
    }

    /// The system period.
    pub fn period(&self) -> Duration {
        self.backend.period()
    }

    /// This node's signer. Only the owning node can reach its signer —
    /// the simulator-enforced key secrecy that makes evidence sound.
    pub fn signer(&self) -> &Signer {
        self.backend.signer(self.node)
    }

    /// The shared verification keystore.
    pub fn keystore(&self) -> &KeyStore {
        self.backend.keystore()
    }

    /// Sign and send a payload to `dst`.
    pub fn send(&mut self, dst: NodeId, payload: Payload) {
        self.backend.send(self.node, dst, payload);
    }

    /// Verify an envelope signature using the backend's reusable scratch
    /// buffer (equivalent to `env.verify(ctx.keystore())`, without the
    /// per-call allocation).
    pub fn verify_env(&mut self, env: &Envelope) -> Result<(), SigError> {
        self.backend.verify_env(env)
    }

    /// Verify a signed task output using the backend's reusable scratch
    /// buffer (equivalent to `output.verify(ctx.keystore())`).
    pub fn verify_output(&mut self, output: &SignedOutput) -> Result<(), EvidenceFlaw> {
        self.backend.verify_output(output)
    }

    /// Send an arbitrary envelope (Byzantine behaviours use this to spoof
    /// headers or send unsigned traffic). The network still charges the
    /// *actual* sender's bandwidth allocation.
    pub fn send_env(&mut self, env: Envelope) {
        self.backend.send_env(self.node, env);
    }

    /// Set a timer to fire after `delay` (global time base).
    pub fn set_timer(&mut self, delay: Duration, timer: TimerId) {
        let at = self.backend.now() + delay;
        self.backend.set_timer_at(self.node, at, timer);
    }

    /// Set a timer to fire at an absolute global time (clamped to now).
    pub fn set_timer_at(&mut self, at: Time, timer: TimerId) {
        self.backend.set_timer_at(self.node, at, timer);
    }

    /// Record a sink actuation (an output to the physical world).
    pub fn actuate(&mut self, task: TaskId, period: PeriodIdx, value: Value) {
        self.backend.actuate(self.node, task, period, value);
    }

    /// Fail-stop this node immediately.
    pub fn crash_self(&mut self) {
        self.backend.crash_self(self.node);
    }

    /// A deterministic per-node pseudo-random stream.
    ///
    /// Distinct per node and per seed. The legacy mode reproduces the
    /// original hash-chain stream (one SHA-256 per draw); the optimized
    /// mode advances a SplitMix64 stream seeded once per node.
    pub fn rng_u64(&mut self) -> u64 {
        self.backend.rng_u64(self.node)
    }

    /// Observe a recovery-phase boundary concerning `subject`, as seen
    /// by this node at the current global time. Write-only telemetry:
    /// a no-op unless the backend has a recorder installed, and inert
    /// with respect to protocol state either way.
    pub fn observe(&mut self, phase: Phase, subject: NodeId) {
        let at = self.backend.now();
        self.backend.observe(PhaseMark {
            observer: self.node,
            subject,
            phase,
            at,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btr_model::Payload;

    /// Echoes every control message back to its (claimed) source.
    struct Echo;
    impl NodeBehavior for Echo {
        fn on_start(&mut self, _ctx: &mut NodeCtx<'_>) {}
        fn on_message(&mut self, ctx: &mut NodeCtx<'_>, env: Envelope) {
            if let Payload::Control(tag) = env.payload {
                if tag < 10 {
                    ctx.send(env.src, Payload::Control(tag + 1));
                }
            }
        }
        fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _t: TimerId) {}
    }

    /// Sends one message to node 1 at start, records deliveries.
    struct Starter {
        sent: bool,
    }
    impl NodeBehavior for Starter {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            if !self.sent {
                ctx.send(NodeId(1), Payload::Control(0));
                self.sent = true;
            }
        }
        fn on_message(&mut self, ctx: &mut NodeCtx<'_>, env: Envelope) {
            if let Payload::Control(tag) = env.payload {
                if tag < 10 {
                    ctx.send(env.src, Payload::Control(tag + 1));
                }
            }
        }
        fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _t: TimerId) {}
    }

    fn world(n: usize) -> World {
        let topo = Topology::bus(n, 10_000, Duration(10));
        let mut cfg = SimConfig::new(1);
        cfg.trace = true;
        World::new(topo, cfg)
    }

    #[test]
    fn ping_pong_until_ttl() {
        let mut w = world(2);
        w.set_behavior(NodeId(0), Box::new(Starter { sent: false }));
        w.set_behavior(NodeId(1), Box::new(Echo));
        w.start();
        w.run_until(Time::from_millis(100));
        // Tags 0..=10 = 11 messages.
        assert_eq!(w.metrics().msgs_sent, 11);
        assert_eq!(w.metrics().msgs_delivered, 11);
    }

    #[test]
    fn determinism_same_seed() {
        let run = || {
            let mut w = world(4);
            w.set_behavior(NodeId(0), Box::new(Starter { sent: false }));
            w.set_behavior(NodeId(1), Box::new(Echo));
            w.start();
            w.run_until(Time::from_millis(50));
            (*w.metrics(), w.trace().to_vec())
        };
        let (m1, t1) = run();
        let (m2, t2) = run();
        assert_eq!(m1, m2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn crash_stops_node() {
        let mut w = world(2);
        w.set_behavior(NodeId(0), Box::new(Starter { sent: false }));
        w.set_behavior(NodeId(1), Box::new(Echo));
        w.schedule_control(Time(0), ControlAction::Crash(NodeId(1)));
        w.start();
        w.run_until(Time::from_millis(10));
        // The starter's message is dropped at the crashed receiver.
        assert_eq!(w.metrics().msgs_delivered, 0);
        assert!(w.is_crashed(NodeId(1)));
        assert!(w.trace().iter().any(|e| matches!(
            e,
            TraceEvent::Dropped {
                reason: DropReason::ReceiverCrashed,
                ..
            }
        )));
    }

    #[test]
    fn relay_refusal_drops_multihop() {
        // Line topology 0-1-2: node 1 refuses to forward.
        let mut b = btr_model::TopologyBuilder::new();
        let n0 = b.full_node();
        let n1 = b.full_node();
        let n2 = b.full_node();
        b.link(&[n0, n1], 10_000, Duration(5));
        b.link(&[n1, n2], 10_000, Duration(5));
        let mut cfg = SimConfig::new(2);
        cfg.trace = true;
        let mut w = World::new(b.build().unwrap(), cfg);

        struct SendTo2;
        impl NodeBehavior for SendTo2 {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.send(NodeId(2), Payload::Control(0));
            }
            fn on_message(&mut self, _c: &mut NodeCtx<'_>, _e: Envelope) {}
            fn on_timer(&mut self, _c: &mut NodeCtx<'_>, _t: TimerId) {}
        }
        w.set_behavior(NodeId(0), Box::new(SendTo2));
        w.schedule_control(
            Time(0),
            ControlAction::SetForwardPolicy(NodeId(1), ForwardPolicy::DropAll),
        );
        w.start();
        // Control action at t=0 runs before... actually start() dispatches
        // on_start synchronously first, so the first message may pass.
        w.run_until(Time::from_millis(20));
        // Send again after the policy change.
        struct Again;
        impl NodeBehavior for Again {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.send(NodeId(2), Payload::Control(1));
            }
            fn on_message(&mut self, _c: &mut NodeCtx<'_>, _e: Envelope) {}
            fn on_timer(&mut self, _c: &mut NodeCtx<'_>, _t: TimerId) {}
        }
        w.schedule_control(
            Time::from_millis(21),
            ControlAction::ReplaceBehavior(NodeId(0), Box::new(Again)),
        );
        w.run_until(Time::from_millis(40));
        assert!(w.metrics().drops_forward >= 1);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerChain {
            fired: Vec<TimerId>,
        }
        impl NodeBehavior for TimerChain {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.set_timer(Duration(300), 3);
                ctx.set_timer(Duration(100), 1);
                ctx.set_timer(Duration(200), 2);
            }
            fn on_message(&mut self, _c: &mut NodeCtx<'_>, _e: Envelope) {}
            fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, t: TimerId) {
                self.fired.push(t);
                if t == 1 {
                    ctx.actuate(TaskId(0), 0, t);
                }
            }
        }
        let mut w = world(1);
        w.set_behavior(NodeId(0), Box::new(TimerChain { fired: vec![] }));
        w.start();
        w.run_until(Time::from_millis(1));
        assert_eq!(w.metrics().timers, 3);
        assert_eq!(w.actuations().len(), 1);
        assert_eq!(w.actuations()[0].value, 1);
    }

    #[test]
    fn local_clock_skew_is_bounded() {
        let topo = Topology::bus(8, 10_000, Duration(10));
        let mut cfg = SimConfig::new(3);
        cfg.max_clock_skew = Duration(50);
        let w = World::new(topo, cfg);
        for i in 0..8 {
            let off = w.slots[i].clock_offset;
            assert!(off.abs() <= 50, "node {i} skew {off}");
        }
    }

    #[test]
    fn signed_send_verifies_at_receiver() {
        struct Verify {
            ok: bool,
        }
        impl NodeBehavior for Verify {
            fn on_start(&mut self, _c: &mut NodeCtx<'_>) {}
            fn on_message(&mut self, ctx: &mut NodeCtx<'_>, env: Envelope) {
                self.ok = env.verify(ctx.keystore()).is_ok();
                ctx.actuate(TaskId(9), 0, self.ok as u64);
            }
            fn on_timer(&mut self, _c: &mut NodeCtx<'_>, _t: TimerId) {}
        }
        let mut w = world(2);
        w.set_behavior(NodeId(0), Box::new(Starter { sent: false }));
        w.set_behavior(NodeId(1), Box::new(Verify { ok: false }));
        w.start();
        w.run_until(Time::from_millis(10));
        assert_eq!(w.actuations()[0].value, 1, "signature must verify");
    }

    #[test]
    fn siphash_suite_signs_and_verifies_end_to_end() {
        struct Verify;
        impl NodeBehavior for Verify {
            fn on_start(&mut self, _c: &mut NodeCtx<'_>) {}
            fn on_message(&mut self, ctx: &mut NodeCtx<'_>, env: Envelope) {
                let ok = ctx.verify_env(&env).is_ok();
                ctx.actuate(TaskId(9), 0, ok as u64);
            }
            fn on_timer(&mut self, _c: &mut NodeCtx<'_>, _t: TimerId) {}
        }
        let topo = Topology::bus(2, 10_000, Duration(10));
        let mut cfg = SimConfig::new(1);
        cfg.auth_suite = AuthSuite::SipHash24;
        let mut w = World::new(topo, cfg);
        assert_eq!(w.auth_suite(), AuthSuite::SipHash24);
        assert_eq!(w.keystore().suite(), AuthSuite::SipHash24);
        w.set_behavior(NodeId(0), Box::new(Starter { sent: false }));
        w.set_behavior(NodeId(1), Box::new(Verify));
        w.start();
        w.run_until(Time::from_millis(10));
        assert_eq!(w.actuations()[0].value, 1, "sip tag must verify");
    }

    #[test]
    fn spoofed_envelope_fails_verification() {
        struct Spoof;
        impl NodeBehavior for Spoof {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                // Claim to be node 2 without node 2's key.
                let env = Envelope::new(NodeId(2), NodeId(1), ctx.now(), Payload::Control(9));
                ctx.send_env(env);
            }
            fn on_message(&mut self, _c: &mut NodeCtx<'_>, _e: Envelope) {}
            fn on_timer(&mut self, _c: &mut NodeCtx<'_>, _t: TimerId) {}
        }
        struct Check;
        impl NodeBehavior for Check {
            fn on_start(&mut self, _c: &mut NodeCtx<'_>) {}
            fn on_message(&mut self, ctx: &mut NodeCtx<'_>, env: Envelope) {
                let ok = env.verify(ctx.keystore()).is_ok();
                ctx.actuate(TaskId(0), 0, ok as u64);
            }
            fn on_timer(&mut self, _c: &mut NodeCtx<'_>, _t: TimerId) {}
        }
        let mut w = world(3);
        w.set_behavior(NodeId(0), Box::new(Spoof));
        w.set_behavior(NodeId(1), Box::new(Check));
        w.start();
        w.run_until(Time::from_millis(10));
        assert_eq!(w.actuations()[0].value, 0, "spoof must fail verification");
    }

    #[test]
    fn run_until_advances_time_even_when_idle() {
        let mut w = world(1);
        w.start();
        w.run_until(Time::from_millis(123));
        assert_eq!(w.now(), Time::from_millis(123));
        w.run_for(Duration::from_millis(7));
        assert_eq!(w.now(), Time::from_millis(130));
    }

    #[test]
    fn clock_shift_control_action() {
        struct ReadClock;
        impl NodeBehavior for ReadClock {
            fn on_start(&mut self, _c: &mut NodeCtx<'_>) {}
            fn on_message(&mut self, _c: &mut NodeCtx<'_>, _e: Envelope) {}
            fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _t: TimerId) {
                let local = ctx.local_now();
                ctx.actuate(TaskId(0), 0, local.as_micros());
            }
        }
        let mut w = world(1);
        w.set_behavior(NodeId(0), Box::new(ReadClock));
        let base_off = w.slots[0].clock_offset;
        w.schedule_control(Time(0), ControlAction::ShiftClock(NodeId(0), 5_000));
        w.start();
        // Fire a timer at 10 ms to read the clock.
        struct Arm;
        impl NodeBehavior for Arm {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.set_timer(Duration::from_millis(10), 0);
            }
            fn on_message(&mut self, _c: &mut NodeCtx<'_>, _e: Envelope) {}
            fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _t: TimerId) {
                ctx.actuate(TaskId(0), 0, ctx.local_now().as_micros());
            }
        }
        w.schedule_control(
            Time(0),
            ControlAction::ReplaceBehavior(NodeId(0), Box::new(Arm)),
        );
        w.run_until(Time::from_millis(20));
        let v = w.actuations()[0].value as i64;
        assert_eq!(v, 10_000 + base_off + 5_000);
    }

    #[test]
    fn fec_masks_heavy_shard_loss() {
        // 5% per-shard loss: unprotected messages drop ~5%; FEC(4,2)
        // messages survive unless 3+ of 6 shards die (~0.2%).
        struct Blaster;
        impl NodeBehavior for Blaster {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                for i in 0..500u64 {
                    ctx.set_timer(Duration(i * 10), i);
                }
            }
            fn on_message(&mut self, _c: &mut NodeCtx<'_>, _e: Envelope) {}
            fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _t: TimerId) {
                ctx.send(NodeId(1), Payload::Control(1));
            }
        }
        let run = |fec: Option<(u8, u8)>| -> (u64, u64) {
            let topo = Topology::bus(2, 1_000_000, Duration(1));
            let mut cfg = SimConfig::new(5);
            cfg.loss_ppm = 50_000;
            cfg.fec = fec;
            let mut w = World::new(topo, cfg);
            w.set_behavior(NodeId(0), Box::new(Blaster));
            w.start();
            w.run_until(Time::from_millis(50));
            (w.metrics().msgs_delivered, w.metrics().drops_other)
        };
        let (plain_ok, plain_drop) = run(None);
        let (fec_ok, fec_drop) = run(Some((4, 2)));
        assert!(plain_drop >= 10, "expected visible loss, got {plain_drop}");
        assert!(
            fec_drop * 5 < plain_drop,
            "FEC should mask most losses: {fec_drop} vs {plain_drop}"
        );
        assert!(fec_ok > plain_ok);
    }

    #[test]
    fn fec_charges_wire_overhead() {
        struct One;
        impl NodeBehavior for One {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.send(NodeId(1), Payload::Control(1));
            }
            fn on_message(&mut self, _c: &mut NodeCtx<'_>, _e: Envelope) {}
            fn on_timer(&mut self, _c: &mut NodeCtx<'_>, _t: TimerId) {}
        }
        let bytes_with = |fec: Option<(u8, u8)>| -> u64 {
            let topo = Topology::bus(2, 1_000_000, Duration(1));
            let mut cfg = SimConfig::new(6);
            cfg.loss_ppm = 1; // Enable the loss path without real losses.
            cfg.fec = fec;
            let mut w = World::new(topo, cfg);
            w.set_behavior(NodeId(0), Box::new(One));
            w.start();
            w.run_until(Time::from_millis(5));
            w.metrics().bytes_sent
        };
        let plain = bytes_with(None);
        let fec = bytes_with(Some((4, 2)));
        // (4+2)/4 = 1.5x overhead.
        assert_eq!(fec, plain * 6 / 4);
    }

    #[test]
    fn max_events_cap_truncates_deterministically() {
        let run = |cap: u64| {
            let topo = Topology::bus(2, 10_000, Duration(10));
            let mut cfg = SimConfig::new(1);
            cfg.max_events = cap;
            let mut w = World::new(topo, cfg);
            w.set_behavior(NodeId(0), Box::new(Starter { sent: false }));
            w.set_behavior(NodeId(1), Box::new(Echo));
            w.start();
            w.run_until(Time::from_millis(100));
            (
                w.truncated(),
                w.metrics().events,
                w.metrics().msgs_delivered,
            )
        };
        let (full_trunc, full_events, full_msgs) = run(0);
        assert!(!full_trunc);
        assert_eq!(full_msgs, 11);
        let cap = full_events / 2;
        let (t1, e1, m1) = run(cap);
        let (t2, e2, m2) = run(cap);
        assert!(t1, "capped run must report truncation");
        assert_eq!(e1, cap);
        assert!(m1 < full_msgs);
        assert_eq!((t1, e1, m1), (t2, e2, m2), "truncation is deterministic");
        // A run that completes using exactly the cap was not cut short.
        let (t3, e3, m3) = run(full_events);
        assert!(!t3, "exact-cap completion must not be flagged");
        assert_eq!((e3, m3), (full_events, full_msgs));
    }

    #[test]
    fn crash_heals_multi_hop_routes() {
        // Ring of 4: 0 -> 2 normally relays through 1 (lowest-id tie
        // break). After 1 crashes, the route heals via 3 and deliveries
        // keep flowing; without healing the relay would drop everything.
        struct Periodic;
        impl NodeBehavior for Periodic {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.set_timer(Duration::from_millis(1), 0);
            }
            fn on_message(&mut self, _c: &mut NodeCtx<'_>, _e: Envelope) {}
            fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _t: TimerId) {
                ctx.send(NodeId(2), Payload::Control(1));
                ctx.set_timer(Duration::from_millis(1), 0);
            }
        }
        struct Count;
        impl NodeBehavior for Count {
            fn on_start(&mut self, _c: &mut NodeCtx<'_>) {}
            fn on_message(&mut self, ctx: &mut NodeCtx<'_>, _e: Envelope) {
                ctx.actuate(TaskId(0), 0, 1);
            }
            fn on_timer(&mut self, _c: &mut NodeCtx<'_>, _t: TimerId) {}
        }
        let topo = Topology::ring(4, 10_000, Duration(5));
        let mut w = World::new(topo, SimConfig::new(4));
        w.set_behavior(NodeId(0), Box::new(Periodic));
        w.set_behavior(NodeId(2), Box::new(Count));
        w.schedule_control(Time::from_millis(10), ControlAction::Crash(NodeId(1)));
        w.start();
        w.run_until(Time::from_millis(30));
        // ~29 sends, all delivered (loss-free): the post-crash sends heal
        // through node 3 instead of being refused by the dead relay.
        let delivered = w.actuations().len() as u64;
        assert!(delivered >= 28, "only {delivered} deliveries");
        assert_eq!(w.metrics().drops_forward, 0, "dead relay refused traffic");
    }

    #[test]
    fn rng_streams_are_deterministic_and_distinct() {
        let mut w = world(2);
        w.start();
        let mut ctx0 = NodeCtx::new(&mut w, NodeId(0));
        let a1 = ctx0.rng_u64();
        let a2 = ctx0.rng_u64();
        assert_ne!(a1, a2);
        let mut ctx1 = NodeCtx::new(&mut w, NodeId(1));
        let b1 = ctx1.rng_u64();
        assert_ne!(a1, b1);
    }
}
