//! Deterministic discrete-event simulation of the CPS platform.
//!
//! This crate is the substitute for the paper's hardware testbed (see
//! DESIGN.md): nodes with finite processing speed and local clocks,
//! links with finite bandwidth and static per-sender allocations, and a
//! Byzantine adversary who "has compromised some subset of the nodes and
//! has complete control over them" (Section 2.1).
//!
//! Key properties:
//!
//! * **Determinism.** Events are ordered by `(time, sequence)`; identical
//!   seeds produce bit-identical traces. The BTR output oracle depends on
//!   this: a faulty run is compared against a fault-free reference run.
//! * **Key secrecy.** A node behaviour can only reach its *own* signer
//!   through [`NodeCtx::signer`]; forging another node's signature is
//!   impossible by construction, which is what makes evidence sound.
//! * **MAC-enforced bandwidth.** Every transmission — including those of
//!   compromised nodes — passes the per-sender link guardians from
//!   `btr-net`, mirroring the paper's hardware-MAC argument.
//! * **Transparent multi-hop routing** with per-node forwarding policies,
//!   so crashed or malicious relays drop traffic and omission faults
//!   become observable end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod queue;
pub mod trace;
pub mod world;

pub use trace::{DropReason, LogicalTrace, SimMetrics, TraceEvent};
pub use world::{Actuation, ControlAction, CtxBackend, ForwardPolicy, NodeCtx, SimConfig, World};

use btr_model::Envelope;

/// Timer identifier, chosen freely by node behaviours.
pub type TimerId = u64;

/// The interface every node's software implements.
///
/// The simulator calls these hooks; behaviours react by calling
/// [`NodeCtx`] methods (send, set timers, actuate). A *correct* node runs
/// the BTR runtime from `btr-runtime`; a *compromised* node runs whatever
/// the adversary scripted.
pub trait NodeBehavior {
    /// Called once at simulation start.
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>);
    /// Called when a message is delivered to this node.
    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, env: Envelope);
    /// Called when a timer set by this node fires.
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: TimerId);
    /// Downcast hook so tests and experiment harnesses can inspect a
    /// behaviour's state through [`world::World::behavior`].
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// A behaviour that does nothing (useful as a default and in tests).
#[derive(Debug, Default, Clone, Copy)]
pub struct IdleBehavior;

impl NodeBehavior for IdleBehavior {
    fn on_start(&mut self, _ctx: &mut NodeCtx<'_>) {}
    fn on_message(&mut self, _ctx: &mut NodeCtx<'_>, _env: Envelope) {}
    fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _timer: TimerId) {}
}
