//! Trace records and aggregate metrics for simulation runs.

use crate::world::Actuation;
use btr_crypto::digest64;
use btr_model::{NodeId, PeriodIdx, TaskId, Time, Value};

/// Why a message never arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The sender exceeded its static bandwidth allocation.
    GuardianDenied,
    /// A relay on the path refused to forward (crashed or malicious).
    ForwardRefused(NodeId),
    /// No route existed between the endpoints.
    NoRoute,
    /// The sender was crashed.
    SenderCrashed,
    /// The destination was crashed at delivery time.
    ReceiverCrashed,
    /// Residual transmission loss (post-FEC bit errors).
    TransmissionLoss,
}

impl std::fmt::Display for DropReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DropReason::GuardianDenied => write!(f, "guardian-denied"),
            DropReason::ForwardRefused(n) => write!(f, "forward-refused@{n}"),
            DropReason::NoRoute => write!(f, "no-route"),
            DropReason::SenderCrashed => write!(f, "sender-crashed"),
            DropReason::ReceiverCrashed => write!(f, "receiver-crashed"),
            DropReason::TransmissionLoss => write!(f, "transmission-loss"),
        }
    }
}

/// One trace record (only collected when tracing is enabled).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A message entered the network.
    Sent {
        /// Send time.
        at: Time,
        /// Sender.
        src: NodeId,
        /// Destination.
        dst: NodeId,
        /// Payload label (`Payload::label`).
        label: &'static str,
        /// Wire bytes.
        bytes: u32,
    },
    /// A message reached its destination.
    Delivered {
        /// Delivery time.
        at: Time,
        /// Sender.
        src: NodeId,
        /// Destination.
        dst: NodeId,
        /// Payload label.
        label: &'static str,
    },
    /// A message was dropped.
    Dropped {
        /// Drop time (send time for origin drops).
        at: Time,
        /// Sender.
        src: NodeId,
        /// Destination.
        dst: NodeId,
        /// Why.
        reason: DropReason,
    },
    /// A sink actuated.
    Actuated {
        /// Actuation time.
        at: Time,
        /// Actuating node.
        node: NodeId,
        /// Sink task.
        task: TaskId,
        /// Period index.
        period: PeriodIdx,
        /// The emitted value.
        value: Value,
    },
    /// A node crashed.
    Crashed {
        /// Crash time.
        at: Time,
        /// The node.
        node: NodeId,
    },
}

impl TraceEvent {
    /// The record's timestamp.
    pub fn at(&self) -> Time {
        match self {
            TraceEvent::Sent { at, .. }
            | TraceEvent::Delivered { at, .. }
            | TraceEvent::Dropped { at, .. }
            | TraceEvent::Actuated { at, .. }
            | TraceEvent::Crashed { at, .. } => *at,
        }
    }
}

/// A run's end-to-end observable behaviour on logical timestamps, in
/// canonical order.
///
/// This is the cross-substrate equivalence oracle: the discrete-event
/// [`crate::World`] and the live thread-per-node runtime (`btr-node`)
/// both reduce a run to this record, and a fault-free live run must be
/// *bit-identical* to the simulator here. Actuations are the right
/// observable because they capture the full protocol dataflow (inputs
/// gathered, replicas voted, checkers passed) with logical timestamps,
/// while being insensitive to transport-level interleaving that the two
/// substrates legitimately order differently at equal logical times.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LogicalTrace {
    /// Actuations sorted by (at, node, task, period, value).
    pub events: Vec<Actuation>,
}

impl LogicalTrace {
    /// Canonicalise a run's actuation record.
    pub fn from_actuations(acts: &[Actuation]) -> LogicalTrace {
        let mut events = acts.to_vec();
        events.sort_by_key(|a| (a.at, a.node, a.task, a.period, a.value));
        LogicalTrace { events }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A 64-bit digest of the canonical byte encoding (stable across
    /// processes, so harness runs can compare traces without shipping
    /// them).
    pub fn digest(&self) -> u64 {
        let mut buf = Vec::with_capacity(self.events.len() * 40);
        for a in &self.events {
            buf.extend_from_slice(&a.at.as_micros().to_be_bytes());
            buf.extend_from_slice(&a.node.0.to_be_bytes());
            buf.extend_from_slice(&a.task.0.to_be_bytes());
            buf.extend_from_slice(&a.period.to_be_bytes());
            buf.extend_from_slice(&a.value.to_be_bytes());
        }
        digest64(&[b"btr-logical-trace", &buf])
    }

    /// Describe the first divergence from `other`, if any (for test
    /// failure messages; `None` means the traces are identical).
    pub fn first_divergence(&self, other: &LogicalTrace) -> Option<String> {
        for (i, (a, b)) in self.events.iter().zip(other.events.iter()).enumerate() {
            if a != b {
                return Some(format!("event {i}: {a:?} != {b:?}"));
            }
        }
        if self.events.len() != other.events.len() {
            let (longer, n) = if self.events.len() > other.events.len() {
                (&self.events, other.events.len())
            } else {
                (&other.events, self.events.len())
            };
            return Some(format!(
                "lengths differ ({} vs {}); first extra: {:?}",
                self.events.len(),
                other.events.len(),
                longer[n]
            ));
        }
        None
    }
}

/// Aggregate counters for one run (always collected).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimMetrics {
    /// Messages accepted into the network.
    pub msgs_sent: u64,
    /// Bytes accepted into the network (per hop counted once).
    pub bytes_sent: u64,
    /// Messages delivered to destinations.
    pub msgs_delivered: u64,
    /// Messages dropped by guardians.
    pub drops_guardian: u64,
    /// Messages dropped by refusing/crashed relays.
    pub drops_forward: u64,
    /// Messages dropped for other reasons (no route, crashed endpoints).
    pub drops_other: u64,
    /// Events processed by the engine.
    pub events: u64,
    /// Timers fired.
    pub timers: u64,
    /// Actuations recorded.
    pub actuations: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_event_time_accessor() {
        let e = TraceEvent::Crashed {
            at: Time(5),
            node: NodeId(1),
        };
        assert_eq!(e.at(), Time(5));
        let e = TraceEvent::Actuated {
            at: Time(9),
            node: NodeId(0),
            task: TaskId(1),
            period: 2,
            value: 3,
        };
        assert_eq!(e.at(), Time(9));
    }

    #[test]
    fn drop_reason_display() {
        assert_eq!(DropReason::GuardianDenied.to_string(), "guardian-denied");
        assert_eq!(
            DropReason::ForwardRefused(NodeId(3)).to_string(),
            "forward-refused@n3"
        );
    }
}
