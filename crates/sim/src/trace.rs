//! Trace records and aggregate metrics for simulation runs.

use btr_model::{NodeId, PeriodIdx, TaskId, Time, Value};

/// Why a message never arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The sender exceeded its static bandwidth allocation.
    GuardianDenied,
    /// A relay on the path refused to forward (crashed or malicious).
    ForwardRefused(NodeId),
    /// No route existed between the endpoints.
    NoRoute,
    /// The sender was crashed.
    SenderCrashed,
    /// The destination was crashed at delivery time.
    ReceiverCrashed,
    /// Residual transmission loss (post-FEC bit errors).
    TransmissionLoss,
}

impl std::fmt::Display for DropReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DropReason::GuardianDenied => write!(f, "guardian-denied"),
            DropReason::ForwardRefused(n) => write!(f, "forward-refused@{n}"),
            DropReason::NoRoute => write!(f, "no-route"),
            DropReason::SenderCrashed => write!(f, "sender-crashed"),
            DropReason::ReceiverCrashed => write!(f, "receiver-crashed"),
            DropReason::TransmissionLoss => write!(f, "transmission-loss"),
        }
    }
}

/// One trace record (only collected when tracing is enabled).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A message entered the network.
    Sent {
        /// Send time.
        at: Time,
        /// Sender.
        src: NodeId,
        /// Destination.
        dst: NodeId,
        /// Payload label (`Payload::label`).
        label: &'static str,
        /// Wire bytes.
        bytes: u32,
    },
    /// A message reached its destination.
    Delivered {
        /// Delivery time.
        at: Time,
        /// Sender.
        src: NodeId,
        /// Destination.
        dst: NodeId,
        /// Payload label.
        label: &'static str,
    },
    /// A message was dropped.
    Dropped {
        /// Drop time (send time for origin drops).
        at: Time,
        /// Sender.
        src: NodeId,
        /// Destination.
        dst: NodeId,
        /// Why.
        reason: DropReason,
    },
    /// A sink actuated.
    Actuated {
        /// Actuation time.
        at: Time,
        /// Actuating node.
        node: NodeId,
        /// Sink task.
        task: TaskId,
        /// Period index.
        period: PeriodIdx,
        /// The emitted value.
        value: Value,
    },
    /// A node crashed.
    Crashed {
        /// Crash time.
        at: Time,
        /// The node.
        node: NodeId,
    },
}

impl TraceEvent {
    /// The record's timestamp.
    pub fn at(&self) -> Time {
        match self {
            TraceEvent::Sent { at, .. }
            | TraceEvent::Delivered { at, .. }
            | TraceEvent::Dropped { at, .. }
            | TraceEvent::Actuated { at, .. }
            | TraceEvent::Crashed { at, .. } => *at,
        }
    }
}

/// Aggregate counters for one run (always collected).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimMetrics {
    /// Messages accepted into the network.
    pub msgs_sent: u64,
    /// Bytes accepted into the network (per hop counted once).
    pub bytes_sent: u64,
    /// Messages delivered to destinations.
    pub msgs_delivered: u64,
    /// Messages dropped by guardians.
    pub drops_guardian: u64,
    /// Messages dropped by refusing/crashed relays.
    pub drops_forward: u64,
    /// Messages dropped for other reasons (no route, crashed endpoints).
    pub drops_other: u64,
    /// Events processed by the engine.
    pub events: u64,
    /// Timers fired.
    pub timers: u64,
    /// Actuations recorded.
    pub actuations: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_event_time_accessor() {
        let e = TraceEvent::Crashed {
            at: Time(5),
            node: NodeId(1),
        };
        assert_eq!(e.at(), Time(5));
        let e = TraceEvent::Actuated {
            at: Time(9),
            node: NodeId(0),
            task: TaskId(1),
            period: 2,
            value: 3,
        };
        assert_eq!(e.at(), Time(9));
    }

    #[test]
    fn drop_reason_display() {
        assert_eq!(DropReason::GuardianDenied.to_string(), "guardian-denied");
        assert_eq!(
            DropReason::ForwardRefused(NodeId(3)).to_string(),
            "forward-refused@n3"
        );
    }
}
