//! Omission-fault attribution.
//!
//! Section 4.2: "In contrast to commission faults, there is no direct way
//! to prove that a faulty node failed to send ... One way to avoid this
//! would be to allow both the sender and the recipient to declare
//! (without further evidence) a problem with the path between them; the
//! system could then ... keep track of which paths have been declared
//! problematic. If a node is on a large number of problematic paths, it
//! may be possible to attribute the problem to that node."
//!
//! The tracker counts, for each suspect node, the number of *distinct
//! counterparties* across problematic paths it appears on. A node that
//! keeps dropping messages accumulates distinct peers quickly; so does a
//! node that floods false declarations (it is an endpoint of every path
//! it declares) — the paper's resource-drain attack is self-defeating.

use btr_model::{NodeId, PeriodIdx};
use std::collections::{BTreeMap, BTreeSet};

/// Accusation matrix with distinct-peer thresholds.
///
/// Attribution additionally requires implication in at least two distinct
/// periods, so a single transient burst (e.g. data delayed by an evidence
/// flood during an unrelated recovery) never convicts a healthy node.
#[derive(Debug)]
pub struct OmissionTracker {
    /// suspect -> set of distinct counterparties on declared-bad paths.
    peers: BTreeMap<NodeId, BTreeSet<NodeId>>,
    /// suspect -> periods in which it was implicated.
    periods: BTreeMap<NodeId, BTreeSet<PeriodIdx>>,
    threshold: usize,
    attributed: BTreeSet<NodeId>,
}

impl OmissionTracker {
    /// Attribute once a node is implicated with `threshold` distinct peers.
    pub fn new(threshold: usize) -> Self {
        OmissionTracker {
            peers: BTreeMap::new(),
            periods: BTreeMap::new(),
            threshold: threshold.max(1),
            attributed: BTreeSet::new(),
        }
    }

    fn implicate(&mut self, suspect: NodeId, peer: NodeId, period: PeriodIdx) -> bool {
        let set = self.peers.entry(suspect).or_default();
        set.insert(peer);
        let periods = self.periods.entry(suspect).or_default();
        periods.insert(period);
        set.len() >= self.threshold && periods.len() >= 2 && self.attributed.insert(suspect)
    }

    /// Record a problematic-path declaration observed in `period`;
    /// returns newly attributed nodes (0, 1, or 2 of the endpoints).
    pub fn record_path(&mut self, from: NodeId, to: NodeId, period: PeriodIdx) -> Vec<NodeId> {
        if from == to {
            return Vec::new();
        }
        let mut newly = Vec::new();
        if self.implicate(from, to, period) {
            newly.push(from);
        }
        if self.implicate(to, from, period) {
            newly.push(to);
        }
        newly
    }

    /// Record a crash suspicion (declarer suspects `about` in `period`).
    pub fn record_suspicion(
        &mut self,
        declarer: NodeId,
        about: NodeId,
        period: PeriodIdx,
    ) -> Vec<NodeId> {
        if declarer == about {
            return Vec::new();
        }
        if self.implicate(about, declarer, period) {
            vec![about]
        } else {
            Vec::new()
        }
    }

    /// Nodes attributed faulty so far.
    pub fn attributed(&self) -> &BTreeSet<NodeId> {
        &self.attributed
    }

    /// Distinct peers implicating a suspect (diagnostics).
    pub fn peer_count(&self, suspect: NodeId) -> usize {
        self.peers.get(&suspect).map_or(0, |s| s.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_path_attributes_nobody_at_threshold_two() {
        let mut t = OmissionTracker::new(2);
        assert!(t.record_path(NodeId(1), NodeId(2), 0).is_empty());
        assert_eq!(t.peer_count(NodeId(1)), 1);
        assert_eq!(t.peer_count(NodeId(2)), 1);
    }

    #[test]
    fn common_endpoint_gets_attributed() {
        // Node 4 drops traffic to/from three different peers over
        // multiple periods.
        let mut t = OmissionTracker::new(3);
        assert!(t.record_path(NodeId(4), NodeId(1), 0).is_empty());
        assert!(t.record_path(NodeId(4), NodeId(2), 1).is_empty());
        let newly = t.record_path(NodeId(4), NodeId(3), 2);
        assert_eq!(newly, vec![NodeId(4)]);
        assert!(t.attributed().contains(&NodeId(4)));
        // Peers are not attributed (1 peer each).
        assert!(!t.attributed().contains(&NodeId(1)));
    }

    #[test]
    fn single_period_burst_never_attributes() {
        // Three declarations, all in the same period: no attribution.
        let mut t = OmissionTracker::new(3);
        assert!(t.record_path(NodeId(4), NodeId(1), 5).is_empty());
        assert!(t.record_path(NodeId(4), NodeId(2), 5).is_empty());
        assert!(t.record_path(NodeId(4), NodeId(3), 5).is_empty());
        assert!(t.attributed().is_empty());
        // One more in a later period crosses the line.
        assert_eq!(t.record_path(NodeId(4), NodeId(5), 6), vec![NodeId(4)]);
    }

    #[test]
    fn duplicate_paths_do_not_inflate() {
        let mut t = OmissionTracker::new(2);
        for p in 0..10 {
            assert!(t.record_path(NodeId(1), NodeId(2), p).is_empty());
        }
        assert_eq!(t.peer_count(NodeId(1)), 1);
    }

    #[test]
    fn false_declarer_implicates_itself() {
        // Node 7 floods declarations about everyone: after `threshold`
        // distinct victims, node 7 itself is attributed.
        let mut t = OmissionTracker::new(3);
        t.record_path(NodeId(7), NodeId(0), 0);
        t.record_path(NodeId(7), NodeId(1), 1);
        let newly = t.record_path(NodeId(7), NodeId(2), 2);
        assert_eq!(newly, vec![NodeId(7)]);
    }

    #[test]
    fn crash_suspicions_accumulate() {
        let mut t = OmissionTracker::new(2);
        assert!(t.record_suspicion(NodeId(1), NodeId(9), 0).is_empty());
        assert_eq!(t.record_suspicion(NodeId(2), NodeId(9), 1), vec![NodeId(9)]);
        // Already attributed: no re-report.
        assert!(t.record_suspicion(NodeId(3), NodeId(9), 2).is_empty());
    }

    #[test]
    fn self_reports_ignored() {
        let mut t = OmissionTracker::new(1);
        assert!(t.record_path(NodeId(5), NodeId(5), 0).is_empty());
        assert!(t.record_suspicion(NodeId(5), NodeId(5), 1).is_empty());
    }
}
