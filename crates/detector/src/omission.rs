//! Omission-fault attribution.
//!
//! Section 4.2: "In contrast to commission faults, there is no direct way
//! to prove that a faulty node failed to send ... One way to avoid this
//! would be to allow both the sender and the recipient to declare
//! (without further evidence) a problem with the path between them; the
//! system could then ... keep track of which paths have been declared
//! problematic. If a node is on a large number of problematic paths, it
//! may be possible to attribute the problem to that node."
//!
//! The tracker keeps the two ends of every declared path strictly apart,
//! because they carry very different evidentiary weight:
//!
//! * **Accusations** — declarations by *other* nodes naming a suspect as
//!   the remote endpoint. This is direct (if unprovable) observation of
//!   the suspect's silence; enough distinct accusers over enough periods
//!   convict.
//! * **Self-implication** — the declarer's *own* appearances on paths it
//!   declared. Counting these toward conviction at the same bar turned
//!   out to convict honest reporters: a node that truthfully complains
//!   about a crash, then a transient, then an omission has touched three
//!   "problematic paths" without ever misbehaving (the sequential-fault
//!   false-attribution cascade the campaign found — see EXPERIMENTS.md).
//!   Self-implication therefore convicts only at a doubled bar, which
//!   still makes the paper's declaration-flooding attack self-defeating
//!   (a flooder is an endpoint of *every* path it invents) while leaving
//!   honest declarers, who accumulate at most ~f distinct remotes, safe.
//!
//! Thresholds are additionally **fan-in aware**: a suspect whose lanes
//! are consumed by only two distinct nodes can never attract three
//! distinct accusers, so the per-suspect threshold scales down to the
//! accusers the plan actually provides (never below two — one false
//! declarer alone must never convict). The scaled threshold only counts
//! accusers the plan makes *plausible* for that suspect (consumers of
//! its lanes, checkers of its tasks): anyone else — including heartbeat
//! crash suspecters, whose real fan-in is the whole cluster — must meet
//! the full configured threshold, so a colluding pair inside an admitted
//! f = 2 budget cannot fabricate a sparse-fan-in conviction.

use btr_model::{NodeId, PeriodIdx};
use std::collections::{BTreeMap, BTreeSet};

/// Accusation matrix with distinct-peer thresholds.
///
/// Attribution always requires implication in at least two distinct
/// periods, so a single transient burst (e.g. data delayed by an evidence
/// flood during an unrelated recovery) never convicts a healthy node.
#[derive(Debug)]
pub struct OmissionTracker {
    /// suspect -> distinct nodes that declared against it.
    accusers: BTreeMap<NodeId, BTreeSet<NodeId>>,
    /// suspect -> periods in which it was accused (any accuser).
    accused_periods: BTreeMap<NodeId, BTreeSet<PeriodIdx>>,
    /// suspect -> periods in which a *plan-plausible* accuser accused it.
    /// Tracked separately so the scaled conviction route's two-period
    /// requirement cannot be satisfied by implausible accusers' periods
    /// (which count toward neither threshold).
    plausible_periods: BTreeMap<NodeId, BTreeSet<PeriodIdx>>,
    /// declarer -> distinct remote endpoints of its own declarations.
    declared_remotes: BTreeMap<NodeId, BTreeSet<NodeId>>,
    /// declarer -> periods in which it declared.
    declared_periods: BTreeMap<NodeId, BTreeSet<PeriodIdx>>,
    threshold: usize,
    /// Plan-derived plausible accusers per suspect (see
    /// [`OmissionTracker::set_plausible_accusers`]).
    plausible_accusers: BTreeMap<NodeId, BTreeSet<NodeId>>,
    attributed: BTreeSet<NodeId>,
}

impl OmissionTracker {
    /// Attribute once a node is accused by `threshold` distinct peers.
    pub fn new(threshold: usize) -> Self {
        OmissionTracker {
            accusers: BTreeMap::new(),
            accused_periods: BTreeMap::new(),
            plausible_periods: BTreeMap::new(),
            declared_remotes: BTreeMap::new(),
            declared_periods: BTreeMap::new(),
            threshold: threshold.max(1),
            plausible_accusers: BTreeMap::new(),
            attributed: BTreeSet::new(),
        }
    }

    /// Install the plan-derived plausible accusers: for each node, the
    /// distinct other nodes that would notice its silence under the
    /// active plan (consumers of its lanes, checkers of its tasks).
    ///
    /// Accusations from this set convict at the scaled threshold
    /// `min(threshold, max(2, |plausible|))`, so sparse-consumer victims
    /// stay attributable; accusations from anyone else must reach the
    /// full configured threshold, so nodes the plan gives no reason to
    /// complain (e.g. a colluding pair fabricating declarations about a
    /// sparse victim) cannot exploit the lowered bar.
    pub fn set_plausible_accusers(&mut self, accusers: BTreeMap<NodeId, BTreeSet<NodeId>>) {
        self.plausible_accusers = accusers;
    }

    /// Record that `accuser` declared against `suspect` (direct evidence).
    fn accuse(&mut self, suspect: NodeId, accuser: NodeId, period: PeriodIdx) -> bool {
        let plausible = self.plausible_accusers.get(&suspect);
        let from_plausible = plausible.is_some_and(|p| p.contains(&accuser));
        let set = self.accusers.entry(suspect).or_default();
        set.insert(accuser);
        let periods = self.accused_periods.entry(suspect).or_default();
        periods.insert(period);
        let all_periods = periods.len();
        let plausible_periods = {
            let p = self.plausible_periods.entry(suspect).or_default();
            if from_plausible {
                p.insert(period);
            }
            p.len()
        };
        // Each route needs its *own* accusations to span two distinct
        // periods, so a single transient burst never convicts — even when
        // padded with accusations that count toward the other route.
        let full = set.len() >= self.threshold && all_periods >= 2;
        let scaled = plausible.is_some_and(|plausible| {
            let scaled_threshold = self.threshold.min(plausible.len().max(2));
            set.intersection(plausible).count() >= scaled_threshold && plausible_periods >= 2
        });
        (full || scaled) && self.attributed.insert(suspect)
    }

    /// Record that `declarer` put itself on a declared path with `remote`
    /// (anti-flooding bookkeeping; doubled conviction bar).
    fn self_implicate(&mut self, declarer: NodeId, remote: NodeId, period: PeriodIdx) -> bool {
        let set = self.declared_remotes.entry(declarer).or_default();
        set.insert(remote);
        let periods = self.declared_periods.entry(declarer).or_default();
        periods.insert(period);
        set.len() >= 2 * self.threshold && periods.len() >= 2 && self.attributed.insert(declarer)
    }

    /// Record a problematic-path declaration by `declarer` observed in
    /// `period`; returns newly attributed nodes (the remote endpoint via
    /// the accusation count, and/or the declarer via the anti-flooding
    /// count).
    pub fn record_path(
        &mut self,
        declarer: NodeId,
        from: NodeId,
        to: NodeId,
        period: PeriodIdx,
    ) -> Vec<NodeId> {
        if from == to || (declarer != from && declarer != to) {
            return Vec::new();
        }
        let remote = if declarer == from { to } else { from };
        let mut newly = Vec::new();
        if self.accuse(remote, declarer, period) {
            newly.push(remote);
        }
        if self.self_implicate(declarer, remote, period) {
            newly.push(declarer);
        }
        newly
    }

    /// Record a crash suspicion (declarer suspects `about` in `period`).
    pub fn record_suspicion(
        &mut self,
        declarer: NodeId,
        about: NodeId,
        period: PeriodIdx,
    ) -> Vec<NodeId> {
        if declarer == about {
            return Vec::new();
        }
        let mut newly = Vec::new();
        if self.accuse(about, declarer, period) {
            newly.push(about);
        }
        if self.self_implicate(declarer, about, period) {
            newly.push(declarer);
        }
        newly
    }

    /// Nodes attributed faulty so far.
    pub fn attributed(&self) -> &BTreeSet<NodeId> {
        &self.attributed
    }

    /// Distinct accusers of a suspect (diagnostics).
    pub fn accuser_count(&self, suspect: NodeId) -> usize {
        self.accusers.get(&suspect).map_or(0, |s| s.len())
    }

    /// Distinct remotes a declarer has complained about (diagnostics).
    pub fn declared_count(&self, declarer: NodeId) -> usize {
        self.declared_remotes.get(&declarer).map_or(0, |s| s.len())
    }

    /// Unattributed suspects exactly one distinct accuser short of their
    /// nearest conviction route (full or fan-in-scaled) — the evidence
    /// pool's near misses. The two-period rule is not held against the
    /// deficit: a closing accusation arrives with its own period.
    pub fn near_miss_suspects(&self) -> usize {
        self.accusers
            .iter()
            .filter(|(suspect, set)| {
                if self.attributed.contains(suspect) {
                    return false;
                }
                let full_short = set.len() + 1 == self.threshold;
                let scaled_short = self
                    .plausible_accusers
                    .get(suspect)
                    .is_some_and(|plausible| {
                        let scaled_threshold = self.threshold.min(plausible.len().max(2));
                        set.intersection(plausible).count() + 1 == scaled_threshold
                    });
                full_short || scaled_short
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_accuser_attributes_nobody_at_threshold_two() {
        let mut t = OmissionTracker::new(2);
        assert!(t.record_path(NodeId(1), NodeId(2), NodeId(1), 0).is_empty());
        assert_eq!(t.accuser_count(NodeId(2)), 1);
        assert_eq!(t.declared_count(NodeId(1)), 1);
    }

    #[test]
    fn distinct_accusers_convict_the_suspect() {
        // Node 4 drops traffic to three different recipients over
        // multiple periods; each recipient declares.
        let mut t = OmissionTracker::new(3);
        assert!(t.record_path(NodeId(1), NodeId(4), NodeId(1), 0).is_empty());
        assert!(t.record_path(NodeId(2), NodeId(4), NodeId(2), 1).is_empty());
        let newly = t.record_path(NodeId(3), NodeId(4), NodeId(3), 2);
        assert_eq!(newly, vec![NodeId(4)]);
        assert!(t.attributed().contains(&NodeId(4)));
        // Honest accusers are not attributed.
        assert!(!t.attributed().contains(&NodeId(1)));
    }

    #[test]
    fn single_period_burst_never_attributes() {
        // Three accusations, all in the same period: no attribution.
        let mut t = OmissionTracker::new(3);
        assert!(t.record_path(NodeId(1), NodeId(4), NodeId(1), 5).is_empty());
        assert!(t.record_path(NodeId(2), NodeId(4), NodeId(2), 5).is_empty());
        assert!(t.record_path(NodeId(3), NodeId(4), NodeId(3), 5).is_empty());
        assert!(t.attributed().is_empty());
        // One more in a later period crosses the line.
        assert_eq!(
            t.record_path(NodeId(5), NodeId(4), NodeId(5), 6),
            vec![NodeId(4)]
        );
    }

    #[test]
    fn duplicate_paths_do_not_inflate() {
        let mut t = OmissionTracker::new(2);
        for p in 0..10 {
            assert!(t.record_path(NodeId(2), NodeId(1), NodeId(2), p).is_empty());
        }
        assert_eq!(t.accuser_count(NodeId(1)), 1);
    }

    #[test]
    fn honest_reporter_of_sequential_faults_is_not_convicted() {
        // The campaign's cascade: node 1 truthfully complains about a
        // crash (n2), a transient (n7), and an omission (n4). Under the
        // old single counter those three distinct peers convicted n1;
        // now its own declarations never reach the doubled bar.
        let mut t = OmissionTracker::new(3);
        t.record_path(NodeId(1), NodeId(2), NodeId(1), 43);
        t.record_path(NodeId(1), NodeId(7), NodeId(1), 44);
        t.record_path(NodeId(1), NodeId(4), NodeId(1), 57);
        assert!(
            !t.attributed().contains(&NodeId(1)),
            "honest declarer convicted"
        );
        assert_eq!(t.declared_count(NodeId(1)), 3);
    }

    #[test]
    fn false_declarer_still_implicates_itself() {
        // Node 7 floods declarations about everyone: after 2 * threshold
        // distinct victims (threshold 2 -> 4), node 7 itself is
        // attributed. The paper's resource-drain attack stays
        // self-defeating.
        let mut t = OmissionTracker::new(2);
        t.record_path(NodeId(7), NodeId(7), NodeId(0), 0);
        t.record_path(NodeId(7), NodeId(7), NodeId(1), 1);
        t.record_path(NodeId(7), NodeId(7), NodeId(2), 2);
        assert!(!t.attributed().contains(&NodeId(7)));
        let newly = t.record_path(NodeId(7), NodeId(7), NodeId(3), 3);
        assert_eq!(newly, vec![NodeId(7)]);
    }

    #[test]
    fn crash_suspicions_accumulate() {
        let mut t = OmissionTracker::new(2);
        assert!(t.record_suspicion(NodeId(1), NodeId(9), 0).is_empty());
        assert_eq!(t.record_suspicion(NodeId(2), NodeId(9), 1), vec![NodeId(9)]);
        // Already attributed: no re-report.
        assert!(t.record_suspicion(NodeId(3), NodeId(9), 2).is_empty());
    }

    #[test]
    fn fan_in_aware_threshold_scales_down() {
        // Suspect n4's lanes are only visible to nodes 1 and 2 under the
        // active plan: accusations from exactly those two convict, but
        // the full threshold still applies to everyone else.
        let mut t = OmissionTracker::new(3);
        t.set_plausible_accusers(BTreeMap::from([
            (NodeId(4), BTreeSet::from([NodeId(1), NodeId(2)])),
            (
                NodeId(5),
                BTreeSet::from_iter((0..8).map(NodeId).filter(|&n| n != NodeId(5))),
            ),
        ]));
        t.record_path(NodeId(1), NodeId(4), NodeId(1), 0);
        let newly = t.record_path(NodeId(2), NodeId(4), NodeId(2), 1);
        assert_eq!(newly, vec![NodeId(4)]);
        // n5 has plenty of plausible accusers: full threshold applies.
        t.record_path(NodeId(1), NodeId(5), NodeId(1), 0);
        assert!(t.record_path(NodeId(2), NodeId(5), NodeId(2), 1).is_empty());
        assert_eq!(
            t.record_path(NodeId(3), NodeId(5), NodeId(3), 2),
            vec![NodeId(5)]
        );
    }

    #[test]
    fn implausible_accusers_cannot_use_the_scaled_threshold() {
        // Two colluders (an admitted f = 2 pattern) that the plan gives
        // no reason to complain about sparse-fan-in n4 — neither
        // consumes its lanes nor checks its tasks — cannot convict it at
        // the scaled bar of 2, via path declarations or crash
        // suspicions: for them the full threshold (3) stands.
        let mut t = OmissionTracker::new(3);
        t.set_plausible_accusers(BTreeMap::from([(
            NodeId(4),
            BTreeSet::from([NodeId(1), NodeId(2)]),
        )]));
        for p in 0..4 {
            assert!(t.record_path(NodeId(7), NodeId(4), NodeId(7), p).is_empty());
            assert!(t.record_suspicion(NodeId(8), NodeId(4), p).is_empty());
        }
        assert!(!t.attributed().contains(&NodeId(4)));
        // One plausible accuser joining the two colluders still reaches
        // the full threshold (3 distinct accusers) — genuine faults with
        // mixed evidence are not lost.
        assert_eq!(
            t.record_path(NodeId(1), NodeId(4), NodeId(1), 9),
            vec![NodeId(4)]
        );
    }

    #[test]
    fn implausible_periods_cannot_pad_the_scaled_route() {
        // An implausible colluder accuses n4 across two periods (counts
        // toward neither route), then both plausible accusers declare in
        // a single burst period: the scaled route's two-period rule must
        // be judged on plausible accusations alone, so no conviction.
        let mut t = OmissionTracker::new(4);
        t.set_plausible_accusers(BTreeMap::from([(
            NodeId(4),
            BTreeSet::from([NodeId(1), NodeId(2)]),
        )]));
        t.record_path(NodeId(7), NodeId(4), NodeId(7), 3);
        t.record_path(NodeId(7), NodeId(4), NodeId(7), 4);
        assert!(t.record_path(NodeId(1), NodeId(4), NodeId(1), 9).is_empty());
        assert!(t.record_path(NodeId(2), NodeId(4), NodeId(2), 9).is_empty());
        assert!(!t.attributed().contains(&NodeId(4)));
        // A plausible accusation in a second period completes the route.
        assert_eq!(
            t.record_path(NodeId(1), NodeId(4), NodeId(1), 10),
            vec![NodeId(4)]
        );
    }

    #[test]
    fn fan_in_never_drops_below_two() {
        // A suspect with a single plausible accuser can never be
        // convicted through the scaled route (the bar floors at two
        // distinct plausible accusers, and only one exists): one
        // observer's word is he-said-she-said, exactly what the paper's
        // threshold exists to resist. Only the full threshold convicts.
        let mut t = OmissionTracker::new(3);
        t.set_plausible_accusers(BTreeMap::from([(NodeId(4), BTreeSet::from([NodeId(1)]))]));
        for p in 0..5 {
            assert!(t.record_path(NodeId(1), NodeId(4), NodeId(1), p).is_empty());
        }
        assert!(t.record_path(NodeId(2), NodeId(4), NodeId(2), 9).is_empty());
        assert_eq!(
            t.record_path(NodeId(3), NodeId(4), NodeId(3), 10),
            vec![NodeId(4)]
        );
    }

    #[test]
    fn near_misses_track_the_one_accuser_deficit() {
        let mut t = OmissionTracker::new(3);
        assert_eq!(t.near_miss_suspects(), 0);
        // One accuser: still two short of the full threshold.
        t.record_path(NodeId(1), NodeId(4), NodeId(1), 0);
        assert_eq!(t.near_miss_suspects(), 0);
        // A second distinct accuser puts n4 one short.
        t.record_path(NodeId(2), NodeId(4), NodeId(2), 1);
        assert_eq!(t.near_miss_suspects(), 1);
        // Conviction clears the near miss.
        t.record_path(NodeId(3), NodeId(4), NodeId(3), 2);
        assert!(t.attributed().contains(&NodeId(4)));
        assert_eq!(t.near_miss_suspects(), 0);
        // A sparse-fan-in suspect is a near miss after a single
        // plausible accusation (scaled bar of two).
        t.set_plausible_accusers(BTreeMap::from([(
            NodeId(6),
            BTreeSet::from([NodeId(1), NodeId(2)]),
        )]));
        t.record_path(NodeId(1), NodeId(6), NodeId(1), 5);
        assert_eq!(t.near_miss_suspects(), 1);
    }

    #[test]
    fn self_reports_and_offpath_declarers_ignored() {
        let mut t = OmissionTracker::new(1);
        assert!(t.record_path(NodeId(5), NodeId(5), NodeId(5), 0).is_empty());
        assert!(t.record_suspicion(NodeId(5), NodeId(5), 1).is_empty());
        // A declarer that is not a path endpoint carries no weight.
        assert!(t.record_path(NodeId(9), NodeId(1), NodeId(2), 0).is_empty());
    }
}
