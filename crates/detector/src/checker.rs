//! Replica output checking and the equivocation pool.
//!
//! Section 4.1: checking tasks "compare the outputs of the replicas to
//! detect faults and generate evidence". Because every output carries a
//! signed commitment to its inputs plus the signed inputs themselves
//! (witnesses), a checker can verify each replica *in isolation*:
//! re-execute over the witnesses and compare with the committed output.
//! No quorum is needed for detection — this is exactly why detection is
//! cheaper than masking (f+1 vs 2f+1 replicas).

use btr_crypto::Signature;
use btr_model::evidence::WorkloadView;
use btr_model::{
    inputs_digest, sensor_value, task_value, EvidenceRecord, NodeId, PeriodIdx, ReplicaIdx,
    SignedOutput, TaskId, Time, Value,
};
use std::collections::BTreeMap;

/// First-seen signed outputs, for equivocation detection.
///
/// Keyed by (task, replica, period): any two validly signed outputs under
/// the same key with different content are an equivocation proof against
/// their producer. Shared across all checkers on a node so witnesses from
/// different flows cross-check each other.
#[derive(Debug, Default)]
pub struct OutputPool {
    seen: BTreeMap<(TaskId, ReplicaIdx, PeriodIdx), SignedOutput>,
}

impl OutputPool {
    /// Insert a (signature-verified) output; returns an equivocation
    /// proof if it conflicts with an earlier copy.
    pub fn insert_checked(&mut self, out: &SignedOutput) -> Option<EvidenceRecord> {
        let key = (out.task, out.replica, out.period);
        match self.seen.get(&key) {
            None => {
                self.seen.insert(key, out.clone());
                None
            }
            Some(prev) => {
                if prev.producer == out.producer
                    && (prev.value != out.value || prev.inputs_digest != out.inputs_digest)
                {
                    Some(EvidenceRecord::Equivocation {
                        accused: out.producer,
                        a: prev.clone(),
                        b: out.clone(),
                    })
                } else {
                    None
                }
            }
        }
    }

    /// Drop entries older than `before` periods (bounded memory).
    pub fn gc(&mut self, before: PeriodIdx) {
        self.seen.retain(|&(_, _, p), _| p >= before);
    }

    /// Number of pooled outputs (diagnostics).
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// True if the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

/// Static configuration of one checking task.
#[derive(Debug, Clone)]
pub struct CheckerConfig {
    /// The checked workload task.
    pub task: TaskId,
    /// Number of replica lanes.
    pub lanes: u8,
    /// Expected host of each lane (from the active plan).
    pub lane_nodes: Vec<NodeId>,
    /// True if the task is a sensor source.
    pub is_source: bool,
    /// Declared dataflow inputs.
    pub inputs: Vec<TaskId>,
    /// Workload seed (source readings).
    pub seed: u64,
}

/// The checking task for one workload task.
#[derive(Debug)]
pub struct ReplicaChecker {
    cfg: CheckerConfig,
    /// Lanes seen per period.
    arrived: BTreeMap<PeriodIdx, Vec<ReplicaIdx>>,
}

impl ReplicaChecker {
    /// Create a checker from its plan-derived configuration.
    pub fn new(cfg: CheckerConfig) -> Self {
        ReplicaChecker {
            cfg,
            arrived: BTreeMap::new(),
        }
    }

    /// The checked task.
    pub fn task(&self) -> TaskId {
        self.cfg.task
    }

    /// Check one replica output against its own witnesses.
    ///
    /// `witness_ok[i]` is the signature-verification result for
    /// `witnesses[i]`, computed by the caller's batched pass (see
    /// `Detector::observe_output`) so no witness is MAC-checked twice.
    /// Returns at most one bad-computation proof (plus nothing else; the
    /// caller runs the equivocation pool and timing watch separately).
    pub fn observe(
        &mut self,
        _view: &dyn WorkloadView,
        output: SignedOutput,
        witnesses: &[SignedOutput],
        witness_ok: &[bool],
        envelope: Option<(Time, Signature)>,
    ) -> Vec<EvidenceRecord> {
        let mut out = Vec::new();
        if output.task != self.cfg.task || output.replica >= self.cfg.lanes {
            return out;
        }
        // Only accept the planned lane host: outputs for this lane from
        // other nodes are noise (they cannot be the scheduled replica).
        if self
            .cfg
            .lane_nodes
            .get(output.replica as usize)
            .is_some_and(|&n| n != output.producer)
        {
            return out;
        }
        self.arrived
            .entry(output.period)
            .or_default()
            .push(output.replica);

        // Witness validation: signatures, periods, the declared input
        // set, and the signed commitment. A producer that sent a
        // malformed witness set is convicted via its own envelope
        // signature (BadWitness), closing the garbage-commitment escape.
        let mut witness_flaw = false;
        let mut vals: Vec<(TaskId, Value)> = Vec::with_capacity(witnesses.len());
        for (i, w) in witnesses.iter().enumerate() {
            if !witness_ok.get(i).copied().unwrap_or(false) || w.period != output.period {
                witness_flaw = true;
            }
            vals.push((w.task, w.value));
        }
        let mut declared = self.cfg.inputs.clone();
        declared.sort_unstable();
        let mut supplied: Vec<TaskId> = vals.iter().map(|(t, _)| *t).collect();
        supplied.sort_unstable();
        if !self.cfg.is_source {
            if declared != supplied {
                witness_flaw = true;
            }
            if inputs_digest(&vals) != output.inputs_digest {
                witness_flaw = true;
            }
        }
        if witness_flaw && !self.cfg.is_source {
            if let Some((sent_at, env_sig)) = envelope {
                // The envelope signature must actually be the producer's
                // own (otherwise this is relayed noise we cannot judge).
                if env_sig.key == output.producer.0 {
                    out.push(EvidenceRecord::BadWitness {
                        accused: output.producer,
                        output,
                        witnesses: witnesses.to_vec(),
                        sent_at,
                        env_sig,
                    });
                }
            }
            return out;
        }
        let expected = if self.cfg.is_source {
            sensor_value(self.cfg.task, output.period, self.cfg.seed)
        } else {
            task_value(self.cfg.task, output.period, &vals)
        };
        if expected != output.value {
            out.push(EvidenceRecord::BadComputation {
                accused: output.producer,
                output,
                inputs: witnesses.to_vec(),
            });
        }
        out
    }

    /// Lanes that never arrived for `period`, with their planned hosts.
    pub fn missing_lanes(&self, period: PeriodIdx) -> Vec<(ReplicaIdx, NodeId)> {
        let seen = self.arrived.get(&period);
        (0..self.cfg.lanes)
            .filter(|r| seen.is_none_or(|v| !v.contains(r)))
            .filter_map(|r| self.cfg.lane_nodes.get(r as usize).map(|&n| (r, n)))
            .collect()
    }

    /// Drop state older than `before` (bounded memory).
    pub fn gc(&mut self, before: PeriodIdx) {
        self.arrived.retain(|&p, _| p >= before);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btr_crypto::{KeyStore, NodeKey, Signer};

    struct View;
    impl WorkloadView for View {
        fn inputs_of_task(&self, task: TaskId) -> Option<Vec<TaskId>> {
            match task.0 {
                0 => Some(vec![]),
                1 => Some(vec![TaskId(0)]),
                _ => None,
            }
        }
        fn task_is_source(&self, task: TaskId) -> bool {
            task.0 == 0
        }
        fn workload_seed(&self) -> u64 {
            3
        }
    }

    fn signer(i: u32) -> Signer {
        Signer::new(NodeKey::derive(21, i))
    }
    fn ks() -> KeyStore {
        KeyStore::derive(21, 6)
    }

    /// What the detector's batched pass hands the checker.
    fn oks(ws: &[SignedOutput]) -> Vec<bool> {
        ws.iter().map(|w| w.verify(&ks()).is_ok()).collect()
    }

    fn cfg() -> CheckerConfig {
        CheckerConfig {
            task: TaskId(1),
            lanes: 2,
            lane_nodes: vec![NodeId(1), NodeId(2)],
            is_source: false,
            inputs: vec![TaskId(0)],
            seed: 3,
        }
    }

    fn input(p: PeriodIdx) -> SignedOutput {
        let v = sensor_value(TaskId(0), p, 3);
        SignedOutput::sign(
            &signer(0),
            TaskId(0),
            0,
            p,
            v,
            inputs_digest(&[]),
            NodeId(0),
        )
    }

    #[test]
    fn pool_detects_equivocation_only_on_conflict() {
        let mut pool = OutputPool::default();
        let a = input(1);
        assert!(pool.insert_checked(&a).is_none());
        // Same copy again: no proof.
        assert!(pool.insert_checked(&a).is_none());
        // Conflicting copy: proof.
        let b = SignedOutput::sign(
            &signer(0),
            TaskId(0),
            0,
            1,
            a.value ^ 1,
            inputs_digest(&[]),
            NodeId(0),
        );
        let ev = pool.insert_checked(&b).expect("equivocation");
        assert_eq!(ev.convicts(), Some(NodeId(0)));
        assert_eq!(pool.len(), 1);
        pool.gc(2);
        assert!(pool.is_empty());
    }

    #[test]
    fn wrong_lane_host_ignored() {
        let mut chk = ReplicaChecker::new(cfg());
        let w = input(1);
        let vals = [(TaskId(0), w.value)];
        // Node 5 forges a lane-0 output (lane 0 belongs to node 1).
        let o = SignedOutput::sign(
            &signer(5),
            TaskId(1),
            0,
            1,
            0xbad,
            inputs_digest(&vals),
            NodeId(5),
        );
        let ws = [w];
        assert!(chk.observe(&View, o, &ws, &oks(&ws), None).is_empty());
    }

    #[test]
    fn commitment_mismatch_not_judged() {
        let mut chk = ReplicaChecker::new(cfg());
        let w = input(1);
        // Producer commits to garbage: checker refuses to judge (no
        // unsound proof), leaving it to omission/timing handling.
        let o = SignedOutput::sign(&signer(1), TaskId(1), 0, 1, 0xbad, 0x1234, NodeId(1));
        let ws = [w];
        assert!(chk.observe(&View, o, &ws, &oks(&ws), None).is_empty());
    }

    #[test]
    fn missing_lanes_reported_until_arrival() {
        let mut chk = ReplicaChecker::new(cfg());
        assert_eq!(chk.missing_lanes(7), vec![(0, NodeId(1)), (1, NodeId(2))]);
        let w = input(7);
        let vals = [(TaskId(0), w.value)];
        let o = SignedOutput::sign(
            &signer(2),
            TaskId(1),
            1,
            7,
            task_value(TaskId(1), 7, &vals),
            inputs_digest(&vals),
            NodeId(2),
        );
        let ws = [w];
        chk.observe(&View, o, &ws, &oks(&ws), None);
        assert_eq!(chk.missing_lanes(7), vec![(0, NodeId(1))]);
    }

    #[test]
    fn source_checker_uses_sensor_value() {
        let mut chk = ReplicaChecker::new(CheckerConfig {
            task: TaskId(0),
            lanes: 1,
            lane_nodes: vec![NodeId(0)],
            is_source: true,
            inputs: vec![],
            seed: 3,
        });
        let honest = input(4);
        assert!(chk.observe(&View, honest, &[], &[], None).is_empty());
        let lying = SignedOutput::sign(
            &signer(0),
            TaskId(0),
            0,
            5,
            sensor_value(TaskId(0), 5, 3) ^ 0xff,
            inputs_digest(&[]),
            NodeId(0),
        );
        let evs = chk.observe(&View, lying, &[], &[], None);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].verify(&ks(), &View), Ok(()));
    }

    #[test]
    fn stale_witness_period_rejected() {
        let mut chk = ReplicaChecker::new(cfg());
        let stale = input(1);
        let vals = [(TaskId(0), stale.value)];
        let o = SignedOutput::sign(
            &signer(1),
            TaskId(1),
            0,
            2, // Period 2 output with a period-1 witness.
            task_value(TaskId(1), 2, &vals),
            inputs_digest(&vals),
            NodeId(1),
        );
        let ws = [stale];
        assert!(chk.observe(&View, o, &ws, &oks(&ws), None).is_empty());
    }
}
