//! The online fault detector (Section 4.2 of the paper).
//!
//! "Since there are no trusted nodes, the compromised nodes can try to
//! confuse the detector, e.g., by reporting nonexistent faults or by
//! making false statements about the actions of other nodes. Therefore,
//! it is necessary to generate evidence of detected faults that other
//! nodes can verify independently."
//!
//! The detector runs on every node and combines:
//!
//! * [`checker::ReplicaChecker`] — compares replica outputs; produces
//!   *proofs* for commission faults (bad computation, checked against the
//!   producer's own signed input commitment) and equivocation.
//! * [`checker::OutputPool`] — a cross-task pool of first-seen signed
//!   outputs; any conflicting second copy is an equivocation proof.
//! * [`timing::TimingWatch`] — detects "doing the right thing at the
//!   wrong time": validly signed outputs arriving outside their window
//!   become timing *declarations*.
//! * [`timing::HeartbeatMonitor`] — crash suspicion after missed beats.
//! * [`omission::OmissionTracker`] — the paper's omission-fault counter-
//!   measure: unprovable path declarations are counted, and "if a node is
//!   on a large number of problematic paths", it is attributed faulty.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod omission;
pub mod timing;

pub use checker::{CheckerConfig, OutputPool, ReplicaChecker};
pub use omission::OmissionTracker;
pub use timing::{HeartbeatMonitor, TimingWatch};

use btr_crypto::{KeyStore, SigBatch, Signature, Signer};
use btr_model::evidence::WorkloadView;
use btr_model::{EvidenceId, EvidenceRecord, NodeId, PeriodIdx, SignedOutput, TaskId, Time};
use std::collections::{BTreeMap, BTreeSet};

/// Per-node detector facade combining all detection mechanisms.
///
/// The runtime feeds it observations; it returns evidence records, which
/// the runtime signs into envelopes and hands to the evidence distributor.
pub struct Detector {
    node: NodeId,
    pool: OutputPool,
    checkers: BTreeMap<TaskId, ReplicaChecker>,
    timing: TimingWatch,
    heartbeats: HeartbeatMonitor,
    omission: OmissionTracker,
    /// Records already emitted (dedup so retransmits don't double-count).
    emitted: BTreeSet<EvidenceId>,
    /// Reusable staging for batched signature verification: an arriving
    /// output and all its witnesses are MAC-checked in one keyed pass
    /// over this scratch instead of one allocating verify per record.
    batch: SigBatch,
    /// Per-item results of the last batch pass (index-aligned).
    batch_ok: Vec<bool>,
    /// Nodes exonerated from missing-output blame: the node itself
    /// declared an upstream path problem for that period, so its silence
    /// was a cascade. Maps to the *root* producer/task being blamed, so
    /// downstream recipients can re-point their own declarations at the
    /// root instead of implicating innocent intermediates.
    exonerated: BTreeMap<(NodeId, PeriodIdx), (NodeId, TaskId)>,
    /// Declarations the cascade gates swallowed (exonerated producers,
    /// explained silence): blame the detector chose not to re-assign.
    suppressed: u64,
}

impl Detector {
    /// Create a detector for `node`.
    pub fn new(node: NodeId, heartbeat_miss_threshold: u64, omission_threshold: usize) -> Self {
        Detector {
            node,
            pool: OutputPool::default(),
            checkers: BTreeMap::new(),
            timing: TimingWatch::default(),
            heartbeats: HeartbeatMonitor::new(heartbeat_miss_threshold),
            omission: OmissionTracker::new(omission_threshold),
            emitted: BTreeSet::new(),
            batch: SigBatch::new(),
            batch_ok: Vec::new(),
            exonerated: BTreeMap::new(),
            suppressed: 0,
        }
    }

    /// Install (or replace) the checker for one task. Called on mode
    /// switches when this node hosts `ATask::Check { task }`.
    pub fn install_checker(&mut self, cfg: CheckerConfig) {
        self.checkers.insert(cfg.task, ReplicaChecker::new(cfg));
    }

    /// Remove a checker no longer assigned to this node.
    pub fn remove_checker(&mut self, task: TaskId) {
        self.checkers.remove(&task);
    }

    /// Tasks this node currently checks.
    pub fn checked_tasks(&self) -> Vec<TaskId> {
        self.checkers.keys().copied().collect()
    }

    fn dedup(&mut self, records: Vec<EvidenceRecord>) -> Vec<EvidenceRecord> {
        records
            .into_iter()
            .filter(|r| self.emitted.insert(r.id()))
            .collect()
    }

    /// Feed a received task output (with witnesses) into the detector.
    ///
    /// `expected_by` is the output's arrival deadline (absolute time) and
    /// `arrived_at` the local arrival timestamp, for timing detection.
    #[allow(clippy::too_many_arguments)]
    pub fn observe_output(
        &mut self,
        ks: &KeyStore,
        signer: &Signer,
        view: &dyn WorkloadView,
        output: SignedOutput,
        witnesses: &[SignedOutput],
        arrived_at: Time,
        expected_by: Option<Time>,
        envelope: Option<(Time, Signature)>,
    ) -> Vec<EvidenceRecord> {
        let mut out = Vec::new();
        // Signature gate: the output alone first, so forged spam is
        // dropped after one MAC (a sender attaching a maximal witness
        // set to a garbage-tagged output must not buy W extra MACs);
        // unverifiable outputs are dropped silently — the envelope
        // layer already attributes traffic.
        self.batch.clear();
        self.batch_ok.clear();
        output.stage_for_verify(&mut self.batch);
        ks.verify_batch(&self.batch, &mut self.batch_ok);
        if !self.batch_ok[0] {
            return out;
        }
        // Then the witness set, batched: one staging buffer, one keyed
        // pass (amortising per-record setup; the per-record allocating
        // `verify` this replaces dominated the audit cost). The results
        // are index-aligned with `witnesses` and reused by the checker
        // below, so each witness is MAC-checked exactly once.
        self.batch.clear();
        self.batch_ok.clear();
        for w in witnesses {
            w.stage_for_verify(&mut self.batch);
        }
        ks.verify_batch(&self.batch, &mut self.batch_ok);
        // Equivocation pool over the output and each valid witness.
        if let Some(ev) = self.pool.insert_checked(&output) {
            out.push(ev);
        }
        for (w, &ok) in witnesses.iter().zip(&self.batch_ok) {
            if ok {
                if let Some(ev) = self.pool.insert_checked(w) {
                    out.push(ev);
                }
            }
        }
        // Timing declaration for late arrivals.
        if let Some(deadline) = expected_by {
            if let Some(ev) = self
                .timing
                .observe(signer, self.node, &output, deadline, arrived_at)
            {
                out.push(ev);
            }
        }
        // Commission checking, if this node checks the task — reusing
        // the batch results instead of re-verifying every witness.
        if let Some(chk) = self.checkers.get_mut(&output.task) {
            out.extend(chk.observe(view, output, witnesses, &self.batch_ok, envelope));
        }
        self.dedup(out)
    }

    /// Feed a heartbeat.
    pub fn observe_heartbeat(&mut self, from: NodeId, period: PeriodIdx) {
        self.heartbeats.observe(from, period);
    }

    /// End-of-period housekeeping: omission declarations for replicas
    /// whose outputs never arrived, and crash suspicions for silent nodes.
    ///
    /// `silence_explained(task, producer)` lets the caller suppress
    /// declarations whose blame is already accounted for — e.g. the
    /// producer's upstream chain contains a known-faulty node, so its
    /// silence is starvation, not a new fault (the false-attribution-
    /// cascade gate; see EXPERIMENTS.md campaign findings).
    pub fn end_of_period(
        &mut self,
        signer: &Signer,
        period: PeriodIdx,
        known_faulty: &BTreeSet<NodeId>,
        silence_explained: &dyn Fn(TaskId, NodeId) -> bool,
    ) -> Vec<EvidenceRecord> {
        let mut out = Vec::new();
        for chk in self.checkers.values_mut() {
            for (_, producer) in chk.missing_lanes(period) {
                if known_faulty.contains(&producer) || producer == self.node {
                    continue;
                }
                // A producer that declared its own upstream path problem
                // for this period is exonerated: its silence was a
                // cascade, and blame belongs further up the dataflow.
                if self.exonerated.contains_key(&(producer, period)) {
                    self.suppressed += 1;
                    continue;
                }
                if silence_explained(chk.task(), producer) {
                    self.suppressed += 1;
                    continue;
                }
                out.push(EvidenceRecord::declare_path(
                    signer,
                    self.node,
                    producer,
                    self.node,
                    chk.task(),
                    period,
                ));
            }
            chk.gc(period.saturating_sub(4));
        }
        for suspect in self.heartbeats.check(period) {
            if suspect == self.node || known_faulty.contains(&suspect) {
                continue;
            }
            out.push(EvidenceRecord::declare_crash(
                signer, self.node, suspect, period,
            ));
        }
        self.pool.gc(period.saturating_sub(4));
        self.dedup(out)
    }

    /// Drop detector state older than `before` periods without emitting
    /// declarations (used during mode-transition blackouts).
    pub fn gc(&mut self, before: PeriodIdx) {
        for chk in self.checkers.values_mut() {
            chk.gc(before);
        }
        self.pool.gc(before);
        self.timing.gc(before);
        self.exonerated.retain(|&(_, p), _| p >= before);
    }

    /// Install the plan-derived plausible accusers for threshold scaling
    /// (see [`OmissionTracker::set_plausible_accusers`]).
    pub fn set_plausible_accusers(&mut self, accusers: BTreeMap<NodeId, BTreeSet<NodeId>>) {
        self.omission.set_plausible_accusers(accusers);
    }

    /// Record an externally received (already validated) declaration for
    /// omission attribution. Returns nodes newly attributed faulty.
    pub fn record_declaration(&mut self, record: &EvidenceRecord) -> Vec<NodeId> {
        match record {
            EvidenceRecord::PathDeclaration {
                declarer,
                from,
                to,
                task,
                period,
                ..
            } => {
                // Recipient-side declarations exonerate the declarer from
                // missing-output blame in the same period, recording the
                // root being blamed so downstream declarations can chain
                // to it (cascade blame moves upstream instead of pooling
                // on innocent intermediates).
                if declarer == to {
                    self.exonerated
                        .entry((*declarer, *period))
                        .or_insert((*from, *task));
                }
                self.omission.record_path(*declarer, *from, *to, *period)
            }
            // A mistimed output is a declaration against its producer:
            // "doing the right thing at the wrong time" is counted like
            // a problematic path from the producer to the declarer.
            EvidenceRecord::TimingDeclaration {
                declarer, output, ..
            } => self
                .omission
                .record_path(*declarer, output.producer, *declarer, output.period),
            EvidenceRecord::CrashSuspicion {
                declarer,
                about,
                period,
                ..
            } => self.omission.record_suspicion(*declarer, *about, *period),
            _ => Vec::new(),
        }
    }

    /// Nodes currently attributed faulty by the omission tracker.
    pub fn attributed(&self) -> &BTreeSet<NodeId> {
        self.omission.attributed()
    }

    /// The root (producer, task) a silent node blamed for `period`, if it
    /// exonerated itself.
    pub fn exoneration_of(&self, node: NodeId, period: PeriodIdx) -> Option<(NodeId, TaskId)> {
        self.exonerated.get(&(node, period)).copied()
    }

    /// Declarations the cascade gates swallowed so far (see
    /// [`Detector::end_of_period`]).
    pub fn suppressed_declarations(&self) -> u64 {
        self.suppressed
    }

    /// Unattributed suspects one accuser short of conviction (see
    /// [`OmissionTracker::near_miss_suspects`]).
    pub fn near_miss_suspects(&self) -> usize {
        self.omission.near_miss_suspects()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btr_crypto::NodeKey;
    use btr_model::{inputs_digest, sensor_value, task_value, Value};

    struct View;
    impl WorkloadView for View {
        fn inputs_of_task(&self, task: TaskId) -> Option<Vec<TaskId>> {
            match task.0 {
                0 => Some(vec![]),
                1 => Some(vec![TaskId(0)]),
                _ => None,
            }
        }
        fn task_is_source(&self, task: TaskId) -> bool {
            task.0 == 0
        }
        fn workload_seed(&self) -> u64 {
            9
        }
    }

    fn signer(i: u32) -> Signer {
        Signer::new(NodeKey::derive(11, i))
    }
    fn ks() -> KeyStore {
        KeyStore::derive(11, 8)
    }

    fn checker_cfg() -> CheckerConfig {
        CheckerConfig {
            task: TaskId(1),
            lanes: 2,
            lane_nodes: vec![NodeId(1), NodeId(2)],
            is_source: false,
            inputs: vec![TaskId(0)],
            seed: 9,
        }
    }

    fn src_out(p: PeriodIdx) -> SignedOutput {
        let v = sensor_value(TaskId(0), p, 9);
        SignedOutput::sign(
            &signer(0),
            TaskId(0),
            0,
            p,
            v,
            inputs_digest(&[]),
            NodeId(0),
        )
    }

    fn lane_out(
        p: PeriodIdx,
        lane: u8,
        node: u32,
        value_xor: Value,
    ) -> (SignedOutput, Vec<SignedOutput>) {
        let input = src_out(p);
        let vals = [(TaskId(0), input.value)];
        let v = task_value(TaskId(1), p, &vals) ^ value_xor;
        let out = SignedOutput::sign(
            &signer(node),
            TaskId(1),
            lane,
            p,
            v,
            inputs_digest(&vals),
            NodeId(node),
        );
        (out, vec![input])
    }

    #[test]
    fn clean_outputs_produce_no_evidence() {
        let mut d = Detector::new(NodeId(3), 3, 3);
        d.install_checker(checker_cfg());
        let (o0, w0) = lane_out(1, 0, 1, 0);
        let (o1, w1) = lane_out(1, 1, 2, 0);
        let s = signer(3);
        let evs = d.observe_output(&ks(), &s, &View, o0, &w0, Time(100), None, None);
        assert!(evs.is_empty());
        let evs = d.observe_output(&ks(), &s, &View, o1, &w1, Time(100), None, None);
        assert!(evs.is_empty(), "{evs:?}");
    }

    #[test]
    fn bad_computation_is_proven() {
        let mut d = Detector::new(NodeId(3), 3, 3);
        d.install_checker(checker_cfg());
        let (bad, w) = lane_out(1, 0, 1, 0xdead);
        let s = signer(3);
        let evs = d.observe_output(&ks(), &s, &View, bad, &w, Time(100), None, None);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].convicts(), Some(NodeId(1)));
        // The proof verifies independently.
        assert_eq!(evs[0].verify(&ks(), &View), Ok(()));
        // Re-observing does not re-emit (dedup).
        let (bad2, w2) = lane_out(1, 0, 1, 0xdead);
        let evs = d.observe_output(&ks(), &s, &View, bad2, &w2, Time(100), None, None);
        assert!(evs.is_empty());
    }

    #[test]
    fn equivocation_across_copies_is_proven() {
        let mut d = Detector::new(NodeId(3), 3, 3);
        let s = signer(3);
        // Node 1 signs two different lane-0 outputs for the same period.
        let (a, wa) = lane_out(2, 0, 1, 0);
        let (b, wb) = lane_out(2, 0, 1, 0x55);
        let evs = d.observe_output(&ks(), &s, &View, a, &wa, Time(0), None, None);
        assert!(evs.is_empty());
        let evs = d.observe_output(&ks(), &s, &View, b, &wb, Time(0), None, None);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].convicts(), Some(NodeId(1)));
        assert_eq!(evs[0].verify(&ks(), &View), Ok(()));
    }

    #[test]
    fn batched_gate_drops_forged_outputs_and_skips_forged_witnesses() {
        let mut d = Detector::new(NodeId(3), 3, 3);
        let s = signer(3);
        // A forged output (tag does not match content) is dropped whole.
        let (mut forged, w) = lane_out(1, 0, 1, 0);
        forged.value ^= 1;
        let evs = d.observe_output(&ks(), &s, &View, forged, &w, Time(0), None, None);
        assert!(evs.is_empty());
        // A relabelled output (valid tag under the signer's own key, but
        // claiming another producer) is equally dropped: the batch path
        // must keep the key-id/producer consistency gate.
        let (mut relabelled, w) = lane_out(1, 0, 1, 0);
        relabelled.producer = NodeId(5);
        let evs = d.observe_output(&ks(), &s, &View, relabelled, &w, Time(0), None, None);
        assert!(evs.is_empty());
        // A valid output with one forged witness: the witness is skipped
        // (it cannot seed the equivocation pool) but the output lands.
        let (good, mut w) = lane_out(2, 0, 1, 0);
        w[0].value ^= 0xff; // Tag no longer matches.
        let evs = d.observe_output(&ks(), &s, &View, good.clone(), &w, Time(0), None, None);
        assert!(evs.is_empty());
        // The same witness, validly signed with a *conflicting* value,
        // now meets the pool for the first time: no equivocation proof
        // can cite the forged copy, proving it was never admitted.
        let (again, w2) = lane_out(2, 0, 1, 0);
        let evs = d.observe_output(&ks(), &s, &View, again, &w2, Time(1), None, None);
        assert!(evs.is_empty(), "forged witness must not have been pooled");
        let _ = good;
    }

    #[test]
    fn late_arrival_yields_timing_declaration() {
        let mut d = Detector::new(NodeId(3), 3, 3);
        let s = signer(3);
        let (o, w) = lane_out(1, 0, 1, 0);
        let evs = d.observe_output(
            &ks(),
            &s,
            &View,
            o,
            &w,
            Time(9_000),
            Some(Time(5_000)),
            None,
        );
        assert_eq!(evs.len(), 1);
        assert!(matches!(evs[0], EvidenceRecord::TimingDeclaration { .. }));
        assert_eq!(evs[0].verify(&ks(), &View), Ok(()));
    }

    #[test]
    fn missing_lane_yields_path_declaration() {
        let mut d = Detector::new(NodeId(3), 3, 3);
        d.install_checker(checker_cfg());
        let s = signer(3);
        // Only lane 1 arrives in period 5.
        let (o1, w1) = lane_out(5, 1, 2, 0);
        d.observe_output(&ks(), &s, &View, o1, &w1, Time(0), None, None);
        let evs = d.end_of_period(&s, 5, &BTreeSet::new(), &|_, _| false);
        assert_eq!(evs.len(), 1);
        match &evs[0] {
            EvidenceRecord::PathDeclaration { from, to, task, .. } => {
                assert_eq!((*from, *to, *task), (NodeId(1), NodeId(3), TaskId(1)));
            }
            other => panic!("expected path declaration, got {other:?}"),
        }
    }

    #[test]
    fn known_faulty_lanes_not_redeclared() {
        let mut d = Detector::new(NodeId(3), 3, 3);
        d.install_checker(checker_cfg());
        let s = signer(3);
        let faulty = BTreeSet::from([NodeId(1), NodeId(2)]);
        let evs = d.end_of_period(&s, 1, &faulty, &|_, _| false);
        assert!(evs.is_empty());
    }

    #[test]
    fn heartbeat_silence_suspected() {
        let mut d = Detector::new(NodeId(3), 2, 3);
        let s = signer(3);
        d.observe_heartbeat(NodeId(4), 0);
        d.observe_heartbeat(NodeId(5), 0);
        // Node 4 goes silent; node 5 keeps beating.
        for p in 1..=4 {
            d.observe_heartbeat(NodeId(5), p);
        }
        let evs = d.end_of_period(&s, 4, &BTreeSet::new(), &|_, _| false);
        let suspects: Vec<NodeId> = evs
            .iter()
            .filter_map(|e| match e {
                EvidenceRecord::CrashSuspicion { about, .. } => Some(*about),
                _ => None,
            })
            .collect();
        assert_eq!(suspects, vec![NodeId(4)]);
    }

    #[test]
    fn attribution_via_declarations() {
        let mut d = Detector::new(NodeId(3), 3, 2);
        let decl1 =
            EvidenceRecord::declare_path(&signer(5), NodeId(5), NodeId(4), NodeId(5), TaskId(1), 1);
        let decl2 =
            EvidenceRecord::declare_path(&signer(6), NodeId(6), NodeId(4), NodeId(6), TaskId(1), 2);
        assert!(d.record_declaration(&decl1).is_empty());
        let newly = d.record_declaration(&decl2);
        assert_eq!(newly, vec![NodeId(4)]);
        assert!(d.attributed().contains(&NodeId(4)));
    }

    #[test]
    fn checker_management() {
        let mut d = Detector::new(NodeId(3), 3, 3);
        d.install_checker(checker_cfg());
        assert_eq!(d.checked_tasks(), vec![TaskId(1)]);
        d.remove_checker(TaskId(1));
        assert!(d.checked_tasks().is_empty());
    }
}
