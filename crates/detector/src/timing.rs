//! Timing-fault detection and crash suspicion.
//!
//! Section 4.2: "BTR additionally requires the detection of timing-
//! related faults (such as doing the right thing at the wrong time)."
//! A validly signed output that arrives outside its window is converted
//! into a signed *timing declaration* — not a proof (the receiver's
//! word is all there is), but attributable and countable.

use btr_crypto::Signer;
use btr_model::{EvidenceRecord, NodeId, PeriodIdx, SignedOutput, Time};
use std::collections::{BTreeMap, BTreeSet};

/// Emits timing declarations for late arrivals (one per output).
#[derive(Debug, Default)]
pub struct TimingWatch {
    declared: BTreeSet<(btr_model::TaskId, u8, PeriodIdx)>,
}

impl TimingWatch {
    /// Observe an arrival; declare if late. At most one declaration per
    /// (task, replica, period).
    pub fn observe(
        &mut self,
        signer: &Signer,
        declarer: NodeId,
        output: &SignedOutput,
        expected_by: Time,
        arrived_at: Time,
    ) -> Option<EvidenceRecord> {
        if arrived_at <= expected_by {
            return None;
        }
        let key = (output.task, output.replica, output.period);
        if !self.declared.insert(key) {
            return None;
        }
        Some(EvidenceRecord::declare_timing(
            signer,
            declarer,
            output.clone(),
            expected_by,
            arrived_at,
        ))
    }

    /// Drop bookkeeping older than `before`.
    pub fn gc(&mut self, before: PeriodIdx) {
        self.declared.retain(|&(_, _, p)| p >= before);
    }
}

/// Crash suspicion from missed heartbeats.
///
/// The synchrony assumptions (Section 2.1) make heartbeats meaningful:
/// a correct node's beacon arrives every period, so `threshold` silent
/// periods imply a crash (or an omission fault — either way, evidence
/// worth declaring).
#[derive(Debug)]
pub struct HeartbeatMonitor {
    last_seen: BTreeMap<NodeId, PeriodIdx>,
    threshold: u64,
}

impl HeartbeatMonitor {
    /// Create a monitor that suspects after `threshold` missed periods.
    pub fn new(threshold: u64) -> Self {
        HeartbeatMonitor {
            last_seen: BTreeMap::new(),
            threshold: threshold.max(1),
        }
    }

    /// Record a heartbeat.
    pub fn observe(&mut self, from: NodeId, period: PeriodIdx) {
        let e = self.last_seen.entry(from).or_insert(period);
        if *e < period {
            *e = period;
        }
    }

    /// Nodes past the suspicion threshold at `now`. Reported on *every*
    /// check while the silence persists: the resulting declarations land
    /// in distinct periods, which the omission tracker requires before it
    /// attributes (single bursts never convict).
    pub fn check(&mut self, now: PeriodIdx) -> Vec<NodeId> {
        self.last_seen
            .iter()
            .filter(|(_, &last)| now.saturating_sub(last) >= self.threshold)
            .map(|(&node, _)| node)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btr_crypto::{NodeKey, Signer};
    use btr_model::{inputs_digest, SignedOutput, TaskId};

    fn signer(i: u32) -> Signer {
        Signer::new(NodeKey::derive(31, i))
    }

    fn out(p: PeriodIdx) -> SignedOutput {
        SignedOutput::sign(
            &signer(1),
            TaskId(2),
            0,
            p,
            42,
            inputs_digest(&[]),
            NodeId(1),
        )
    }

    #[test]
    fn on_time_is_silent() {
        let mut w = TimingWatch::default();
        assert!(w
            .observe(&signer(3), NodeId(3), &out(1), Time(1000), Time(900))
            .is_none());
    }

    #[test]
    fn late_is_declared_once() {
        let mut w = TimingWatch::default();
        let d = w.observe(&signer(3), NodeId(3), &out(1), Time(1000), Time(1500));
        assert!(d.is_some());
        // Duplicate arrival: no second declaration.
        assert!(w
            .observe(&signer(3), NodeId(3), &out(1), Time(1000), Time(1600))
            .is_none());
        w.gc(2);
        // After GC the same period could be declared again (bounded memory
        // beats perfect dedup; the evidence layer dedups by record id too).
        assert!(w
            .observe(&signer(3), NodeId(3), &out(1), Time(1000), Time(1600))
            .is_some());
    }

    #[test]
    fn heartbeat_threshold_and_recovery() {
        let mut m = HeartbeatMonitor::new(2);
        m.observe(NodeId(1), 0);
        m.observe(NodeId(2), 0);
        assert!(m.check(1).is_empty());
        assert_eq!(m.check(2), vec![NodeId(1), NodeId(2)]);
        // Still silent: re-reported so declarations span periods.
        assert_eq!(m.check(3), vec![NodeId(1), NodeId(2)]);
        // A fresh beat clears suspicion; silence re-reports later.
        m.observe(NodeId(1), 4);
        assert_eq!(m.check(5), vec![NodeId(2)]);
        assert_eq!(m.check(6), vec![NodeId(1), NodeId(2)]);
    }
}
