//! Forward error correction: a systematic Reed–Solomon-style erasure code
//! over GF(256).
//!
//! Section 2.1: "Packets can still be dropped due to transmission errors,
//! but forward error correction (FEC) can be used to minimize this risk
//! where necessary" (and the CAN bus guardian reference \[11\] notes FEC
//! masks corruption). The codec takes `k` data shards and produces `m`
//! parity shards such that *any* `k` of the `k + m` shards reconstruct
//! the data — the classic erasure-coding guarantee.
//!
//! The field is GF(2^8) with the AES polynomial `x^8+x^4+x^3+x+1` (0x11b);
//! encoding uses a Vandermonde matrix and decoding solves the linear
//! system by Gauss–Jordan elimination over the field.

/// GF(256) arithmetic (log/antilog tables built at first use).
mod gf {
    /// Multiplication in GF(2^8) mod 0x11b (bitwise, no tables needed).
    pub fn mul(mut a: u8, mut b: u8) -> u8 {
        let mut p = 0u8;
        for _ in 0..8 {
            if b & 1 != 0 {
                p ^= a;
            }
            let hi = a & 0x80;
            a <<= 1;
            if hi != 0 {
                a ^= 0x1b;
            }
            b >>= 1;
        }
        p
    }

    /// Multiplicative inverse via Fermat (a^254). `inv(0)` is undefined;
    /// callers must not pass zero.
    pub fn inv(a: u8) -> u8 {
        debug_assert!(a != 0, "inverse of zero");
        // a^254 by square-and-multiply: 254 = 0b11111110.
        let mut result = 1u8;
        let mut base = a;
        let mut e = 254u8;
        while e > 0 {
            if e & 1 != 0 {
                result = mul(result, base);
            }
            base = mul(base, base);
            e >>= 1;
        }
        result
    }

    /// Exponentiation (exercised by the field-law tests).
    #[allow(dead_code)]
    pub fn pow(a: u8, mut e: u32) -> u8 {
        let mut result = 1u8;
        let mut base = a;
        while e > 0 {
            if e & 1 != 0 {
                result = mul(result, base);
            }
            base = mul(base, base);
            e >>= 1;
        }
        result
    }
}

/// Errors from the codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FecError {
    /// Fewer than `k` shards supplied to decode.
    NotEnoughShards {
        /// Shards required.
        need: usize,
        /// Shards supplied.
        have: usize,
    },
    /// Shard lengths disagree.
    ShardSizeMismatch,
    /// Invalid parameters (k = 0 or k + m > 255).
    BadParameters,
    /// The supplied shard set was linearly dependent (cannot happen with
    /// a proper Vandermonde matrix; kept for defensive completeness).
    SingularMatrix,
}

impl std::fmt::Display for FecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FecError::NotEnoughShards { need, have } => {
                write!(f, "need {need} shards, have {have}")
            }
            FecError::ShardSizeMismatch => write!(f, "shard sizes differ"),
            FecError::BadParameters => write!(f, "invalid codec parameters"),
            FecError::SingularMatrix => write!(f, "singular decode matrix"),
        }
    }
}

impl std::error::Error for FecError {}

/// A systematic (k, m) erasure codec: k data shards, m parity shards.
#[derive(Debug, Clone)]
pub struct FecCodec {
    k: usize,
    m: usize,
    /// m x k parity generator rows: parity_i = sum_j gen[i][j] * data_j.
    gen: Vec<Vec<u8>>,
}

impl FecCodec {
    /// Create a codec with `k` data shards and `m` parity shards.
    pub fn new(k: usize, m: usize) -> Result<FecCodec, FecError> {
        if k == 0 || k + m > 255 {
            return Err(FecError::BadParameters);
        }
        // Vandermonde rows: gen[i][j] = (i + 1 + k)^j would not guarantee
        // MDS after systematic concatenation; instead evaluate each data
        // polynomial at distinct points beyond the data indices, which
        // for Vandermonde interpolation-style coding is MDS.
        let mut gen = Vec::with_capacity(m);
        for i in 0..m {
            let x = (k + i + 1) as u8; // Points 1..=k reserved for data.
            let mut row = Vec::with_capacity(k);
            // Lagrange-style: treat data shards as values at x = 1..=k and
            // parity as the interpolating polynomial evaluated at k+1+i.
            for j in 0..k {
                let xj = (j + 1) as u8;
                // L_j(x) = prod_{t != j} (x - x_t) / (x_j - x_t); in GF(2^n)
                // subtraction is xor.
                let mut num = 1u8;
                let mut den = 1u8;
                for t in 0..k {
                    if t == j {
                        continue;
                    }
                    let xt = (t + 1) as u8;
                    num = gf::mul(num, x ^ xt);
                    den = gf::mul(den, xj ^ xt);
                }
                row.push(gf::mul(num, gf::inv(den)));
            }
            gen.push(row);
        }
        Ok(FecCodec { k, m, gen })
    }

    /// Number of data shards.
    pub fn data_shards(&self) -> usize {
        self.k
    }

    /// Number of parity shards.
    pub fn parity_shards(&self) -> usize {
        self.m
    }

    /// Encode: split `data` into k shards (padding with zeros) and return
    /// all `k + m` shards. Shard 0..k are the (padded) data; k..k+m parity.
    pub fn encode(&self, data: &[u8]) -> Vec<Vec<u8>> {
        let shard_len = data.len().div_ceil(self.k).max(1);
        let mut shards: Vec<Vec<u8>> = (0..self.k)
            .map(|i| {
                let mut s = vec![0u8; shard_len];
                let start = i * shard_len;
                if start < data.len() {
                    let end = (start + shard_len).min(data.len());
                    s[..end - start].copy_from_slice(&data[start..end]);
                }
                s
            })
            .collect();
        for row in &self.gen {
            let mut parity = vec![0u8; shard_len];
            for (j, coeff) in row.iter().enumerate() {
                if *coeff == 0 {
                    continue;
                }
                for (p, d) in parity.iter_mut().zip(&shards[j]) {
                    *p ^= gf::mul(*coeff, *d);
                }
            }
            shards.push(parity);
        }
        shards
    }

    /// Decode from any `k` (or more) shards. `shards[i] = Some(bytes)` for
    /// received shard `i` (data shards are indices `0..k`, parity `k..k+m`).
    ///
    /// Returns the reconstructed data shards concatenated (caller trims
    /// padding using its own length prefix).
    pub fn decode(&self, shards: &[Option<Vec<u8>>]) -> Result<Vec<u8>, FecError> {
        let have: Vec<usize> = shards
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| i))
            .collect();
        if have.len() < self.k {
            return Err(FecError::NotEnoughShards {
                need: self.k,
                have: have.len(),
            });
        }
        let shard_len = shards[have[0]].as_ref().expect("present").len();
        for &i in &have {
            if shards[i].as_ref().expect("present").len() != shard_len {
                return Err(FecError::ShardSizeMismatch);
            }
        }
        // Fast path: all data shards present.
        if have.iter().take_while(|&&i| i < self.k).count() >= self.k {
            let mut out = Vec::with_capacity(self.k * shard_len);
            for i in 0..self.k {
                out.extend_from_slice(shards[i].as_ref().expect("present"));
            }
            return Ok(out);
        }
        // General path: build the coefficient rows for the first k
        // available shards and invert.
        let rows: Vec<usize> = have.into_iter().take(self.k).collect();
        let mut mat = Vec::with_capacity(self.k);
        let mut rhs: Vec<&[u8]> = Vec::with_capacity(self.k);
        for &i in &rows {
            if i < self.k {
                let mut row = vec![0u8; self.k];
                row[i] = 1;
                mat.push(row);
            } else {
                mat.push(self.gen[i - self.k].clone());
            }
            rhs.push(shards[i].as_ref().expect("present"));
        }
        // Gauss-Jordan: mat * data = rhs => data = mat^-1 * rhs.
        let inv = invert_matrix(mat).ok_or(FecError::SingularMatrix)?;
        let mut out = vec![0u8; self.k * shard_len];
        for (r, inv_row) in inv.iter().enumerate() {
            let dst = &mut out[r * shard_len..(r + 1) * shard_len];
            for (c, coeff) in inv_row.iter().enumerate() {
                if *coeff == 0 {
                    continue;
                }
                for (o, s) in dst.iter_mut().zip(rhs[c]) {
                    *o ^= gf::mul(*coeff, *s);
                }
            }
        }
        Ok(out)
    }
}

/// Invert a square matrix over GF(256) by Gauss–Jordan; None if singular.
fn invert_matrix(mut mat: Vec<Vec<u8>>) -> Option<Vec<Vec<u8>>> {
    let n = mat.len();
    let mut inv: Vec<Vec<u8>> = (0..n)
        .map(|i| {
            let mut row = vec![0u8; n];
            row[i] = 1;
            row
        })
        .collect();
    for col in 0..n {
        // Find pivot.
        let pivot = (col..n).find(|&r| mat[r][col] != 0)?;
        mat.swap(col, pivot);
        inv.swap(col, pivot);
        // Normalise pivot row.
        let p_inv = gf::inv(mat[col][col]);
        for x in &mut mat[col] {
            *x = gf::mul(*x, p_inv);
        }
        for x in &mut inv[col] {
            *x = gf::mul(*x, p_inv);
        }
        // Eliminate other rows.
        for r in 0..n {
            if r == col || mat[r][col] == 0 {
                continue;
            }
            let factor = mat[r][col];
            for c in 0..n {
                let m = gf::mul(factor, mat[col][c]);
                mat[r][c] ^= m;
                let i = gf::mul(factor, inv[col][c]);
                inv[r][c] ^= i;
            }
        }
    }
    Some(inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gf_axioms() {
        // Multiplicative identity and commutativity on a sample.
        for a in [1u8, 2, 7, 0x53, 0xff] {
            assert_eq!(gf::mul(a, 1), a);
            assert_eq!(gf::mul(a, gf::inv(a)), 1, "a = {a}");
            for b in [1u8, 3, 0xca] {
                assert_eq!(gf::mul(a, b), gf::mul(b, a));
            }
        }
        // Known AES value: 0x53 * 0xca = 0x01.
        assert_eq!(gf::mul(0x53, 0xca), 0x01);
        assert_eq!(gf::pow(2, 8), 0x1b); // x^8 = x^4+x^3+x+1.
    }

    #[test]
    fn encode_shapes() {
        let c = FecCodec::new(4, 2).unwrap();
        let shards = c.encode(b"hello world, this is fec");
        assert_eq!(shards.len(), 6);
        let len = shards[0].len();
        assert!(shards.iter().all(|s| s.len() == len));
        assert_eq!(c.data_shards(), 4);
        assert_eq!(c.parity_shards(), 2);
    }

    #[test]
    fn decode_with_all_data_present() {
        let c = FecCodec::new(3, 2).unwrap();
        let data = b"abcdefghi".to_vec();
        let shards = c.encode(&data);
        let received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        let out = c.decode(&received).unwrap();
        assert_eq!(&out[..data.len()], &data[..]);
    }

    #[test]
    fn decode_with_erasures() {
        let c = FecCodec::new(4, 2).unwrap();
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let shards = c.encode(&data);
        // Lose two data shards.
        let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        received[0] = None;
        received[2] = None;
        let out = c.decode(&received).unwrap();
        assert_eq!(&out[..data.len()], &data[..]);
    }

    #[test]
    fn too_many_erasures_fail() {
        let c = FecCodec::new(4, 2).unwrap();
        let shards = c.encode(b"0123456789abcdef");
        let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        received[0] = None;
        received[1] = None;
        received[4] = None;
        assert_eq!(
            c.decode(&received),
            Err(FecError::NotEnoughShards { need: 4, have: 3 })
        );
    }

    #[test]
    fn bad_parameters_rejected() {
        assert_eq!(FecCodec::new(0, 2).err(), Some(FecError::BadParameters));
        assert_eq!(FecCodec::new(200, 100).err(), Some(FecError::BadParameters));
    }

    #[test]
    fn shard_size_mismatch_rejected() {
        let c = FecCodec::new(2, 1).unwrap();
        let shards = c.encode(b"abcd");
        let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        received[1].as_mut().unwrap().push(0);
        assert_eq!(c.decode(&received), Err(FecError::ShardSizeMismatch));
    }

    proptest! {
        /// Any loss pattern with at most m erasures reconstructs exactly.
        #[test]
        fn prop_recovers_any_m_erasures(
            data in proptest::collection::vec(any::<u8>(), 1..200),
            k in 1usize..6,
            m in 1usize..4,
            seed in any::<u64>(),
        ) {
            let c = FecCodec::new(k, m).unwrap();
            let shards = c.encode(&data);
            // Choose up to m distinct shards to erase, pseudo-randomly.
            let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
            let mut s = seed;
            let mut erased = 0;
            while erased < m {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let idx = (s >> 33) as usize % (k + m);
                if received[idx].is_some() {
                    received[idx] = None;
                    erased += 1;
                }
            }
            let out = c.decode(&received).unwrap();
            prop_assert_eq!(&out[..data.len()], &data[..]);
        }

        /// GF multiplication is associative and distributes over xor.
        #[test]
        fn prop_gf_laws(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
            prop_assert_eq!(gf::mul(a, gf::mul(b, c)), gf::mul(gf::mul(a, b), c));
            prop_assert_eq!(gf::mul(a, b ^ c), gf::mul(a, b) ^ gf::mul(a, c));
        }
    }
}
