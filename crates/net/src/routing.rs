//! Static shortest-path routing.
//!
//! CPS networks are only partially connected ("Each link is connected to
//! some subset of the nodes"), so multi-hop flows exist and the planner
//! must know the paths — both to budget link bandwidth and to reason
//! about which faults cut which flows. Routes are computed offline (BFS,
//! deterministic lowest-id tie-breaking) and recomputed per plan to avoid
//! nodes in the plan's fault set.

use btr_model::{NodeId, Topology};
use std::collections::{BTreeSet, VecDeque};

/// All-pairs next-hop routing for one fault pattern.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    n: usize,
    /// `next_hop[src][dst]` = the neighbour of `src` on the chosen
    /// shortest path to `dst`, or `None` if unreachable.
    next_hop: Vec<Vec<Option<NodeId>>>,
}

impl RoutingTable {
    /// Compute routes over the full topology.
    pub fn new(topo: &Topology) -> RoutingTable {
        Self::avoiding(topo, &BTreeSet::new())
    }

    /// Compute routes that never traverse (or terminate at) `avoid` nodes.
    ///
    /// Deterministic: BFS from each destination with neighbours visited in
    /// ascending id order, so every correct node derives identical tables
    /// from identical inputs.
    pub fn avoiding(topo: &Topology, avoid: &BTreeSet<NodeId>) -> RoutingTable {
        let n = topo.node_count();
        let mut next_hop = vec![vec![None; n]; n];
        // BFS backwards from each destination: parent pointers give the
        // next hop toward that destination.
        for dst in 0..n {
            let dst_id = NodeId(dst as u32);
            if avoid.contains(&dst_id) {
                continue;
            }
            let mut visited = vec![false; n];
            visited[dst] = true;
            let mut queue = VecDeque::from([dst_id]);
            while let Some(cur) = queue.pop_front() {
                for nb in topo.neighbors(cur) {
                    if visited[nb.index()] || avoid.contains(&nb) {
                        continue;
                    }
                    visited[nb.index()] = true;
                    // From nb, the next hop toward dst is cur.
                    next_hop[nb.index()][dst] = Some(cur);
                    queue.push_back(nb);
                }
            }
        }
        RoutingTable { n, next_hop }
    }

    /// The next hop from `src` toward `dst` (None if unreachable or equal).
    pub fn next_hop(&self, src: NodeId, dst: NodeId) -> Option<NodeId> {
        if src == dst {
            return None;
        }
        self.next_hop[src.index()][dst.index()]
    }

    /// The full path from `src` to `dst`, inclusive of both endpoints.
    ///
    /// Returns `None` if no route exists.
    pub fn path(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        if src == dst {
            return Some(vec![src]);
        }
        let mut path = vec![src];
        let mut cur = src;
        for _ in 0..=self.n {
            let hop = self.next_hop(cur, dst)?;
            path.push(hop);
            if hop == dst {
                return Some(path);
            }
            cur = hop;
        }
        None // Cycle guard; unreachable with consistent tables.
    }

    /// Hop count from `src` to `dst` (0 for self, None if unreachable).
    pub fn hops(&self, src: NodeId, dst: NodeId) -> Option<u32> {
        self.path(src, dst).map(|p| (p.len() - 1) as u32)
    }

    /// True if every pair of non-avoided nodes can reach each other.
    pub fn fully_connected(&self, avoid: &BTreeSet<NodeId>) -> bool {
        for s in 0..self.n {
            for d in 0..self.n {
                let (s_id, d_id) = (NodeId(s as u32), NodeId(d as u32));
                if s == d || avoid.contains(&s_id) || avoid.contains(&d_id) {
                    continue;
                }
                if self.next_hop[s][d].is_none() {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btr_model::{Duration, Topology};

    #[test]
    fn bus_routes_are_single_hop() {
        let t = Topology::bus(4, 100, Duration(1));
        let r = RoutingTable::new(&t);
        assert_eq!(r.path(NodeId(0), NodeId(3)), Some(vec![NodeId(0), NodeId(3)]));
        assert_eq!(r.hops(NodeId(0), NodeId(3)), Some(1));
        assert_eq!(r.hops(NodeId(2), NodeId(2)), Some(0));
    }

    #[test]
    fn ring_routes_take_shortest_side() {
        let t = Topology::ring(6, 100, Duration(1));
        let r = RoutingTable::new(&t);
        assert_eq!(r.hops(NodeId(0), NodeId(2)), Some(2));
        assert_eq!(r.hops(NodeId(0), NodeId(3)), Some(3));
        let p = r.path(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(p, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn avoiding_faulty_reroutes() {
        let t = Topology::ring(4, 100, Duration(1));
        let avoid = BTreeSet::from([NodeId(1)]);
        let r = RoutingTable::avoiding(&t, &avoid);
        // 0 -> 2 must go the long way: 0 -> 3 -> 2.
        assert_eq!(
            r.path(NodeId(0), NodeId(2)),
            Some(vec![NodeId(0), NodeId(3), NodeId(2)])
        );
        // Routes to the avoided node do not exist.
        assert_eq!(r.path(NodeId(0), NodeId(1)), None);
        assert!(r.fully_connected(&avoid));
    }

    #[test]
    fn cut_network_detected() {
        // A line 0-1-2: avoiding the middle disconnects the ends.
        let mut b = btr_model::TopologyBuilder::new();
        let n0 = b.full_node();
        let n1 = b.full_node();
        let n2 = b.full_node();
        b.link(&[n0, n1], 100, Duration(1));
        b.link(&[n1, n2], 100, Duration(1));
        let t = b.build().unwrap();
        let avoid = BTreeSet::from([NodeId(1)]);
        let r = RoutingTable::avoiding(&t, &avoid);
        assert_eq!(r.path(NodeId(0), NodeId(2)), None);
        assert!(!r.fully_connected(&avoid));
    }

    #[test]
    fn determinism() {
        let t = Topology::mesh(3, 3, 100, Duration(1));
        let r1 = RoutingTable::new(&t);
        let r2 = RoutingTable::new(&t);
        for s in 0..9u32 {
            for d in 0..9u32 {
                assert_eq!(
                    r1.next_hop(NodeId(s), NodeId(d)),
                    r2.next_hop(NodeId(s), NodeId(d))
                );
            }
        }
    }

    #[test]
    fn paths_are_simple() {
        // No node repeats on any path.
        let t = Topology::mesh(3, 4, 100, Duration(1));
        let r = RoutingTable::new(&t);
        for s in 0..12u32 {
            for d in 0..12u32 {
                if let Some(p) = r.path(NodeId(s), NodeId(d)) {
                    let set: BTreeSet<_> = p.iter().collect();
                    assert_eq!(set.len(), p.len(), "path {s}->{d} not simple");
                }
            }
        }
    }
}
