//! Static shortest-path routing.
//!
//! CPS networks are only partially connected ("Each link is connected to
//! some subset of the nodes"), so multi-hop flows exist and the planner
//! must know the paths — both to budget link bandwidth and to reason
//! about which faults cut which flows. Routes are computed offline (BFS,
//! deterministic lowest-id tie-breaking) and recomputed per plan to avoid
//! nodes in the plan's fault set.
//!
//! Because the simulator asks for a path on *every* transmitted message,
//! the table materialises every (src, dst) path — node sequence plus the
//! link carrying each hop — into flat pools at construction.
//! [`RoutingTable::path`] and [`RoutingTable::path_and_links`] are then
//! O(1) slice borrows with no per-call allocation or link lookup.

use btr_model::{LinkId, NodeId, Topology};
use std::collections::{BTreeSet, VecDeque};

/// Pool offsets for one (src, dst) pair's cached path.
#[derive(Debug, Clone, Copy, Default)]
struct PathSpan {
    /// Offset into the node pool.
    node_off: u32,
    /// Offset into the link pool.
    link_off: u32,
    /// Number of nodes on the path (0 = unreachable; 1 = src == dst).
    len: u16,
}

/// All-pairs routing for one fault pattern, with fully cached paths.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    n: usize,
    /// `next_hop[src * n + dst]` = the neighbour of `src` on the chosen
    /// shortest path to `dst`, or `None` if unreachable.
    next_hop: Vec<Option<NodeId>>,
    /// Per-pair spans into the path pools, indexed `src * n + dst`.
    spans: Vec<PathSpan>,
    /// Concatenated path node sequences (inclusive of both endpoints).
    node_pool: Vec<NodeId>,
    /// Concatenated per-hop link ids (one fewer than nodes per path).
    link_pool: Vec<LinkId>,
}

impl RoutingTable {
    /// Compute routes over the full topology.
    pub fn new(topo: &Topology) -> RoutingTable {
        Self::avoiding(topo, &BTreeSet::new())
    }

    /// Compute routes that never traverse (or terminate at) `avoid` nodes.
    ///
    /// Deterministic: BFS from each destination with neighbours visited in
    /// ascending id order, so every correct node derives identical tables
    /// from identical inputs.
    pub fn avoiding(topo: &Topology, avoid: &BTreeSet<NodeId>) -> RoutingTable {
        Self::build(topo, avoid, false)
    }

    /// Compute routes that never *relay through* `avoid` nodes, but may
    /// still originate or terminate at them.
    ///
    /// This is the link layer's view of a crashed node: traffic addressed
    /// to it still flows (and is dropped at the dead receiver, where the
    /// simulator attributes it), but multi-hop flows are healed around it
    /// — a point-to-point link to a dead node loses carrier, so its
    /// neighbours stop relaying through it. See
    /// `btr_sim::World`'s crash handling.
    pub fn avoiding_transit(topo: &Topology, avoid: &BTreeSet<NodeId>) -> RoutingTable {
        Self::build(topo, avoid, true)
    }

    fn build(topo: &Topology, avoid: &BTreeSet<NodeId>, endpoints_ok: bool) -> RoutingTable {
        let n = topo.node_count();
        let mut next_hop: Vec<Option<NodeId>> = vec![None; n * n];
        // BFS backwards from each destination: parent pointers give the
        // next hop toward that destination.
        for dst in 0..n {
            let dst_id = NodeId(dst as u32);
            if avoid.contains(&dst_id) && !endpoints_ok {
                continue;
            }
            let mut visited = vec![false; n];
            visited[dst] = true;
            let mut queue = VecDeque::from([dst_id]);
            while let Some(cur) = queue.pop_front() {
                for nb in topo.neighbors(cur) {
                    if visited[nb.index()] {
                        continue;
                    }
                    if avoid.contains(&nb) {
                        if !endpoints_ok {
                            continue;
                        }
                        // An avoided node may originate traffic (it gets a
                        // next hop) but never relays: don't expand it.
                        visited[nb.index()] = true;
                        next_hop[nb.index() * n + dst] = Some(cur);
                        continue;
                    }
                    visited[nb.index()] = true;
                    // From nb, the next hop toward dst is cur.
                    next_hop[nb.index() * n + dst] = Some(cur);
                    queue.push_back(nb);
                }
            }
        }

        // Materialise every path once so per-message routing is a slice
        // borrow. Pool size is bounded by n^2 * diameter.
        let mut spans = vec![PathSpan::default(); n * n];
        let mut node_pool = Vec::new();
        let mut link_pool = Vec::new();
        for src in 0..n {
            for dst in 0..n {
                let span = &mut spans[src * n + dst];
                if src == dst {
                    // Self-paths always exist (loopback), matching the
                    // pre-cache behaviour even for avoided nodes.
                    span.node_off = node_pool.len() as u32;
                    span.link_off = link_pool.len() as u32;
                    span.len = 1;
                    node_pool.push(NodeId(src as u32));
                    continue;
                }
                let node_off = node_pool.len();
                let link_off = link_pool.len();
                let mut cur = NodeId(src as u32);
                node_pool.push(cur);
                let mut ok = false;
                for _ in 0..=n {
                    match next_hop[cur.index() * n + dst] {
                        None => break,
                        Some(hop) => {
                            link_pool.push(
                                topo.link_between(cur, hop)
                                    .expect("next-hop pairs share a link"),
                            );
                            node_pool.push(hop);
                            cur = hop;
                            if hop.index() == dst {
                                ok = true;
                                break;
                            }
                        }
                    }
                }
                if ok {
                    span.node_off = node_off as u32;
                    span.link_off = link_off as u32;
                    span.len = (node_pool.len() - node_off) as u16;
                } else {
                    node_pool.truncate(node_off);
                    link_pool.truncate(link_off);
                }
            }
        }

        RoutingTable {
            n,
            next_hop,
            spans,
            node_pool,
            link_pool,
        }
    }

    /// The next hop from `src` toward `dst` (None if unreachable or equal).
    #[inline]
    pub fn next_hop(&self, src: NodeId, dst: NodeId) -> Option<NodeId> {
        if src == dst {
            return None;
        }
        self.next_hop[src.index() * self.n + dst.index()]
    }

    /// The full path from `src` to `dst`, inclusive of both endpoints —
    /// a borrow of the precomputed pool, O(1) and allocation-free.
    ///
    /// Returns `None` if no route exists.
    #[inline]
    pub fn path(&self, src: NodeId, dst: NodeId) -> Option<&[NodeId]> {
        let span = self.spans[src.index() * self.n + dst.index()];
        if span.len == 0 {
            return None;
        }
        let off = span.node_off as usize;
        Some(&self.node_pool[off..off + span.len as usize])
    }

    /// The path plus the link carrying each hop (`links.len() + 1 ==
    /// nodes.len()`). The simulator's per-message route lookup.
    #[inline]
    pub fn path_and_links(&self, src: NodeId, dst: NodeId) -> Option<(&[NodeId], &[LinkId])> {
        let span = self.spans[src.index() * self.n + dst.index()];
        if span.len == 0 {
            return None;
        }
        let noff = span.node_off as usize;
        let loff = span.link_off as usize;
        Some((
            &self.node_pool[noff..noff + span.len as usize],
            &self.link_pool[loff..loff + span.len as usize - 1],
        ))
    }

    /// The path as an owned vector, rebuilt from the next-hop table on
    /// every call. This is the pre-cache reference implementation, kept
    /// for the perf harness's legacy mode and as a differential oracle
    /// for the cache (see the `cache_matches_walk` test).
    pub fn path_vec(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        if src == dst {
            // Mirror the cached behaviour for avoided nodes: no self-path.
            return self.path(src, dst).map(|p| p.to_vec());
        }
        let mut path = vec![src];
        let mut cur = src;
        for _ in 0..=self.n {
            let hop = self.next_hop(cur, dst)?;
            path.push(hop);
            if hop == dst {
                return Some(path);
            }
            cur = hop;
        }
        None // Cycle guard; unreachable with consistent tables.
    }

    /// Hop count from `src` to `dst` (0 for self, None if unreachable).
    pub fn hops(&self, src: NodeId, dst: NodeId) -> Option<u32> {
        self.path(src, dst).map(|p| (p.len() - 1) as u32)
    }

    /// Heap bytes resident for this table (next-hop matrix, spans, and
    /// the materialised path pools) — O(n² · diameter), the number the
    /// demand-driven backend exists to avoid at scale.
    pub fn resident_bytes(&self) -> usize {
        self.next_hop.capacity() * std::mem::size_of::<Option<NodeId>>()
            + self.spans.capacity() * std::mem::size_of::<PathSpan>()
            + self.node_pool.capacity() * std::mem::size_of::<NodeId>()
            + self.link_pool.capacity() * std::mem::size_of::<LinkId>()
    }

    /// True if every pair of non-avoided nodes can reach each other.
    pub fn fully_connected(&self, avoid: &BTreeSet<NodeId>) -> bool {
        for s in 0..self.n {
            for d in 0..self.n {
                let (s_id, d_id) = (NodeId(s as u32), NodeId(d as u32));
                if s == d || avoid.contains(&s_id) || avoid.contains(&d_id) {
                    continue;
                }
                if self.next_hop[s * self.n + d].is_none() {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btr_model::{Duration, Topology};

    #[test]
    fn bus_routes_are_single_hop() {
        let t = Topology::bus(4, 100, Duration(1));
        let r = RoutingTable::new(&t);
        assert_eq!(
            r.path(NodeId(0), NodeId(3)),
            Some(&[NodeId(0), NodeId(3)][..])
        );
        assert_eq!(r.hops(NodeId(0), NodeId(3)), Some(1));
        assert_eq!(r.hops(NodeId(2), NodeId(2)), Some(0));
    }

    #[test]
    fn ring_routes_take_shortest_side() {
        let t = Topology::ring(6, 100, Duration(1));
        let r = RoutingTable::new(&t);
        assert_eq!(r.hops(NodeId(0), NodeId(2)), Some(2));
        assert_eq!(r.hops(NodeId(0), NodeId(3)), Some(3));
        let p = r.path(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(p, &[NodeId(0), NodeId(1), NodeId(2)][..]);
    }

    #[test]
    fn avoiding_faulty_reroutes() {
        let t = Topology::ring(4, 100, Duration(1));
        let avoid = BTreeSet::from([NodeId(1)]);
        let r = RoutingTable::avoiding(&t, &avoid);
        // 0 -> 2 must go the long way: 0 -> 3 -> 2.
        assert_eq!(
            r.path(NodeId(0), NodeId(2)),
            Some(&[NodeId(0), NodeId(3), NodeId(2)][..])
        );
        // Routes to the avoided node do not exist.
        assert_eq!(r.path(NodeId(0), NodeId(1)), None);
        assert!(r.fully_connected(&avoid));
    }

    #[test]
    fn cut_network_detected() {
        // A line 0-1-2: avoiding the middle disconnects the ends.
        let mut b = btr_model::TopologyBuilder::new();
        let n0 = b.full_node();
        let n1 = b.full_node();
        let n2 = b.full_node();
        b.link(&[n0, n1], 100, Duration(1));
        b.link(&[n1, n2], 100, Duration(1));
        let t = b.build().unwrap();
        let avoid = BTreeSet::from([NodeId(1)]);
        let r = RoutingTable::avoiding(&t, &avoid);
        assert_eq!(r.path(NodeId(0), NodeId(2)), None);
        assert!(!r.fully_connected(&avoid));
    }

    #[test]
    fn determinism() {
        let t = Topology::mesh(3, 3, 100, Duration(1));
        let r1 = RoutingTable::new(&t);
        let r2 = RoutingTable::new(&t);
        for s in 0..9u32 {
            for d in 0..9u32 {
                assert_eq!(
                    r1.next_hop(NodeId(s), NodeId(d)),
                    r2.next_hop(NodeId(s), NodeId(d))
                );
            }
        }
    }

    #[test]
    fn paths_are_simple() {
        // No node repeats on any path.
        let t = Topology::mesh(3, 4, 100, Duration(1));
        let r = RoutingTable::new(&t);
        for s in 0..12u32 {
            for d in 0..12u32 {
                if let Some(p) = r.path(NodeId(s), NodeId(d)) {
                    let set: BTreeSet<_> = p.iter().collect();
                    assert_eq!(set.len(), p.len(), "path {s}->{d} not simple");
                }
            }
        }
    }

    #[test]
    fn cache_matches_walk() {
        // The O(1) cached paths must agree with the next-hop walk (the
        // pre-cache implementation) on every pair, with and without
        // avoided nodes.
        let t = Topology::mesh(3, 4, 100, Duration(1));
        for avoid in [
            BTreeSet::new(),
            BTreeSet::from([NodeId(5)]),
            BTreeSet::from([NodeId(1), NodeId(6)]),
        ] {
            let r = RoutingTable::avoiding(&t, &avoid);
            for s in 0..12u32 {
                for d in 0..12u32 {
                    let cached = r.path(NodeId(s), NodeId(d)).map(|p| p.to_vec());
                    let walked = r.path_vec(NodeId(s), NodeId(d));
                    assert_eq!(cached, walked, "pair {s}->{d} avoid {avoid:?}");
                }
            }
        }
    }

    #[test]
    fn cached_links_connect_their_hops() {
        let t = Topology::mesh(3, 4, 100, Duration(1));
        let r = RoutingTable::new(&t);
        for s in 0..12u32 {
            for d in 0..12u32 {
                let Some((nodes, links)) = r.path_and_links(NodeId(s), NodeId(d)) else {
                    continue;
                };
                assert_eq!(links.len() + 1, nodes.len());
                for (i, link) in links.iter().enumerate() {
                    assert_eq!(t.link_between(nodes[i], nodes[i + 1]), Some(*link));
                    let spec = t.link(*link);
                    assert!(spec.attaches(nodes[i]) && spec.attaches(nodes[i + 1]));
                }
            }
        }
    }

    #[test]
    fn avoiding_transit_keeps_endpoints_reachable() {
        let t = Topology::ring(6, 100, Duration(1));
        let avoid = BTreeSet::from([NodeId(1)]);
        let r = RoutingTable::avoiding_transit(&t, &avoid);
        // 0 -> 2 heals the long way around (no relaying through n1)...
        assert_eq!(
            r.path(NodeId(0), NodeId(2)),
            Some(&[NodeId(0), NodeId(5), NodeId(4), NodeId(3), NodeId(2)][..])
        );
        // ...but traffic addressed *to* n1 still routes (dropped at the
        // dead receiver, where the simulator attributes it)...
        assert_eq!(
            r.path(NodeId(0), NodeId(1)),
            Some(&[NodeId(0), NodeId(1)][..])
        );
        // ...and n1 could still originate (its packets just die with it).
        assert!(r.path(NodeId(1), NodeId(2)).is_some());
        // No healed path relays through the avoided node.
        for s in 0..6u32 {
            for d in 0..6u32 {
                if let Some(p) = r.path(NodeId(s), NodeId(d)) {
                    if p.len() > 2 {
                        assert!(
                            !p[1..p.len() - 1].contains(&NodeId(1)),
                            "{s}->{d} relays through the avoided node: {p:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn avoiding_transit_matches_plain_when_nothing_avoided() {
        let t = Topology::mesh(3, 3, 100, Duration(1));
        let a = RoutingTable::new(&t);
        let b = RoutingTable::avoiding_transit(&t, &BTreeSet::new());
        for s in 0..9u32 {
            for d in 0..9u32 {
                assert_eq!(a.path(NodeId(s), NodeId(d)), b.path(NodeId(s), NodeId(d)));
            }
        }
    }

    #[test]
    fn self_paths_always_exist() {
        // Loopback does not traverse the network, so a self-path exists
        // even for avoided nodes (pre-cache behaviour, preserved).
        let t = Topology::ring(4, 100, Duration(1));
        let avoid = BTreeSet::from([NodeId(1)]);
        let r = RoutingTable::avoiding(&t, &avoid);
        assert_eq!(r.path(NodeId(1), NodeId(1)), Some(&[NodeId(1)][..]));
        assert_eq!(r.path(NodeId(0), NodeId(0)), Some(&[NodeId(0)][..]));
    }
}
