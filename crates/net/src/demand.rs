//! Demand-driven routing: the at-scale alternative to the all-pairs
//! [`RoutingTable`].
//!
//! The precomputed table materialises every `(src, dst)` path at
//! construction — O(n² · diameter) memory and work, fine through a few
//! hundred nodes, ruinous at a thousand (ROADMAP "Workload scale-out").
//! [`DemandRoutes`] instead materialises one BFS **row** at a time, on
//! first use, and keeps the rows in a byte-budgeted LRU cache. A row is
//! keyed by the *destination*: the deterministic tie-breaking BFS that
//! defines every path runs from the destination outward (exactly as in
//! `RoutingTable::build`), so one row yields the next hop toward that
//! destination for *all* sources at once. Paths are then short walks
//! along the row, staged into reusable scratch buffers — no per-call
//! allocation in steady state.
//!
//! Both backends implement [`Routes`] and are interchangeable
//! bit-for-bit: identical paths, identical links, identical `avoiding` /
//! `avoiding_transit` semantics (the `routes_equiv` property tests pin
//! this). [`RouteBackend::auto`] picks the table below
//! [`DEMAND_ROUTING_THRESHOLD`] nodes and the row cache at or above it.

use crate::routing::RoutingTable;
use btr_model::{LinkId, NodeId, Topology};
use std::collections::{BTreeSet, VecDeque};

/// Node count at and above which [`RouteBackend::auto`] switches from
/// the precomputed all-pairs table to the demand-driven row cache.
///
/// Below this, the table's O(n² · d) memory is trivial and its O(1)
/// zero-branch lookups keep the simulator hot path at its measured
/// baseline; above it, table construction cost and residency grow
/// quadratically while the row cache stays near-linear.
pub const DEMAND_ROUTING_THRESHOLD: usize = 64;

/// Default byte budget for cached rows (32 MiB): at n = 1000 every row
/// is ~4 kB, so the full row set costs ~4 MB and nothing is evicted;
/// the budget is the backstop that keeps residency bounded at any n.
pub const DEMAND_CACHE_BUDGET: usize = 32 << 20;

/// Sentinel for "no next hop" in a row.
const NONE: u32 = u32::MAX;

/// A shortest-path provider for the link layer.
///
/// Methods take `&mut self` because the demand-driven implementation
/// materialises state on first use; the precomputed table simply ignores
/// the mutability. All implementations must agree bit-for-bit on every
/// path (same BFS, same ascending-id tie-breaking, same lowest-id link
/// selection) so that swapping backends never changes a simulation.
pub trait Routes {
    /// The path from `src` to `dst` inclusive of both endpoints, plus
    /// the link carrying each hop (`links.len() + 1 == nodes.len()`).
    /// `None` if unreachable. Self-paths always exist.
    fn path_and_links(&mut self, src: NodeId, dst: NodeId) -> Option<(&[NodeId], &[LinkId])>;

    /// The path as an owned vector (reference/legacy API).
    fn path_vec(&mut self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>>;

    /// Heap bytes resident for routing state (tables, cached rows,
    /// scratch) — the metric the scale harness gates sub-quadratic.
    fn resident_bytes(&self) -> usize;
}

impl Routes for RoutingTable {
    #[inline]
    fn path_and_links(&mut self, src: NodeId, dst: NodeId) -> Option<(&[NodeId], &[LinkId])> {
        RoutingTable::path_and_links(self, src, dst)
    }

    fn path_vec(&mut self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        RoutingTable::path_vec(self, src, dst)
    }

    fn resident_bytes(&self) -> usize {
        RoutingTable::resident_bytes(self)
    }
}

/// Per-node adjacency with the lowest-id link of every neighbour pair.
///
/// Reproduces `Topology::neighbors` (ascending ids, deduplicated) and
/// `Topology::link_between` (lowest link id wins) as O(deg) lookups, so
/// row building and path walking never scan the global link list.
#[derive(Debug, Clone)]
struct LinkIndex {
    adj: Vec<Vec<(NodeId, LinkId)>>,
}

impl LinkIndex {
    fn new(topo: &Topology) -> LinkIndex {
        let mut adj: Vec<Vec<(NodeId, LinkId)>> = vec![Vec::new(); topo.node_count()];
        for l in topo.links() {
            for &a in &l.endpoints {
                for &b in &l.endpoints {
                    if a != b {
                        adj[a.index()].push((b, l.id));
                    }
                }
            }
        }
        for v in &mut adj {
            // Ascending by neighbour then link id; keeping the first
            // entry per neighbour selects the lowest shared link,
            // matching `Topology::link_between`.
            v.sort_unstable_by_key(|&(nb, link)| (nb.0, link.0));
            v.dedup_by_key(|&mut (nb, _)| nb);
        }
        LinkIndex { adj }
    }

    fn neighbors(&self, n: NodeId) -> &[(NodeId, LinkId)] {
        &self.adj[n.index()]
    }

    fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        let row = &self.adj[a.index()];
        row.binary_search_by_key(&b.0, |&(nb, _)| nb.0)
            .ok()
            .map(|i| row[i].1)
    }

    fn resident_bytes(&self) -> usize {
        self.adj
            .iter()
            .map(|v| v.capacity() * std::mem::size_of::<(NodeId, LinkId)>())
            .sum::<usize>()
            + self.adj.capacity() * std::mem::size_of::<Vec<(NodeId, LinkId)>>()
    }
}

/// Lazily-materialised per-destination routing rows with LRU eviction.
#[derive(Debug, Clone)]
pub struct DemandRoutes {
    index: LinkIndex,
    avoid: BTreeSet<NodeId>,
    endpoints_ok: bool,
    budget: usize,
    /// `rows[dst]` = next hop toward `dst` for every source (NONE =
    /// unreachable), or `None` if not materialised.
    rows: Vec<Option<Box<[u32]>>>,
    /// LRU stamps, parallel to `rows`.
    last_used: Vec<u64>,
    cached: usize,
    tick: u64,
    /// Lifetime counters (diagnostics; the scale harness reports them).
    hits: u64,
    misses: u64,
    evictions: u64,
    // Reusable scratch: BFS state and the staged path returned by
    // `path_and_links`.
    visited: Vec<bool>,
    queue: VecDeque<NodeId>,
    path_nodes: Vec<NodeId>,
    path_links: Vec<LinkId>,
}

impl DemandRoutes {
    /// Routes over the full topology with the default cache budget.
    pub fn new(topo: &Topology) -> DemandRoutes {
        Self::with_budget(topo, DEMAND_CACHE_BUDGET)
    }

    /// Routes over the full topology with an explicit row-cache byte
    /// budget (at least one row is always kept).
    pub fn with_budget(topo: &Topology, budget: usize) -> DemandRoutes {
        let n = topo.node_count();
        DemandRoutes {
            index: LinkIndex::new(topo),
            avoid: BTreeSet::new(),
            endpoints_ok: false,
            budget,
            rows: vec![None; n],
            last_used: vec![0; n],
            cached: 0,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            visited: vec![false; n],
            queue: VecDeque::new(),
            path_nodes: Vec::new(),
            path_links: Vec::new(),
        }
    }

    /// Routes that never traverse (or terminate at) `avoid` nodes —
    /// bit-identical to [`RoutingTable::avoiding`].
    pub fn avoiding(topo: &Topology, avoid: &BTreeSet<NodeId>) -> DemandRoutes {
        let mut d = Self::new(topo);
        d.set_avoid(avoid, false);
        d
    }

    /// Routes that never *relay through* `avoid` nodes but may originate
    /// or terminate at them — bit-identical to
    /// [`RoutingTable::avoiding_transit`].
    pub fn avoiding_transit(topo: &Topology, avoid: &BTreeSet<NodeId>) -> DemandRoutes {
        let mut d = Self::new(topo);
        d.set_avoid(avoid, true);
        d
    }

    /// Install a new avoid set, invalidating every cached row. This is
    /// the at-scale crash-heal path: O(cached) instead of the table's
    /// O(n² · diameter) rebuild.
    pub fn set_avoid(&mut self, avoid: &BTreeSet<NodeId>, endpoints_ok: bool) {
        if self.avoid == *avoid && self.endpoints_ok == endpoints_ok {
            return;
        }
        self.avoid = avoid.clone();
        self.endpoints_ok = endpoints_ok;
        for r in &mut self.rows {
            *r = None;
        }
        self.last_used.fill(0);
        self.cached = 0;
    }

    /// (hits, misses, evictions) since construction.
    pub fn cache_stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// Number of rows currently materialised.
    pub fn cached_rows(&self) -> usize {
        self.cached
    }

    /// Materialise rows for a set of destinations (the plan-derived
    /// traffic matrix): demand-driven warming without waiting for the
    /// first message of each flow.
    pub fn warm<I: IntoIterator<Item = NodeId>>(&mut self, dsts: I) {
        for dst in dsts {
            if dst.index() < self.rows.len() {
                self.ensure_row(dst);
            }
        }
    }

    fn row_bytes(&self) -> usize {
        self.rows.len() * std::mem::size_of::<u32>()
    }

    /// Build the row for `dst`: the exact BFS of `RoutingTable::build`
    /// restricted to one destination — ascending-id neighbour order,
    /// avoided nodes either skipped (`avoiding`) or assigned a hop but
    /// never expanded (`avoiding_transit`).
    fn ensure_row(&mut self, dst: NodeId) {
        self.tick += 1;
        if self.rows[dst.index()].is_some() {
            self.last_used[dst.index()] = self.tick;
            self.hits += 1;
            return;
        }
        self.misses += 1;
        // Evict least-recently-used rows until this one fits the budget.
        while self.cached > 0 && (self.cached + 1) * self.row_bytes() > self.budget {
            let victim = (0..self.rows.len())
                .filter(|&i| self.rows[i].is_some())
                .min_by_key(|&i| self.last_used[i])
                .expect("cached > 0");
            self.rows[victim] = None;
            self.cached -= 1;
            self.evictions += 1;
        }

        let n = self.rows.len();
        let mut row = vec![NONE; n].into_boxed_slice();
        if !self.avoid.contains(&dst) || self.endpoints_ok {
            self.visited.fill(false);
            self.visited[dst.index()] = true;
            self.queue.clear();
            self.queue.push_back(dst);
            while let Some(cur) = self.queue.pop_front() {
                for &(nb, _) in self.index.neighbors(cur) {
                    if self.visited[nb.index()] {
                        continue;
                    }
                    if self.avoid.contains(&nb) {
                        if !self.endpoints_ok {
                            continue;
                        }
                        // May originate (gets a next hop), never relays.
                        self.visited[nb.index()] = true;
                        row[nb.index()] = cur.0;
                        continue;
                    }
                    self.visited[nb.index()] = true;
                    row[nb.index()] = cur.0;
                    self.queue.push_back(nb);
                }
            }
        }
        self.rows[dst.index()] = Some(row);
        self.last_used[dst.index()] = self.tick;
        self.cached += 1;
    }
}

impl Routes for DemandRoutes {
    fn path_and_links(&mut self, src: NodeId, dst: NodeId) -> Option<(&[NodeId], &[LinkId])> {
        self.path_nodes.clear();
        self.path_links.clear();
        self.path_nodes.push(src);
        if src == dst {
            // Loopback does not traverse the network; self-paths exist
            // even for avoided nodes (matches the table's spans).
            return Some((&self.path_nodes, &self.path_links));
        }
        self.ensure_row(dst);
        let n = self.rows.len();
        let mut cur = src;
        let mut ok = false;
        for _ in 0..=n {
            let hop = self.rows[dst.index()].as_ref().expect("ensured")[cur.index()];
            if hop == NONE {
                break;
            }
            let hop = NodeId(hop);
            self.path_links.push(
                self.index
                    .link_between(cur, hop)
                    .expect("next-hop pairs share a link"),
            );
            self.path_nodes.push(hop);
            cur = hop;
            if hop == dst {
                ok = true;
                break;
            }
        }
        if ok {
            Some((&self.path_nodes, &self.path_links))
        } else {
            None
        }
    }

    fn path_vec(&mut self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        self.path_and_links(src, dst)
            .map(|(nodes, _)| nodes.to_vec())
    }

    fn resident_bytes(&self) -> usize {
        self.cached * self.row_bytes()
            + self.rows.capacity() * std::mem::size_of::<Option<Box<[u32]>>>()
            + self.last_used.capacity() * 8
            + self.index.resident_bytes()
            + self.visited.capacity()
            + self.path_nodes.capacity() * 4
            + self.path_links.capacity() * 4
    }
}

/// The routing backend the simulator threads through its link layer:
/// precomputed all-pairs below the scale threshold, demand-driven rows
/// at or above it.
#[derive(Debug, Clone)]
pub enum RouteBackend {
    /// All-pairs table with fully materialised paths (small platforms).
    Precomputed(RoutingTable),
    /// Lazily-materialised LRU row cache (large platforms).
    Demand(DemandRoutes),
}

impl RouteBackend {
    /// Select the backend by node count (see
    /// [`DEMAND_ROUTING_THRESHOLD`]).
    pub fn auto(topo: &Topology) -> RouteBackend {
        if topo.node_count() >= DEMAND_ROUTING_THRESHOLD {
            RouteBackend::Demand(DemandRoutes::new(topo))
        } else {
            RouteBackend::Precomputed(RoutingTable::new(topo))
        }
    }

    /// Human-readable backend name (reports and traces).
    pub fn kind(&self) -> &'static str {
        match self {
            RouteBackend::Precomputed(_) => "precomputed",
            RouteBackend::Demand(_) => "demand",
        }
    }

    /// Recompute for a new avoid set, preserving the backend choice.
    /// `endpoints_ok` selects `avoiding_transit` (true) vs `avoiding`
    /// semantics — see [`RoutingTable::avoiding_transit`].
    pub fn recompute(&mut self, topo: &Topology, avoid: &BTreeSet<NodeId>, endpoints_ok: bool) {
        match self {
            RouteBackend::Precomputed(rt) => {
                *rt = if endpoints_ok {
                    RoutingTable::avoiding_transit(topo, avoid)
                } else {
                    RoutingTable::avoiding(topo, avoid)
                };
            }
            RouteBackend::Demand(d) => d.set_avoid(avoid, endpoints_ok),
        }
    }

    /// Materialise routing state for a set of destinations ahead of
    /// traffic (no-op for the precomputed table, which is always warm).
    pub fn warm<I: IntoIterator<Item = NodeId>>(&mut self, dsts: I) {
        if let RouteBackend::Demand(d) = self {
            d.warm(dsts);
        }
    }
}

impl Routes for RouteBackend {
    #[inline]
    fn path_and_links(&mut self, src: NodeId, dst: NodeId) -> Option<(&[NodeId], &[LinkId])> {
        match self {
            RouteBackend::Precomputed(rt) => RoutingTable::path_and_links(rt, src, dst),
            RouteBackend::Demand(d) => d.path_and_links(src, dst),
        }
    }

    fn path_vec(&mut self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        match self {
            RouteBackend::Precomputed(rt) => RoutingTable::path_vec(rt, src, dst),
            RouteBackend::Demand(d) => d.path_vec(src, dst),
        }
    }

    fn resident_bytes(&self) -> usize {
        match self {
            RouteBackend::Precomputed(rt) => rt.resident_bytes(),
            RouteBackend::Demand(d) => d.resident_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btr_model::Duration;

    fn paths_match(table: &RoutingTable, demand: &mut DemandRoutes, n: usize, ctx: &str) {
        for s in 0..n as u32 {
            for d in 0..n as u32 {
                let a = table
                    .path_and_links(NodeId(s), NodeId(d))
                    .map(|(p, l)| (p.to_vec(), l.to_vec()));
                let b = demand
                    .path_and_links(NodeId(s), NodeId(d))
                    .map(|(p, l)| (p.to_vec(), l.to_vec()));
                assert_eq!(a, b, "{ctx}: pair {s}->{d}");
            }
        }
    }

    #[test]
    fn demand_matches_table_on_mesh() {
        let t = Topology::mesh(3, 4, 100, Duration(1));
        for (avoid, transit) in [
            (BTreeSet::new(), false),
            (BTreeSet::from([NodeId(5)]), false),
            (BTreeSet::from([NodeId(1), NodeId(6)]), false),
            (BTreeSet::from([NodeId(5)]), true),
            (BTreeSet::from([NodeId(0), NodeId(11)]), true),
        ] {
            let table = if transit {
                RoutingTable::avoiding_transit(&t, &avoid)
            } else {
                RoutingTable::avoiding(&t, &avoid)
            };
            let mut demand = if transit {
                DemandRoutes::avoiding_transit(&t, &avoid)
            } else {
                DemandRoutes::avoiding(&t, &avoid)
            };
            paths_match(
                &table,
                &mut demand,
                12,
                &format!("avoid {avoid:?} t={transit}"),
            );
        }
    }

    #[test]
    fn tiny_budget_evicts_but_stays_correct() {
        let t = Topology::mesh(4, 4, 100, Duration(1));
        let table = RoutingTable::new(&t);
        // Budget of one row: every new destination evicts the previous.
        let mut demand = DemandRoutes::with_budget(&t, 16 * 4);
        paths_match(&table, &mut demand, 16, "one-row budget");
        assert_eq!(demand.cached_rows(), 1);
        let (_, misses, evictions) = demand.cache_stats();
        assert!(evictions > 0, "expected eviction churn");
        assert!(misses > 16, "rebuilds after eviction");
        // And a warm cache serves hits.
        let mut roomy = DemandRoutes::new(&t);
        paths_match(&table, &mut roomy, 16, "warm pass 1");
        paths_match(&table, &mut roomy, 16, "warm pass 2");
        let (hits, misses, evictions) = roomy.cache_stats();
        assert_eq!(evictions, 0);
        assert_eq!(misses, 16, "one build per destination");
        assert!(hits > misses);
    }

    #[test]
    fn set_avoid_invalidates_rows() {
        let t = Topology::ring(6, 100, Duration(1));
        let mut d = DemandRoutes::new(&t);
        assert!(d.path_and_links(NodeId(0), NodeId(2)).is_some());
        assert_eq!(d.cached_rows(), 1);
        d.set_avoid(&BTreeSet::from([NodeId(1)]), true);
        assert_eq!(d.cached_rows(), 0, "avoid change must drop rows");
        // Healed path goes the long way, matching the transit table.
        let table = RoutingTable::avoiding_transit(&t, &BTreeSet::from([NodeId(1)]));
        paths_match(&table, &mut d, 6, "post-heal");
        // Re-installing the same set keeps the cache.
        let cached = d.cached_rows();
        d.set_avoid(&BTreeSet::from([NodeId(1)]), true);
        assert_eq!(d.cached_rows(), cached);
    }

    #[test]
    fn auto_selects_by_node_count() {
        let small = Topology::mesh(4, 5, 100, Duration(1));
        assert_eq!(RouteBackend::auto(&small).kind(), "precomputed");
        let large = Topology::ring(DEMAND_ROUTING_THRESHOLD, 100, Duration(1));
        assert_eq!(RouteBackend::auto(&large).kind(), "demand");
    }

    #[test]
    fn backend_recompute_matches_either_way() {
        let t = Topology::ring(8, 100, Duration(1));
        let avoid = BTreeSet::from([NodeId(3)]);
        let mut pre = RouteBackend::Precomputed(RoutingTable::new(&t));
        let mut dem = RouteBackend::Demand(DemandRoutes::new(&t));
        for backend in [&mut pre, &mut dem] {
            backend.recompute(&t, &avoid, true);
        }
        for s in 0..8u32 {
            for d in 0..8u32 {
                assert_eq!(
                    pre.path_vec(NodeId(s), NodeId(d)),
                    dem.path_vec(NodeId(s), NodeId(d)),
                    "pair {s}->{d}"
                );
            }
        }
    }

    #[test]
    fn demand_resident_bytes_stay_bounded() {
        let t = Topology::ring(200, 100, Duration(1));
        let mut d = DemandRoutes::with_budget(&t, 8 * 200 * 4);
        for dst in 0..200u32 {
            d.path_and_links(NodeId(0), NodeId(dst));
        }
        assert!(d.cached_rows() <= 8);
        assert!(d.resident_bytes() < 1 << 20);
    }

    #[test]
    fn warm_materialises_rows() {
        let t = Topology::ring(10, 100, Duration(1));
        let mut b = RouteBackend::Demand(DemandRoutes::new(&t));
        b.warm([NodeId(3), NodeId(7)]);
        if let RouteBackend::Demand(d) = &b {
            assert_eq!(d.cached_rows(), 2);
            assert_eq!(d.cache_stats().1, 2);
        }
        // Precomputed warm is a no-op.
        let mut p = RouteBackend::Precomputed(RoutingTable::new(&t));
        p.warm([NodeId(1)]);
        assert!(p.resident_bytes() > 0);
    }
}
