//! Bandwidth guardians: the babbling-idiot defence.
//!
//! Section 2.1: "we assume ... that there is some solution to the
//! babbling-idiot problem \[11\] — e.g., that the bandwidth of each link is
//! statically allocated between the nodes", and "the MAC is often
//! implemented in hardware and thus can enforce bandwidth allocations
//! even if nodes are corrupted". A [`Guardian`] is that hardware MAC:
//! a per-period byte budget that refills at period boundaries and cannot
//! be bypassed by the node software (faulty or not) because the simulator
//! routes every send through it.

use btr_model::{Duration, Time};

/// Outcome of a guardian check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardianVerdict {
    /// The send fits in the current period's remaining budget.
    Permit,
    /// The send exceeds the budget and is dropped at the MAC.
    Deny,
}

/// A per-period byte-budget enforcer for one (sender, link) pair.
#[derive(Debug, Clone)]
pub struct Guardian {
    /// Budget in bytes per period.
    budget: u64,
    /// Refill interval.
    period: Duration,
    /// Period index the current budget belongs to.
    current_period: u64,
    /// Bytes still available in the current period.
    remaining: u64,
    /// Total bytes denied over the guardian's lifetime (diagnostics).
    denied: u64,
}

impl Guardian {
    /// Create a guardian with `budget` bytes per `period`.
    ///
    /// # Panics
    /// Panics if the period is zero.
    pub fn new(budget: u64, period: Duration) -> Guardian {
        assert!(period.as_micros() > 0, "guardian period must be positive");
        Guardian {
            budget,
            period,
            current_period: 0,
            remaining: budget,
            denied: 0,
        }
    }

    fn roll(&mut self, now: Time) {
        let p = now.period_index(self.period);
        if p != self.current_period {
            self.current_period = p;
            self.remaining = self.budget;
        }
    }

    /// Check (and account for) a send of `bytes` at time `now`.
    pub fn check(&mut self, now: Time, bytes: u64) -> GuardianVerdict {
        self.roll(now);
        if bytes <= self.remaining {
            self.remaining -= bytes;
            GuardianVerdict::Permit
        } else {
            self.denied += bytes;
            GuardianVerdict::Deny
        }
    }

    /// Remaining budget in the period containing `now` (without spending).
    pub fn remaining_at(&self, now: Time) -> u64 {
        if now.period_index(self.period) != self.current_period {
            self.budget
        } else {
            self.remaining
        }
    }

    /// Total bytes denied so far.
    pub fn denied_bytes(&self) -> u64 {
        self.denied
    }

    /// The configured per-period budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn permits_within_budget() {
        let mut g = Guardian::new(100, Duration(1_000));
        assert_eq!(g.check(Time(0), 60), GuardianVerdict::Permit);
        assert_eq!(g.check(Time(10), 40), GuardianVerdict::Permit);
        assert_eq!(g.check(Time(20), 1), GuardianVerdict::Deny);
        assert_eq!(g.denied_bytes(), 1);
    }

    #[test]
    fn refills_at_period_boundary() {
        let mut g = Guardian::new(100, Duration(1_000));
        assert_eq!(g.check(Time(0), 100), GuardianVerdict::Permit);
        assert_eq!(g.check(Time(999), 1), GuardianVerdict::Deny);
        assert_eq!(g.check(Time(1_000), 100), GuardianVerdict::Permit);
    }

    #[test]
    fn remaining_at_is_pure() {
        let mut g = Guardian::new(100, Duration(1_000));
        g.check(Time(0), 30);
        assert_eq!(g.remaining_at(Time(1)), 70);
        assert_eq!(g.remaining_at(Time(1)), 70);
        // Next period looks fresh even before a check rolls it.
        assert_eq!(g.remaining_at(Time(1_000)), 100);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_panics() {
        let _ = Guardian::new(10, Duration(0));
    }

    proptest! {
        /// Within any single period, permitted bytes never exceed budget.
        #[test]
        fn prop_budget_never_exceeded(budget in 1u64..10_000,
                                      sends in proptest::collection::vec((0u64..2_000, 0u64..999), 1..50)) {
            let mut g = Guardian::new(budget, Duration(1_000));
            let mut permitted = 0u64;
            for (bytes, t) in sends {
                if g.check(Time(t), bytes) == GuardianVerdict::Permit {
                    permitted += bytes;
                }
            }
            prop_assert!(permitted <= budget);
        }

        /// Over k periods, permitted bytes never exceed k * budget.
        #[test]
        fn prop_multi_period_bound(budget in 1u64..1_000,
                                   sends in proptest::collection::vec((0u64..500, 0u64..5_000), 1..100)) {
            let mut g = Guardian::new(budget, Duration(1_000));
            let mut by_period = std::collections::BTreeMap::new();
            let mut ordered = sends.clone();
            ordered.sort_by_key(|&(_, t)| t);
            for (bytes, t) in ordered {
                if g.check(Time(t), bytes) == GuardianVerdict::Permit {
                    *by_period.entry(t / 1_000).or_insert(0u64) += bytes;
                }
            }
            for (_, total) in by_period {
                prop_assert!(total <= budget);
            }
        }
    }
}
