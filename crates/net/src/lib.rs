//! Network substrate for the CPS platform.
//!
//! Section 2.1 of the paper assumes a network unlike the ones classical
//! BFT runs on: "it is more common to see circuit-switched networks with
//! strict bandwidth reservations, which enable predictable timing and
//! prevent packet drops due to queue overflows. Packets can still be
//! dropped due to transmission errors, but forward error correction (FEC)
//! can be used to minimize this risk", plus "some solution to the
//! babbling-idiot problem ... the bandwidth of each link is statically
//! allocated between the nodes".
//!
//! This crate implements exactly that substrate, as pure logic the
//! simulator drives:
//!
//! * [`routing`] — static shortest-path routing over partial topologies,
//!   with fault-avoiding recomputation.
//! * [`demand`] — the at-scale routing backend: lazily-materialised
//!   per-destination BFS rows in a byte-budgeted LRU cache, bit-identical
//!   to the precomputed table, selected automatically by node count
//!   through [`RouteBackend`].
//! * [`guardian`] — per-(node, link) bandwidth guardians (the MAC-enforced
//!   static allocation). Guardians bind *even Byzantine senders*, as the
//!   paper argues hardware MACs do.
//! * [`fec`] — a GF(256) Reed–Solomon-style erasure code for masking
//!   transmission losses.
//! * [`Nic`] — the per-link transmission model: each sender owns a
//!   reserved bandwidth slice, so one sender's backlog never delays
//!   another's traffic (no shared queues to overflow).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod demand;
pub mod fec;
pub mod guardian;
pub mod routing;

pub use demand::{
    DemandRoutes, RouteBackend, Routes, DEMAND_CACHE_BUDGET, DEMAND_ROUTING_THRESHOLD,
};
pub use fec::{FecCodec, FecError};
pub use guardian::{Guardian, GuardianVerdict};
pub use routing::RoutingTable;

use btr_model::{Duration, LinkSpec, NodeId, Time};
use std::collections::BTreeMap;

/// Why a send was refused by the link layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The sender is not attached to this link.
    NotAttached,
    /// The sender exhausted its static bandwidth allocation this period
    /// (babbling-idiot guard).
    AllocationExhausted,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::NotAttached => write!(f, "sender not attached to link"),
            SendError::AllocationExhausted => write!(f, "bandwidth allocation exhausted"),
        }
    }
}

impl std::error::Error for SendError {}

/// Per-sender transmission state on one link.
#[derive(Debug, Clone)]
struct SenderLane {
    /// Reserved bandwidth for this sender, bytes per millisecond.
    rate_bytes_per_ms: u64,
    /// When this sender's reserved slice is next free.
    busy_until: Time,
    /// The per-period byte budget guardian.
    guardian: Guardian,
}

/// The transmission model for one link.
///
/// Each attached node owns a *reserved slice* of the link bandwidth
/// (circuit-switched style). Serialisation happens at the slice rate, so
/// transmissions by different senders do not interact — predictable
/// timing by construction. A guardian additionally caps each sender's
/// bytes per period so a babbling node cannot even saturate its own
/// future slots indefinitely beyond its allocation.
///
/// Lanes are stored densely and found through a direct `NodeId`-indexed
/// table — the simulator calls [`Nic::send`] once per hop per message,
/// so the lookup must not walk an ordered map.
#[derive(Debug, Clone)]
pub struct Nic {
    spec: LinkSpec,
    /// `lane_idx[node]` = index into `lanes`, or `NOT_ATTACHED`.
    lane_idx: Vec<u16>,
    lanes: Vec<SenderLane>,
}

const NOT_ATTACHED: u16 = u16::MAX;

impl Nic {
    /// Build the link model with an equal static split between endpoints.
    ///
    /// `period` is the system period (guardian refill interval);
    /// `alloc_override` can give specific senders a different bytes-per-
    /// period budget than the default full-slice budget.
    pub fn new(spec: LinkSpec, period: Duration, alloc_override: &BTreeMap<NodeId, u64>) -> Nic {
        let n = spec.endpoints.len() as u64;
        let slice_rate = (spec.bytes_per_ms as u64 / n).max(1);
        let default_budget = slice_rate * period.as_micros() / 1_000;
        let max_id = spec
            .endpoints
            .iter()
            .map(|e| e.index())
            .max()
            .map_or(0, |m| m + 1);
        let mut lane_idx = vec![NOT_ATTACHED; max_id];
        let mut lanes = Vec::with_capacity(spec.endpoints.len());
        for &node in &spec.endpoints {
            if lane_idx[node.index()] != NOT_ATTACHED {
                continue; // Duplicate endpoint declarations share a lane.
            }
            let budget = alloc_override
                .get(&node)
                .copied()
                .unwrap_or(default_budget)
                .max(1);
            lane_idx[node.index()] = lanes.len() as u16;
            lanes.push(SenderLane {
                rate_bytes_per_ms: slice_rate,
                busy_until: Time::ZERO,
                guardian: Guardian::new(budget, period),
            });
        }
        Nic {
            spec,
            lane_idx,
            lanes,
        }
    }

    /// The static link description.
    pub fn spec(&self) -> &LinkSpec {
        &self.spec
    }

    #[inline]
    fn lane_of(&self, src: NodeId) -> Option<usize> {
        match self.lane_idx.get(src.index()) {
            Some(&i) if i != NOT_ATTACHED => Some(i as usize),
            _ => None,
        }
    }

    /// Serialisation time of `bytes` at `rate` bytes/ms (min 1 µs). The
    /// single timing rule shared by [`Nic::slice_tx_time`] and
    /// [`Nic::send`], so the scheduler's comm bounds and the simulator's
    /// charged times cannot diverge.
    #[inline]
    fn tx_time(rate_bytes_per_ms: u64, bytes: u32) -> Duration {
        let us = (bytes as u64 * 1_000).div_ceil(rate_bytes_per_ms);
        Duration(us.max(1))
    }

    /// Serialisation time of `bytes` on a sender's reserved slice.
    pub fn slice_tx_time(&self, src: NodeId, bytes: u32) -> Option<Duration> {
        let lane = &self.lanes[self.lane_of(src)?];
        Some(Self::tx_time(lane.rate_bytes_per_ms, bytes))
    }

    /// Attempt to transmit `bytes` from `src` at time `now`.
    ///
    /// On success returns the *delivery time* at the receiving ends
    /// (serialisation on the sender's slice + propagation latency).
    pub fn send(&mut self, now: Time, src: NodeId, bytes: u32) -> Result<Time, SendError> {
        let lane_i = self.lane_of(src).ok_or(SendError::NotAttached)?;
        let lane = &mut self.lanes[lane_i];
        let tx = Self::tx_time(lane.rate_bytes_per_ms, bytes);
        match lane.guardian.check(now, bytes as u64) {
            GuardianVerdict::Permit => {}
            GuardianVerdict::Deny => return Err(SendError::AllocationExhausted),
        }
        let start = now.max(lane.busy_until);
        let done = start + tx;
        lane.busy_until = done;
        Ok(done + self.spec.latency)
    }

    /// Bytes dropped by the guardian for a sender so far.
    pub fn guardian_drops(&self, src: NodeId) -> u64 {
        self.lane_of(src)
            .map_or(0, |i| self.lanes[i].guardian.denied_bytes())
    }

    /// Remaining budget for a sender in the period containing `now`.
    pub fn remaining_budget(&self, src: NodeId, now: Time) -> u64 {
        self.lane_of(src)
            .map_or(0, |i| self.lanes[i].guardian.remaining_at(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btr_model::LinkId;

    fn link(bw: u32) -> LinkSpec {
        LinkSpec {
            id: LinkId(0),
            endpoints: vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            bytes_per_ms: bw,
            latency: Duration(50),
        }
    }

    fn nic(bw: u32) -> Nic {
        Nic::new(link(bw), Duration::from_millis(10), &BTreeMap::new())
    }

    #[test]
    fn equal_split_and_delivery_time() {
        // 4000 B/ms across 4 nodes = 1000 B/ms per slice = 1 B/µs.
        let mut n = nic(4000);
        let t = n.send(Time(0), NodeId(0), 100).unwrap();
        assert_eq!(t, Time(100 + 50)); // 100 µs serialise + 50 µs latency.
    }

    #[test]
    fn senders_do_not_interfere() {
        let mut n = nic(4000);
        let a = n.send(Time(0), NodeId(0), 100).unwrap();
        let b = n.send(Time(0), NodeId(1), 100).unwrap();
        // Different reserved slices: identical delivery time.
        assert_eq!(a, b);
    }

    #[test]
    fn same_sender_serialises() {
        let mut n = nic(4000);
        let a = n.send(Time(0), NodeId(0), 100).unwrap();
        let b = n.send(Time(0), NodeId(0), 100).unwrap();
        assert_eq!(b, a + Duration(100));
    }

    #[test]
    fn babbler_is_cut_off() {
        // Budget = 1000 B/ms * 10 ms = 10_000 bytes per period.
        let mut n = nic(4000);
        let mut sent = 0u64;
        let mut denied = false;
        for i in 0..200 {
            match n.send(Time(i), NodeId(2), 100) {
                Ok(_) => sent += 100,
                Err(SendError::AllocationExhausted) => {
                    denied = true;
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(denied, "guardian never engaged");
        assert!(sent <= 10_000);
        // Other senders are unaffected.
        assert!(n.send(Time(0), NodeId(0), 100).is_ok());
        assert!(n.guardian_drops(NodeId(2)) > 0);
    }

    #[test]
    fn budget_refills_next_period() {
        let mut n = nic(4000);
        for _ in 0..100 {
            let _ = n.send(Time(0), NodeId(2), 100);
        }
        assert!(matches!(
            n.send(Time(1), NodeId(2), 100),
            Err(SendError::AllocationExhausted)
        ));
        // Next period boundary at 10 ms: budget is fresh.
        assert!(n.send(Time::from_millis(10), NodeId(2), 100).is_ok());
        assert_eq!(
            n.remaining_budget(NodeId(2), Time::from_millis(10)),
            10_000 - 100
        );
    }

    #[test]
    fn detached_sender_rejected() {
        let mut n = nic(4000);
        assert_eq!(n.send(Time(0), NodeId(9), 10), Err(SendError::NotAttached));
    }

    #[test]
    fn override_allocation() {
        let mut alloc = BTreeMap::new();
        alloc.insert(NodeId(0), 150u64);
        let mut n = Nic::new(link(4000), Duration::from_millis(10), &alloc);
        assert!(n.send(Time(0), NodeId(0), 100).is_ok());
        assert!(matches!(
            n.send(Time(0), NodeId(0), 100),
            Err(SendError::AllocationExhausted)
        ));
    }
}
