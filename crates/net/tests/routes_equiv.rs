//! Property tests: the demand-driven routing backend is bit-identical
//! to the precomputed all-pairs table — same paths, same per-hop links,
//! same `avoiding` and `avoiding_transit` semantics — on every platform
//! family the experiments use, up to 32 nodes.
//!
//! This is the contract that lets `RouteBackend::auto` switch backends
//! by node count without changing a single simulation bit.

use btr_model::{Duration, NodeId, Topology};
use btr_net::{DemandRoutes, Routes, RoutingTable};
use btr_topo::{torus, torus_dims};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Build one of the four platform families at (roughly) `n` nodes.
fn family(which: u8, n: usize) -> Topology {
    match which % 4 {
        0 => Topology::bus(n.max(2), 100, Duration(3)),
        1 => Topology::ring(n.max(3), 100, Duration(3)),
        2 => {
            let rows = (n.max(4) as f64).sqrt() as usize;
            let cols = n.max(4).div_ceil(rows);
            Topology::mesh(rows, cols, 100, Duration(3))
        }
        _ => {
            let (rows, cols) = torus_dims(n.max(4));
            torus(rows, cols, 100, Duration(3)).expect("n >= 4 builds")
        }
    }
}

fn assert_equivalent(topo: &Topology, avoid: &BTreeSet<NodeId>, transit: bool, ctx: &str) {
    let table = if transit {
        RoutingTable::avoiding_transit(topo, avoid)
    } else {
        RoutingTable::avoiding(topo, avoid)
    };
    let mut demand = if transit {
        DemandRoutes::avoiding_transit(topo, avoid)
    } else {
        DemandRoutes::avoiding(topo, avoid)
    };
    let n = topo.node_count() as u32;
    for s in 0..n {
        for d in 0..n {
            let expect = table
                .path_and_links(NodeId(s), NodeId(d))
                .map(|(p, l)| (p.to_vec(), l.to_vec()));
            let got = demand
                .path_and_links(NodeId(s), NodeId(d))
                .map(|(p, l)| (p.to_vec(), l.to_vec()));
            assert_eq!(expect, got, "{ctx}: pair {s}->{d}");
            // The owned-path API must agree too (it is the legacy-mode
            // route used by the perf harness baseline).
            assert_eq!(
                table.path_vec(NodeId(s), NodeId(d)),
                demand.path_vec(NodeId(s), NodeId(d)),
                "{ctx}: path_vec {s}->{d}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Full-topology routing: every pair's path and per-hop links agree
    /// on bus, ring, mesh, and torus platforms up to 32 nodes.
    #[test]
    fn prop_demand_matches_table(which in 0u8..4, n in 2usize..=32) {
        let topo = family(which, n);
        assert_equivalent(&topo, &BTreeSet::new(), false, &format!("fam{which} n{n}"));
    }

    /// `avoiding` (planner semantics: avoided nodes neither originate
    /// nor relay) agrees for arbitrary avoid sets.
    #[test]
    fn prop_demand_matches_table_avoiding(
        which in 0u8..4,
        n in 4usize..=32,
        avoid_raw in proptest::collection::btree_set(0u32..32, 0..4),
    ) {
        let topo = family(which, n);
        let n_nodes = topo.node_count() as u32;
        let avoid: BTreeSet<NodeId> =
            avoid_raw.iter().map(|&a| NodeId(a % n_nodes)).collect();
        assert_equivalent(&topo, &avoid, false, &format!("fam{which} n{n} avoid{avoid:?}"));
    }

    /// `avoiding_transit` (link-layer crash semantics: avoided nodes may
    /// originate/terminate but never relay) agrees for arbitrary avoid
    /// sets — the path the simulator's crash healing exercises.
    #[test]
    fn prop_demand_matches_table_avoiding_transit(
        which in 0u8..4,
        n in 4usize..=32,
        avoid_raw in proptest::collection::btree_set(0u32..32, 0..4),
    ) {
        let topo = family(which, n);
        let n_nodes = topo.node_count() as u32;
        let avoid: BTreeSet<NodeId> =
            avoid_raw.iter().map(|&a| NodeId(a % n_nodes)).collect();
        assert_equivalent(&topo, &avoid, true, &format!("fam{which} n{n} avoid{avoid:?}"));
    }

    /// Equivalence survives eviction churn: with a one-row budget every
    /// query rebuilds its row, and results still match the table.
    #[test]
    fn prop_equivalence_under_eviction(n in 4usize..=24, seed in 0u32..1000) {
        let (rows, cols) = torus_dims(n);
        let topo = torus(rows, cols, 100, Duration(3)).expect("n >= 4 builds");
        let table = RoutingTable::new(&topo);
        let n_nodes = topo.node_count() as u32;
        let mut demand = DemandRoutes::with_budget(&topo, n_nodes as usize * 4);
        // A seed-scrambled probe order (not all pairs in order) so the
        // LRU sees varied access patterns.
        let mut x = seed as u64 + 1;
        for _ in 0..64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let s = NodeId((x >> 33) as u32 % n_nodes);
            let d = NodeId((x >> 17) as u32 % n_nodes);
            let expect = table.path_and_links(s, d).map(|(p, l)| (p.to_vec(), l.to_vec()));
            let got = demand.path_and_links(s, d).map(|(p, l)| (p.to_vec(), l.to_vec()));
            prop_assert_eq!(expect, got);
        }
        prop_assert!(demand.cached_rows() <= 1);
    }
}

/// The dual-bus family has parallel links between the same endpoints;
/// lowest-link-id selection must agree (exhaustive, not property-based,
/// since the family has one shape).
#[test]
fn dual_bus_parallel_links_agree() {
    let topo = Topology::dual_bus(6, 100, Duration(2));
    assert_equivalent(&topo, &BTreeSet::new(), false, "dual-bus");
    let avoid = BTreeSet::from([NodeId(2)]);
    assert_equivalent(&topo, &avoid, true, "dual-bus avoid");
}
