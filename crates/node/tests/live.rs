//! Pinned differential tests: the simulator is the live runtime's
//! trace oracle.
//!
//! These run the same planned system on both substrates — the
//! discrete-event `World` and the thread-per-node live runtime — and
//! compare canonical logical actuation traces by digest. Wall-clock
//! jitter must not leak into logical outcomes; these tests are the
//! enforcement.

use btr_core::{BtrSystem, FaultScenario};
use btr_model::{Duration, FaultKind, NodeId, Time, Topology};
use btr_node::supervisor::{run_live, LiveConfig};
use btr_node::{DumpReason, EventKind};
use btr_obs::{Phase, RecoveryTimeline};
use btr_planner::PlannerConfig;

const SEED: u64 = 7;

fn system(f: u8) -> BtrSystem {
    let workload = btr_workload::generators::avionics(9);
    let topo = Topology::bus(9, 100_000, Duration(5));
    let mut cfg = PlannerConfig::new(f, Duration::from_millis(150));
    cfg.admit_best_effort = true;
    BtrSystem::plan(workload, topo, cfg).expect("plannable")
}

fn sim_trace(
    sys: &BtrSystem,
    scenario: &FaultScenario,
    horizon: Duration,
) -> btr_sim::LogicalTrace {
    let mut world = sys.build_world(scenario, SEED);
    world.start();
    world.run_until(Time::ZERO + horizon + sys.grace());
    world.logical_trace()
}

/// Test pace: 0.5 wall-µs per logical-µs keeps a 400 ms scenario near
/// 200 ms of wall time while leaving sub-millisecond scheduling jitter
/// far inside the protocol's logical margins. Debug binaries run the
/// per-message crypto an order of magnitude slower, so they get
/// proportionally more wall room — otherwise a slow machine flags the
/// whole fleet as deadline overruns (the restart scenario, with its
/// catch-up backlog, is the first to go).
fn live_cfg() -> LiveConfig {
    let mut cfg = LiveConfig::new(SEED);
    cfg.pace = if cfg!(debug_assertions) { 4.0 } else { 0.5 };
    cfg
}

#[test]
fn fault_free_live_run_is_trace_identical_to_simulator() {
    let sys = system(1);
    let horizon = Duration::from_millis(120);
    let scenario = FaultScenario::none();
    let reference = sim_trace(&sys, &scenario, horizon);
    let live = run_live(&sys, &scenario, horizon, &live_cfg());
    assert!(
        live.healthy(),
        "panics: {:?}, overruns: {:?}",
        live.panics,
        live.deadline_overruns
    );
    assert!(!reference.is_empty());
    assert_eq!(
        live.trace.digest(),
        reference.digest(),
        "live diverged from simulator: {:?}",
        live.trace.first_divergence(&reference)
    );
    // The per-node runtime counters must agree too — same messages
    // sent, same evidence flow, on both substrates.
    let report = sys.run(&scenario, horizon, SEED);
    assert_eq!(live.node_stats, report.node_stats, "node stats diverged");
    assert!(live.converged);
}

#[test]
fn live_crash_scenario_matches_sim_and_recovers_within_r() {
    let sys = system(1);
    let horizon = Duration::from_millis(400);
    let scenario = FaultScenario::single(NodeId(6), FaultKind::Crash, Time::from_millis(42));
    let reference = sim_trace(&sys, &scenario, horizon);
    let live = run_live(&sys, &scenario, horizon, &live_cfg());
    assert!(
        live.healthy(),
        "panics: {:?}, overruns: {:?}",
        live.panics,
        live.deadline_overruns
    );
    assert_eq!(
        live.trace.digest(),
        reference.digest(),
        "live diverged from simulator: {:?}",
        live.trace.first_divergence(&reference)
    );
    // The dead node really crashed (thread exit, not simulation flag) …
    assert!(live
        .events
        .iter()
        .any(|e| e.node == NodeId(6) && e.kind == EventKind::Crashed));
    // … the survivors completed a real mode switch …
    assert!(!live.switch_events().is_empty(), "no live mode switch seen");
    assert!(live.converged, "survivors did not converge");
    // … and the judged recovery window honours the planned R bound.
    let judgment = sys.judge_actuations(&scenario, horizon, &live.trace.events);
    assert!(
        judgment.recovery.bad_window() <= sys.strategy().r_bound,
        "live recovery {:?} exceeded R = {:?}",
        judgment.recovery.bad_window(),
        sys.strategy().r_bound
    );
    // Wall-clock recovery: the last switch completed after the fault
    // was activated on the wall clock (sanity of the measured latency).
    let fault_wall_us = (42_000.0 * 0.5) as u64;
    let switch_wall = live.last_switch_wall_us().expect("switch events");
    assert!(
        switch_wall > fault_wall_us,
        "switch at {switch_wall}µs before fault activation {fault_wall_us}µs"
    );
}

#[test]
fn undersized_mailbox_overflow_is_counted_and_attributed() {
    // Deliberately starve the mailboxes: depth 1 cannot absorb a
    // 9-node broadcast burst, so backpressure drops must show up in
    // the aggregate counter, be attributed per receiver, and earn the
    // overflowing nodes a flight-recorder dump.
    let sys = system(1);
    let horizon = Duration::from_millis(120);
    let scenario = FaultScenario::none();
    let mut cfg = live_cfg();
    cfg.mailbox_cap = 1;
    let live = run_live(&sys, &scenario, horizon, &cfg);
    assert!(
        live.drops.mailbox_full > 0,
        "depth-1 mailboxes should overflow under broadcast load"
    );
    let attributed: u64 = live.mailbox_full_by_node.iter().sum();
    assert_eq!(
        attributed, live.drops.mailbox_full,
        "per-node attribution must sum to the aggregate counter"
    );
    let dumps: Vec<_> = live
        .flight_dumps
        .iter()
        .filter(|d| d.reason == DumpReason::MailboxFull)
        .collect();
    assert!(!dumps.is_empty(), "overflowing nodes should be dumped");
    for d in &dumps {
        assert!(live.mailbox_full_by_node[d.node.index()] > 0);
        assert!(!d.tail.is_empty(), "dump should carry the flight tail");
    }
}

#[test]
fn live_obs_on_and_off_are_trace_identical() {
    // The live inertness pin: phase-mark collection must not perturb
    // the logical outcome. Both runs must also match the simulator
    // reference, and the obs run must have actually seen the recovery.
    let sys = system(1);
    let horizon = Duration::from_millis(400);
    let subject = NodeId(6);
    let fault_at = Time::from_millis(42);
    let scenario = FaultScenario::single(subject, FaultKind::Crash, fault_at);
    let reference = sim_trace(&sys, &scenario, horizon);

    let mut off_cfg = live_cfg();
    off_cfg.obs = false;
    let off = run_live(&sys, &scenario, horizon, &off_cfg);
    let on = run_live(&sys, &scenario, horizon, &live_cfg());
    assert!(off.healthy() && on.healthy());
    assert_eq!(off.trace.digest(), reference.digest());
    assert_eq!(
        on.trace.digest(),
        off.trace.digest(),
        "observation changed the live trace"
    );
    assert!(off.phase_marks.is_empty(), "obs off must collect nothing");

    // All four mark phases present for the crashed subject …
    let has = |p: Phase| {
        on.phase_marks
            .iter()
            .any(|m| m.phase == p && m.subject == subject)
    };
    assert!(has(Phase::FaultActive), "no activation mark");
    assert!(has(Phase::EvidenceObserved), "no evidence mark");
    assert!(has(Phase::Attributed), "no attribution mark");
    assert!(has(Phase::SwitchCompleted), "no switch mark");

    // … and the folded timeline partitions the judged bad window.
    let judgment = sys.judge_actuations(&scenario, horizon, &on.trace.events);
    let recovery = judgment.recovery.bad_window();
    assert!(recovery > Duration::ZERO);
    let t = RecoveryTimeline::fold(
        subject,
        fault_at,
        recovery,
        sys.strategy().r_bound,
        &on.phase_marks,
    );
    assert_eq!(t.phases_sum(), t.recovery_us);
    assert!(t.slack_to_r_us > 0, "pinned crash recovers within R");
}

#[test]
fn tiny_flight_cap_is_trace_inert() {
    // The flight-recorder ring is bounded per node and configurable;
    // shrinking it to near nothing must only lose history, never
    // perturb the logical outcome.
    let sys = system(1);
    let horizon = Duration::from_millis(400);
    let scenario = FaultScenario::single(NodeId(6), FaultKind::Crash, Time::from_millis(42));
    let reference = sim_trace(&sys, &scenario, horizon);

    let mut cfg = live_cfg();
    cfg.flight_cap = 2;
    let live = run_live(&sys, &scenario, horizon, &cfg);
    assert!(live.healthy());
    assert_eq!(
        live.trace.digest(),
        reference.digest(),
        "flight cap changed the live trace"
    );

    // And the ring really truncates: rerun the mailbox-overflow
    // scenario with the tiny cap — dumps carry at most two events even
    // for nodes that dispatched far more.
    let mut of_cfg = live_cfg();
    of_cfg.mailbox_cap = 1;
    of_cfg.flight_cap = 2;
    let overflow = run_live(
        &sys,
        &FaultScenario::none(),
        Duration::from_millis(120),
        &of_cfg,
    );
    assert!(!overflow.flight_dumps.is_empty());
    assert!(overflow.flight_dumps.iter().all(|d| d.tail.len() <= 2));
    assert!(
        overflow.flight_dumps.iter().any(|d| d.total > 2),
        "a dumped node should have dispatched more than the ring holds"
    );
}

#[test]
fn crashed_node_restarts_rejoins_and_stays_healthy() {
    let sys = system(1);
    let horizon = Duration::from_millis(400);
    let scenario = FaultScenario::single(NodeId(6), FaultKind::Crash, Time::from_millis(42));
    let mut cfg = live_cfg();
    cfg.restart_after = Duration::from_millis(120);
    let live = run_live(&sys, &scenario, horizon, &cfg);
    assert!(
        live.healthy(),
        "panics: {:?}, overruns: {:?}",
        live.panics,
        live.deadline_overruns
    );
    // The node came up twice: cold boot and supervised restart.
    let started: Vec<_> = live
        .events
        .iter()
        .filter(|e| e.node == NodeId(6) && e.kind == EventKind::Started)
        .collect();
    assert_eq!(started.len(), 2, "expected cold start + restart");
    assert!(
        started[1].logical >= Time::from_millis(162),
        "restart began at {:?}, before crash + downtime",
        started[1].logical
    );
    // The restarted incarnation reached the horizon (no second crash).
    let terminal: Vec<_> = live
        .events
        .iter()
        .filter(|e| e.node == NodeId(6) && matches!(e.kind, EventKind::Finished))
        .collect();
    assert_eq!(terminal.len(), 1, "restarted node should finish cleanly");
    // Recovery still holds with the node back in the fleet.
    let judgment = sys.judge_actuations(&scenario, horizon, &live.trace.events);
    assert!(
        judgment.recovery.bad_window() <= sys.strategy().r_bound,
        "recovery {:?} exceeded R = {:?}",
        judgment.recovery.bad_window(),
        sys.strategy().r_bound
    );
}
