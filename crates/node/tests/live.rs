//! Pinned differential tests: the simulator is the live runtime's
//! trace oracle.
//!
//! These run the same planned system on both substrates — the
//! discrete-event `World` and the thread-per-node live runtime — and
//! compare canonical logical actuation traces by digest. Wall-clock
//! jitter must not leak into logical outcomes; these tests are the
//! enforcement.

use btr_core::{BtrSystem, FaultScenario};
use btr_model::{Duration, FaultKind, NodeId, Time, Topology};
use btr_node::supervisor::{run_live, LiveConfig};
use btr_node::EventKind;
use btr_planner::PlannerConfig;

const SEED: u64 = 7;

fn system(f: u8) -> BtrSystem {
    let workload = btr_workload::generators::avionics(9);
    let topo = Topology::bus(9, 100_000, Duration(5));
    let mut cfg = PlannerConfig::new(f, Duration::from_millis(150));
    cfg.admit_best_effort = true;
    BtrSystem::plan(workload, topo, cfg).expect("plannable")
}

fn sim_trace(
    sys: &BtrSystem,
    scenario: &FaultScenario,
    horizon: Duration,
) -> btr_sim::LogicalTrace {
    let mut world = sys.build_world(scenario, SEED);
    world.start();
    world.run_until(Time::ZERO + horizon + sys.grace());
    world.logical_trace()
}

/// Test pace: 0.5 wall-µs per logical-µs keeps a 400 ms scenario near
/// 200 ms of wall time while leaving sub-millisecond scheduling jitter
/// far inside the protocol's logical margins.
fn live_cfg() -> LiveConfig {
    let mut cfg = LiveConfig::new(SEED);
    cfg.pace = 0.5;
    cfg
}

#[test]
fn fault_free_live_run_is_trace_identical_to_simulator() {
    let sys = system(1);
    let horizon = Duration::from_millis(120);
    let scenario = FaultScenario::none();
    let reference = sim_trace(&sys, &scenario, horizon);
    let live = run_live(&sys, &scenario, horizon, &live_cfg());
    assert!(
        live.healthy(),
        "panics: {:?}, overruns: {:?}",
        live.panics,
        live.deadline_overruns
    );
    assert!(!reference.is_empty());
    assert_eq!(
        live.trace.digest(),
        reference.digest(),
        "live diverged from simulator: {:?}",
        live.trace.first_divergence(&reference)
    );
    // The per-node runtime counters must agree too — same messages
    // sent, same evidence flow, on both substrates.
    let report = sys.run(&scenario, horizon, SEED);
    assert_eq!(live.node_stats, report.node_stats, "node stats diverged");
    assert!(live.converged);
}

#[test]
fn live_crash_scenario_matches_sim_and_recovers_within_r() {
    let sys = system(1);
    let horizon = Duration::from_millis(400);
    let scenario = FaultScenario::single(NodeId(6), FaultKind::Crash, Time::from_millis(42));
    let reference = sim_trace(&sys, &scenario, horizon);
    let live = run_live(&sys, &scenario, horizon, &live_cfg());
    assert!(
        live.healthy(),
        "panics: {:?}, overruns: {:?}",
        live.panics,
        live.deadline_overruns
    );
    assert_eq!(
        live.trace.digest(),
        reference.digest(),
        "live diverged from simulator: {:?}",
        live.trace.first_divergence(&reference)
    );
    // The dead node really crashed (thread exit, not simulation flag) …
    assert!(live
        .events
        .iter()
        .any(|e| e.node == NodeId(6) && e.kind == EventKind::Crashed));
    // … the survivors completed a real mode switch …
    assert!(!live.switch_events().is_empty(), "no live mode switch seen");
    assert!(live.converged, "survivors did not converge");
    // … and the judged recovery window honours the planned R bound.
    let judgment = sys.judge_actuations(&scenario, horizon, &live.trace.events);
    assert!(
        judgment.recovery.bad_window() <= sys.strategy().r_bound,
        "live recovery {:?} exceeded R = {:?}",
        judgment.recovery.bad_window(),
        sys.strategy().r_bound
    );
    // Wall-clock recovery: the last switch completed after the fault
    // was activated on the wall clock (sanity of the measured latency).
    let fault_wall_us = (42_000.0 * 0.5) as u64;
    let switch_wall = live.last_switch_wall_us().expect("switch events");
    assert!(
        switch_wall > fault_wall_us,
        "switch at {switch_wall}µs before fault activation {fault_wall_us}µs"
    );
}

#[test]
fn crashed_node_restarts_rejoins_and_stays_healthy() {
    let sys = system(1);
    let horizon = Duration::from_millis(400);
    let scenario = FaultScenario::single(NodeId(6), FaultKind::Crash, Time::from_millis(42));
    let mut cfg = live_cfg();
    cfg.restart_after = Duration::from_millis(120);
    let live = run_live(&sys, &scenario, horizon, &cfg);
    assert!(
        live.healthy(),
        "panics: {:?}, overruns: {:?}",
        live.panics,
        live.deadline_overruns
    );
    // The node came up twice: cold boot and supervised restart.
    let started: Vec<_> = live
        .events
        .iter()
        .filter(|e| e.node == NodeId(6) && e.kind == EventKind::Started)
        .collect();
    assert_eq!(started.len(), 2, "expected cold start + restart");
    assert!(
        started[1].logical >= Time::from_millis(162),
        "restart began at {:?}, before crash + downtime",
        started[1].logical
    );
    // The restarted incarnation reached the horizon (no second crash).
    let terminal: Vec<_> = live
        .events
        .iter()
        .filter(|e| e.node == NodeId(6) && matches!(e.kind, EventKind::Finished))
        .collect();
    assert_eq!(terminal.len(), 1, "restarted node should finish cleanly");
    // Recovery still holds with the node back in the fleet.
    let judgment = sys.judge_actuations(&scenario, horizon, &live.trace.events);
    assert!(
        judgment.recovery.bad_window() <= sys.strategy().r_bound,
        "recovery {:?} exceeded R = {:?}",
        judgment.recovery.bad_window(),
        sys.strategy().r_bound
    );
}
