//! In-process loopback transport for the live runtime.
//!
//! Mirrors the simulator's network model on the same `btr_net` link
//! parameters: multi-hop routes from `RoutingTable::avoiding_transit`
//! (crashed relays lose carrier and routes heal around them, exactly
//! like `World::heal_routes`), per-hop delay = serialisation time +
//! propagation latency from each `LinkSpec`, and deterministic
//! transmission loss from a per-sender hash-chain roll. What it does
//! *not* model is link contention (`Nic` busy-until) and guardian byte
//! accounting — the live analogue of a finite link is the bounded
//! mailbox, whose backpressure drops are counted and surfaced instead
//! of silently blocking a sender.
//!
//! Envelopes are physically handed over the moment they are sent, but
//! stamped with their *logical* arrival time; the receiving actor parks
//! them until that instant. Logical timestamps, not delivery jitter,
//! are what the trace-equivalence oracle compares.
//!
//! The transport also carries the conservative scheduler's shared
//! state: one causal-frontier cell per node (a lower bound on the
//! arrival time of anything that node may still send) and the
//! topology-wide minimum link delay (lookahead). See the actor module
//! docs for the dispatch rule built on these.

use btr_crypto::digest64;
use btr_model::{Duration, Envelope, NodeId, Time, Topology};
use btr_net::RoutingTable;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};

/// A message in flight: the signed envelope plus its logical arrival
/// time and a per-sender sequence for deterministic same-instant
/// ordering at the receiver.
#[derive(Debug)]
pub struct LiveMsg {
    /// Logical arrival time (send time + per-hop link delays).
    pub at: Time,
    /// Sending node (transport-level truth, unlike `env.src` which a
    /// Byzantine sender can spoof).
    pub from: NodeId,
    /// Per-sender send counter.
    pub seq: u64,
    /// The envelope.
    pub env: Envelope,
}

/// Drop counters, one cell per cause (all monotone; read at shutdown).
#[derive(Debug, Default)]
pub struct TransportCounters {
    /// Bounded-mailbox backpressure drops (`try_send` on a full queue).
    pub mailbox_full: AtomicU64,
    /// Messages addressed to a crashed / not-yet-restarted node.
    pub receiver_down: AtomicU64,
    /// Deterministic transmission loss (per-sender hash-chain roll).
    pub transmission_loss: AtomicU64,
    /// No route to the destination (partition after crashes).
    pub no_route: AtomicU64,
    /// Messages accepted into the network.
    pub sent: AtomicU64,
}

struct RouteState {
    table: RoutingTable,
    crashed: BTreeSet<NodeId>,
}

/// One node's causal-frontier cell (see [`Loopback::frontier_bound`]).
///
/// `anchor` is the node's own claim: the logical time of its earliest
/// known dispatchable event (its dispatches are nondecreasing under the
/// causal gate, so it lower-bounds every future dispatch and hence
/// every future send). `inflight` is a floor maintained by *senders*:
/// the earliest logical arrival among messages delivered to this node
/// that the node has not yet folded into its anchor — the node could
/// react to one of those the moment it drains its mailbox, at a time
/// below its published anchor. Keeping the floor in the receiver's cell
/// until the receiver itself folds-and-clears it closes the window
/// where an in-flight message is visible in nobody's claim.
#[derive(Debug)]
struct FrontierCell {
    anchor: u64,
    inflight: u64,
    /// Terminal (crashed / finished / panicked): will never send again,
    /// and late deliveries into a dying mailbox must not wedge peers.
    dead: bool,
}

struct Inner {
    topo: Topology,
    seed: u64,
    loss_ppm: u32,
    routes: RwLock<RouteState>,
    mailboxes: RwLock<Vec<Option<SyncSender<LiveMsg>>>>,
    counters: TransportCounters,
    /// Per-receiver `mailbox_full` attribution: which node's bounded
    /// mailbox was overflowing (the aggregate counter says only *that*
    /// backpressure happened; the supervisor needs to know *whose*
    /// flight recorder to dump).
    mailbox_full_by: Vec<AtomicU64>,
    frontier: Vec<Mutex<FrontierCell>>,
    /// Minimum one-hop delay in the topology: no message between
    /// distinct nodes can arrive sooner than this after its send.
    lookahead: Duration,
}

impl Inner {
    /// Record a delivered message's arrival time in the receiver's
    /// inflight floor (sender side, after a successful `try_send`).
    fn note_inflight(&self, dst: NodeId, at: Time) {
        let mut cell = self.frontier[dst.index()].lock().expect("frontier lock");
        if !cell.dead {
            cell.inflight = cell.inflight.min(at.as_micros());
        }
    }
}

/// The shared loopback network. Cheaply cloneable; one [`Port`] per
/// sending node.
#[derive(Clone)]
pub struct Loopback {
    inner: Arc<Inner>,
}

impl Loopback {
    /// Build a network over `topo` with deterministic per-sender loss.
    pub fn new(topo: Topology, seed: u64, loss_ppm: u32) -> Loopback {
        let table = RoutingTable::new(&topo);
        let n = topo.node_count();
        // Any inter-node path crosses at least one link, so its delay is
        // at least the smallest link latency. Clamped to 1 µs: a
        // zero-latency link would leave no causal slack at all and the
        // conservative scheduler could not make strict progress.
        let lookahead = topo
            .links()
            .iter()
            .map(|l| l.latency)
            .min()
            .unwrap_or(Duration(1))
            .max(Duration(1));
        Loopback {
            inner: Arc::new(Inner {
                topo,
                seed,
                loss_ppm,
                routes: RwLock::new(RouteState {
                    table,
                    crashed: BTreeSet::new(),
                }),
                mailboxes: RwLock::new((0..n).map(|_| None).collect()),
                counters: TransportCounters::default(),
                mailbox_full_by: (0..n).map(|_| AtomicU64::new(0)).collect(),
                frontier: (0..n)
                    .map(|_| {
                        Mutex::new(FrontierCell {
                            anchor: 0,
                            inflight: u64::MAX,
                            dead: false,
                        })
                    })
                    .collect(),
                lookahead,
            }),
        }
    }

    /// The minimum one-hop delay (see `Inner::lookahead`).
    pub fn lookahead(&self) -> Duration {
        self.inner.lookahead
    }

    /// Fold-and-clear `node`'s own frontier cell: the anchor becomes
    /// `min(next, pending inflight floor)` and the floor resets.
    /// Returns the folded anchor — if it is *below* `next`, a message
    /// earlier than the caller's known next event is already sitting in
    /// its mailbox (delivery precedes the floor update), so the caller
    /// must drain and re-fold before trusting its event choice.
    pub fn publish_anchor(&self, node: NodeId, next: Time) -> Time {
        let mut cell = self.inner.frontier[node.index()]
            .lock()
            .expect("frontier lock");
        let folded = next.as_micros().min(cell.inflight);
        cell.anchor = folded;
        cell.inflight = u64::MAX;
        Time(folded)
    }

    /// Mark `node` terminal: it will never send again, so no peer may
    /// wait on it (and stray deliveries into its dying mailbox must not
    /// re-arm its floor).
    pub fn set_terminal(&self, node: NodeId) {
        let mut cell = self.inner.frontier[node.index()]
            .lock()
            .expect("frontier lock");
        cell.anchor = u64::MAX;
        cell.inflight = u64::MAX;
        cell.dead = true;
    }

    /// Supervisor-only: pull a terminal frontier back down to a restart
    /// instant. The restarted incarnation dispatches nothing before
    /// `at`, and peers are wall-paced far behind `at` when this runs.
    pub fn reset_frontier(&self, node: NodeId, at: Time) {
        let mut cell = self.inner.frontier[node.index()]
            .lock()
            .expect("frontier lock");
        cell.anchor = at.as_micros();
        cell.inflight = u64::MAX;
        cell.dead = false;
    }

    /// The causal bound for `node`: no message can arrive at `node`
    /// before this instant. Every peer's future sends are dispatched at
    /// or after `min(anchor, inflight)` of its cell, and any inter-node
    /// path adds at least `lookahead`; dead peers never send. Local
    /// events strictly below the bound are safe to dispatch (an event
    /// *at* it is safe if it is a timer, which wins ties against
    /// messages).
    pub fn frontier_bound(&self, node: NodeId) -> Time {
        let mut min = u64::MAX;
        for (i, f) in self.inner.frontier.iter().enumerate() {
            if i == node.index() {
                continue;
            }
            let cell = f.lock().expect("frontier lock");
            if !cell.dead {
                min = min.min(cell.anchor.min(cell.inflight));
            }
        }
        Time(min.saturating_add(self.inner.lookahead.as_micros()))
    }

    /// Attach (or re-attach, after a restart) a node's mailbox sender.
    pub fn register(&self, node: NodeId, tx: SyncSender<LiveMsg>) {
        self.inner.mailboxes.write().expect("mailboxes lock")[node.index()] = Some(tx);
    }

    /// Mark a node crashed: detach its mailbox and heal routes around it
    /// (dead relays lose carrier, same semantics as the simulator's
    /// `heal_routes`).
    pub fn crash(&self, node: NodeId) {
        self.inner.mailboxes.write().expect("mailboxes lock")[node.index()] = None;
        let mut st = self.inner.routes.write().expect("routes lock");
        st.crashed.insert(node);
        st.table = RoutingTable::avoiding_transit(&self.inner.topo, &st.crashed);
    }

    /// Bring a restarted node back: routes may transit it again once its
    /// mailbox is re-registered.
    pub fn restore(&self, node: NodeId) {
        let mut st = self.inner.routes.write().expect("routes lock");
        st.crashed.remove(&node);
        st.table = RoutingTable::avoiding_transit(&self.inner.topo, &st.crashed);
    }

    /// A sending handle for `node`.
    pub fn port(&self, node: NodeId) -> Port {
        Port {
            inner: Arc::clone(&self.inner),
            src: node,
            loss_counter: 0,
            seq: 0,
        }
    }

    /// Snapshot of the drop counters.
    pub fn counters(&self) -> &TransportCounters {
        &self.inner.counters
    }

    /// `mailbox_full` drops attributed to one receiver's mailbox.
    pub fn mailbox_full_at(&self, node: NodeId) -> u64 {
        self.inner.mailbox_full_by[node.index()].load(Ordering::Relaxed)
    }
}

/// A per-sender handle (owns the sender's loss-roll chain and send
/// sequence; lives on the actor thread).
pub struct Port {
    inner: Arc<Inner>,
    src: NodeId,
    loss_counter: u64,
    seq: u64,
}

impl Port {
    /// One transmission-loss roll in `0..1_000_000`, deterministic per
    /// (seed, sender, message index) — the live counterpart of the
    /// simulator's hash-chain sampler.
    fn loss_roll(&mut self) -> u32 {
        self.loss_counter += 1;
        (digest64(&[
            b"btr-live-loss",
            &self.inner.seed.to_be_bytes(),
            &self.src.0.to_be_bytes(),
            &self.loss_counter.to_be_bytes(),
        ]) % 1_000_000) as u32
    }

    /// Route and send an envelope at logical time `now`. Returns the
    /// logical arrival time if the message entered the network (drops
    /// are counted, never surfaced to the sender — same contract as the
    /// simulator's fire-and-forget `transmit`).
    pub fn send(&mut self, now: Time, env: Envelope) -> Option<Time> {
        let c = &self.inner.counters;
        let dst = env.dst;
        let bytes = env.wire_size();
        if dst == self.src {
            // Loopback: immediate, lossless, no network traversal —
            // mirrors the simulator's `transmit` self-send short-circuit.
            self.seq += 1;
            let msg = LiveMsg {
                at: now,
                from: self.src,
                seq: self.seq,
                env,
            };
            let tx = self.inner.mailboxes.read().expect("mailboxes lock")[dst.index()].clone();
            return match tx.and_then(|tx| tx.try_send(msg).ok()) {
                Some(()) => {
                    self.inner.note_inflight(dst, now);
                    c.sent.fetch_add(1, Ordering::Relaxed);
                    Some(now)
                }
                None => {
                    c.receiver_down.fetch_add(1, Ordering::Relaxed);
                    None
                }
            };
        }
        let delay = {
            let st = self.inner.routes.read().expect("routes lock");
            let Some((_, links)) = st.table.path_and_links(self.src, dst) else {
                c.no_route.fetch_add(1, Ordering::Relaxed);
                return None;
            };
            let mut d = Duration::ZERO;
            for &l in links {
                let spec = self.inner.topo.link(l);
                d += spec.tx_time(bytes) + spec.latency;
            }
            d
        };
        if self.inner.loss_ppm > 0 && self.loss_roll() < self.inner.loss_ppm {
            self.inner
                .counters
                .transmission_loss
                .fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let c = &self.inner.counters;
        let at = now + delay;
        self.seq += 1;
        let msg = LiveMsg {
            at,
            from: self.src,
            seq: self.seq,
            env,
        };
        let tx = {
            let boxes = self.inner.mailboxes.read().expect("mailboxes lock");
            boxes[dst.index()].clone()
        };
        match tx {
            None => {
                c.receiver_down.fetch_add(1, Ordering::Relaxed);
                None
            }
            Some(tx) => match tx.try_send(msg) {
                Ok(()) => {
                    self.inner.note_inflight(dst, at);
                    c.sent.fetch_add(1, Ordering::Relaxed);
                    Some(at)
                }
                Err(TrySendError::Full(_)) => {
                    c.mailbox_full.fetch_add(1, Ordering::Relaxed);
                    self.inner.mailbox_full_by[dst.index()].fetch_add(1, Ordering::Relaxed);
                    None
                }
                Err(TrySendError::Disconnected(_)) => {
                    c.receiver_down.fetch_add(1, Ordering::Relaxed);
                    None
                }
            },
        }
    }
}

/// Build a bounded mailbox pair for one node.
pub fn mailbox(cap: usize) -> (SyncSender<LiveMsg>, Receiver<LiveMsg>) {
    std::sync::mpsc::sync_channel(cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use btr_model::Payload;

    fn env(src: u32, dst: u32) -> Envelope {
        Envelope::new(NodeId(src), NodeId(dst), Time(0), Payload::Control(1))
    }

    #[test]
    fn delivers_with_link_delay() {
        let topo = Topology::bus(3, 10_000, Duration(10));
        let net = Loopback::new(topo.clone(), 1, 0);
        let (tx, rx) = mailbox(16);
        net.register(NodeId(1), tx);
        let mut port = net.port(NodeId(0));
        let e = env(0, 1);
        let wire = e.wire_size();
        let at = port.send(Time(100), e).expect("delivered");
        let expect = Time(100) + topo.link(btr_model::LinkId(0)).tx_time(wire) + Duration(10);
        assert_eq!(at, expect);
        let got = rx.recv().unwrap();
        assert_eq!(got.at, expect);
        assert_eq!(got.from, NodeId(0));
    }

    #[test]
    fn crash_detaches_and_heals() {
        // Line 0-1-2: after 1 crashes, 0->2 must route around (bus has no
        // alternative here, so it becomes no-route), and sends to 1 count
        // as receiver_down.
        let mut b = btr_model::TopologyBuilder::new();
        let n0 = b.full_node();
        let n1 = b.full_node();
        let n2 = b.full_node();
        b.link(&[n0, n1], 10_000, Duration(5));
        b.link(&[n1, n2], 10_000, Duration(5));
        let net = Loopback::new(b.build().unwrap(), 1, 0);
        let (tx0, _rx0) = mailbox(4);
        net.register(NodeId(2), tx0);
        let mut port = net.port(NodeId(0));
        assert!(port.send(Time(0), env(0, 2)).is_some());
        net.crash(NodeId(1));
        assert!(port.send(Time(0), env(0, 2)).is_none());
        assert_eq!(net.counters().no_route.load(Ordering::Relaxed), 1);
        assert!(port.send(Time(0), env(0, 1)).is_none());
        assert_eq!(net.counters().receiver_down.load(Ordering::Relaxed), 1);
        // Restart: routes transit node 1 again.
        net.restore(NodeId(1));
        assert!(port.send(Time(0), env(0, 2)).is_some());
    }

    #[test]
    fn mailbox_backpressure_counts_drops() {
        let topo = Topology::bus(2, 10_000, Duration(1));
        let net = Loopback::new(topo, 1, 0);
        let (tx, _rx) = mailbox(2);
        net.register(NodeId(1), tx);
        let mut port = net.port(NodeId(0));
        assert!(port.send(Time(0), env(0, 1)).is_some());
        assert!(port.send(Time(0), env(0, 1)).is_some());
        assert!(port.send(Time(0), env(0, 1)).is_none());
        assert_eq!(net.counters().mailbox_full.load(Ordering::Relaxed), 1);
        assert_eq!(net.counters().sent.load(Ordering::Relaxed), 2);
        // The drop is attributed to the overflowing receiver.
        assert_eq!(net.mailbox_full_at(NodeId(1)), 1);
        assert_eq!(net.mailbox_full_at(NodeId(0)), 0);
    }

    #[test]
    fn frontier_bound_tracks_anchors_inflight_and_death() {
        let topo = Topology::bus(3, 10_000, Duration(10));
        let net = Loopback::new(topo, 1, 0);
        assert_eq!(net.lookahead(), Duration(10));
        // Initial anchors are 0: bound = 0 + lookahead.
        assert_eq!(net.frontier_bound(NodeId(0)), Time(10));
        net.publish_anchor(NodeId(1), Time(50));
        net.publish_anchor(NodeId(2), Time(80));
        assert_eq!(net.frontier_bound(NodeId(0)), Time(60));
        // Own cell is excluded from own bound.
        assert_eq!(net.frontier_bound(NodeId(1)), Time(10));
        net.publish_anchor(NodeId(0), Time(200));
        assert_eq!(net.frontier_bound(NodeId(1)), Time(90));
        // A delivered message pins the receiver's inflight floor below
        // its anchor until the receiver folds it.
        let (tx, rx) = mailbox(8);
        net.register(NodeId(2), tx);
        let mut port = net.port(NodeId(0));
        port.send(Time(15), env(0, 2)).expect("delivered");
        let arrival = Time(15) + topo_delay();
        assert_eq!(net.frontier_bound(NodeId(1)), arrival + Duration(10));
        // The fold returns the floor, telling node 2 to re-drain …
        let folded = net.publish_anchor(NodeId(2), Time(80));
        assert_eq!(folded, arrival);
        // … and once folded the floor is cleared into the anchor.
        assert_eq!(net.frontier_bound(NodeId(1)), arrival + Duration(10));
        let _ = rx;
        // Terminal nodes drop out of every bound; a reset re-enters.
        net.set_terminal(NodeId(2));
        assert_eq!(net.frontier_bound(NodeId(1)), Time(210));
        net.reset_frontier(NodeId(2), Time(500));
        assert_eq!(net.frontier_bound(NodeId(1)), Time(210));
        assert_eq!(net.frontier_bound(NodeId(0)), Time(60));
    }

    fn topo_delay() -> Duration {
        let topo = Topology::bus(3, 10_000, Duration(10));
        let e = env(0, 2);
        topo.link(btr_model::LinkId(0)).tx_time(e.wire_size()) + Duration(10)
    }

    #[test]
    fn loss_is_deterministic_per_sender() {
        let topo = Topology::bus(2, 10_000, Duration(1));
        let run = || {
            let net = Loopback::new(topo.clone(), 9, 200_000);
            let (tx, rx) = mailbox(64);
            net.register(NodeId(1), tx);
            let mut port = net.port(NodeId(0));
            let mut pattern = Vec::new();
            for _ in 0..32 {
                pattern.push(port.send(Time(0), env(0, 1)).is_some());
            }
            drop(net);
            drop(rx);
            pattern
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "loss stream must be deterministic");
        assert!(a.iter().any(|&x| x), "some messages survive");
        assert!(a.iter().any(|&x| !x), "20% loss must show in 32 rolls");
    }
}
