//! Runtime fault injection for live nodes.
//!
//! [`FaultyNode`] splices a [`FaultScenario`](btr_core::FaultScenario)
//! entry into a live node's behaviour. Byzantine manifestations
//! (omission, commission, timing, equivocation, babble, evidence spam,
//! with their `FaultMods` sub-strategies) ride the runtime's own
//! `Attack` script in `BtrConfig`, exactly as the simulator splices
//! them; crashes become *real*: a sentinel timer fires at the scripted
//! instant, the wrapper calls `crash_self`, and the actor loop lets the
//! OS thread die. The supervisor may later restart the node with a
//! fresh runtime wrapped in [`Rejoin`], which re-synchronises the period
//! engine to the next boundary instead of replaying period 0.

use btr_core::InjectedFault;
use btr_model::{Envelope, FaultKind, NodeId, Strategy, Time};
use btr_runtime::timers::{self, Timer};
use btr_runtime::{BtrConfig, BtrNode};
use btr_sim::{NodeBehavior, NodeCtx, TimerId};
use btr_workload::Workload;
use std::sync::Arc;

/// The crash-trigger sentinel. `u64::MAX` has timer kind 15, outside
/// the runtime's `[1, 4]` encoding range, so `timers::decode` rejects it
/// and the inner runtime could never confuse it for its own timer.
pub const CRASH_TIMER: TimerId = u64::MAX;

/// A live node with a scripted fault spliced into its behaviour.
pub struct FaultyNode {
    inner: BtrNode,
    crash_at: Option<Time>,
}

impl FaultyNode {
    /// Build the faulty node: `fault.attack()` (None for crashes) goes
    /// into the runtime config, a crash schedules the sentinel timer.
    pub fn make(
        node: NodeId,
        workload: Arc<Workload>,
        strategy: Arc<Strategy>,
        n: usize,
        mut cfg: BtrConfig,
        fault: &InjectedFault,
    ) -> FaultyNode {
        cfg.attack = fault.attack();
        FaultyNode {
            inner: BtrNode::new(node, workload, strategy, n, cfg),
            crash_at: (fault.kind == FaultKind::Crash).then_some(fault.at),
        }
    }
}

impl NodeBehavior for FaultyNode {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        self.inner.on_start(ctx);
        if let Some(at) = self.crash_at {
            ctx.set_timer_at(at, CRASH_TIMER);
        }
    }

    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, env: Envelope) {
        self.inner.on_message(ctx, env);
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: TimerId) {
        if timer == CRASH_TIMER {
            ctx.crash_self();
            return;
        }
        self.inner.on_timer(ctx, timer);
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        self.inner.as_any()
    }
}

/// Wraps a *fresh* runtime for a restarted node.
///
/// `BtrNode::on_start` unconditionally arms `PeriodBoundary { period: 0
/// }` at the current instant — correct at cold boot, wrong for a node
/// rejoining mid-run (it would run the period-0 boundary at, say, t =
/// 180 ms and derive nonsense slot times). `Rejoin` lets `on_start` run
/// (it also builds the checker tables), swallows that first stale
/// boundary when it fires, and re-arms the boundary at the next true
/// period start with the correct period index.
pub struct Rejoin {
    inner: BtrNode,
    resynced: bool,
}

impl Rejoin {
    /// Wrap a fresh runtime for rejoin.
    pub fn new(inner: BtrNode) -> Rejoin {
        Rejoin {
            inner,
            resynced: false,
        }
    }
}

impl NodeBehavior for Rejoin {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        self.inner.on_start(ctx);
    }

    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, env: Envelope) {
        self.inner.on_message(ctx, env);
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: TimerId) {
        if !self.resynced {
            if let Some(Timer::PeriodBoundary { period: 0 }) = timers::decode(timer) {
                self.resynced = true;
                let period = ctx.period();
                // Strictly the *next* boundary: at an exact boundary the
                // node still missed this period's slot starts, so it
                // waits out the remainder.
                let next = (ctx.now() + btr_model::Duration(1)).next_period_start(period);
                ctx.set_timer_at(
                    next,
                    timers::encode(Timer::PeriodBoundary {
                        period: next.period_index(period),
                    }),
                );
                return;
            }
        }
        self.inner.on_timer(ctx, timer);
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        self.inner.as_any()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btr_model::{Duration, Topology};
    use btr_planner::PlannerConfig;
    use btr_sim::{ControlAction, SimConfig, World};

    const N: usize = 9;

    fn strategy() -> (Arc<Workload>, Arc<Strategy>) {
        let workload = btr_workload::generators::avionics(N);
        let topo = Topology::bus(N, 100_000, Duration(5));
        let mut cfg = PlannerConfig::new(1, Duration::from_millis(150));
        cfg.admit_best_effort = true;
        let (strategy, _) = btr_planner::build_strategy(&workload, &topo, &cfg).expect("plan");
        (Arc::new(workload), Arc::new(strategy))
    }

    #[test]
    fn crash_timer_sentinel_is_outside_runtime_space() {
        assert_eq!(timers::decode(CRASH_TIMER), None);
    }

    #[test]
    fn faulty_node_crashes_at_scripted_instant_in_sim() {
        // The wrapper is substrate-agnostic: run it in the simulator and
        // check the node fail-stops exactly at the scripted time.
        let (workload, strategy) = strategy();
        let topo = Topology::bus(N, 100_000, Duration(5));
        let mut world = World::new(topo, SimConfig::new(3));
        let fault = InjectedFault::new(NodeId(4), FaultKind::Crash, Time::from_millis(42));
        for i in 0..N as u32 {
            let node = NodeId(i);
            let behavior: Box<dyn NodeBehavior> = if node == fault.node {
                Box::new(FaultyNode::make(
                    node,
                    Arc::clone(&workload),
                    Arc::clone(&strategy),
                    N,
                    BtrConfig::default(),
                    &fault,
                ))
            } else {
                Box::new(BtrNode::new(
                    node,
                    Arc::clone(&workload),
                    Arc::clone(&strategy),
                    N,
                    BtrConfig::default(),
                ))
            };
            world.set_behavior(node, behavior);
        }
        world.start();
        world.run_until(Time::from_millis(41));
        assert!(!world.is_crashed(NodeId(4)));
        world.run_until(Time::from_millis(200));
        assert!(world.is_crashed(NodeId(4)));
    }

    #[test]
    fn faulty_crash_matches_control_action_crash() {
        // The FaultyNode crash path and the simulator's native
        // ControlAction::Crash must yield identical logical traces —
        // this is what lets the live runtime reuse the simulator as its
        // oracle for crash scenarios.
        let (workload, strategy) = strategy();
        let fault = InjectedFault::new(NodeId(6), FaultKind::Crash, Time::from_millis(42));
        let build = |faulty_wrapper: bool| {
            let topo = Topology::bus(N, 100_000, Duration(5));
            let mut world = World::new(topo, SimConfig::new(3));
            for i in 0..N as u32 {
                let node = NodeId(i);
                let behavior: Box<dyn NodeBehavior> = if faulty_wrapper && node == fault.node {
                    Box::new(FaultyNode::make(
                        node,
                        Arc::clone(&workload),
                        Arc::clone(&strategy),
                        N,
                        BtrConfig::default(),
                        &fault,
                    ))
                } else {
                    Box::new(BtrNode::new(
                        node,
                        Arc::clone(&workload),
                        Arc::clone(&strategy),
                        N,
                        BtrConfig::default(),
                    ))
                };
                world.set_behavior(node, behavior);
            }
            if !faulty_wrapper {
                world.schedule_control(fault.at, ControlAction::Crash(fault.node));
            }
            world.start();
            world.run_until(Time::from_millis(400));
            world.logical_trace()
        };
        let via_wrapper = build(true);
        let via_control = build(false);
        assert!(!via_wrapper.is_empty());
        assert_eq!(
            via_wrapper.digest(),
            via_control.digest(),
            "divergence: {:?}",
            via_wrapper.first_divergence(&via_control)
        );
    }
}
