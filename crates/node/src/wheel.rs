//! A hashed timer wheel for the live node runtime.
//!
//! Entries are bucketed by due time into fixed-granularity slots, the
//! classic hashed-wheel layout; arms beyond the wheel horizon park in an
//! overflow list and are promoted as the cursor advances. Timer *ids*
//! are the opaque `u64` encodings from `btr_runtime::timers`
//! (`[kind:4][version:8][idx:12][period:40]`) — the wheel never
//! interprets them, so the live runtime and the simulator arm bit-for-bit
//! identical ids and `FaultyNode` can reserve a sentinel id outside the
//! encoding space for its crash trigger.
//!
//! A live node holds at most a few dozen armed timers (a period
//! boundary, per-slot start/emit pairs, an activation probe), so slot
//! scans are trivially cheap; what the wheel buys over a binary heap is
//! O(1) arming and cheap in-order expiry without re-heapification on the
//! dispatch path.

use btr_model::Time;
use btr_sim::TimerId;

/// Slot width in µs. Fine enough that one slot rarely holds more than a
/// couple of timers for a 10 ms period system.
const GRANULARITY_US: u64 = 256;
/// Wheel length in slots (horizon = 256 · 256 µs ≈ 65 ms, several
/// periods; later arms overflow and promote on advance).
const WHEEL_SLOTS: usize = 256;

#[derive(Debug, Clone, Copy)]
struct Entry {
    at: Time,
    seq: u64,
    timer: TimerId,
}

/// The wheel. Total order of expiry is `(at, seq)` where `seq` is the
/// caller-supplied arm sequence — the live actor feeds its per-node
/// creation counter so same-instant timers fire in arm order, matching
/// the simulator's global event sequence restricted to one node.
#[derive(Debug)]
pub struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    overflow: Vec<Entry>,
    /// Absolute slot index the wheel has advanced to (inclusive).
    cursor: u64,
    len: usize,
}

impl Default for TimerWheel {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl TimerWheel {
    /// An empty wheel positioned at time zero.
    pub fn new() -> TimerWheel {
        TimerWheel {
            slots: vec![Vec::new(); WHEEL_SLOTS],
            overflow: Vec::new(),
            cursor: 0,
            len: 0,
        }
    }

    /// Armed timers not yet fired.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is armed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn abs_slot(&self, at: Time) -> u64 {
        (at.as_micros() / GRANULARITY_US).max(self.cursor)
    }

    /// Arm `timer` at absolute time `at` with arm-order `seq`.
    pub fn arm(&mut self, at: Time, seq: u64, timer: TimerId) {
        let e = Entry { at, seq, timer };
        let slot = self.abs_slot(at);
        if slot < self.cursor + WHEEL_SLOTS as u64 {
            self.slots[(slot % WHEEL_SLOTS as u64) as usize].push(e);
        } else {
            self.overflow.push(e);
        }
        self.len += 1;
    }

    /// Move overflow entries that now fit the wheel horizon into slots.
    fn promote(&mut self) {
        if self.overflow.is_empty() {
            return;
        }
        let horizon = self.cursor + WHEEL_SLOTS as u64;
        let mut i = 0;
        while i < self.overflow.len() {
            let slot = self.abs_slot(self.overflow[i].at);
            if slot < horizon {
                let e = self.overflow.swap_remove(i);
                self.slots[(slot % WHEEL_SLOTS as u64) as usize].push(e);
            } else {
                i += 1;
            }
        }
    }

    /// Locate the minimum entry by `(at, seq)`: scan slots in time order
    /// from the cursor (entries hash to slots by due time, so earlier
    /// slots hold earlier deadlines), falling back to the overflow list,
    /// which by construction holds only entries past the wheel horizon.
    fn find_min(&self) -> Option<(usize, usize, Entry)> {
        for off in 0..WHEEL_SLOTS as u64 {
            let idx = ((self.cursor + off) % WHEEL_SLOTS as u64) as usize;
            let slot = &self.slots[idx];
            if slot.is_empty() {
                continue;
            }
            let (j, e) = slot
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| (e.at, e.seq))
                .map(|(j, e)| (j, *e))
                .expect("non-empty slot");
            return Some((idx, j, e));
        }
        self.overflow
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| (e.at, e.seq))
            .map(|(j, e)| (usize::MAX, j, *e))
    }

    /// The next timer's `(due, seq)` without removing it.
    pub fn peek(&self) -> Option<(Time, u64)> {
        self.find_min().map(|(_, _, e)| (e.at, e.seq))
    }

    /// Remove and return the next timer as `(due, seq, id)`.
    pub fn pop(&mut self) -> Option<(Time, u64, TimerId)> {
        let (slot, j, e) = self.find_min()?;
        if slot == usize::MAX {
            self.overflow.swap_remove(j);
        } else {
            self.slots[slot].swap_remove(j);
        }
        self.len -= 1;
        let new_cursor = e.at.as_micros() / GRANULARITY_US;
        if new_cursor > self.cursor {
            self.cursor = new_cursor;
            self.promote();
        }
        Some((e.at, e.seq, e.timer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order() {
        let mut w = TimerWheel::new();
        w.arm(Time(300), 0, 3);
        w.arm(Time(100), 1, 1);
        w.arm(Time(200), 2, 2);
        assert_eq!(w.len(), 3);
        assert_eq!(w.pop(), Some((Time(100), 1, 1)));
        assert_eq!(w.pop(), Some((Time(200), 2, 2)));
        assert_eq!(w.pop(), Some((Time(300), 0, 3)));
        assert_eq!(w.pop(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn equal_times_fire_in_arm_order() {
        let mut w = TimerWheel::new();
        w.arm(Time(50), 7, 70);
        w.arm(Time(50), 3, 30);
        assert_eq!(w.pop(), Some((Time(50), 3, 30)));
        assert_eq!(w.pop(), Some((Time(50), 7, 70)));
    }

    #[test]
    fn overflow_promotes_across_horizon() {
        let mut w = TimerWheel::new();
        // Far beyond the 65 ms wheel horizon.
        w.arm(Time::from_millis(500), 0, 99);
        w.arm(Time::from_millis(1), 1, 1);
        assert_eq!(w.peek(), Some((Time::from_millis(1), 1)));
        assert_eq!(w.pop(), Some((Time::from_millis(1), 1, 1)));
        // Cursor advanced; the far timer is still reachable.
        assert_eq!(w.pop(), Some((Time::from_millis(500), 0, 99)));
        assert!(w.is_empty());
    }

    #[test]
    fn interleaved_arm_and_pop() {
        let mut w = TimerWheel::new();
        w.arm(Time(1_000), 0, 10);
        assert_eq!(w.pop(), Some((Time(1_000), 0, 10)));
        // Re-arm in the past relative to the cursor: clamps into the
        // cursor slot instead of wrapping a full wheel turn.
        w.arm(Time(500), 1, 5);
        assert_eq!(w.pop(), Some((Time(500), 1, 5)));
        // Periodic re-arm pattern across many wheel turns.
        let mut due = 0u64;
        for i in 0..1_000u64 {
            due += 777;
            w.arm(Time(due), i + 2, due);
        }
        let mut last = Time(0);
        while let Some((at, _, id)) = w.pop() {
            assert!(at >= last);
            assert_eq!(id, at.as_micros());
            last = at;
        }
    }
}
