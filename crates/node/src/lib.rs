//! btr-node: a live thread-per-node BTR runtime.
//!
//! The simulator (`btr-sim`) substitutes for the paper's hardware
//! testbed; this crate substitutes for its *deployment*: every node is
//! an independently scheduled actor on its own OS thread with a bounded
//! mailbox, a wall-clock-paced timer wheel, and an in-process loopback
//! transport mirroring the `btr_net` link parameters. Crashes are real
//! thread deaths; recovery is measured on the wall clock against the
//! paper's R bound; and the simulator is the *trace oracle*: all
//! protocol-visible time is logical, so a fault-free live run must be
//! bit-identical to the simulated one on its canonical actuation trace
//! (`LogicalTrace`), and every pinned fault scenario must recover live
//! exactly as it recovers simulated.
//!
//! Layering:
//!
//! * [`transport`] — loopback network: routes, per-hop delays,
//!   deterministic loss, bounded mailboxes, crash/restore.
//! * [`wheel`] — hashed timer wheel keyed by the runtime's packed
//!   timer-id encodings.
//! * [`actor`] — [`actor::LiveCtx`] (the live `CtxBackend`) and the
//!   per-node event loop, paced against the wall clock.
//! * [`faulty`] — [`faulty::FaultyNode`] splices scripted faults into
//!   live behaviour; [`faulty::Rejoin`] re-synchronises restarts.
//! * [`supervisor`] — spawns the fleet, watches for panics, crashes,
//!   and deadline overruns, restarts scripted crash victims, and
//!   assembles the [`supervisor::LiveReport`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actor;
pub mod faulty;
pub mod supervisor;
pub mod transport;
pub mod wheel;

pub use actor::{ActorOutcome, EventKind, LiveCtx, NodeActor, Pacer, RuntimeEvent};
pub use faulty::{FaultyNode, Rejoin, CRASH_TIMER};
pub use supervisor::{
    run_live, DropTotals, DumpReason, FlightDump, LiveConfig, LiveReport, PanicReport,
};
pub use transport::{LiveMsg, Loopback, Port};
pub use wheel::TimerWheel;
