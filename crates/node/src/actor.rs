//! The per-node actor: one OS thread running one `NodeBehavior`.
//!
//! Each node owns a logical clock, a timer wheel, and a mailbox. All
//! *protocol-visible* time is logical — envelope timestamps, timer
//! deadlines, actuation stamps — so a fault-free live run produces the
//! same canonical actuation trace as the discrete-event simulator, and
//! the wall clock only determines how long the run physically takes
//! (and how real the measured recovery latencies are).
//!
//! Two gates sit in front of every dispatch:
//!
//! * **Causal gate** (correctness): conservative parallel
//!   discrete-event execution in the Chandy–Misra–Bryant style. Each
//!   node publishes a frontier through the transport — a lower bound on
//!   the arrival time of anything it may still send, which is its next
//!   dispatchable instant plus the topology's minimum link delay
//!   (lookahead). A node dispatches an event at logical `t` only once
//!   every peer's frontier has passed `t`, so an OS thread descheduled
//!   for ten milliseconds delays the run but can never reorder it. The
//!   protocol's schedules pack producer-emit → consumer-slot gaps at
//!   microsecond scale, far below thread jitter; without this gate a
//!   live run misses inputs and hallucinates faults.
//! * **Wall gate** (pacing): logical `t` does not dispatch before wall
//!   instant `epoch + pace · t`, which is what makes measured recovery
//!   latencies real.
//!
//! Event order within an actor is `(logical time, class, tie)` with
//! timers (class 0, ordered by arm sequence) before parked messages
//! (class 1, ordered by transport `(sender, send seq)`); the causal
//! gate admits timers at the frontier bound (they win ties) and
//! messages strictly below it. The simulator orders same-instant events
//! by global push sequence instead; the two conventions only differ for
//! exact logical-time ties, which the pinned differential tests cover.

use crate::transport::{LiveMsg, Loopback, Port};
use crate::wheel::TimerWheel;
use btr_crypto::{digest64, AuthSuite, KeyStore, NodeKey, SigError, Signer, SplitMix64};
use btr_model::{
    Duration, Envelope, EvidenceFlaw, NodeId, Payload, PeriodIdx, SignedOutput, TaskId, Time, Value,
};
use btr_obs::{FlightKind, FlightRecorder, Histogram, Phase, PhaseMark, FLIGHT_CAP};
use btr_runtime::BtrNode;
use btr_sim::{Actuation, CtxBackend, NodeBehavior, NodeCtx, TimerId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Maps logical time onto the shared wall clock: logical `t` µs may not
/// dispatch before `epoch + pace · t` µs of wall time. `pace` > 1 slows
/// the run down (more slack for scheduling jitter); it never changes
/// logical outcomes, only wall-clock fidelity.
#[derive(Debug, Clone, Copy)]
pub struct Pacer {
    epoch: Instant,
    pace: f64,
}

impl Pacer {
    /// A pacer whose logical zero is `epoch`.
    pub fn new(epoch: Instant, pace: f64) -> Pacer {
        assert!(pace > 0.0, "pace must be positive");
        Pacer { epoch, pace }
    }

    /// The wall instant before which logical `at` must not dispatch.
    pub fn wall_for(&self, at: Time) -> Instant {
        let ns = at.as_micros() as f64 * self.pace * 1_000.0;
        self.epoch + std::time::Duration::from_nanos(ns as u64)
    }

    /// Wall µs elapsed since the logical-zero epoch (0 before it).
    pub fn elapsed_us(&self) -> u64 {
        Instant::now()
            .checked_duration_since(self.epoch)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0)
    }
}

/// What a node reports to the supervisor, stamped in both time bases.
#[derive(Debug, Clone)]
pub struct RuntimeEvent {
    /// The reporting node.
    pub node: NodeId,
    /// Its logical clock at the event.
    pub logical: Time,
    /// Wall µs since the run epoch.
    pub wall_us: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The kinds of runtime events a node can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// The actor thread is up and `on_start` ran.
    Started,
    /// The actor reached the horizon and exited cleanly.
    Finished,
    /// The node fail-stopped (its thread is dying for real).
    Crashed,
    /// The node's runtime completed a mode switch (cumulative count).
    SwitchCompleted {
        /// The node's total switches so far.
        count: u64,
    },
    /// The behaviour panicked; the supervisor attributes and reports it.
    Panicked(String),
}

/// A message parked until its logical arrival time.
#[derive(Debug)]
struct Parked {
    at: Time,
    from: NodeId,
    seq: u64,
    env: Envelope,
}

impl Parked {
    fn key(&self) -> (Time, NodeId, u64) {
        (self.at, self.from, self.seq)
    }
}

impl PartialEq for Parked {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Parked {}
impl PartialOrd for Parked {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Parked {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// The live, single-node counterpart of the simulator's `World`: the
/// [`CtxBackend`] a behaviour acts through when it runs on its own
/// thread. Skew, signer, RNG stream, and envelope timestamps are
/// derived exactly as the simulator derives them, which is what makes
/// the two substrates trace-equivalent.
pub struct LiveCtx {
    node: NodeId,
    logical: Time,
    clock_offset: i64,
    period: Duration,
    signer: Signer,
    keystore: Arc<KeyStore>,
    scratch: Vec<u8>,
    rng: SplitMix64,
    port: Port,
    wheel: TimerWheel,
    timer_seq: u64,
    actuations: Vec<Actuation>,
    crashed: bool,
    /// Observation switch: when off, `observe` is a no-op and the mark
    /// log stays empty (the live inertness tests flip this).
    obs: bool,
    marks: Vec<PhaseMark>,
}

impl LiveCtx {
    /// Build the context for `node`, deriving skew, keys, and the RNG
    /// stream from `(seed, node)` with the simulator's constructions.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        node: NodeId,
        seed: u64,
        period: Duration,
        max_clock_skew: Duration,
        suite: AuthSuite,
        keystore: Arc<KeyStore>,
        port: Port,
        start: Time,
    ) -> LiveCtx {
        let span = 2 * max_clock_skew.as_micros() + 1;
        let skew = (digest64(&[b"btr-skew", &seed.to_be_bytes(), &node.0.to_be_bytes()]) % span)
            as i64
            - max_clock_skew.as_micros() as i64;
        LiveCtx {
            node,
            logical: start,
            clock_offset: skew,
            period,
            signer: Signer::new(NodeKey::derive_suite(seed, node.0, suite)),
            keystore,
            scratch: Vec::new(),
            rng: SplitMix64::from_parts(&[
                b"btr-node-rng",
                &seed.to_be_bytes(),
                &node.0.to_be_bytes(),
            ]),
            port,
            wheel: TimerWheel::new(),
            timer_seq: 0,
            actuations: Vec::new(),
            crashed: false,
            obs: true,
            marks: Vec::new(),
        }
    }

    /// Enable or disable phase-mark collection (on by default; marks
    /// are out-of-band either way, so this cannot change a run).
    pub fn set_obs(&mut self, on: bool) {
        self.obs = on;
    }

    /// The node this context belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The node's current logical time.
    pub fn logical(&self) -> Time {
        self.logical
    }

    /// True once the behaviour called `crash_self`.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }
}

impl CtxBackend for LiveCtx {
    fn now(&self) -> Time {
        self.logical
    }

    fn local_now(&self, _node: NodeId) -> Time {
        let t = self.logical.as_micros() as i64 + self.clock_offset;
        Time(t.max(0) as u64)
    }

    fn period(&self) -> Duration {
        self.period
    }

    fn signer(&self, _node: NodeId) -> &Signer {
        &self.signer
    }

    fn keystore(&self) -> &KeyStore {
        &self.keystore
    }

    fn send(&mut self, src: NodeId, dst: NodeId, payload: Payload) {
        let env = Envelope::new(src, dst, self.local_now(src), payload);
        let mut scratch = std::mem::take(&mut self.scratch);
        let env = env.signed_with(&self.signer, &mut scratch);
        self.scratch = scratch;
        self.port.send(self.logical, env);
    }

    fn send_env(&mut self, _src: NodeId, env: Envelope) {
        self.port.send(self.logical, env);
    }

    fn verify_env(&mut self, env: &Envelope) -> Result<(), SigError> {
        let mut scratch = std::mem::take(&mut self.scratch);
        let r = env.verify_with(&self.keystore, &mut scratch);
        self.scratch = scratch;
        r
    }

    fn verify_output(&mut self, output: &SignedOutput) -> Result<(), EvidenceFlaw> {
        let mut scratch = std::mem::take(&mut self.scratch);
        let r = output.verify_with(&self.keystore, &mut scratch);
        self.scratch = scratch;
        r
    }

    fn set_timer_at(&mut self, _node: NodeId, at: Time, timer: TimerId) {
        let at = at.max(self.logical);
        self.timer_seq += 1;
        self.wheel.arm(at, self.timer_seq, timer);
    }

    fn actuate(&mut self, node: NodeId, task: TaskId, period: PeriodIdx, value: Value) {
        self.actuations.push(Actuation {
            at: self.logical,
            node,
            task,
            period,
            value,
        });
    }

    fn crash_self(&mut self, _node: NodeId) {
        self.crashed = true;
        // Fault activation is a phase boundary: the recovery timeline
        // starts here (the simulator emits the same mark in its
        // control-action path).
        if self.obs {
            self.marks.push(PhaseMark {
                observer: self.node,
                subject: self.node,
                phase: Phase::FaultActive,
                at: self.logical,
            });
        }
    }

    fn rng_u64(&mut self, _node: NodeId) -> u64 {
        self.rng.next_u64()
    }

    fn observe(&mut self, mark: PhaseMark) {
        if self.obs {
            self.marks.push(mark);
        }
    }
}

/// What an actor thread hands back when it exits.
pub struct ActorOutcome {
    /// The node.
    pub node: NodeId,
    /// The behaviour, for post-run inspection (stats, plan, fault set).
    pub behavior: Box<dyn NodeBehavior + Send>,
    /// Every actuation the node performed, logically stamped.
    pub actuations: Vec<Actuation>,
    /// True if the node fail-stopped (vs. reaching the horizon).
    pub crashed: bool,
    /// Logical time the thread stopped dispatching.
    pub stopped_at: Time,
    /// Recovery-phase boundaries the node's runtime observed.
    pub marks: Vec<PhaseMark>,
    /// Causal-gate wait polls (the event at hand was not yet provably
    /// safe to dispatch).
    pub frontier_stalls: u64,
    /// Anchor re-folds forced by a message that arrived below the
    /// published anchor (fold-and-clear repeat iterations).
    pub redrains: u64,
    /// Wall-clock lateness of timer dispatches past their paced
    /// instant, in µs (live-only: logically always 0).
    pub timer_lag: Histogram,
}

/// One node's event loop: behaviour + context + mailbox, run to a
/// logical horizon under a wall-clock pacer.
pub struct NodeActor {
    node: NodeId,
    behavior: Box<dyn NodeBehavior + Send>,
    ctx: LiveCtx,
    rx: Receiver<LiveMsg>,
    pending: BinaryHeap<Reverse<Parked>>,
    net: Loopback,
    last_switch_count: u64,
    /// Ring of the last few dispatches, shared with the supervisor so
    /// the tail survives even when this thread panics mid-dispatch.
    flight: Arc<Mutex<FlightRecorder>>,
    frontier_stalls: u64,
    redrains: u64,
    timer_lag: Histogram,
}

enum Next {
    Timer(Time),
    Message(Time),
}

impl NodeActor {
    /// Assemble an actor (does not start it; call [`NodeActor::run`] on
    /// its thread).
    pub fn new(
        node: NodeId,
        behavior: Box<dyn NodeBehavior + Send>,
        ctx: LiveCtx,
        rx: Receiver<LiveMsg>,
        net: Loopback,
    ) -> NodeActor {
        NodeActor {
            node,
            behavior,
            ctx,
            rx,
            pending: BinaryHeap::new(),
            net,
            last_switch_count: 0,
            flight: Arc::new(Mutex::new(FlightRecorder::new(FLIGHT_CAP))),
            frontier_stalls: 0,
            redrains: 0,
            timer_lag: Histogram::new(),
        }
    }

    /// Share an externally owned flight recorder (the supervisor holds
    /// the other handle, so the tail is readable after a panic).
    pub fn with_flight(mut self, flight: Arc<Mutex<FlightRecorder>>) -> NodeActor {
        self.flight = flight;
        self
    }

    /// The node this actor animates.
    pub fn node(&self) -> NodeId {
        self.node
    }

    fn record_flight(&self, at: Time, kind: FlightKind) {
        self.flight.lock().expect("flight lock").push(at, kind);
    }

    fn park(&mut self, m: LiveMsg) {
        self.pending.push(Reverse(Parked {
            at: m.at,
            from: m.from,
            seq: m.seq,
            env: m.env,
        }));
    }

    fn drain(&mut self) {
        while let Ok(m) = self.rx.try_recv() {
            self.park(m);
        }
    }

    /// Block briefly on the mailbox: an arrival wakes us immediately;
    /// peer frontier updates carry no wakeup, so cap the wait and
    /// re-evaluate. (`Disconnected` still sleeps — a closed channel must
    /// not turn the causal wait into a busy spin.)
    fn wait_briefly(&mut self) {
        const POLL: std::time::Duration = std::time::Duration::from_micros(100);
        match self.rx.recv_timeout(POLL) {
            Ok(m) => self.park(m),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => std::thread::sleep(POLL),
        }
    }

    /// Timers before messages at equal logical time (see module docs).
    fn next_event(&self) -> Option<Next> {
        let timer = self.ctx.wheel.peek().map(|(at, _)| at);
        let msg = self.pending.peek().map(|Reverse(p)| p.at);
        match (timer, msg) {
            (None, None) => None,
            (Some(t), None) => Some(Next::Timer(t)),
            (None, Some(m)) => Some(Next::Message(m)),
            (Some(t), Some(m)) => {
                if t <= m {
                    Some(Next::Timer(t))
                } else {
                    Some(Next::Message(m))
                }
            }
        }
    }

    fn emit(&self, events: &Sender<RuntimeEvent>, pacer: &Pacer, kind: EventKind) {
        // The supervisor may have stopped listening (deadline overrun
        // teardown); a dead event channel must not kill the actor.
        let _ = events.send(RuntimeEvent {
            node: self.node,
            logical: self.ctx.logical(),
            wall_us: pacer.elapsed_us(),
            kind,
        });
    }

    fn post_dispatch(&mut self, events: &Sender<RuntimeEvent>, pacer: &Pacer) {
        if let Some(b) = self
            .behavior
            .as_any()
            .and_then(|a| a.downcast_ref::<BtrNode>())
        {
            let count = b.switch_count();
            if count > self.last_switch_count {
                self.last_switch_count = count;
                self.record_flight(self.ctx.logical(), FlightKind::SwitchCompleted { count });
                self.emit(events, pacer, EventKind::SwitchCompleted { count });
            }
        }
    }

    /// Run the actor until logical `end` (inclusive, matching the
    /// simulator's `run_until`), a crash, or — for a behaviour armed with
    /// nothing — mailbox silence past the horizon. Emits `Started`, then
    /// `SwitchCompleted`s, then exactly one terminal `Finished`/`Crashed`
    /// event *before* returning, so the supervisor can join without a
    /// timeout once it has seen the terminal event.
    pub fn run(mut self, end: Time, pacer: Pacer, events: Sender<RuntimeEvent>) -> ActorOutcome {
        {
            let mut ctx = NodeCtx::new(&mut self.ctx, self.node);
            self.behavior.on_start(&mut ctx);
        }
        self.emit(&events, &pacer, EventKind::Started);
        self.record_flight(self.ctx.logical(), FlightKind::Start);
        let terminal = loop {
            if self.ctx.is_crashed() {
                break EventKind::Crashed;
            }
            // Publish our anchor — the earliest event we could dispatch.
            // The fold returns our cell's inflight floor: if it is below
            // our known next event, a message delivered since our drain
            // is already in the mailbox (delivery precedes the floor
            // update), so drain again until the picture is stable.
            let next = loop {
                self.drain();
                let next = self.next_event();
                let next_at = match &next {
                    Some(Next::Timer(at)) | Some(Next::Message(at)) => *at,
                    None => Time(u64::MAX),
                };
                if self.net.publish_anchor(self.node, next_at) >= next_at {
                    break next;
                }
                self.redrains += 1;
            };
            let bound = self.net.frontier_bound(self.node);
            let Some(next) = next else {
                // Nothing armed: done once no in-flight message can
                // still arrive inside the horizon.
                if bound > end {
                    break EventKind::Finished;
                }
                self.wait_briefly();
                continue;
            };
            let at = match next {
                Next::Timer(at) | Next::Message(at) => at,
            };
            if at > end {
                if bound > end {
                    break EventKind::Finished;
                }
                self.wait_briefly();
                continue;
            }
            // Causal gate: timers may dispatch at the bound (they win
            // ties), messages only strictly below it (an in-flight
            // message could tie and order ahead by `(from, seq)`).
            let causal_ok = match next {
                Next::Timer(_) => at <= bound,
                Next::Message(_) => at < bound,
            };
            if !causal_ok {
                self.frontier_stalls += 1;
                self.wait_briefly();
                continue;
            }
            // Wall gate: park arrivals until the event's wall instant,
            // then re-select (a new arrival may precede the choice).
            let target = pacer.wall_for(at);
            let now = Instant::now();
            if now < target {
                match self.rx.recv_timeout(target - now) {
                    Ok(m) => self.park(m),
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => {
                        let left = target.saturating_duration_since(Instant::now());
                        std::thread::sleep(left);
                    }
                }
                continue;
            }
            match next {
                Next::Timer(_) => {
                    let (at, _, timer) = self.ctx.wheel.pop().expect("peeked timer");
                    self.timer_lag
                        .record(Instant::now().saturating_duration_since(target).as_micros()
                            as u64);
                    self.record_flight(at, FlightKind::Timer);
                    self.ctx.logical = self.ctx.logical.max(at);
                    let mut ctx = NodeCtx::new(&mut self.ctx, self.node);
                    self.behavior.on_timer(&mut ctx, timer);
                }
                Next::Message(_) => {
                    let Reverse(p) = self.pending.pop().expect("peeked message");
                    self.record_flight(p.at, FlightKind::Message { from: p.from });
                    self.ctx.logical = self.ctx.logical.max(p.at);
                    let mut ctx = NodeCtx::new(&mut self.ctx, self.node);
                    self.behavior.on_message(&mut ctx, p.env);
                }
            }
            self.post_dispatch(&events, &pacer);
        };
        // Terminal either way: this node will never send again, so no
        // peer may wait on it.
        self.net.set_terminal(self.node);
        let crashed = matches!(terminal, EventKind::Crashed);
        if crashed {
            // Fail-stop for real: detach the mailbox and reroute around
            // this node before the thread dies.
            self.net.crash(self.node);
            self.record_flight(self.ctx.logical(), FlightKind::Crash);
        }
        self.emit(&events, &pacer, terminal);
        ActorOutcome {
            node: self.node,
            behavior: self.behavior,
            actuations: std::mem::take(&mut self.ctx.actuations),
            crashed,
            stopped_at: self.ctx.logical(),
            marks: std::mem::take(&mut self.ctx.marks),
            frontier_stalls: self.frontier_stalls,
            redrains: self.redrains,
            timer_lag: self.timer_lag,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::mailbox;
    use btr_model::Topology;

    fn harness(n: usize) -> (Loopback, Arc<KeyStore>) {
        let topo = Topology::bus(n, 100_000, Duration(5));
        let net = Loopback::new(topo, 1, 0);
        let ks = Arc::new(KeyStore::derive_suite(1, n, AuthSuite::default()));
        (net, ks)
    }

    fn ctx_for(node: NodeId, net: &Loopback, ks: &Arc<KeyStore>) -> LiveCtx {
        LiveCtx::new(
            node,
            1,
            Duration::from_millis(10),
            Duration(20),
            AuthSuite::default(),
            Arc::clone(ks),
            net.port(node),
            Time::ZERO,
        )
    }

    #[test]
    fn live_ctx_matches_simulator_derivations() {
        // Skew, signer identity, and the RNG stream must be exactly the
        // simulator's for the same (seed, node) — the substance of the
        // trace-equivalence claim.
        let (net, ks) = harness(3);
        let mut live = ctx_for(NodeId(2), &net, &ks);
        let topo = Topology::bus(3, 100_000, Duration(5));
        let mut world = btr_sim::World::new(topo, btr_sim::SimConfig::new(1));
        assert_eq!(live.local_now(NodeId(2)), world.local_now(NodeId(2)));
        for _ in 0..8 {
            assert_eq!(
                CtxBackend::rng_u64(&mut live, NodeId(2)),
                CtxBackend::rng_u64(&mut world, NodeId(2))
            );
        }
        // A signed envelope from the live signer verifies against the
        // world's keystore and vice versa.
        let env = Envelope::new(NodeId(2), NodeId(0), Time(7), Payload::Control(9));
        let mut scratch = Vec::new();
        let signed = env.signed_with(CtxBackend::signer(&live, NodeId(2)), &mut scratch);
        assert!(CtxBackend::verify_env(&mut world, &signed).is_ok());
    }

    /// Arms a timer chain and sends one message per firing.
    struct Pinger {
        fired: u64,
    }
    impl NodeBehavior for Pinger {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            ctx.set_timer(Duration(100), 1);
        }
        fn on_message(&mut self, _ctx: &mut NodeCtx<'_>, _env: Envelope) {}
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: TimerId) {
            self.fired += 1;
            ctx.send(NodeId(1), Payload::Control(self.fired as u8));
            ctx.actuate(TaskId(0), self.fired, self.fired);
            if self.fired < 5 {
                ctx.set_timer(Duration(100), timer);
            }
        }
    }

    #[test]
    fn actor_runs_timer_chain_to_horizon() {
        let (net, ks) = harness(2);
        let (tx, rx) = mailbox(64);
        net.register(NodeId(0), tx);
        let (tx1, rx1) = mailbox(64);
        net.register(NodeId(1), tx1);
        // Node 1 has no actor in this test: release its causal frontier
        // so node 0's gate never waits on it.
        net.set_terminal(NodeId(1));
        let (ev_tx, ev_rx) = std::sync::mpsc::channel();
        let actor = NodeActor::new(
            NodeId(0),
            Box::new(Pinger { fired: 0 }),
            ctx_for(NodeId(0), &net, &ks),
            rx,
            net.clone(),
        );
        let pacer = Pacer::new(Instant::now(), 0.001); // ~free-running
        let out = actor.run(Time::from_millis(2), pacer, ev_tx);
        assert!(!out.crashed);
        assert_eq!(out.actuations.len(), 5);
        assert_eq!(out.actuations[0].at, Time(100));
        assert_eq!(out.actuations[4].at, Time(500));
        // All five sends reached node 1's mailbox with logical stamps.
        let mut got = 0;
        while let Ok(m) = rx1.try_recv() {
            assert!(m.at > Time(100 * (got as u64)));
            got += 1;
        }
        assert_eq!(got, 5);
        // Started first, Finished last.
        let evs: Vec<RuntimeEvent> = ev_rx.try_iter().collect();
        assert_eq!(
            evs.first().map(|e| e.kind.clone()),
            Some(EventKind::Started)
        );
        assert_eq!(
            evs.last().map(|e| e.kind.clone()),
            Some(EventKind::Finished)
        );
    }

    /// Crashes itself on the first timer.
    struct Suicidal;
    impl NodeBehavior for Suicidal {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            ctx.set_timer(Duration(50), 1);
        }
        fn on_message(&mut self, _ctx: &mut NodeCtx<'_>, _env: Envelope) {}
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _timer: TimerId) {
            ctx.crash_self();
        }
    }

    #[test]
    fn crash_is_terminal_and_detaches_mailbox() {
        let (net, ks) = harness(2);
        let (tx, rx) = mailbox(64);
        net.register(NodeId(0), tx);
        net.set_terminal(NodeId(1));
        let (ev_tx, ev_rx) = std::sync::mpsc::channel();
        let actor = NodeActor::new(
            NodeId(0),
            Box::new(Suicidal),
            ctx_for(NodeId(0), &net, &ks),
            rx,
            net.clone(),
        );
        let out = actor.run(
            Time::from_millis(10),
            Pacer::new(Instant::now(), 0.001),
            ev_tx,
        );
        assert!(out.crashed);
        assert_eq!(out.stopped_at, Time(50));
        let evs: Vec<RuntimeEvent> = ev_rx.try_iter().collect();
        assert_eq!(evs.last().map(|e| e.kind.clone()), Some(EventKind::Crashed));
        // Post-crash, the network refuses traffic to the dead node.
        let mut port = net.port(NodeId(1));
        assert!(port
            .send(
                Time(60),
                Envelope::new(NodeId(1), NodeId(0), Time(60), Payload::Control(1))
            )
            .is_none());
    }
}
