//! The node supervisor: spawn, watch, restart, and account for a fleet
//! of live node threads.
//!
//! `run_live` takes the same inputs as `BtrSystem::run` — a planned
//! system, a fault scenario, a horizon — and executes them on real OS
//! threads instead of the discrete-event queue. Each node reports
//! [`RuntimeEvent`]s over a channel; the supervisor:
//!
//! * joins a node thread **only after** seeing its terminal event
//!   (`Finished`/`Crashed`/`Panicked`), so a wedged node can never hang
//!   the supervisor — nodes that miss the wall-clock deadline are
//!   recorded as overruns and their threads detached;
//! * catches behaviour panics, attributes them to the node id, and
//!   detaches the dead node from the network (its peers see the same
//!   silence a crash produces);
//! * optionally restarts crashed nodes after a scripted downtime with a
//!   fresh runtime wrapped in [`Rejoin`](crate::faulty::Rejoin), which
//!   is the live analogue of the paper's bounded-time recovery loop.
//!
//! The report carries the canonical [`LogicalTrace`] (the simulator is
//! the oracle: a fault-free live run must digest-match the simulated
//! one) plus wall-clock-stamped events for real latency measurements.

use crate::actor::{ActorOutcome, EventKind, LiveCtx, NodeActor, Pacer, RuntimeEvent};
use crate::faulty::{FaultyNode, Rejoin};
use crate::transport::{mailbox, Loopback};
use btr_core::{BtrSystem, FaultScenario};
use btr_crypto::KeyStore;
use btr_model::{Duration, NodeId, PlanId, Time};
use btr_obs::{FlightEvent, FlightRecorder, Histogram, PhaseMark, FLIGHT_CAP};
use btr_runtime::{BtrNode, NodeStats};
use btr_sim::{LogicalTrace, NodeBehavior, SimConfig};
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// Knobs for a live run.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Seed for keys, skews, RNG streams, and transmission loss — the
    /// same derivations the simulator makes from its seed.
    pub seed: u64,
    /// Wall-µs per logical-µs (1.0 = real time; larger = slower run
    /// with more scheduling slack; logical outcomes are unaffected).
    pub pace: f64,
    /// Bounded mailbox depth per node (overflow = counted drops).
    pub mailbox_cap: usize,
    /// Logical downtime before a crashed node is restarted
    /// (`Duration::ZERO` = crashed nodes stay down).
    pub restart_after: Duration,
    /// Extra wall time past the paced horizon before non-terminal nodes
    /// are declared deadline overruns and detached.
    pub join_grace: std::time::Duration,
    /// Collect phase marks on node runtimes (out-of-band either way;
    /// the obs on/off digest test flips this to prove inertness).
    pub obs: bool,
    /// Per-node flight-recorder ring capacity: how many of the last
    /// dispatches a panic/overrun/overflow dump can show. Must be at
    /// least 1 (callers validate; [`FlightRecorder::new`] clamps).
    pub flight_cap: usize,
}

impl LiveConfig {
    /// Defaults: real-time pace, 4096-deep mailboxes, no restarts,
    /// [`FLIGHT_CAP`]-deep flight rings.
    pub fn new(seed: u64) -> LiveConfig {
        LiveConfig {
            seed,
            pace: 1.0,
            mailbox_cap: 4096,
            restart_after: Duration::ZERO,
            join_grace: std::time::Duration::from_millis(500),
            obs: true,
            flight_cap: FLIGHT_CAP,
        }
    }
}

/// Transport drop/send totals for the whole run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropTotals {
    /// Bounded-mailbox backpressure drops.
    pub mailbox_full: u64,
    /// Sends to crashed / not-yet-restarted nodes.
    pub receiver_down: u64,
    /// Deterministic transmission loss.
    pub transmission_loss: u64,
    /// No route (partition after crashes).
    pub no_route: u64,
    /// Messages that entered the network.
    pub sent: u64,
}

/// A caught behaviour panic, attributed to its node and annotated with
/// the node's last known logical instant and flight-recorder tail — the
/// last few dispatches leading into the failure.
#[derive(Debug, Clone)]
pub struct PanicReport {
    /// The panicking node.
    pub node: NodeId,
    /// The panic payload (message).
    pub message: String,
    /// The node's last flight-recorded logical timestamp, if any event
    /// was dispatched before the panic.
    pub last_logical: Option<Time>,
    /// Total events the node dispatched before dying.
    pub flight_total: u64,
    /// The last few dispatches, oldest first.
    pub flight_tail: Vec<FlightEvent>,
}

impl PanicReport {
    /// One-line rendering: node, message, and the flight tail.
    pub fn render(&self) -> String {
        let at = self
            .last_logical
            .map(|t| format!("{}us", t.as_micros()))
            .unwrap_or_else(|| "never-dispatched".to_string());
        let tail: Vec<String> = self.flight_tail.iter().map(|e| e.to_string()).collect();
        format!(
            "{} panicked at logical {}: {} [last {} of {} events: {}]",
            self.node,
            at,
            self.message,
            self.flight_tail.len(),
            self.flight_total,
            tail.join("; "),
        )
    }
}

/// Why the supervisor dumped a node's flight recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DumpReason {
    /// The node's behaviour panicked.
    Panic,
    /// The node's thread missed the wall deadline and was detached.
    DeadlineOverrun,
    /// The node's bounded mailbox overflowed (dropped deliveries).
    MailboxFull,
}

impl DumpReason {
    /// Stable lowercase label (JSON keys / report lines).
    pub fn label(self) -> &'static str {
        match self {
            DumpReason::Panic => "panic",
            DumpReason::DeadlineOverrun => "deadline_overrun",
            DumpReason::MailboxFull => "mailbox_full",
        }
    }
}

/// A flight-recorder dump the supervisor took when it flagged a node.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// The flagged node.
    pub node: NodeId,
    /// Why it was flagged.
    pub reason: DumpReason,
    /// The node's last flight-recorded logical timestamp.
    pub last_logical: Option<Time>,
    /// Total events the node dispatched.
    pub total: u64,
    /// The last few dispatches, oldest first.
    pub tail: Vec<FlightEvent>,
}

impl FlightDump {
    /// One-line rendering for reports.
    pub fn render(&self) -> String {
        let tail: Vec<String> = self.tail.iter().map(|e| e.to_string()).collect();
        format!(
            "{} [{}] last {} of {} events: {}",
            self.node,
            self.reason.label(),
            self.tail.len(),
            self.total,
            tail.join(", "),
        )
    }
}

fn dump_flight(
    node: NodeId,
    reason: DumpReason,
    flight: &Arc<Mutex<FlightRecorder>>,
) -> FlightDump {
    let f = flight.lock().expect("flight lock");
    FlightDump {
        node,
        reason,
        last_logical: f.last_at(),
        total: f.total(),
        tail: f.tail(),
    }
}

/// Everything a live run produces.
#[derive(Debug)]
pub struct LiveReport {
    /// The canonical logical actuation trace (compare against
    /// `World::logical_trace()` — the simulator is the oracle).
    pub trace: LogicalTrace,
    /// Per-node runtime stats, final plan, fault-set size (correct,
    /// never-crashed nodes only — same exclusions as `RunReport`).
    pub node_stats: Vec<(NodeId, NodeStats, PlanId, usize)>,
    /// True if all such nodes agree on fault set and plan.
    pub converged: bool,
    /// Every runtime event, logically and wall-clock stamped.
    pub events: Vec<RuntimeEvent>,
    /// Panics caught on node threads, attributed to their node, with
    /// each node's flight-recorder tail and last logical timestamp.
    pub panics: Vec<PanicReport>,
    /// Nodes whose threads missed the wall deadline and were detached.
    pub deadline_overruns: Vec<NodeId>,
    /// Transport counters.
    pub drops: DropTotals,
    /// Per-node `mailbox_full` attribution (index = node).
    pub mailbox_full_by_node: Vec<u64>,
    /// Flight-recorder dumps for flagged nodes (panic, overrun,
    /// mailbox overflow).
    pub flight_dumps: Vec<FlightDump>,
    /// Phase marks observed across all node runtimes, in node order
    /// (empty when `LiveConfig::obs` is off).
    pub phase_marks: Vec<PhaseMark>,
    /// Causal-gate wait polls summed over all actors.
    pub frontier_stalls: u64,
    /// Anchor re-folds forced by sub-anchor arrivals, summed.
    pub redrains: u64,
    /// Wall-clock lateness of timer dispatches (µs), merged over all
    /// actors.
    pub timer_lag: Histogram,
    /// Wall time for the whole run (spawn to last join).
    pub wall: std::time::Duration,
}

impl LiveReport {
    /// No panics, no deadline overruns.
    pub fn healthy(&self) -> bool {
        self.panics.is_empty() && self.deadline_overruns.is_empty()
    }

    /// Mode-switch completions, in arrival order.
    pub fn switch_events(&self) -> Vec<&RuntimeEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SwitchCompleted { .. }))
            .collect()
    }

    /// The wall µs (since run epoch) of the *last* switch completion —
    /// the live system's observable mode-change instant, to hold
    /// against the paper's wall-clock R bound.
    pub fn last_switch_wall_us(&self) -> Option<u64> {
        self.switch_events().iter().map(|e| e.wall_us).max()
    }
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run an actor, converting a behaviour panic into a `Panicked` event
/// (the thread's terminal event either way — see the join discipline).
pub(crate) fn run_guarded(
    actor: NodeActor,
    end: Time,
    pacer: Pacer,
    ev: mpsc::Sender<RuntimeEvent>,
) -> Option<ActorOutcome> {
    let node = actor.node();
    let inner_ev = ev.clone();
    match catch_unwind(AssertUnwindSafe(move || actor.run(end, pacer, inner_ev))) {
        Ok(outcome) => Some(outcome),
        Err(payload) => {
            let _ = ev.send(RuntimeEvent {
                node,
                logical: Time::ZERO,
                wall_us: pacer.elapsed_us(),
                kind: EventKind::Panicked(panic_message(payload)),
            });
            None
        }
    }
}

/// Execute `scenario` on the live thread-per-node runtime.
pub fn run_live(
    system: &BtrSystem,
    scenario: &FaultScenario,
    horizon: Duration,
    cfg: &LiveConfig,
) -> LiveReport {
    let run_start = Instant::now();
    let topo = system.topology().clone();
    let n = topo.node_count();
    let end = Time::ZERO + horizon + system.grace();
    // Pull skew span (and any future clock parameters) from the same
    // defaults the simulator uses, so derivations line up bit-for-bit.
    let sim_defaults = SimConfig::new(cfg.seed);
    let max_skew = sim_defaults.max_clock_skew;
    let suite = system.auth_suite();
    let period = system.workload().period;
    let keystore = Arc::new(KeyStore::derive_suite(cfg.seed, n, suite));
    let net = Loopback::new(topo, cfg.seed, system.loss_ppm());
    let workload = system.workload_arc();
    let strategy = system.strategy_arc();
    let (ev_tx, ev_rx) = mpsc::channel::<RuntimeEvent>();
    // Logical zero opens a beat after spawn so no thread starts behind
    // the wall schedule.
    let pacer = Pacer::new(
        Instant::now() + std::time::Duration::from_millis(25),
        cfg.pace,
    );

    let mut handles: Vec<Option<JoinHandle<Option<ActorOutcome>>>> = (0..n).map(|_| None).collect();
    // Whether the *current* thread for a node has emitted its terminal
    // event (join is only safe/prompt once this is true).
    let mut thread_done = vec![false; n];
    let mut ever_crashed = vec![false; n];
    let mut restarted = vec![false; n];
    let mut outcomes: Vec<ActorOutcome> = Vec::new();
    let mut events: Vec<RuntimeEvent> = Vec::new();
    let mut panics: Vec<PanicReport> = Vec::new();
    // One flight recorder per node, owned here and shared with the
    // actor: the tail stays readable after the actor's thread panics.
    let flights: Vec<Arc<Mutex<FlightRecorder>>> = (0..n)
        .map(|_| Arc::new(Mutex::new(FlightRecorder::new(cfg.flight_cap))))
        .collect();

    for i in 0..n as u32 {
        let node = NodeId(i);
        let (tx, rx) = mailbox(cfg.mailbox_cap);
        net.register(node, tx);
        let mut node_cfg = system.node_config().clone();
        node_cfg.attack = scenario.attack_for(node);
        let fault = scenario.faults.iter().find(|f| f.node == node);
        let behavior: Box<dyn NodeBehavior + Send> = match fault {
            Some(f) => Box::new(FaultyNode::make(
                node,
                Arc::clone(&workload),
                Arc::clone(&strategy),
                n,
                node_cfg,
                f,
            )),
            None => Box::new(BtrNode::new(
                node,
                Arc::clone(&workload),
                Arc::clone(&strategy),
                n,
                node_cfg,
            )),
        };
        let mut ctx = LiveCtx::new(
            node,
            cfg.seed,
            period,
            max_skew,
            suite,
            Arc::clone(&keystore),
            net.port(node),
            Time::ZERO,
        );
        ctx.set_obs(cfg.obs);
        let actor = NodeActor::new(node, behavior, ctx, rx, net.clone())
            .with_flight(Arc::clone(&flights[i as usize]));
        let ev = ev_tx.clone();
        let h = thread::Builder::new()
            .name(format!("btr-{node}"))
            .spawn(move || run_guarded(actor, end, pacer, ev))
            .expect("spawn node thread");
        handles[i as usize] = Some(h);
    }

    let deadline = pacer.wall_for(end) + cfg.join_grace;
    let mut live_threads = n;
    while live_threads > 0 {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        let e = match ev_rx.recv_timeout(deadline - now) {
            Ok(e) => e,
            Err(_) => break,
        };
        let idx = e.node.index();
        match &e.kind {
            EventKind::Started | EventKind::SwitchCompleted { .. } => {}
            EventKind::Finished => {
                thread_done[idx] = true;
                live_threads -= 1;
            }
            EventKind::Panicked(msg) => {
                thread_done[idx] = true;
                live_threads -= 1;
                let f = flights[idx].lock().expect("flight lock");
                panics.push(PanicReport {
                    node: e.node,
                    message: msg.clone(),
                    last_logical: f.last_at(),
                    flight_total: f.total(),
                    flight_tail: f.tail(),
                });
                drop(f);
                ever_crashed[idx] = true;
                // Peers see the same silence a crash produces; the
                // panicked thread never published a terminal frontier,
                // so release its causal hold here.
                net.crash(e.node);
                net.set_terminal(e.node);
            }
            EventKind::Crashed => {
                thread_done[idx] = true;
                live_threads -= 1;
                ever_crashed[idx] = true;
                let restart_at = e.logical + cfg.restart_after;
                if cfg.restart_after > Duration::ZERO && !restarted[idx] && restart_at < end {
                    restarted[idx] = true;
                    // The terminal event precedes the thread's return by
                    // instants; this join is prompt.
                    if let Some(h) = handles[idx].take() {
                        if let Ok(Some(out)) = h.join() {
                            outcomes.push(out);
                        }
                    }
                    thread_done[idx] = false;
                    live_threads += 1;
                    // Pull the dead thread's terminal frontier back down:
                    // the restarted incarnation sends nothing before
                    // `restart_at`, and peers are wall-paced well behind
                    // that instant when this runs, so the window between
                    // the crash and this store cannot be outrun.
                    net.reset_frontier(e.node, restart_at);
                    let node = e.node;
                    let ev = ev_tx.clone();
                    let net2 = net.clone();
                    let ks = Arc::clone(&keystore);
                    let wl = Arc::clone(&workload);
                    let st = Arc::clone(&strategy);
                    let node_cfg = system.node_config().clone();
                    let cap = cfg.mailbox_cap;
                    let seed = cfg.seed;
                    let obs = cfg.obs;
                    let flight = Arc::clone(&flights[idx]);
                    let h = thread::Builder::new()
                        .name(format!("btr-{node}-r"))
                        .spawn(move || {
                            // Sit out the scripted downtime, then rejoin:
                            // a down node must miss the traffic of its
                            // downtime, so the mailbox is only attached
                            // on wake.
                            let wake = pacer.wall_for(restart_at);
                            let now = Instant::now();
                            if wake > now {
                                thread::sleep(wake - now);
                            }
                            let (tx, rx) = mailbox(cap);
                            net2.restore(node);
                            net2.register(node, tx);
                            let fresh = BtrNode::new(node, wl, st, n, node_cfg);
                            let behavior: Box<dyn NodeBehavior + Send> =
                                Box::new(Rejoin::new(fresh));
                            let mut ctx = LiveCtx::new(
                                node,
                                seed,
                                period,
                                max_skew,
                                suite,
                                ks,
                                net2.port(node),
                                restart_at,
                            );
                            ctx.set_obs(obs);
                            let actor = NodeActor::new(node, behavior, ctx, rx, net2.clone())
                                .with_flight(flight);
                            run_guarded(actor, end, pacer, ev)
                        })
                        .expect("spawn restart thread");
                    handles[idx] = Some(h);
                }
            }
        }
        events.push(e);
    }
    // All terminal events are enqueued before their threads return, so
    // anything still in the channel belongs to this run.
    while let Ok(e) = ev_rx.try_recv() {
        events.push(e);
    }

    let mut deadline_overruns = Vec::new();
    for idx in 0..n {
        let Some(h) = handles[idx].take() else {
            continue;
        };
        if thread_done[idx] {
            if let Ok(Some(out)) = h.join() {
                outcomes.push(out);
            }
        } else {
            // Never block on a wedged node: record and detach.
            deadline_overruns.push(NodeId(idx as u32));
            drop(h);
        }
    }

    let compromised: BTreeSet<NodeId> = scenario.compromised().into_iter().collect();
    let mut node_stats: Vec<(NodeId, NodeStats, PlanId, usize)> = Vec::new();
    let mut sets: BTreeSet<(Vec<NodeId>, PlanId)> = BTreeSet::new();
    let mut actuations = Vec::new();
    for out in &mut outcomes {
        actuations.append(&mut out.actuations);
    }
    outcomes.sort_by_key(|o| o.node);
    for out in &outcomes {
        if compromised.contains(&out.node) || ever_crashed[out.node.index()] {
            continue;
        }
        if let Some(b) = out
            .behavior
            .as_any()
            .and_then(|a| a.downcast_ref::<BtrNode>())
        {
            node_stats.push((out.node, b.stats(), b.current_plan(), b.fault_set().len()));
            sets.insert((b.fault_set().iter().collect(), b.current_plan()));
        }
    }

    let c = net.counters();
    let drops = DropTotals {
        mailbox_full: c.mailbox_full.load(Ordering::Relaxed),
        receiver_down: c.receiver_down.load(Ordering::Relaxed),
        transmission_loss: c.transmission_loss.load(Ordering::Relaxed),
        no_route: c.no_route.load(Ordering::Relaxed),
        sent: c.sent.load(Ordering::Relaxed),
    };
    let mailbox_full_by_node: Vec<u64> = (0..n as u32)
        .map(|i| net.mailbox_full_at(NodeId(i)))
        .collect();

    // Dump flight recorders for every flagged node: panics, deadline
    // overruns, and overflowing mailboxes each earn a dump under their
    // own reason (a node can appear more than once).
    let mut flight_dumps: Vec<FlightDump> = Vec::new();
    for p in &panics {
        flight_dumps.push(dump_flight(
            p.node,
            DumpReason::Panic,
            &flights[p.node.index()],
        ));
    }
    for &node in &deadline_overruns {
        flight_dumps.push(dump_flight(
            node,
            DumpReason::DeadlineOverrun,
            &flights[node.index()],
        ));
    }
    for (i, &full) in mailbox_full_by_node.iter().enumerate() {
        if full > 0 {
            flight_dumps.push(dump_flight(
                NodeId(i as u32),
                DumpReason::MailboxFull,
                &flights[i],
            ));
        }
    }

    // Out-of-band observability totals (outcomes are already in node
    // order, so the mark log is deterministic given the run's events).
    let mut phase_marks: Vec<PhaseMark> = Vec::new();
    let mut frontier_stalls = 0u64;
    let mut redrains = 0u64;
    let mut timer_lag = Histogram::new();
    for out in &outcomes {
        phase_marks.extend_from_slice(&out.marks);
        frontier_stalls += out.frontier_stalls;
        redrains += out.redrains;
        timer_lag.merge(&out.timer_lag);
    }

    LiveReport {
        trace: LogicalTrace::from_actuations(&actuations),
        node_stats,
        converged: sets.len() <= 1,
        events,
        panics,
        deadline_overruns,
        drops,
        mailbox_full_by_node,
        flight_dumps,
        phase_marks,
        frontier_stalls,
        redrains,
        timer_lag,
        wall: run_start.elapsed(),
    }
}
