//! Self-stabilisation baseline: the R → ∞ strawman.
//!
//! Section 3.1: "without a hard upper bound on R, BTR closely resembles
//! self-stabilization, where the system is simply required to return to
//! correct operation eventually." And Section 5 notes the catch: "much
//! of the early work assumed that faults are benign and cannot handle
//! malicious nodes."
//!
//! The model here: one copy of every task; each period a round-robin
//! auditor checks the outputs it received in the previous period against
//! the invariant (re-execution) and tells a divergent producer to reboot.
//! A *benign* (repairable) fault clears on reboot after a delay; a truly
//! Byzantine node simply ignores the audit — recovery never happens,
//! which is exactly the gap BTR fills.

use btr_core::oracle::reference_value;
use btr_model::Plan;
use btr_model::{
    inputs_digest, sensor_value, task_value, ATask, Envelope, NodeId, Payload, PeriodIdx,
    SignedOutput, TaskId, Time, Value,
};
use btr_runtime::timers::{self, Timer};
use btr_runtime::Attack;
use btr_sim::{NodeBehavior, NodeCtx, TimerId};
use btr_workload::{TaskKind, Workload};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Configuration for [`SelfStabNode`].
#[derive(Debug, Clone, Copy)]
pub struct SelfStabConfig {
    /// Periods a reboot takes (node is silent meanwhile).
    pub reboot_periods: u64,
    /// True for benign faults that clear on reboot; false models a
    /// Byzantine node that ignores audits (never recovers).
    pub repairable: bool,
}

/// A node running the self-stabilisation baseline.
pub struct SelfStabNode {
    id: NodeId,
    workload: Arc<Workload>,
    plan: Arc<Plan>,
    cfg: SelfStabConfig,
    attack: Option<Attack>,
    inputs: BTreeMap<(PeriodIdx, TaskId), Value>,
    pending: BTreeMap<(PeriodIdx, u16), (TaskId, Value, bool)>,
    /// Rebooting until this period (exclusive).
    rebooting_until: Option<PeriodIdx>,
    n_nodes: usize,
}

impl SelfStabNode {
    /// Create a self-stabilisation baseline node.
    pub fn new(
        id: NodeId,
        workload: Arc<Workload>,
        plan: Arc<Plan>,
        cfg: SelfStabConfig,
        attack: Option<Attack>,
    ) -> SelfStabNode {
        let n_nodes = plan
            .placement
            .values()
            .map(|n| n.index() + 1)
            .max()
            .unwrap_or(1);
        SelfStabNode {
            id,
            workload,
            plan,
            cfg,
            attack,
            inputs: BTreeMap::new(),
            pending: BTreeMap::new(),
            rebooting_until: None,
            n_nodes,
        }
    }

    fn is_rebooting(&self, p: PeriodIdx) -> bool {
        self.rebooting_until.is_some_and(|until| p < until)
    }

    fn handle_slot_start(&mut self, idx: u16, p: PeriodIdx, ctx: &mut NodeCtx<'_>) {
        if self.is_rebooting(p) {
            return;
        }
        let entries = self
            .plan
            .schedules
            .get(&self.id)
            .map(|s| s.entries.clone())
            .unwrap_or_default();
        let Some(entry) = entries.get(idx as usize).copied() else {
            return;
        };
        let ATask::Work { task, .. } = entry.atask else {
            return;
        };
        let spec = self.workload.task(task);
        let is_sink = matches!(spec.kind, TaskKind::Sink { .. });
        let mut vals = Vec::with_capacity(spec.inputs.len());
        if !matches!(spec.kind, TaskKind::Source { .. }) {
            for &u in &spec.inputs {
                match self.inputs.get(&(p, u)) {
                    Some(&v) => vals.push((u, v)),
                    None => return,
                }
            }
        }
        let mut value = if matches!(spec.kind, TaskKind::Source { .. }) {
            sensor_value(task, p, self.workload.seed)
        } else {
            task_value(task, p, &vals)
        };
        if let Some(a) = &self.attack {
            if a.corrupts(ctx.now(), task) {
                value ^= 0xDEAD_BEEF;
            }
        }
        self.pending.insert((p, idx), (task, value, is_sink));
        ctx.set_timer(
            entry.wcet,
            timers::encode(Timer::SlotEmit {
                version: 0,
                idx,
                period: p,
            }),
        );
    }

    fn handle_slot_emit(&mut self, idx: u16, p: PeriodIdx, ctx: &mut NodeCtx<'_>) {
        let Some((task, value, is_sink)) = self.pending.remove(&(p, idx)) else {
            return;
        };
        if self.is_rebooting(p) {
            return;
        }
        if is_sink {
            ctx.actuate(task, p, value);
            return;
        }
        if let Some(Attack::Omission {
            from,
            drop_outputs: true,
            ..
        }) = &self.attack
        {
            if ctx.now() >= *from {
                return;
            }
        }
        self.inputs.entry((p, task)).or_insert(value);
        let mut targets: Vec<NodeId> = self
            .workload
            .consumers_of(task)
            .iter()
            .filter_map(|&c| {
                self.plan.node_of(ATask::Work {
                    task: c,
                    replica: 0,
                })
            })
            .collect();
        targets.sort_unstable();
        targets.dedup();
        targets.retain(|&n| n != self.id);
        for dst in targets {
            let out =
                SignedOutput::sign(ctx.signer(), task, 0, p, value, inputs_digest(&[]), self.id);
            ctx.send(
                dst,
                Payload::Output {
                    output: out,
                    witnesses: vec![],
                },
            );
        }
    }

    fn handle_boundary(&mut self, p: PeriodIdx, ctx: &mut NodeCtx<'_>) {
        // Round-robin audit: one auditor per period checks last period's
        // received values against the invariant.
        if p > 0 && self.id.0 as u64 == p % self.n_nodes as u64 && !self.is_rebooting(p) {
            let prev = p - 1;
            let snapshot: Vec<(TaskId, Value)> = self
                .inputs
                .iter()
                .filter(|((ip, _), _)| *ip == prev)
                .map(|(&(_, t), &v)| (t, v))
                .collect();
            for (t, v) in snapshot {
                if v != reference_value(&self.workload, t, prev) {
                    // Tell the producer to reboot.
                    if let Some(producer) = self.plan.node_of(ATask::Work {
                        task: t,
                        replica: 0,
                    }) {
                        ctx.send(
                            producer,
                            Payload::Audit {
                                about: t,
                                period: prev,
                                value: v,
                            },
                        );
                    }
                }
            }
        }
        let entries = self
            .plan
            .schedules
            .get(&self.id)
            .map(|s| s.entries.clone())
            .unwrap_or_default();
        for (idx, e) in entries.iter().enumerate() {
            ctx.set_timer_at(
                Time(p * self.workload.period.as_micros()) + e.start,
                timers::encode(Timer::SlotStart {
                    version: 0,
                    idx: idx as u16,
                    period: p,
                }),
            );
        }
        let keep = p.saturating_sub(3);
        self.inputs.retain(|&(ip, _), _| ip >= keep);
        ctx.set_timer_at(
            Time((p + 1) * self.workload.period.as_micros()),
            timers::encode(Timer::PeriodBoundary { period: p + 1 }),
        );
    }
}

impl NodeBehavior for SelfStabNode {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.set_timer(
            btr_model::Duration::ZERO,
            timers::encode(Timer::PeriodBoundary { period: 0 }),
        );
    }

    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, env: Envelope) {
        if ctx.verify_env(&env).is_err() {
            return;
        }
        match env.payload {
            Payload::Output { output, .. }
                if ctx.verify_output(&output).is_ok() => {
                    self.inputs
                        .entry((output.period, output.task))
                        .or_insert(output.value);
                }
            Payload::Audit { .. }
                // A benign fault accepts the audit and reboots (clearing
                // its corruption); a Byzantine node ignores it.
                if self.cfg.repairable && self.attack.is_some() => {
                    self.attack = None;
                    let p = ctx.now().period_index(self.workload.period);
                    self.rebooting_until = Some(p + self.cfg.reboot_periods);
                }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: TimerId) {
        match timers::decode(timer) {
            Some(Timer::PeriodBoundary { period }) => self.handle_boundary(period, ctx),
            Some(Timer::SlotStart { idx, period, .. }) => self.handle_slot_start(idx, period, ctx),
            Some(Timer::SlotEmit { idx, period, .. }) => self.handle_slot_emit(idx, period, ctx),
            _ => {}
        }
    }
}
