//! BFT masking baselines: 2f+1 voting and 3f+1 "PBFT-lite" agreement.
//!
//! Every replica of every task votes over *all* replica lanes of each
//! input (majority value wins), so up to f corrupted lanes are masked at
//! every stage and sinks never emit a wrong value. With `agreement` on,
//! each replica group additionally runs an all-to-all echo round per
//! output — this prices the *message and bandwidth* cost of
//! agreement-based SMR (the paper's 3f+1 comparison point). The echo
//! round is accounted for but does not gate release: with at most f
//! faults, the 2f+1 consumer-side vote masks exactly as plain voting
//! does, so gating would change timing feasibility without changing
//! outputs. See DESIGN.md ("PBFT-lite").

use btr_model::message::PbftPhase;
use btr_model::Plan;
use btr_model::{
    inputs_digest, sensor_value, task_value, ATask, Envelope, NodeId, Payload, PeriodIdx,
    ReplicaIdx, SignedOutput, TaskId, Time, Value,
};
use btr_runtime::timers::{self, Timer};
use btr_runtime::Attack;
use btr_sim::{NodeBehavior, NodeCtx, TimerId};
use btr_workload::{TaskKind, Workload};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Configuration for [`BftNode`].
#[derive(Debug, Clone, Copy)]
pub struct BftConfig {
    /// Replica lanes per task (2f+1 for masking, 3f+1 for agreement).
    pub lanes: u8,
    /// Run the echo round before releasing outputs.
    pub agreement: bool,
    /// Fault budget (quorum = 2f+1).
    pub f: u8,
}

/// A node running the BFT masking baseline.
pub struct BftNode {
    id: NodeId,
    workload: Arc<Workload>,
    plan: Arc<Plan>,
    cfg: BftConfig,
    attack: Option<Attack>,
    /// Received lane values: (period, task, lane) -> value.
    inputs: BTreeMap<(PeriodIdx, TaskId, ReplicaIdx), Value>,
    /// Computed values awaiting emission.
    pending: BTreeMap<(PeriodIdx, u16), (TaskId, ReplicaIdx, Value, bool)>,
    /// Agreement state: (period, task) -> value -> echoing replicas.
    prepares: BTreeMap<(PeriodIdx, TaskId), BTreeMap<Value, BTreeSet<NodeId>>>,
    /// Outputs already released (agreement dedup).
    released: BTreeSet<(PeriodIdx, TaskId, ReplicaIdx)>,
    equiv_flip: u64,
}

impl BftNode {
    /// Create a BFT baseline node.
    pub fn new(
        id: NodeId,
        workload: Arc<Workload>,
        plan: Arc<Plan>,
        cfg: BftConfig,
        attack: Option<Attack>,
    ) -> BftNode {
        BftNode {
            id,
            workload,
            plan,
            cfg,
            attack,
            inputs: BTreeMap::new(),
            pending: BTreeMap::new(),
            prepares: BTreeMap::new(),
            released: BTreeSet::new(),
            equiv_flip: 0,
        }
    }

    fn lanes_of(&self, t: TaskId) -> u8 {
        self.plan.replicas_of(t).len().max(1).min(u8::MAX as usize) as u8
    }

    fn my_entries(&self) -> Vec<btr_model::ScheduleEntry> {
        self.plan
            .schedules
            .get(&self.id)
            .map(|s| s.entries.clone())
            .unwrap_or_default()
    }

    /// Majority vote over the arrived lane values of one input.
    fn vote(&self, p: PeriodIdx, u: TaskId) -> Option<Value> {
        let lanes = self.lanes_of(u);
        let mut counts: BTreeMap<Value, usize> = BTreeMap::new();
        for lane in 0..lanes {
            if let Some(&v) = self.inputs.get(&(p, u, lane)) {
                *counts.entry(v).or_insert(0) += 1;
            }
        }
        // Plurality; ties break toward the smallest value (deterministic).
        counts
            .into_iter()
            .max_by_key(|&(v, c)| (c, std::cmp::Reverse(v)))
            .map(|(v, _)| v)
    }

    /// Destinations for a task output: every lane host of every consumer.
    fn targets(&self, t: TaskId) -> Vec<NodeId> {
        let mut out = Vec::new();
        for &c in self.workload.consumers_of(t) {
            for (_, node) in self.plan.replicas_of(c) {
                out.push(node);
            }
        }
        out.sort_unstable();
        out.dedup();
        out.retain(|&n| n != self.id);
        out
    }

    fn release(
        &mut self,
        p: PeriodIdx,
        t: TaskId,
        r: ReplicaIdx,
        value: Value,
        ctx: &mut NodeCtx<'_>,
    ) {
        if !self.released.insert((p, t, r)) {
            return;
        }
        // Local consumption.
        self.inputs.entry((p, t, r)).or_insert(value);
        let equivocate =
            matches!(&self.attack, Some(Attack::Equivocate { from }) if ctx.now() >= *from);
        let targets = self.targets(t);
        for (i, dst) in targets.iter().enumerate() {
            let mut v = value;
            if equivocate && i >= targets.len() / 2 {
                self.equiv_flip += 1;
                v = value ^ (0xE0 + self.equiv_flip);
            }
            let out = SignedOutput::sign(ctx.signer(), t, r, p, v, inputs_digest(&[]), self.id);
            ctx.send(
                *dst,
                Payload::Output {
                    output: out,
                    witnesses: vec![],
                },
            );
        }
    }

    fn handle_slot_start(&mut self, idx: u16, p: PeriodIdx, ctx: &mut NodeCtx<'_>) {
        let entries = self.my_entries();
        let Some(entry) = entries.get(idx as usize).copied() else {
            return;
        };
        let ATask::Work { task, replica } = entry.atask else {
            return;
        };
        let spec = self.workload.task(task);
        let is_sink = matches!(spec.kind, TaskKind::Sink { .. });
        let mut vals = Vec::with_capacity(spec.inputs.len());
        if matches!(spec.kind, TaskKind::Source { .. }) {
            // Sensor read.
        } else {
            for &u in &spec.inputs {
                match self.vote(p, u) {
                    Some(v) => vals.push((u, v)),
                    None => return, // Input missing entirely this period.
                }
            }
        }
        let mut value = if matches!(spec.kind, TaskKind::Source { .. }) {
            sensor_value(task, p, self.workload.seed)
        } else {
            task_value(task, p, &vals)
        };
        if let Some(a) = &self.attack {
            if a.corrupts(ctx.now(), task) {
                value ^= 0xDEAD_BEEF;
            }
        }
        self.pending
            .insert((p, idx), (task, replica, value, is_sink));
        let mut delay = entry.wcet;
        if let Some(Attack::Timing { from, delay: d }) = &self.attack {
            if ctx.now() >= *from {
                delay += *d;
            }
        }
        ctx.set_timer(
            delay,
            timers::encode(Timer::SlotEmit {
                version: 0,
                idx,
                period: p,
            }),
        );
    }

    fn handle_slot_emit(&mut self, idx: u16, p: PeriodIdx, ctx: &mut NodeCtx<'_>) {
        let Some((task, replica, value, is_sink)) = self.pending.remove(&(p, idx)) else {
            return;
        };
        if is_sink {
            ctx.actuate(task, p, value);
            return;
        }
        if let Some(Attack::Omission {
            from,
            drop_outputs: true,
            ..
        }) = &self.attack
        {
            if ctx.now() >= *from {
                return;
            }
        }
        if self.cfg.agreement {
            // Echo round (cost accounting): broadcast my value to the
            // other replicas of the task.
            self.prepares
                .entry((p, task))
                .or_default()
                .entry(value)
                .or_default()
                .insert(self.id);
            for (r, node) in self.plan.replicas_of(task) {
                if node != self.id {
                    let _ = r;
                    ctx.send(
                        node,
                        Payload::Pbft {
                            task,
                            period: p,
                            value,
                            phase: PbftPhase::Prepare,
                            view: 0,
                        },
                    );
                }
            }
        }
        self.release(p, task, replica, value, ctx);
    }

    /// Echo-quorum size observed for a value (diagnostics).
    pub fn prepare_count(&self, p: PeriodIdx, task: TaskId, value: Value) -> usize {
        self.prepares
            .get(&(p, task))
            .and_then(|m| m.get(&value))
            .map_or(0, |s| s.len())
    }

    fn handle_boundary(&mut self, p: PeriodIdx, ctx: &mut NodeCtx<'_>) {
        for (idx, e) in self.my_entries().iter().enumerate() {
            ctx.set_timer_at(
                Time(p * self.workload.period.as_micros()) + e.start,
                timers::encode(Timer::SlotStart {
                    version: 0,
                    idx: idx as u16,
                    period: p,
                }),
            );
        }
        let keep = p.saturating_sub(3);
        self.inputs.retain(|&(ip, _, _), _| ip >= keep);
        self.prepares.retain(|&(ip, _), _| ip >= keep);
        self.released.retain(|&(ip, _, _)| ip >= keep);
        ctx.set_timer_at(
            Time((p + 1) * self.workload.period.as_micros()),
            timers::encode(Timer::PeriodBoundary { period: p + 1 }),
        );
    }
}

impl NodeBehavior for BftNode {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.set_timer(
            btr_model::Duration::ZERO,
            timers::encode(Timer::PeriodBoundary { period: 0 }),
        );
    }

    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, env: Envelope) {
        if ctx.verify_env(&env).is_err() {
            return;
        }
        match env.payload {
            Payload::Output { output, .. } if ctx.verify_output(&output).is_ok() => {
                self.inputs
                    .entry((output.period, output.task, output.replica))
                    .or_insert(output.value);
            }
            Payload::Pbft {
                task,
                period,
                value,
                phase: PbftPhase::Prepare,
                ..
            } => {
                self.prepares
                    .entry((period, task))
                    .or_default()
                    .entry(value)
                    .or_default()
                    .insert(env.src);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: TimerId) {
        match timers::decode(timer) {
            Some(Timer::PeriodBoundary { period }) => self.handle_boundary(period, ctx),
            Some(Timer::SlotStart { idx, period, .. }) => self.handle_slot_start(idx, period, ctx),
            Some(Timer::SlotEmit { idx, period, .. }) => self.handle_slot_emit(idx, period, ctx),
            _ => {}
        }
    }
}
