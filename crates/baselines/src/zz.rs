//! ZZ-style reactive replication (Wood et al., EuroSys'11).
//!
//! "ZZ reduces the normal-case overhead of BFT by running only f+1
//! replicas by default, and by changing to agreement only if these
//! replicas disagree" (Section 5 of the paper). Here: each task has
//! 2f+1 placed lanes, of which only the first f+1 execute by default.
//! Any consumer that sees its input lanes *disagree* (or cannot assemble
//! an f+1 matching quorum) broadcasts `Wake` for that input; dormant
//! lanes boot after a configurable delay and the 2f+1 votes mask the
//! fault from then on. Wakes cascade up the dataflow so dormant lanes
//! have inputs to consume.

use btr_model::Plan;
use btr_model::{
    inputs_digest, sensor_value, task_value, ATask, Envelope, NodeId, Payload, PeriodIdx,
    ReplicaIdx, SignedOutput, TaskId, Time, Value,
};
use btr_runtime::timers::{self, Timer};
use btr_runtime::Attack;
use btr_sim::{NodeBehavior, NodeCtx, TimerId};
use btr_workload::{TaskKind, Workload};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Configuration for [`ZzNode`].
#[derive(Debug, Clone, Copy)]
pub struct ZzConfig {
    /// Lanes active from the start (f+1).
    pub active: u8,
    /// Total placed lanes (2f+1).
    pub total: u8,
    /// Periods a woken lane needs before it produces (boot/state-fetch).
    pub wake_boot_periods: u64,
}

/// A node running the ZZ baseline.
pub struct ZzNode {
    id: NodeId,
    workload: Arc<Workload>,
    plan: Arc<Plan>,
    cfg: ZzConfig,
    attack: Option<Attack>,
    inputs: BTreeMap<(PeriodIdx, TaskId, ReplicaIdx), Value>,
    pending: BTreeMap<(PeriodIdx, u16), (TaskId, ReplicaIdx, Value, bool)>,
    /// Task -> period from which its dormant lanes run.
    woken: BTreeMap<TaskId, PeriodIdx>,
    /// Wakes already broadcast (dedup).
    wake_sent: BTreeSet<TaskId>,
}

impl ZzNode {
    /// Create a ZZ baseline node.
    pub fn new(
        id: NodeId,
        workload: Arc<Workload>,
        plan: Arc<Plan>,
        cfg: ZzConfig,
        attack: Option<Attack>,
    ) -> ZzNode {
        ZzNode {
            id,
            workload,
            plan,
            cfg,
            attack,
            inputs: BTreeMap::new(),
            pending: BTreeMap::new(),
            woken: BTreeMap::new(),
            wake_sent: BTreeSet::new(),
        }
    }

    fn lane_active(&self, t: TaskId, r: ReplicaIdx, p: PeriodIdx) -> bool {
        if r < self.cfg.active {
            return true;
        }
        self.woken.get(&t).is_some_and(|&from| p >= from)
    }

    /// Vote over arrived lanes; `Err(true)` signals disagreement that
    /// warrants waking dormant lanes.
    fn vote(&self, p: PeriodIdx, u: TaskId) -> Result<Value, bool> {
        let lanes = self.plan.replicas_of(u).len().min(self.cfg.total as usize) as u8;
        let mut counts: BTreeMap<Value, usize> = BTreeMap::new();
        let mut arrived = 0usize;
        for lane in 0..lanes {
            if let Some(&v) = self.inputs.get(&(p, u, lane)) {
                *counts.entry(v).or_insert(0) += 1;
                arrived += 1;
            }
        }
        if arrived == 0 {
            return Err(false);
        }
        let quorum = self.cfg.active as usize; // f+1 matching = safe.
        if let Some((&v, _)) = counts.iter().find(|&(_, &c)| c >= quorum) {
            return Ok(v);
        }
        // Lanes disagree (or not enough agreement): wake-worthy.
        Err(true)
    }

    fn wake(&mut self, u: TaskId, ctx: &mut NodeCtx<'_>) {
        if !self.wake_sent.insert(u) {
            return;
        }
        // Wake the dormant lane hosts of `u`, and cascade to its inputs
        // so the dormant lanes have data to consume.
        let p = ctx.now().period_index(self.workload.period);
        for (r, node) in self.plan.replicas_of(u) {
            if r >= self.cfg.active {
                ctx.send(node, Payload::Wake { task: u, period: p });
            }
        }
        let inputs = self.workload.task(u).inputs.clone();
        for i in inputs {
            self.wake(i, ctx);
        }
    }

    fn targets(&self, t: TaskId) -> Vec<NodeId> {
        let mut out = Vec::new();
        for &c in self.workload.consumers_of(t) {
            for (_, node) in self.plan.replicas_of(c) {
                out.push(node);
            }
        }
        out.sort_unstable();
        out.dedup();
        out.retain(|&n| n != self.id);
        out
    }

    fn handle_slot_start(&mut self, idx: u16, p: PeriodIdx, ctx: &mut NodeCtx<'_>) {
        let entries = self
            .plan
            .schedules
            .get(&self.id)
            .map(|s| s.entries.clone())
            .unwrap_or_default();
        let Some(entry) = entries.get(idx as usize).copied() else {
            return;
        };
        let ATask::Work { task, replica } = entry.atask else {
            return;
        };
        if !self.lane_active(task, replica, p) {
            return; // Dormant.
        }
        let spec = self.workload.task(task);
        let is_sink = matches!(spec.kind, TaskKind::Sink { .. });
        let mut vals = Vec::with_capacity(spec.inputs.len());
        if !matches!(spec.kind, TaskKind::Source { .. }) {
            let input_list = spec.inputs.clone();
            for u in input_list {
                match self.vote(p, u) {
                    Ok(v) => vals.push((u, v)),
                    Err(wake_worthy) => {
                        if wake_worthy {
                            self.wake(u, ctx);
                        }
                        return; // Cannot decide this period.
                    }
                }
            }
        }
        let mut value = if matches!(spec.kind, TaskKind::Source { .. }) {
            sensor_value(task, p, self.workload.seed)
        } else {
            task_value(task, p, &vals)
        };
        if let Some(a) = &self.attack {
            if a.corrupts(ctx.now(), task) {
                value ^= 0xDEAD_BEEF;
            }
        }
        self.pending
            .insert((p, idx), (task, replica, value, is_sink));
        ctx.set_timer(
            entry.wcet,
            timers::encode(Timer::SlotEmit {
                version: 0,
                idx,
                period: p,
            }),
        );
    }

    fn handle_slot_emit(&mut self, idx: u16, p: PeriodIdx, ctx: &mut NodeCtx<'_>) {
        let Some((task, replica, value, is_sink)) = self.pending.remove(&(p, idx)) else {
            return;
        };
        if is_sink {
            ctx.actuate(task, p, value);
            return;
        }
        if let Some(Attack::Omission {
            from,
            drop_outputs: true,
            ..
        }) = &self.attack
        {
            if ctx.now() >= *from {
                return;
            }
        }
        self.inputs.entry((p, task, replica)).or_insert(value);
        for dst in self.targets(task) {
            let out = SignedOutput::sign(
                ctx.signer(),
                task,
                replica,
                p,
                value,
                inputs_digest(&[]),
                self.id,
            );
            ctx.send(
                dst,
                Payload::Output {
                    output: out,
                    witnesses: vec![],
                },
            );
        }
    }

    fn handle_boundary(&mut self, p: PeriodIdx, ctx: &mut NodeCtx<'_>) {
        let entries = self
            .plan
            .schedules
            .get(&self.id)
            .map(|s| s.entries.clone())
            .unwrap_or_default();
        for (idx, e) in entries.iter().enumerate() {
            ctx.set_timer_at(
                Time(p * self.workload.period.as_micros()) + e.start,
                timers::encode(Timer::SlotStart {
                    version: 0,
                    idx: idx as u16,
                    period: p,
                }),
            );
        }
        let keep = p.saturating_sub(3);
        self.inputs.retain(|&(ip, _, _), _| ip >= keep);
        ctx.set_timer_at(
            Time((p + 1) * self.workload.period.as_micros()),
            timers::encode(Timer::PeriodBoundary { period: p + 1 }),
        );
    }
}

impl NodeBehavior for ZzNode {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.set_timer(
            btr_model::Duration::ZERO,
            timers::encode(Timer::PeriodBoundary { period: 0 }),
        );
    }

    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, env: Envelope) {
        if ctx.verify_env(&env).is_err() {
            return;
        }
        match env.payload {
            Payload::Output { output, .. } if ctx.verify_output(&output).is_ok() => {
                self.inputs
                    .entry((output.period, output.task, output.replica))
                    .or_insert(output.value);
            }
            Payload::Wake { task, period } => {
                // Boot delay before the dormant lane produces.
                let from = period + self.cfg.wake_boot_periods;
                let e = self.woken.entry(task).or_insert(from);
                if *e > from {
                    *e = from;
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: TimerId) {
        match timers::decode(timer) {
            Some(Timer::PeriodBoundary { period }) => self.handle_boundary(period, ctx),
            Some(Timer::SlotStart { idx, period, .. }) => self.handle_slot_start(idx, period, ctx),
            Some(Timer::SlotEmit { idx, period, .. }) => self.handle_slot_emit(idx, period, ctx),
            _ => {}
        }
    }
}
